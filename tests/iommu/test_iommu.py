"""Unit tests for the top-level IOMMU: translation, walker, faults."""

import pytest

from repro.iommu import DmaFault, Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE


def make_iommu(**kwargs):
    return Iommu(IommuConfig(**kwargs))


class TestTranslate:
    def test_cold_translation_costs_four_reads(self):
        iommu = make_iommu()
        iommu.map_page(0x1000, 42)
        result = iommu.translate(0x1000)
        assert result.frame == 42
        assert not result.iotlb_hit
        assert result.memory_reads == 4

    def test_repeat_translation_hits_iotlb(self):
        iommu = make_iommu()
        iommu.map_page(0x1000, 42)
        iommu.translate(0x1000)
        result = iommu.translate(0x1000)
        assert result.iotlb_hit
        assert result.memory_reads == 0

    def test_neighbour_page_after_iotlb_invalidation_costs_one_read(self):
        """The F&S fast path: IOTLB miss but PTcache-L3 hit -> 1 read."""
        iommu = make_iommu()
        iommu.map_page(0x1000, 1)
        iommu.map_page(0x2000, 2)
        iommu.translate(0x1000)
        result = iommu.translate(0x2000)
        assert not result.iotlb_hit
        assert result.memory_reads == 1

    def test_unmapped_iova_faults(self):
        iommu = make_iommu()
        with pytest.raises(DmaFault):
            iommu.translate(0x1000)
        assert iommu.stats.faults == 1

    def test_strict_invalidation_blocks_device_access(self):
        """The strict safety property: after unmap + invalidate, the
        device can no longer reach the old frame."""
        iommu = make_iommu()
        iommu.map_page(0x1000, 42)
        iommu.translate(0x1000)
        iommu.unmap_range(0x1000, PAGE_SIZE)
        iommu.invalidation_queue.invalidate_range(
            0x1000, PAGE_SIZE, preserve_ptcache=False
        )
        with pytest.raises(DmaFault):
            iommu.translate(0x1000)

    def test_stale_hit_flagged_without_invalidation(self):
        """Deferred-mode hole: unmap without invalidation leaves a
        usable stale IOTLB entry."""
        iommu = make_iommu(check_stale_hits=True)
        iommu.map_page(0x1000, 42)
        iommu.translate(0x1000)
        iommu.unmap_range(0x1000, PAGE_SIZE)
        result = iommu.translate(0x1000)  # no fault!
        assert result.iotlb_hit
        assert result.stale

    def test_preserve_ptcache_keeps_walk_short(self):
        """F&S idea A: IOTLB-only invalidation preserves the PTcaches,
        so the unavoidable IOTLB miss costs 1 read instead of 4."""
        iommu = make_iommu()
        for page in range(2):
            iommu.map_page(0x100000 + page * PAGE_SIZE, page)
        iommu.translate(0x100000)
        iommu.unmap_range(0x100000, PAGE_SIZE)
        iommu.invalidation_queue.invalidate_range(
            0x100000, PAGE_SIZE, preserve_ptcache=True
        )
        result = iommu.translate(0x100000 + PAGE_SIZE)
        assert not result.iotlb_hit
        assert result.memory_reads == 1

    def test_linux_invalidation_forces_full_walk(self):
        """Linux behaviour: PTcache entries die with the unmap, so the
        next nearby translation pays the full 4-read walk."""
        iommu = make_iommu()
        for page in range(2):
            iommu.map_page(0x100000 + page * PAGE_SIZE, page)
        iommu.translate(0x100000)
        iommu.unmap_range(0x100000, PAGE_SIZE)
        iommu.invalidation_queue.invalidate_range(
            0x100000, PAGE_SIZE, preserve_ptcache=False
        )
        result = iommu.translate(0x100000 + PAGE_SIZE)
        assert result.memory_reads == 4

    def test_source_tagging(self):
        iommu = make_iommu()
        iommu.map_page(0x1000, 1)
        iommu.map_page(0x2000, 2)
        iommu.translate(0x1000, source="rx")
        iommu.translate(0x2000, source="tx_ack")
        assert iommu.stats.translations_by_source == {"rx": 1, "tx_ack": 1}
        assert iommu.stats.iotlb_misses_by_source == {"rx": 1, "tx_ack": 1}


class TestWalkerTiming:
    def test_walk_costs_reads_times_lm(self):
        """Reads within one walk are sequential (level-dependent)."""
        iommu = make_iommu(lm_ns=100.0, walkers=1)
        finish = iommu.reserve_walk(now=0.0, memory_reads=4)
        assert finish == 400.0

    def test_single_walker_serializes_concurrent_walks(self):
        iommu = make_iommu(lm_ns=100.0, walkers=1)
        first = iommu.reserve_walk(now=0.0, memory_reads=2)
        second = iommu.reserve_walk(now=50.0, memory_reads=1)
        assert first == 200.0
        assert second == 300.0

    def test_parallel_walkers_overlap_walks(self):
        """Walks for different pages proceed on parallel channels."""
        iommu = make_iommu(lm_ns=100.0, walkers=2)
        first = iommu.reserve_walk(now=0.0, memory_reads=2)
        second = iommu.reserve_walk(now=0.0, memory_reads=2)
        third = iommu.reserve_walk(now=0.0, memory_reads=1)
        assert first == 200.0
        assert second == 200.0
        assert third == 300.0  # queues behind the least-loaded channel
        assert iommu.walker_busy_until == 300.0

    def test_idle_walker_starts_immediately(self):
        iommu = make_iommu(lm_ns=100.0, walkers=1)
        iommu.reserve_walk(now=0.0, memory_reads=1)
        finish = iommu.reserve_walk(now=1000.0, memory_reads=1)
        assert finish == 1100.0

    def test_zero_reads_is_free(self):
        iommu = make_iommu()
        assert iommu.reserve_walk(now=5.0, memory_reads=0) == 5.0

    def test_zero_walkers_rejected(self):
        with pytest.raises(ValueError):
            make_iommu(walkers=0)

    def test_contention_inflates_read_latency(self):
        iommu = make_iommu(lm_ns=100.0, walkers=1)
        relaxed = iommu.reserve_walk(0.0, 1, utilization=0.0)
        inflated = iommu.reserve_walk(relaxed, 1, utilization=0.9)
        assert inflated - relaxed > 100.0


class TestStatsDelta:
    def test_snapshot_delta_and_per_page(self):
        iommu = make_iommu()
        for page in range(8):
            iommu.map_page(page * PAGE_SIZE, page)
        iommu.translate(0)
        before = iommu.stats.snapshot()
        for page in range(8):
            iommu.translate(page * PAGE_SIZE)
        delta = iommu.stats.delta(before)
        assert delta.translations == 8
        assert delta.iotlb_hits == 1  # page 0 was already cached
        per_page = delta.per_page(8)
        assert per_page.iotlb == pytest.approx(7 / 8)
        assert per_page.memory_reads == pytest.approx(
            per_page.iotlb + per_page.l1 + per_page.l2 + per_page.l3
        )

    def test_per_page_requires_positive_pages(self):
        iommu = make_iommu()
        delta = iommu.stats.delta(iommu.stats.snapshot())
        with pytest.raises(ValueError):
            delta.per_page(0)


class TestInvalidationQueue:
    def test_cpu_cost_accumulates(self):
        iommu = make_iommu(invalidation_cpu_ns=100.0)
        iommu.map_page(0x1000, 1)
        cost = iommu.invalidation_queue.invalidate_range(
            0x1000, PAGE_SIZE, preserve_ptcache=True
        )
        assert cost == 100.0
        assert iommu.invalidation_queue.total_cpu_ns == 100.0

    def test_batched_invalidation_is_single_request(self):
        """F&S idea B2: one queue entry for a whole descriptor."""
        iommu = make_iommu(trace_invalidations=True)
        base = 0x200000
        for page in range(64):
            iommu.map_page(base + page * PAGE_SIZE, page)
            iommu.translate(base + page * PAGE_SIZE)
        iommu.invalidation_queue.invalidate_range(
            base, 64 * PAGE_SIZE, preserve_ptcache=True
        )
        assert iommu.stats.invalidation_requests == 1
        assert iommu.iotlb.resident_entries == 0
        requests = iommu.invalidation_queue.requests
        assert len(requests) == 1
        assert requests[0].length == 64 * PAGE_SIZE

    def test_flush_all(self):
        iommu = make_iommu()
        iommu.map_page(0x1000, 1)
        iommu.translate(0x1000)
        iommu.invalidation_queue.flush_all()
        assert iommu.iotlb.resident_entries == 0
        assert iommu.ptcaches.l3.resident_entries == 0

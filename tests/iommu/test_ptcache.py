"""Unit tests for the IO page table caches (PTcache-L1/L2/L3)."""

import pytest

from repro.iommu import PtCache, PtCacheHierarchy
from repro.iommu.addr import LEVEL_SHIFTS


def fake_walk_pages():
    """A stand-in 4-element PT page chain for fills."""
    return ("l1", "l2", "l3", "l4")


class TestPtCache:
    def test_coverage_sharing_at_l3(self):
        cache = PtCache(level=3, entries=4)
        base = 10 << LEVEL_SHIFTS[3]
        cache.insert(base, "page")
        # Anywhere in the same 2 MB region hits the same entry.
        assert cache.lookup(base + 2**21 - 1) == "page"
        assert cache.lookup(base + 2**21) is None

    def test_lru_eviction(self):
        cache = PtCache(level=3, entries=2)
        region = LEVEL_SHIFTS[3]
        cache.insert(0 << region, "a")
        cache.insert(1 << region, "b")
        cache.lookup(0)  # touch "a"
        cache.insert(2 << region, "c")  # evicts "b"
        assert cache.lookup(1 << region) is None
        assert cache.lookup(0) == "a"
        assert cache.evictions == 1

    def test_invalidate_range_covers_intersections(self):
        cache = PtCache(level=3, entries=8)
        region = 1 << LEVEL_SHIFTS[3]
        for i in range(4):
            cache.insert(i * region, f"p{i}")
        # A range touching the tail of region 0 and head of region 2.
        dropped = cache.invalidate_range(region - 4096, region + 8192)
        assert dropped == 3  # regions 0, 1, 2
        assert cache.contains(3 * region)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            PtCache(level=4, entries=8)

    def test_flush(self):
        cache = PtCache(level=1, entries=8)
        cache.insert(0, "x")
        assert cache.flush() == 1
        assert cache.resident_entries == 0


class TestHierarchyProbe:
    def test_all_miss_costs_four_reads(self):
        caches = PtCacheHierarchy()
        outcome = caches.probe(0x1000)
        assert outcome.deepest_hit_level == 0
        assert outcome.memory_reads == 4
        assert caches.counted_misses == {1: 1, 2: 1, 3: 1}

    def test_l3_hit_costs_one_read(self):
        """The paper's best case: PTcache-L3 hit -> a single PT-L4 read."""
        caches = PtCacheHierarchy()
        caches.fill(0x1000, fake_walk_pages())
        outcome = caches.probe(0x1000)
        assert outcome.deepest_hit_level == 3
        assert outcome.memory_reads == 1

    def test_l2_hit_costs_two_reads(self):
        caches = PtCacheHierarchy(l3_entries=1)
        caches.fill(0x1000, fake_walk_pages())
        # Evict only the L3 entry by filling a different 2 MB region.
        caches.l3.insert(5 << 21, "other")
        outcome = caches.probe(0x1000)
        assert outcome.deepest_hit_level == 2
        assert outcome.memory_reads == 2

    def test_l1_hit_costs_three_reads(self):
        caches = PtCacheHierarchy(l2_entries=1, l3_entries=1)
        caches.fill(0x1000, fake_walk_pages())
        caches.l3.insert(5 << 21, "other")
        caches.l2.insert(5 << 30, "other")
        outcome = caches.probe(0x1000)
        assert outcome.deepest_hit_level == 1
        assert outcome.memory_reads == 3

    def test_counted_misses_follow_paper_accounting(self):
        """m1 <= m2 <= m3: a level-i miss is counted only when every
        deeper level also missed (it then adds a memory read)."""
        caches = PtCacheHierarchy()
        caches.fill(0x1000, fake_walk_pages())
        caches.l3.flush()
        caches.probe(0x1000)  # L3 miss, L2 hit: only m3 counted
        assert caches.counted_misses == {1: 0, 2: 0, 3: 1}

    def test_fill_populates_all_levels(self):
        caches = PtCacheHierarchy()
        caches.fill(0x1000, fake_walk_pages())
        assert caches.l1.contains(0x1000)
        assert caches.l2.contains(0x1000)
        assert caches.l3.contains(0x1000)

    def test_invalidate_range_hits_all_levels(self):
        """Linux's unmap behaviour: one page's invalidation drops the
        covering entry at every level — the root cause of the paper's
        PTcache-L1/L2 misses."""
        caches = PtCacheHierarchy()
        caches.fill(0x1000, fake_walk_pages())
        dropped = caches.invalidate_range(0x1000, 4096)
        assert dropped == 3
        outcome = caches.probe(0x1000)
        assert outcome.memory_reads == 4

    def test_shared_entries_across_nearby_iovas(self):
        """Two IOVAs in the same 2 MB region share all PTcache entries —
        the locality F&S's contiguous allocation creates."""
        caches = PtCacheHierarchy()
        caches.fill(0x1000, fake_walk_pages())
        outcome = caches.probe(0x1000 + 64 * 4096)
        assert outcome.deepest_hit_level == 3

"""Unit tests for the invalidation-queue interface."""

from repro.iommu import Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE


def make_iommu(**kwargs):
    return Iommu(IommuConfig(trace_invalidations=True, **kwargs))


def warm(iommu, base, pages):
    for page in range(pages):
        iommu.map_page(base + page * PAGE_SIZE, page)
        iommu.translate(base + page * PAGE_SIZE)


def test_preserve_flag_controls_ptcache():
    iommu = make_iommu()
    warm(iommu, 0x100000, 2)
    iommu.invalidation_queue.invalidate_range(
        0x100000, PAGE_SIZE, preserve_ptcache=True
    )
    assert iommu.ptcaches.l3.resident_entries > 0
    iommu.invalidation_queue.invalidate_range(
        0x101000, PAGE_SIZE, preserve_ptcache=False
    )
    assert iommu.ptcaches.l3.resident_entries == 0


def test_requests_traced():
    iommu = make_iommu()
    warm(iommu, 0x100000, 1)
    iommu.invalidation_queue.invalidate_range(
        0x100000, PAGE_SIZE, preserve_ptcache=True
    )
    request = iommu.invalidation_queue.requests[-1]
    assert request.iova == 0x100000
    assert request.length == PAGE_SIZE
    assert request.preserve_ptcache


def test_cpu_cost_constant_per_request_not_per_page():
    """The CPU pays per queue entry: a ranged 64-page invalidation
    costs the same as a single-page one — F&S's B2 saving."""
    iommu = make_iommu(invalidation_cpu_ns=300.0)
    warm(iommu, 0x200000, 64)
    single = iommu.invalidation_queue.invalidate_range(
        0x200000, PAGE_SIZE, preserve_ptcache=True
    )
    ranged = iommu.invalidation_queue.invalidate_range(
        0x201000, 63 * PAGE_SIZE, preserve_ptcache=True
    )
    assert single == ranged == 300.0


def test_ptcache_only_invalidation():
    """The F&S correctness fallback drops PTcache entries without
    touching the IOTLB."""
    iommu = make_iommu()
    warm(iommu, 0x300000, 1)
    iommu.invalidation_queue.invalidate_ptcache_range(0x300000, PAGE_SIZE)
    assert iommu.ptcaches.l3.resident_entries == 0
    assert iommu.iotlb.contains(0x300000)


def test_stats_counters():
    iommu = make_iommu()
    warm(iommu, 0x400000, 1)
    iommu.invalidation_queue.invalidate_range(
        0x400000, PAGE_SIZE, preserve_ptcache=True
    )
    assert iommu.stats.invalidation_requests == 1
    assert iommu.stats.ptcache_invalidation_requests == 0
    iommu.invalidation_queue.flush_all()
    assert iommu.stats.invalidation_requests == 2
    assert iommu.stats.ptcache_invalidation_requests == 1


def test_total_cpu_accumulates():
    iommu = make_iommu(invalidation_cpu_ns=100.0)
    warm(iommu, 0x500000, 2)
    queue = iommu.invalidation_queue
    queue.invalidate_range(0x500000, PAGE_SIZE, preserve_ptcache=True)
    queue.invalidate_ptcache_range(0x500000, PAGE_SIZE)
    queue.flush_all()
    assert queue.total_cpu_ns == 300.0


# ---------------------------------------------------------------------------
# Range edge cases
# ---------------------------------------------------------------------------
def test_zero_length_request_is_a_noop():
    """VT-d descriptors cover at least one page; a zero-length submit
    must not wait, count, or touch any cache."""
    iommu = make_iommu()
    warm(iommu, 0x600000, 1)
    queue = iommu.invalidation_queue
    result = queue.submit_invalidation(
        0x600000, 0, preserve_ptcache=True
    )
    assert result.cost_ns == 0.0
    assert result.completed
    assert result.completed_length == 0
    assert iommu.iotlb.contains(0x600000)
    assert iommu.stats.invalidation_requests == 0
    assert queue.total_cpu_ns == 0.0
    assert queue.requests == []


def test_range_spanning_past_last_mapped_page():
    """An invalidation range may extend beyond the last mapped page
    (e.g. a driver rounding up to a power of two): mapped pages inside
    the range are dropped, the unmapped tail is harmless."""
    iommu = make_iommu()
    warm(iommu, 0x700000, 4)
    result = iommu.invalidation_queue.submit_invalidation(
        0x702000, 4 * PAGE_SIZE, preserve_ptcache=True
    )
    assert result.completed
    # Pages 0-1 are outside the range and survive; 2-3 are inside and
    # must be gone even though the range runs two pages past them.
    assert iommu.iotlb.contains(0x700000)
    assert iommu.iotlb.contains(0x701000)
    assert not iommu.iotlb.contains(0x702000)
    assert not iommu.iotlb.contains(0x703000)


def test_preserve_ptcache_on_unmapped_range():
    """Invalidating a never-mapped range is legal (drivers batch over
    holes): full CPU cost, nothing cached changes."""
    iommu = make_iommu()
    warm(iommu, 0x800000, 1)
    queue = iommu.invalidation_queue
    resident_before = iommu.ptcaches.l3.resident_entries
    cost = queue.invalidate_range(
        0xdead000, 2 * PAGE_SIZE, preserve_ptcache=True
    )
    assert cost == queue.cpu_cost_ns
    assert iommu.iotlb.contains(0x800000)
    assert iommu.ptcaches.l3.resident_entries == resident_before
    assert iommu.stats.invalidation_requests == 1

"""Unit tests for the invalidation-queue interface."""

from repro.iommu import Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE


def make_iommu(**kwargs):
    return Iommu(IommuConfig(trace_invalidations=True, **kwargs))


def warm(iommu, base, pages):
    for page in range(pages):
        iommu.map_page(base + page * PAGE_SIZE, page)
        iommu.translate(base + page * PAGE_SIZE)


def test_preserve_flag_controls_ptcache():
    iommu = make_iommu()
    warm(iommu, 0x100000, 2)
    iommu.invalidation_queue.invalidate_range(
        0x100000, PAGE_SIZE, preserve_ptcache=True
    )
    assert iommu.ptcaches.l3.resident_entries > 0
    iommu.invalidation_queue.invalidate_range(
        0x101000, PAGE_SIZE, preserve_ptcache=False
    )
    assert iommu.ptcaches.l3.resident_entries == 0


def test_requests_traced():
    iommu = make_iommu()
    warm(iommu, 0x100000, 1)
    iommu.invalidation_queue.invalidate_range(
        0x100000, PAGE_SIZE, preserve_ptcache=True
    )
    request = iommu.invalidation_queue.requests[-1]
    assert request.iova == 0x100000
    assert request.length == PAGE_SIZE
    assert request.preserve_ptcache


def test_cpu_cost_constant_per_request_not_per_page():
    """The CPU pays per queue entry: a ranged 64-page invalidation
    costs the same as a single-page one — F&S's B2 saving."""
    iommu = make_iommu(invalidation_cpu_ns=300.0)
    warm(iommu, 0x200000, 64)
    single = iommu.invalidation_queue.invalidate_range(
        0x200000, PAGE_SIZE, preserve_ptcache=True
    )
    ranged = iommu.invalidation_queue.invalidate_range(
        0x201000, 63 * PAGE_SIZE, preserve_ptcache=True
    )
    assert single == ranged == 300.0


def test_ptcache_only_invalidation():
    """The F&S correctness fallback drops PTcache entries without
    touching the IOTLB."""
    iommu = make_iommu()
    warm(iommu, 0x300000, 1)
    iommu.invalidation_queue.invalidate_ptcache_range(0x300000, PAGE_SIZE)
    assert iommu.ptcaches.l3.resident_entries == 0
    assert iommu.iotlb.contains(0x300000)


def test_stats_counters():
    iommu = make_iommu()
    warm(iommu, 0x400000, 1)
    iommu.invalidation_queue.invalidate_range(
        0x400000, PAGE_SIZE, preserve_ptcache=True
    )
    assert iommu.stats.invalidation_requests == 1
    assert iommu.stats.ptcache_invalidation_requests == 0
    iommu.invalidation_queue.flush_all()
    assert iommu.stats.invalidation_requests == 2
    assert iommu.stats.ptcache_invalidation_requests == 1


def test_total_cpu_accumulates():
    iommu = make_iommu(invalidation_cpu_ns=100.0)
    warm(iommu, 0x500000, 2)
    queue = iommu.invalidation_queue
    queue.invalidate_range(0x500000, PAGE_SIZE, preserve_ptcache=True)
    queue.invalidate_ptcache_range(0x500000, PAGE_SIZE)
    queue.flush_all()
    assert queue.total_cpu_ns == 300.0

"""Unit tests for the IO page table, including Fig 5 reclamation semantics."""

import pytest

from repro.iommu import IOPageTable, MappingError
from repro.iommu.addr import PAGE_SIZE, PTL4_PAGE_SIZE

MB = 1024 * 1024


def map_range(table, iova, pages, first_frame=100):
    table.map_range(iova, list(range(first_frame, first_frame + pages)))


class TestMapping:
    def test_map_and_lookup(self):
        table = IOPageTable()
        table.map_page(0x1000, 42)
        assert table.lookup(0x1000) == 42

    def test_lookup_uses_page_granularity(self):
        table = IOPageTable()
        table.map_page(0x1000, 42)
        assert table.lookup(0x1FFF) == 42
        assert table.lookup(0x2000) is None

    def test_unaligned_map_rejected(self):
        table = IOPageTable()
        with pytest.raises(MappingError):
            table.map_page(0x1001, 42)

    def test_double_map_rejected(self):
        table = IOPageTable()
        table.map_page(0x1000, 42)
        with pytest.raises(MappingError):
            table.map_page(0x1000, 43)

    def test_map_range_maps_consecutive_pages(self):
        table = IOPageTable()
        table.map_range(0x10000, [1, 2, 3])
        assert table.lookup(0x10000) == 1
        assert table.lookup(0x11000) == 2
        assert table.lookup(0x12000) == 3
        assert table.mapped_pages == 3

    def test_walk_returns_four_level_chain(self):
        table = IOPageTable()
        table.map_page(0x1000, 42)
        walk = table.walk(0x1000)
        assert walk.frame == 42
        assert [page.level for page in walk.pages] == [1, 2, 3, 4]

    def test_walk_unmapped_returns_none(self):
        table = IOPageTable()
        assert table.walk(0x1000) is None

    def test_intermediate_pages_shared_within_2mb(self):
        table = IOPageTable()
        table.map_page(0, 1)
        created_before = table.stats.pages_created
        table.map_page(PAGE_SIZE, 2)
        # Second page within the same 2 MB region creates no new PT pages.
        assert table.stats.pages_created == created_before

    def test_new_ptl4_page_at_2mb_boundary(self):
        table = IOPageTable()
        table.map_page(0, 1)
        created_before = table.stats.pages_created
        table.map_page(PTL4_PAGE_SIZE, 2)
        assert table.stats.pages_created == created_before + 1


class TestUnmapErrors:
    def test_unmap_unmapped_raises(self):
        table = IOPageTable()
        with pytest.raises(MappingError):
            table.unmap_page(0x1000)

    def test_unaligned_unmap_raises(self):
        table = IOPageTable()
        with pytest.raises(MappingError):
            table.unmap_range(0x1001, PAGE_SIZE)

    def test_zero_length_unmap_raises(self):
        table = IOPageTable()
        with pytest.raises(MappingError):
            table.unmap_range(0x1000, 0)


class TestReclamationFig5:
    """The paper's Fig 5: reclamation requires one covering operation."""

    def test_large_single_unmap_reclaims_covered_pages(self):
        # Fig 5b: 5 MB mapped; one unmap of the whole 5 MB reclaims the
        # two PT-L4 pages whose 2 MB ranges are fully covered.
        table = IOPageTable()
        base = 0x40000000  # 1 GB, 2 MB aligned
        map_range(table, base, 5 * MB // PAGE_SIZE)
        reclaimed = table.unmap_range(base, 5 * MB)
        l4 = [r for r in reclaimed if r.level == 4]
        assert len(l4) == 2
        assert {r.base_iova for r in l4} == {base, base + 2 * MB}

    def test_partial_unmap_does_not_reclaim(self):
        # Fig 5c: a 256 KB unmap covers no whole PT-L4 page.
        table = IOPageTable()
        base = 0x40000000
        map_range(table, base, 5 * MB // PAGE_SIZE)
        reclaimed = table.unmap_range(base, 256 * 1024)
        assert reclaimed == []

    def test_many_small_unmaps_never_reclaim(self):
        # Fig 5d: unmapping everything 256 KB at a time reclaims nothing,
        # even once the whole 5 MB is gone.
        table = IOPageTable()
        base = 0x40000000
        map_range(table, base, 5 * MB // PAGE_SIZE)
        for offset in range(0, 5 * MB, 256 * 1024):
            reclaimed = table.unmap_range(base + offset, 256 * 1024)
            assert reclaimed == []
        assert table.mapped_pages == 0
        assert table.stats.pages_reclaimed == 0

    def test_single_2mb_unmap_reclaims_exactly_that_leaf(self):
        table = IOPageTable()
        base = 0x40000000
        map_range(table, base, 2 * MB // PAGE_SIZE)
        reclaimed = table.unmap_range(base, 2 * MB)
        assert [(r.level, r.base_iova) for r in reclaimed] == [(4, base)]

    def test_unaligned_2mb_unmap_covers_no_page(self):
        # 2 MB starting mid-way through a PT-L4 page covers neither
        # neighbouring leaf page fully.
        table = IOPageTable()
        base = 0x40000000 + MB  # half-way into a 2 MB region
        map_range(table, base, 2 * MB // PAGE_SIZE)
        reclaimed = table.unmap_range(base, 2 * MB)
        assert reclaimed == []

    def test_1gb_unmap_reclaims_pt_l3_and_children(self):
        # Covering an entire PT-L3 page (1 GB) reclaims it and every
        # PT-L4 page underneath it.
        table = IOPageTable()
        base = 1 << 30
        # Map one page in each of three 2 MB regions, then the whole
        # 1 GB range cannot be unmapped (not all mapped) — so map a
        # full 1 GB sparsely is too big; instead map 4 MB at the start
        # and verify covering unmap of the *whole GB* is rejected
        # because unmapped pages exist.
        map_range(table, base, 4 * MB // PAGE_SIZE)
        with pytest.raises(MappingError):
            table.unmap_range(base, 1 << 30)

    def test_remap_after_reclaim_rebuilds_pages(self):
        table = IOPageTable()
        base = 0x40000000
        map_range(table, base, 2 * MB // PAGE_SIZE)
        table.unmap_range(base, 2 * MB)
        table.map_page(base, 7)
        assert table.lookup(base) == 7

    def test_reclaim_stats_by_level(self):
        table = IOPageTable()
        base = 0x40000000
        map_range(table, base, 2 * MB // PAGE_SIZE)
        table.unmap_range(base, 2 * MB)
        assert table.stats.reclaims_by_level[4] == 1
        assert table.stats.reclaims_by_level[3] == 0


class TestDescriptorGranularityNeverReclaims:
    def test_64_page_unmaps_preserve_pt_pages(self):
        """The F&S safety argument: descriptor-sized (256 KB) unmaps
        can never reclaim a PT page, so PTcaches never go stale."""
        table = IOPageTable()
        base = 0x80000000
        total_pages = 1024  # 4 MB worth of descriptors
        map_range(table, base, total_pages)
        for start in range(0, total_pages, 64):
            reclaimed = table.unmap_range(
                base + start * PAGE_SIZE, 64 * PAGE_SIZE
            )
            assert reclaimed == []
        assert table.stats.pages_reclaimed == 0

"""Unit tests for IOVA address arithmetic."""

from repro.iommu import addr


def test_page_constants():
    assert addr.PAGE_SIZE == 4096
    assert addr.IOVA_SPACE_SIZE == 1 << 48


def test_level_shifts_match_paper():
    # PT-L1 entries map from the 9 MS bits of the 48-bit IOVA.
    assert addr.LEVEL_SHIFTS[1] == 39
    assert addr.LEVEL_SHIFTS[2] == 30
    assert addr.LEVEL_SHIFTS[3] == 21
    assert addr.LEVEL_SHIFTS[4] == 12


def test_ptcache_coverage_matches_paper():
    # "each PTcache-L1 and PTcache-L2 entry covers 2^39 and 2^30 bytes".
    assert addr.ptcache_coverage_bytes(1) == 2**39
    assert addr.ptcache_coverage_bytes(2) == 2**30
    assert addr.ptcache_coverage_bytes(3) == 2**21


def test_ptl4_page_covers_2mb():
    # Reclaiming a PT-L4 page requires unmapping its whole 2 MB range.
    assert addr.PTL4_PAGE_SIZE == 2 * 1024 * 1024


def test_level_index_decomposition():
    iova = (3 << 39) | (5 << 30) | (7 << 21) | (9 << 12)
    assert addr.level_index(iova, 1) == 3
    assert addr.level_index(iova, 2) == 5
    assert addr.level_index(iova, 3) == 7
    assert addr.level_index(iova, 4) == 9


def test_level_index_masks_higher_bits():
    iova = (511 << 39) | (511 << 30)
    assert addr.level_index(iova, 2) == 511
    assert addr.level_index(iova, 3) == 0


def test_vpn():
    assert addr.vpn(0) == 0
    assert addr.vpn(4095) == 0
    assert addr.vpn(4096) == 1


def test_ptcache_key_shares_within_coverage():
    base = 123 << 21
    assert addr.ptcache_key(base, 3) == addr.ptcache_key(base + 2**21 - 1, 3)
    assert addr.ptcache_key(base, 3) != addr.ptcache_key(base + 2**21, 3)


def test_page_alignment_helpers():
    assert addr.page_align_down(4097) == 4096
    assert addr.page_align_up(4097) == 8192
    assert addr.page_align_up(4096) == 4096

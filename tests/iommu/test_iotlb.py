"""Unit tests for the IOTLB."""

import pytest

from repro.iommu import Iotlb
from repro.iommu.addr import PAGE_SIZE


def test_miss_then_hit():
    tlb = Iotlb(entries=8, ways=2)
    assert tlb.lookup(0x1000) is None
    tlb.insert(0x1000, 42)
    assert tlb.lookup(0x1000) == 42
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_offset_within_page_hits_same_entry():
    tlb = Iotlb(entries=8, ways=2)
    tlb.insert(0x1000, 42)
    assert tlb.lookup(0x1FFF) == 42


def test_lru_eviction_within_set():
    tlb = Iotlb(entries=4, ways=2)  # 2 sets
    # Pages 0 and 2 map to set 0 (even page numbers).
    tlb.insert(0 * PAGE_SIZE, 10)
    tlb.insert(2 * PAGE_SIZE, 20)
    # Touch page 0 so page 2 becomes LRU.
    assert tlb.lookup(0) == 10
    tlb.insert(4 * PAGE_SIZE, 30)  # evicts page 2
    assert tlb.lookup(2 * PAGE_SIZE) is None
    assert tlb.lookup(0) == 10
    assert tlb.evictions == 1


def test_set_isolation():
    tlb = Iotlb(entries=4, ways=2)
    # Odd pages land in set 1 and cannot evict even pages.
    tlb.insert(0 * PAGE_SIZE, 1)
    tlb.insert(1 * PAGE_SIZE, 2)
    tlb.insert(3 * PAGE_SIZE, 3)
    tlb.insert(5 * PAGE_SIZE, 4)  # evicts page 1, not page 0
    assert tlb.lookup(0) == 1
    assert tlb.lookup(1 * PAGE_SIZE) is None


def test_invalidate_page():
    tlb = Iotlb(entries=8, ways=2)
    tlb.insert(0x5000, 7)
    assert tlb.invalidate_page(0x5000)
    assert not tlb.invalidate_page(0x5000)
    assert tlb.lookup(0x5000) is None


def test_invalidate_range_drops_all_covered():
    tlb = Iotlb(entries=64, ways=4)
    for page in range(10):
        tlb.insert(page * PAGE_SIZE, page)
    dropped = tlb.invalidate_range(2 * PAGE_SIZE, 3 * PAGE_SIZE)
    assert dropped == 3
    assert tlb.lookup(1 * PAGE_SIZE) == 1
    assert tlb.lookup(2 * PAGE_SIZE) is None
    assert tlb.lookup(4 * PAGE_SIZE) is None
    assert tlb.lookup(5 * PAGE_SIZE) == 5


def test_invalidate_huge_range_uses_scan_path():
    tlb = Iotlb(entries=8, ways=2)
    tlb.insert(0x1000, 1)
    tlb.insert(0x100000, 2)
    dropped = tlb.invalidate_range(0, 1 << 30)
    assert dropped == 2
    assert tlb.resident_entries == 0


def test_flush_clears_everything():
    tlb = Iotlb(entries=8, ways=2)
    for page in range(4):
        tlb.insert(page * PAGE_SIZE, page)
    assert tlb.flush() == 4
    assert tlb.resident_entries == 0


def test_reinsert_updates_frame():
    tlb = Iotlb(entries=8, ways=2)
    tlb.insert(0x1000, 1)
    tlb.insert(0x1000, 2)
    assert tlb.lookup(0x1000) == 2
    assert tlb.resident_entries == 1


def test_geometry_validation():
    with pytest.raises(ValueError):
        Iotlb(entries=10, ways=4)
    with pytest.raises(ValueError):
        Iotlb(entries=0, ways=1)


def test_miss_rate():
    tlb = Iotlb(entries=8, ways=2)
    tlb.lookup(0x1000)
    tlb.insert(0x1000, 1)
    tlb.lookup(0x1000)
    assert tlb.miss_rate == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Huge-entry interaction with page-granule invalidation (regression:
# invalidate_page used to leave a covering 2 MB entry resident).
# ---------------------------------------------------------------------------
def test_invalidate_page_drops_covering_huge_entry():
    tlb = Iotlb(entries=8, ways=2)
    tlb.insert_huge(0, 1000)
    assert tlb.lookup(0x3000) == 1003
    # A 4 KB-granule invalidation inside the huge region must drop the
    # covering 2 MB entry: afterwards no address in the region hits.
    assert tlb.invalidate_page(0x3000)
    assert tlb.lookup(0x3000) is None
    assert tlb.lookup(0x0) is None
    assert tlb.lookup(0x1FF000) is None
    assert not tlb.contains(0x3000)


def test_invalidate_page_drops_both_4k_and_huge():
    tlb = Iotlb(entries=8, ways=2)
    tlb.insert(0x3000, 7)
    tlb.insert_huge(0, 1000)
    assert tlb.invalidate_page(0x3000)
    assert tlb.invalidations == 2
    assert tlb.resident_entries == 0


def test_invalidate_page_misses_other_huge_regions():
    tlb = Iotlb(entries=8, ways=2)
    tlb.insert_huge(0, 1000)
    tlb.insert_huge(2 << 20, 2000)
    assert tlb.invalidate_page(0x3000)
    assert tlb.lookup(0x3000) is None
    # The neighbouring region's entry must survive.
    assert tlb.lookup((2 << 20) + 0x1000) == 2001


def test_invalidate_range_mixed_4k_and_huge():
    tlb = Iotlb(entries=64, ways=4)
    # 4 KB entries straddling the range boundary plus two huge regions.
    tlb.insert(0x1000, 1)
    tlb.insert((2 << 20) + 0x1000, 2)
    tlb.insert_huge(0, 1000)
    tlb.insert_huge(2 << 20, 2000)
    dropped = tlb.invalidate_range(0, 2 << 20)
    # First huge region + its 4 KB entry; second region untouched.
    assert dropped == 2
    assert tlb.lookup(0x1000) is None
    assert tlb.lookup((2 << 20) + 0x1000) == 2
    assert tlb.contains(2 << 20)


def test_invalidate_range_partial_huge_overlap_drops_entry():
    tlb = Iotlb(entries=8, ways=2)
    tlb.insert_huge(0, 1000)
    # Any overlap with the 2 MB region drops the whole entry (a huge
    # translation cannot be partially invalidated).
    assert tlb.invalidate_range(0x1FF000, PAGE_SIZE) == 1
    assert tlb.lookup(0) is None

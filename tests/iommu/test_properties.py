"""Property-based tests (hypothesis) for the IOMMU data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iommu import IOPageTable, Iommu, IommuConfig, Iotlb, PtCache
from repro.iommu.addr import PAGE_SIZE


# ----------------------------------------------------------------------
# IOTLB vs a reference model
# ----------------------------------------------------------------------
class ReferenceLru:
    """Straightforward per-set LRU reference for the IOTLB."""

    def __init__(self, sets, ways):
        self.sets = [dict() for _ in range(sets)]
        self.ways = ways

    def lookup(self, page):
        entry_set = self.sets[page % len(self.sets)]
        if page in entry_set:
            value = entry_set.pop(page)
            entry_set[page] = value
            return value
        return None

    def insert(self, page, frame):
        entry_set = self.sets[page % len(self.sets)]
        if page in entry_set:
            del entry_set[page]
        elif len(entry_set) >= self.ways:
            del entry_set[next(iter(entry_set))]
        entry_set[page] = frame

    def invalidate(self, page):
        entry_set = self.sets[page % len(self.sets)]
        entry_set.pop(page, None)


@st.composite
def iotlb_ops(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["lookup", "insert", "invalidate"]),
                st.integers(min_value=0, max_value=40),
            ),
            max_size=200,
        )
    )
    return ops


@given(iotlb_ops())
@settings(max_examples=80, deadline=None)
def test_iotlb_matches_reference_lru(ops):
    tlb = Iotlb(entries=16, ways=4)
    reference = ReferenceLru(sets=4, ways=4)
    for op, page in ops:
        iova = page * PAGE_SIZE
        if op == "lookup":
            assert tlb.lookup(iova) == reference.lookup(page)
        elif op == "insert":
            tlb.insert(iova, page + 1000)
            reference.insert(page, page + 1000)
        else:
            tlb.invalidate_page(iova)
            reference.invalidate(page)


@given(st.lists(st.integers(min_value=0, max_value=500), max_size=300))
@settings(max_examples=50, deadline=None)
def test_iotlb_never_exceeds_capacity(pages):
    tlb = Iotlb(entries=32, ways=8)
    for page in pages:
        tlb.insert(page * PAGE_SIZE, page)
        assert tlb.resident_entries <= 32


# ----------------------------------------------------------------------
# PTcache capacity and coverage
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=300), max_size=300))
@settings(max_examples=50, deadline=None)
def test_ptcache_never_exceeds_capacity(regions):
    cache = PtCache(level=3, entries=16)
    for region in regions:
        cache.insert(region << 21, f"page{region}")
        assert cache.resident_entries <= 16


@given(
    st.lists(
        st.integers(min_value=0, max_value=15),
        min_size=1,
        max_size=16,
        unique=True,
    )
)
@settings(max_examples=30, deadline=None)
def test_ptcache_within_capacity_never_evicts(regions):
    cache = PtCache(level=3, entries=16)
    for region in regions:
        cache.insert(region << 21, region)
    for region in regions:
        assert cache.lookup(region << 21) == region
    assert cache.evictions == 0


# ----------------------------------------------------------------------
# Page table invariants under map/unmap churn
# ----------------------------------------------------------------------
@st.composite
def map_unmap_ops(draw):
    ops = []
    mapped = set()
    count = draw(st.integers(min_value=1, max_value=120))
    for _ in range(count):
        if mapped and draw(st.booleans()):
            page = draw(st.sampled_from(sorted(mapped)))
            mapped.remove(page)
            ops.append(("unmap", page))
        else:
            page = draw(st.integers(min_value=0, max_value=2000))
            if page not in mapped:
                mapped.add(page)
                ops.append(("map", page))
    return ops


@given(map_unmap_ops())
@settings(max_examples=60, deadline=None)
def test_page_table_lookup_consistency(ops):
    """After any churn, exactly the currently mapped pages translate."""
    table = IOPageTable()
    live = {}
    for op, page in ops:
        iova = page * PAGE_SIZE
        if op == "map":
            table.map_page(iova, page + 7)
            live[page] = page + 7
        else:
            table.unmap_page(iova)
            del live[page]
    for page, frame in live.items():
        assert table.lookup(page * PAGE_SIZE) == frame
    assert table.mapped_pages == len(live)
    # A sample of unmapped pages does not translate.
    for page in range(0, 2000, 97):
        if page not in live:
            assert table.lookup(page * PAGE_SIZE) is None


@given(map_unmap_ops())
@settings(max_examples=40, deadline=None)
def test_page_granular_unmaps_never_reclaim(ops):
    """Fig 5d as a property: single-page unmaps never reclaim PT pages
    no matter the interleaving."""
    table = IOPageTable()
    for op, page in ops:
        iova = page * PAGE_SIZE
        if op == "map":
            table.map_page(iova, 1)
        else:
            reclaimed = table.unmap_page(iova)
            assert reclaimed == []
    assert table.stats.pages_reclaimed == 0


# ----------------------------------------------------------------------
# Translation cost invariants
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.integers(min_value=0, max_value=63),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=40, deadline=None)
def test_memory_reads_bounded_one_to_four(accesses):
    """Every walk costs between 1 and 4 reads; IOTLB hits cost 0; and
    the paper's accounting identity M = iotlb + m1 + m2 + m3 holds."""
    iommu = Iommu(IommuConfig())
    base = 0x5000_0000
    for page in range(64):
        iommu.map_page(base + page * PAGE_SIZE, page)
    for page in accesses:
        result = iommu.translate(base + page * PAGE_SIZE)
        if result.iotlb_hit:
            assert result.memory_reads == 0
        else:
            assert 1 <= result.memory_reads <= 4
    stats = iommu.stats
    assert stats.memory_reads == sum(
        stats.ptcache_counted_misses.values()
    ) + (
        stats.iotlb_misses  # each walk reads at least the PT-L4 entry
    )

"""Unit tests for 2 MB huge mappings (the §5 extension)."""

import pytest

from repro.iommu import Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE, PTL4_PAGE_SIZE
from repro.iommu.pagetable import HugeMapping, IOPageTable, MappingError

BASE = 0x40000000  # 2 MB aligned


class TestPageTableHuge:
    def test_map_and_walk(self):
        table = IOPageTable()
        table.map_huge(BASE, 9000)
        walk = table.walk(BASE + 5 * PAGE_SIZE)
        assert walk.huge
        assert walk.frame == 9005
        assert [p.level for p in walk.pages] == [1, 2, 3]

    def test_counts_512_pages(self):
        table = IOPageTable()
        table.map_huge(BASE, 9000)
        assert table.mapped_pages == 512

    def test_unaligned_rejected(self):
        table = IOPageTable()
        with pytest.raises(MappingError):
            table.map_huge(BASE + PAGE_SIZE, 9000)

    def test_conflict_with_4k_mapping_rejected(self):
        table = IOPageTable()
        table.map_page(BASE, 1)
        with pytest.raises(MappingError):
            table.map_huge(BASE, 9000)

    def test_full_unmap_removes_leaf_without_reclaim(self):
        """Removing a huge leaf frees no page-table page, so PTcache
        preservation stays safe."""
        table = IOPageTable()
        table.map_huge(BASE, 9000)
        reclaimed = table.unmap_range(BASE, PTL4_PAGE_SIZE)
        assert reclaimed == []
        assert table.walk(BASE) is None
        assert table.mapped_pages == 0

    def test_partial_unmap_rejected(self):
        table = IOPageTable()
        table.map_huge(BASE, 9000)
        with pytest.raises(MappingError):
            table.unmap_range(BASE, PAGE_SIZE)
        with pytest.raises(MappingError):
            table.unmap_range(BASE + PTL4_PAGE_SIZE // 2, PTL4_PAGE_SIZE // 2)

    def test_remap_after_unmap(self):
        table = IOPageTable()
        table.map_huge(BASE, 9000)
        table.unmap_range(BASE, PTL4_PAGE_SIZE)
        table.map_huge(BASE, 7000)
        assert table.walk(BASE).frame == 7000

    def test_huge_and_4k_coexist_in_different_regions(self):
        table = IOPageTable()
        table.map_huge(BASE, 9000)
        table.map_page(BASE + PTL4_PAGE_SIZE, 42)
        assert table.walk(BASE).huge
        assert not table.walk(BASE + PTL4_PAGE_SIZE).huge


class TestIommuHugeTranslation:
    def make(self):
        iommu = Iommu(IommuConfig())
        iommu.page_table.map_huge(BASE, 9000)
        return iommu

    def test_cold_walk_costs_three_reads(self):
        """Huge walks end at PT-L3: at most 3 reads, never 4."""
        iommu = self.make()
        result = iommu.translate(BASE)
        assert result.memory_reads == 3
        assert result.frame == 9000

    def test_one_entry_covers_2mb(self):
        iommu = self.make()
        iommu.translate(BASE)
        for page in (1, 17, 511):
            result = iommu.translate(BASE + page * PAGE_SIZE)
            assert result.iotlb_hit
            assert result.frame == 9000 + page

    def test_upper_ptcache_shortens_huge_walk_to_one_read(self):
        iommu = self.make()
        iommu.translate(BASE)
        iommu.invalidation_queue.invalidate_range(
            BASE, PTL4_PAGE_SIZE, preserve_ptcache=True
        )
        result = iommu.translate(BASE)
        assert not result.iotlb_hit
        assert result.memory_reads == 1  # PTcache-L2 hit -> PT-L3 read

    def test_ranged_invalidation_drops_huge_entry(self):
        iommu = self.make()
        iommu.translate(BASE)
        assert iommu.iotlb.contains(BASE + 100 * PAGE_SIZE)
        iommu.iotlb.invalidate_range(BASE, PTL4_PAGE_SIZE)
        assert not iommu.iotlb.contains(BASE)

    def test_huge_entries_lru_bounded(self):
        iommu = Iommu(IommuConfig())
        capacity = iommu.iotlb.huge_entries
        for index in range(capacity + 8):
            base = BASE + index * PTL4_PAGE_SIZE
            iommu.page_table.map_huge(base, 10_000 + index * 512)
            iommu.translate(base)
        assert len(iommu.iotlb._huge) == capacity

    def test_m3_never_counted_for_huge_walks(self):
        iommu = self.make()
        iommu.translate(BASE)
        assert iommu.stats.ptcache_counted_misses[3] == 0
        assert iommu.stats.ptcache_counted_misses[1] == 1

"""The IOMMU fault-reporting queue and the hard-abort translation path.

The fault queue is strictly opt-in (`IommuConfig(fault_queue=True)`):
with it attached, a DMA to an unmapped IOVA is aborted and logged like
real hardware does; without it, the same access raises `DmaFault` —
the safety tests' violation detector — exactly as before.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec, faulted
from repro.iommu import DmaFault, Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE
from repro.iommu.faultq import FaultReportingQueue


# ---------------------------------------------------------------------------
# The queue itself
# ---------------------------------------------------------------------------
def test_report_returns_abort_latency_and_logs_record():
    queue = FaultReportingQueue(capacity=4, abort_latency_ns=800.0)
    assert queue.report(0x4000, "rx", "unmapped") == 800.0
    assert queue.reported == 1
    assert queue.depth == 1
    record = queue.records[0]
    assert record.iova == 0x4000
    assert record.source == "rx"
    assert record.reason == "unmapped"


def test_overflow_drops_but_counts():
    queue = FaultReportingQueue(capacity=2)
    for offset in range(5):
        queue.report(0x1000 * offset, "rx", "unmapped")
    assert queue.reported == 5
    assert queue.depth == 2  # bounded: a storm cannot grow memory
    assert queue.overflowed == 3


def test_drain_consumes_oldest_first():
    queue = FaultReportingQueue(capacity=4)
    queue.report(0x1000, "rx", "unmapped")
    queue.report(0x2000, "tx", "storm")
    records = queue.drain()
    assert [record.iova for record in records] == [0x1000, 0x2000]
    assert queue.depth == 0
    assert queue.drained == 2
    assert queue.drain() == []


def test_clock_binding_stamps_records():
    queue = FaultReportingQueue(capacity=4)
    queue.report(0x1000, "rx", "unmapped")  # unbound: stamped 0.0
    queue.bind_clock(lambda: 42_500.0)
    queue.report(0x2000, "rx", "unmapped")
    assert queue.records[0].time_ns == 0.0
    assert queue.records[1].time_ns == 42_500.0
    assert "iova=0x2000" in queue.records[1].format()


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FaultReportingQueue(capacity=0)


# ---------------------------------------------------------------------------
# The Iommu abort path
# ---------------------------------------------------------------------------
def test_unmapped_dma_aborts_with_fault_queue():
    iommu = Iommu(IommuConfig(fault_queue=True))
    result = iommu.translate(0x9000, source="rx")
    assert result.aborted
    assert iommu.consume_abort()
    assert not iommu.consume_abort()  # one-shot flag
    assert iommu.stats.faults == 1
    assert iommu.fault_queue.reported == 1
    assert iommu.fault_queue.records[0].reason == "unmapped"


def test_unmapped_dma_raises_without_fault_queue():
    iommu = Iommu()
    assert iommu.fault_queue is None
    with pytest.raises(DmaFault):
        iommu.translate(0x9000, source="rx")


def test_mapped_dma_does_not_abort():
    iommu = Iommu(IommuConfig(fault_queue=True))
    iommu.map_page(0x5000, 7)
    result = iommu.translate(0x5000)
    assert not result.aborted
    assert result.frame == 7
    assert not iommu.consume_abort()
    assert iommu.fault_queue.reported == 0


def test_fault_storm_aborts_valid_translation():
    plan = FaultPlan(
        seed=11,
        specs=(FaultSpec("iommu", "fault-storm", probability=1.0),),
    )
    with faulted(plan):
        iommu = Iommu(IommuConfig(fault_queue=True))
    iommu.map_page(0x5000, 7)
    result = iommu.translate(0x5000)
    # The mapping is perfectly valid; the reporting path kills the
    # transaction anyway and logs a storm record.
    assert result.aborted
    assert iommu.consume_abort()
    assert iommu.fault_queue.records[0].reason == "storm"


def test_fault_storm_needs_fault_queue_to_fire():
    # Without the hard-abort path the storm injector is ignored: the
    # default configuration must keep raise-on-violation semantics.
    plan = FaultPlan(
        seed=11,
        specs=(FaultSpec("iommu", "fault-storm", probability=1.0),),
    )
    with faulted(plan):
        iommu = Iommu()
    iommu.map_page(0x5000, 7)
    result = iommu.translate(0x5000)
    assert not result.aborted
    assert result.frame == 7


# ---------------------------------------------------------------------------
# Invalidation-queue re-arm (the wedge-clearing operation)
# ---------------------------------------------------------------------------
def test_rearm_counts_and_charges_one_quantum():
    iommu = Iommu(IommuConfig(invalidation_cpu_ns=250.0))
    queue = iommu.invalidation_queue
    before = queue.total_cpu_ns
    assert queue.rearm() == 250.0
    assert queue.rearms == 1
    assert queue.total_cpu_ns == before + 250.0


def test_rearm_clears_a_latched_wedge():
    plan = FaultPlan(
        seed=5,
        specs=(FaultSpec("invalidation", "wedge-invq"),),
    )
    with faulted(plan) as runtime:
        iommu = Iommu(IommuConfig(invalidation_cpu_ns=250.0))
    queue = iommu.invalidation_queue
    iommu.map_page(0x8000, 3)
    iommu.translate(0x8000)
    result = queue.submit_invalidation(0x8000, PAGE_SIZE, True)
    assert not result.completed
    assert runtime.unrecovered_wedges() == 1
    queue.rearm()
    assert runtime.unrecovered_wedges() == 0
    result = queue.submit_invalidation(0x8000, PAGE_SIZE, True)
    assert result.completed

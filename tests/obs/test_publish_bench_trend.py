"""Bench-history trend: rows -> chart data; history round-trips."""

import json

from repro.obs import bench
from repro.obs.publish.bench_trend import (
    trend_artifact,
    trend_from_history_file,
)


def test_trend_from_synthetic_history(make_history):
    path = make_history(n_rows=3)
    artifact = trend_from_history_file(str(path))
    assert artifact is not None
    (panel,) = artifact.panels
    assert [s.label for s in panel.series] == [
        "iperf_off", "sweep_serial",
    ]
    for series in panel.series:
        assert [x for x, _ in series.points] == [0.0, 1.0, 2.0]
        rates = [y for _, y in series.points]
        assert rates == sorted(rates)  # synthetic history improves
    assert panel.xticklabels is not None
    assert len(panel.xticklabels) == 3
    assert all(len(tick) == 8 for tick in panel.xticklabels)
    assert "3 bench runs" in artifact.footnote


def test_trend_missing_file_returns_none(tmp_path):
    assert trend_from_history_file(str(tmp_path / "nope.jsonl")) is None


def test_trend_skips_malformed_lines(make_history):
    path = make_history(n_rows=2)
    with open(path, "a") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps({"schema": "wrong/1"}) + "\n")
    artifact = trend_from_history_file(str(path))
    assert artifact is not None
    assert len(artifact.panels[0].xticklabels) == 2


def test_trend_benchmark_missing_in_one_row(make_history):
    path = make_history(n_rows=2)
    rows = bench.load_history(str(path))
    del rows[0]["benchmarks"]["sweep_serial"]
    artifact = trend_artifact(rows)
    sweep = next(
        s
        for s in artifact.panels[0].series
        if s.label == "sweep_serial"
    )
    assert [x for x, _ in sweep.points] == [1.0]  # only row 2


def test_history_row_roundtrip(tmp_path):
    doc = {
        "schema": bench.SCHEMA,
        "provenance": {
            "git_sha": "a" * 40,
            "utc": "2026-08-08T00:00:00Z",
            "scale": "quick",
        },
        "benchmarks": [
            {
                "name": "iperf_off",
                "events_per_wall_s": 1000.0,
                "events": 10,
                "wall_s": 0.01,
            }
        ],
        "total_wall_s": 0.01,
    }
    path = tmp_path / "hist.jsonl"
    row = bench.append_history(doc, str(path))
    assert row["schema"] == bench.HISTORY_SCHEMA
    assert row["git_sha"] == "a" * 40
    loaded = bench.load_history(str(path))
    assert loaded == [row]
    # Re-appending the identical document (same sha, same numbers) is
    # a no-op: the trend keeps one row per distinct bench result.
    assert bench.append_history(doc, str(path)) is None
    assert len(bench.load_history(str(path))) == 1
    # A changed number is a new result and does accumulate.
    changed = json.loads(json.dumps(doc))
    changed["benchmarks"][0]["events_per_wall_s"] = 2000.0
    assert bench.append_history(changed, str(path)) is not None
    assert len(bench.load_history(str(path))) == 2
    # ... as does the same numbers under a different sha.
    moved = json.loads(json.dumps(changed))
    moved["provenance"]["git_sha"] = "b" * 40
    assert bench.append_history(moved, str(path)) is not None
    assert len(bench.load_history(str(path))) == 3


def test_history_row_without_provenance_is_anchored_unknown():
    row = bench.history_row({"benchmarks": [], "total_wall_s": 0.0})
    assert row["git_sha"] == "unknown"
    assert row["benchmarks"] == {}


def test_committed_history_has_two_parsable_rows():
    # The repo ships a seeded history (the acceptance gallery needs
    # a trend covering >= 2 runs); keep it parsable.
    import pathlib

    committed = (
        pathlib.Path(__file__).resolve().parents[2]
        / "bench_history.jsonl"
    )
    rows = bench.load_history(str(committed))
    assert len(rows) >= 2
    artifact = trend_artifact(rows)
    assert artifact.panels[0].series

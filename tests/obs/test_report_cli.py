"""CLI surface: ``repro report``, ``repro bench`` and the global --trace."""

import json

import pytest

from repro.cli import main
from repro.obs import bench


@pytest.fixture()
def chdir_tmp(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_report_unknown_figure():
    assert main(["report", "nope"]) == 2


def test_report_writes_metrics_and_trace(chdir_tmp, capsys):
    metrics = chdir_tmp / "m.json"
    trace = chdir_tmp / "t.json"
    status = main(
        [
            "report",
            "fig12",
            "--out",
            str(metrics),
            "--trace",
            str(trace),
            "--interval-ns",
            "200000",
        ]
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "translations" in out  # summary table rendered

    doc = json.loads(metrics.read_text())
    assert doc["schema"] == "repro.obs/1"
    assert len(doc["phases"]) >= 2  # one per ablation mode
    labels = [phase["label"] for phase in doc["phases"]]
    assert any("Fig 12" in label for label in labels)
    strict = doc["phases"][0]
    assert strict["final"]["iommu.translations"] > 0
    assert len(strict["samples"]["t_ns"]) > 0

    trace_doc = json.loads(trace.read_text())
    events = trace_doc["traceEvents"]
    assert trace_doc["displayTimeUnit"] == "ns"
    assert any(e["ph"] == "X" and e["name"] == "dma" for e in events)
    # Phases land in distinct Chrome-trace processes.
    assert len({e["pid"] for e in events}) >= 2


def test_global_trace_flag(chdir_tmp):
    trace = chdir_tmp / "run_trace.json"
    assert main(["fig12", "--trace", str(trace)]) == 0
    doc = json.loads(trace.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_bench_writes_and_checks(chdir_tmp, capsys):
    out = chdir_tmp / "BENCH_sim.json"
    assert main(["bench", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert bench.check_schema(doc) == []
    assert doc["schema"] == "repro.bench/1"
    assert {b["mode"] for b in doc["benchmarks"]} == {
        "off", "strict", "fns", "sweep",
    }
    for point in doc["benchmarks"]:
        assert point["wall_s"] > 0
        assert point["events"] > 0
    # The result-cache pair: identical deterministic work, warm served
    # entirely from the store.
    by_name = {b["name"]: b for b in doc["benchmarks"]}
    cold = by_name["reproduce_cold"]
    warm = by_name["reproduce_warm"]
    assert warm["events"] == cold["events"]
    assert warm["wall_s"] < cold["wall_s"]
    assert main(["bench", "--check", str(out)]) == 0
    assert "schema OK" in capsys.readouterr().out


def test_bench_check_rejects_malformed(chdir_tmp, capsys):
    bad = chdir_tmp / "bad.json"
    bad.write_text(json.dumps({"schema": "repro.bench/1", "benchmarks": []}))
    assert main(["bench", "--check", str(bad)]) == 1
    assert "schema problem" in capsys.readouterr().err


def test_check_schema_catches_field_problems():
    good = {
        "schema": "repro.bench/1",
        "benchmarks": [
            {
                "name": "x",
                "mode": "off",
                "flows": 1,
                "wall_s": 0.5,
                "sim_ns": 1000.0,
                "events": 10,
                "events_per_wall_s": 20.0,
                "sim_ns_per_wall_s": 2000.0,
            }
        ],
        "total_wall_s": 0.5,
    }
    assert bench.check_schema(good) == []
    missing = json.loads(json.dumps(good))
    del missing["benchmarks"][0]["events"]
    assert any("events" in p for p in bench.check_schema(missing))
    negative = json.loads(json.dumps(good))
    negative["benchmarks"][0]["wall_s"] = 0
    assert any("wall_s" in p for p in bench.check_schema(negative))
    assert bench.check_schema([]) != []
    assert any(
        "schema" in p for p in bench.check_schema({"schema": "other"})
    )

"""End-to-end: an observed run produces metrics, samples and spans."""

from repro.apps.iperf import run_iperf
from repro.obs import MetricsRegistry, SpanTracer, observed


def _observed_run(mode="strict", **registry_kwargs):
    registry = MetricsRegistry(**registry_kwargs)
    with observed(registry):
        run_iperf(
            mode, flows=2, warmup_ns=200_000.0, measure_ns=500_000.0
        )
    return registry


def test_subsystems_register_and_count():
    registry = _observed_run()
    final = registry.report()["phases"][0]["final"]
    assert final["iommu.translations"] > 0
    assert final["iotlb.hits"] + final["iotlb.misses"] > 0
    assert final["pcie.rx.bytes"] > 0
    assert final["nic.arrived_packets"] > 0
    assert final["host.rx_data_segments"] > 0
    assert final["switch.port.delivered_bytes"] > 0
    assert any(name.startswith("dctcp.flow") for name in final)
    assert any(name.startswith("ptcache.l3") for name in final)
    assert "driver.degraded_flushes" in final
    assert "invq.cpu_ns" in final
    assert "iova.rcache.allocs" in final


def test_sampler_records_time_series():
    registry = _observed_run(sample_interval_ns=100_000.0)
    phase = registry.report()["phases"][0]
    times = phase["samples"]["t_ns"]
    assert len(times) >= 3
    assert times == sorted(times)
    series = phase["samples"]["series"]["iommu.translations"]
    assert len(series) == len(times)
    # Counters sampled over time are monotonic.
    values = [v for v in series if v is not None]
    assert values == sorted(values)


def test_tracer_collects_dma_walk_and_invalidation_spans():
    registry = _observed_run(tracer=SpanTracer())
    spans = [e for e in registry.tracer.events if e["ph"] == "X"]
    names = {e["name"] for e in spans}
    assert "dma" in names
    assert "walk" in names
    assert "invalidation" in names
    for span in spans:
        assert span["ts"] >= 0.0
        assert span["dur"] >= 0.0


def test_off_mode_registers_without_iommu_metrics():
    registry = _observed_run(mode="off")
    final = registry.report()["phases"][0]["final"]
    assert "iommu.translations" not in final
    assert final["pcie.rx.bytes"] > 0

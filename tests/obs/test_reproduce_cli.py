"""``repro reproduce`` / ``repro diff``: report generation and gating."""

import copy
import json

import pytest

from repro.cli import main
from repro.experiments import FigureResult, RunScale
from repro.obs.expect import FigureSpec, is_zero, wins
from repro.obs.expect.diffing import DiffResult, diff_documents
from repro.obs.expect.reproduce import (
    REPORT_SCHEMA,
    default_runners,
    provenance,
    run_reproduce,
)

MICRO = RunScale(
    name="micro",
    warmup_ns=1_000_000.0,
    measure_ns=2_000_000.0,
    latency_measure_ns=4_000_000.0,
)


@pytest.fixture()
def chdir_tmp(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def stub_runner(scale):
    result = FigureResult("Fig S", "stub", ["mode", "x", "gbps", "drop%"])
    result.rows = [
        ["off", 1, 100.0, 0.0],
        ["strict", 1, 60.0, 2.0],
    ]
    return result


GOOD_SPEC = FigureSpec(
    figure="stub",
    title="stub figure",
    expectations=(
        is_zero("drop%", "off", claim="off never drops", paper="0"),
        wins("off", "strict", "gbps", claim="off beats strict"),
    ),
)

BROKEN_SPEC = FigureSpec(
    figure="stub",
    title="stub figure",
    expectations=(
        is_zero("drop%", "strict", claim="strict never drops", paper="0"),
    ),
)


def reproduce(tmp_path, spec, **kwargs):
    return run_reproduce(
        ["stub"],
        scale=MICRO,
        report_path=str(tmp_path / "REPORT.md"),
        json_path=str(tmp_path / "report.json"),
        runners={"stub": stub_runner},
        specs={"stub": spec},
        echo=lambda _: None,
        **kwargs,
    )


class TestRunReproduce:
    def test_passing_claims_exit_zero_and_write_reports(self, tmp_path):
        assert reproduce(tmp_path, GOOD_SPEC) == 0
        doc = json.loads((tmp_path / "report.json").read_text())
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["summary"] == {
            "claims": 2, "passed": 2, "failed": 0, "skipped": 0,
        }
        figure = doc["figures"][0]
        assert figure["figure"] == "stub"
        assert figure["claims"][0]["status"] == "pass"
        assert figure["rows"][0] == ["off", 1, 100.0, 0.0]

        md = (tmp_path / "REPORT.md").read_text()
        assert "paper claims vs this reproduction" in md
        assert "✓" in md and "✗" not in md
        assert "off beats strict" in md
        assert "2/2 pass" in md

    def test_provenance_stamped(self, tmp_path):
        reproduce(tmp_path, GOOD_SPEC, seed=7)
        stamped = json.loads((tmp_path / "report.json").read_text())[
            "provenance"
        ]
        assert set(stamped) == {
            "git_sha", "git_dirty", "scale", "seed", "figures",
            "config_hash",
        }
        assert stamped["git_dirty"] in (True, False, None)
        assert stamped["scale"] == "micro"
        assert stamped["seed"] == 7
        assert stamped["figures"] == ["stub"]
        assert len(stamped["config_hash"]) == 16

    def test_broken_spec_exits_nonzero(self, tmp_path):
        # The acceptance check: deliberately violate a claim and the
        # reproduce gate must fail while still writing both reports.
        assert reproduce(tmp_path, BROKEN_SPEC) == 1
        doc = json.loads((tmp_path / "report.json").read_text())
        assert doc["summary"]["failed"] == 1
        assert "✗" in (tmp_path / "REPORT.md").read_text()

    def test_unknown_figure_exits_two(self, tmp_path):
        status = run_reproduce(
            ["nope"],
            scale=MICRO,
            report_path=str(tmp_path / "R.md"),
            json_path=str(tmp_path / "r.json"),
            runners={"stub": stub_runner},
            specs={"stub": GOOD_SPEC},
            echo=lambda _: None,
        )
        assert status == 2

    def test_config_hash_tracks_spec_and_seed(self):
        base = provenance(["stub"], MICRO, 1, {"stub": GOOD_SPEC})
        reseeded = provenance(["stub"], MICRO, 2, {"stub": GOOD_SPEC})
        respecced = provenance(["stub"], MICRO, 1, {"stub": BROKEN_SPEC})
        assert base["config_hash"] != reseeded["config_hash"]
        assert base["config_hash"] != respecced["config_hash"]
        again = provenance(["stub"], MICRO, 1, {"stub": GOOD_SPEC})
        assert base["config_hash"] == again["config_hash"]

    def test_default_runners_cover_all_specs(self):
        from repro.obs.expectations import SPECS

        assert set(default_runners()) == set(SPECS)


class TestReproduceCli:
    def test_cli_runs_figure_and_writes_reports(self, chdir_tmp, capsys):
        status = main(
            [
                "reproduce",
                "--figures",
                "fig12",
                "--out",
                "R.md",
                "--json",
                "r.json",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "claims pass" in out
        doc = json.loads((chdir_tmp / "r.json").read_text())
        assert doc["provenance"]["figures"] == ["fig12"]
        assert doc["summary"]["failed"] == 0
        assert "Fig 12" in (chdir_tmp / "R.md").read_text()

    def test_cli_rejects_unknown_figure(self, chdir_tmp):
        assert main(["reproduce", "--figures", "fig99"]) == 2


def make_report_doc(status="pass"):
    return {
        "schema": REPORT_SCHEMA,
        "provenance": {"config_hash": "abcd"},
        "figures": [
            {
                "figure": "stub",
                "claims": [
                    {"claim": "off never drops", "status": status},
                    {"claim": "off beats strict", "status": "pass"},
                ],
            }
        ],
    }


def make_bench_doc(wall=1.0):
    return {
        "schema": "repro.bench/1",
        "benchmarks": [
            {"name": "fig2[strict,20]", "wall_s": wall},
            {"name": "fig2[off,20]", "wall_s": 0.5},
        ],
        "total_wall_s": wall + 0.5,
    }


class TestDiffDocuments:
    def test_identical_reports_ok(self):
        result = diff_documents(make_report_doc(), make_report_doc())
        assert result.ok
        assert "no differences" in result.format()

    def test_pass_to_fail_is_regression(self):
        result = diff_documents(
            make_report_doc("pass"), make_report_doc("fail")
        )
        assert not result.ok
        assert any("pass -> fail" in r for r in result.regressions)

    def test_fail_to_pass_is_improvement(self):
        result = diff_documents(
            make_report_doc("fail"), make_report_doc("pass")
        )
        assert result.ok
        assert any("fail -> pass" in i for i in result.improvements)

    def test_disappeared_claim_is_regression(self):
        shrunk = make_report_doc()
        shrunk["figures"][0]["claims"].pop()
        result = diff_documents(make_report_doc(), shrunk)
        assert any("disappeared" in r for r in result.regressions)

    def test_config_hash_change_is_noted(self):
        other = make_report_doc()
        other["provenance"]["config_hash"] = "ffff"
        result = diff_documents(make_report_doc(), other)
        assert result.ok
        assert any("config hash changed" in n for n in result.notes)

    def test_bench_regression_flagged(self):
        # The acceptance check: a 2x wall-clock inflation must trip the
        # 25% gate on both the benchmark and the total.
        result = diff_documents(make_bench_doc(1.0), make_bench_doc(2.0))
        assert not result.ok
        assert any(
            "fig2[strict,20]" in r and "2.00x" in r
            for r in result.regressions
        )
        assert any(r.startswith("total:") for r in result.regressions)

    def test_bench_within_threshold_ok(self):
        result = diff_documents(make_bench_doc(1.0), make_bench_doc(1.1))
        assert result.ok

    def test_bench_speedup_is_improvement(self):
        result = diff_documents(make_bench_doc(2.0), make_bench_doc(1.0))
        assert result.ok
        assert result.improvements

    def test_bench_disappeared_benchmark_is_regression(self):
        shrunk = make_bench_doc()
        shrunk["benchmarks"].pop()
        result = diff_documents(make_bench_doc(), shrunk)
        assert any("disappeared" in r for r in result.regressions)

    def test_custom_threshold(self):
        lax = diff_documents(
            make_bench_doc(1.0), make_bench_doc(2.0), threshold=1.5
        )
        assert lax.ok

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError, match="schema mismatch"):
            diff_documents(make_report_doc(), make_bench_doc())
        with pytest.raises(ValueError, match="unsupported"):
            diff_documents({"schema": "x/1"}, {"schema": "x/1"})

    def test_missing_wall_is_note_not_crash(self):
        broken = copy.deepcopy(make_bench_doc())
        del broken["benchmarks"][0]["wall_s"]
        result = diff_documents(make_bench_doc(), broken)
        assert any("missing" in n for n in result.notes)


def make_exact_bench_doc(wall=1.0, events=100_000, sim_ns=5e6):
    return {
        "schema": "repro.bench/1",
        "benchmarks": [
            {
                "name": "iperf_strict",
                "wall_s": wall,
                "events": events,
                "sim_ns": sim_ns,
            },
        ],
        "total_wall_s": wall,
    }


class TestDiffBenchExactWork:
    """The load-noise fix: exact work counters gate, wall clock advises."""

    def test_wall_breach_on_identical_work_is_note_not_regression(self):
        result = diff_documents(
            make_exact_bench_doc(1.0), make_exact_bench_doc(2.0)
        )
        # Slowdowns demoted throughout: the work was byte-identical on
        # every benchmark, so a loaded CI runner cannot fail the gate
        # on noise — not via a point, not via the total.
        assert result.ok
        assert any(
            "iperf_strict" in n and "machine load" in n
            for n in result.notes
        )
        assert any(
            n.startswith("total:") and "machine load" in n
            for n in result.notes
        )

    def test_total_gates_shared_rows_when_coverage_differs(self):
        # Raw totals cover different work when coverage differs; the
        # gate falls back to the sum over shared rows.  A disappeared
        # benchmark is its own regression, but it must not *also* fake
        # a total slowdown.
        old = make_exact_bench_doc(1.0)
        old["benchmarks"].append({"name": "extra", "wall_s": 0.1})
        old["total_wall_s"] = 1.1
        new = make_exact_bench_doc(1.0)
        result = diff_documents(old, new)
        assert any("disappeared" in r for r in result.regressions)
        assert not any(
            r.startswith("total:") for r in result.regressions
        )
        assert any("shared row" in n for n in result.notes)

    def test_new_rows_do_not_fake_a_total_slowdown(self):
        # The grown-suite case (e.g. the reproduce_cold/warm pair
        # appearing): extra rows add wall time but are not a
        # regression of anything that existed before.
        old = make_exact_bench_doc(1.0)
        new = make_exact_bench_doc(1.0)
        new["benchmarks"].append(
            {"name": "reproduce_cold", "wall_s": 5.0}
        )
        new["total_wall_s"] = 6.0
        result = diff_documents(old, new)
        assert result.ok
        assert any("new benchmark" in n for n in result.notes)

    def test_shared_total_still_breaches_on_real_slowdown(self):
        # The fallback is a gate, not a pardon: when the shared rows
        # themselves got slower past the threshold, the total fires
        # even though coverage differs (identical per-row work demotes
        # the per-row breach, but not the cross-coverage total).
        old = make_exact_bench_doc(1.0)
        new = make_exact_bench_doc(4.0)
        new["benchmarks"].append({"name": "extra", "wall_s": 0.1})
        new["total_wall_s"] = 4.1
        result = diff_documents(old, new)
        assert any(r.startswith("total:") for r in result.regressions)

    def test_event_count_change_is_always_a_regression(self):
        result = diff_documents(
            make_exact_bench_doc(1.0, events=100_000),
            make_exact_bench_doc(1.0, events=100_001),
        )
        assert any(
            "events 100000 -> 100001" in r for r in result.regressions
        )

    def test_sim_ns_change_is_always_a_regression(self):
        result = diff_documents(
            make_exact_bench_doc(sim_ns=5e6),
            make_exact_bench_doc(sim_ns=7e6),
        )
        assert any("sim_ns" in r for r in result.regressions)

    def test_wall_breach_with_changed_work_still_gates(self):
        result = diff_documents(
            make_exact_bench_doc(1.0, events=100_000),
            make_exact_bench_doc(2.0, events=90_000),
        )
        assert any(
            "iperf_strict" in r and "2.00x" in r
            for r in result.regressions
        )

    def test_legacy_docs_without_counters_keep_strict_wall_gate(self):
        # make_bench_doc carries only wall_s; behavior must not change.
        result = diff_documents(make_bench_doc(1.0), make_bench_doc(2.0))
        assert not result.ok

    def test_counter_missing_on_one_side_keeps_strict_wall_gate(self):
        old = make_exact_bench_doc(1.0)
        new = make_exact_bench_doc(2.0)
        del new["benchmarks"][0]["events"]
        result = diff_documents(old, new)
        assert any("iperf_strict" in r for r in result.regressions)

    def sweep_doc(self, serial_rate, jobs_rate, chunked_rate=None):
        rows = [
            self.sweep_row("sweep_serial", serial_rate),
            self.sweep_row("sweep_jobs2", jobs_rate),
        ]
        if chunked_rate is not None:
            rows.append(self.sweep_row("sweep_jobs2_chunked", chunked_rate))
        return {
            "schema": "repro.bench/1",
            "benchmarks": rows,
            "total_wall_s": sum(r["wall_s"] for r in rows),
        }

    @staticmethod
    def sweep_row(name, rate):
        return {
            "name": name,
            "wall_s": 1.0,
            "events": 1000,
            "sim_ns": 1.0,
            "events_per_wall_s": rate,
        }

    def test_parallel_sweep_losing_to_serial_is_regression(self):
        # The bug this PR fixed: the pool must never lose to the
        # serial sweep again, whatever the old document said.
        doc = self.sweep_doc(50_000.0, 40_000.0)
        result = diff_documents(doc, doc)
        assert not result.ok
        assert any("sweep_jobs2" in r for r in result.regressions)

    def test_parallel_sweep_winning_passes(self):
        doc = self.sweep_doc(50_000.0, 60_000.0)
        assert diff_documents(doc, doc).ok

    def test_chunked_diagnostic_row_not_gated(self):
        # The explicit-chunk row documents a tuning point; only the
        # auto-chunk row carries the must-win contract.
        doc = self.sweep_doc(50_000.0, 60_000.0, chunked_rate=30_000.0)
        assert diff_documents(doc, doc).ok


class TestDiffCli:
    def write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_ok_diff_exits_zero(self, tmp_path, capsys):
        old = self.write(tmp_path / "old.json", make_report_doc())
        new = self.write(tmp_path / "new.json", make_report_doc())
        assert main(["diff", old, new]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        old = self.write(tmp_path / "old.json", make_bench_doc(1.0))
        new = self.write(tmp_path / "new.json", make_bench_doc(2.0))
        assert main(["diff", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        old = self.write(tmp_path / "old.json", make_bench_doc(1.0))
        new = self.write(tmp_path / "new.json", make_bench_doc(2.0))
        assert main(["diff", old, new, "--threshold", "1.5"]) == 0

    def test_unreadable_or_mismatched_inputs_exit_two(self, tmp_path):
        good = self.write(tmp_path / "good.json", make_report_doc())
        assert main(["diff", good, str(tmp_path / "absent.json")]) == 2
        bench = self.write(tmp_path / "bench.json", make_bench_doc())
        assert main(["diff", good, bench]) == 2


def test_diff_result_format_counts():
    result = DiffResult(kind="bench", regressions=["a", "b"])
    text = result.format()
    assert "FAIL" in text and "2 regression(s)" in text


def cache_pair_doc(cold_wall=4.0, warm_wall=0.5, warm_events=None):
    def row(name, wall, events):
        return {
            "name": name,
            "wall_s": wall,
            "events": events,
            "sim_ns": 1.0,
            "events_per_wall_s": events / wall,
        }

    rows = [
        row("reproduce_cold", cold_wall, 1000),
        row("reproduce_warm", warm_wall, warm_events or 1000),
    ]
    return {
        "schema": "repro.bench/1",
        "benchmarks": rows,
        "total_wall_s": sum(r["wall_s"] for r in rows),
    }


class TestDiffCacheGate:
    """reproduce_cold/reproduce_warm: the cache must keep its 4x win."""

    def test_warm_beating_cold_by_4x_passes(self):
        doc = cache_pair_doc(cold_wall=4.0, warm_wall=0.5)
        assert diff_documents(doc, doc).ok

    def test_warm_within_4x_of_cold_is_regression(self):
        doc = cache_pair_doc(cold_wall=4.0, warm_wall=2.0)
        result = diff_documents(doc, doc)
        assert not result.ok
        assert any(
            "reproduce_warm" in r and "4x" in r
            for r in result.regressions
        )

    def test_warm_event_mismatch_is_regression(self):
        # Warm cells replay stored values; different event totals mean
        # the store served something the cold run did not compute.
        doc = cache_pair_doc(warm_events=999)
        result = diff_documents(doc, doc)
        assert any(
            "cached values do not match" in r for r in result.regressions
        )

    def test_docs_without_cache_rows_not_gated(self):
        assert diff_documents(make_bench_doc(), make_bench_doc()).ok


class TestDiffCacheTemperature:
    def stamped(self, cached, computed):
        doc = make_report_doc()
        doc["provenance"]["cache"] = {
            "cells_cached": cached,
            "cells_computed": computed,
        }
        return doc

    def test_warm_vs_cold_is_noted(self):
        result = diff_documents(
            self.stamped(0, 10), self.stamped(10, 0)
        )
        assert result.ok
        assert any(
            "cache temperature differs: cold -> warm" in n
            for n in result.notes
        )

    def test_uncached_vs_warm_is_noted(self):
        result = diff_documents(make_report_doc(), self.stamped(10, 0))
        assert any("uncached -> warm" in n for n in result.notes)

    def test_mixed_temperature_is_described(self):
        result = diff_documents(
            self.stamped(10, 0), self.stamped(7, 3)
        )
        assert any(
            "mixed (7 cached, 3 computed)" in n for n in result.notes
        )

    def test_same_temperature_stays_silent(self):
        result = diff_documents(self.stamped(10, 0), self.stamped(10, 0))
        assert not any("cache temperature" in n for n in result.notes)


class TestDirtySha:
    def test_dirty_worktree_marked_in_sha_note(self):
        old = make_report_doc()
        old["provenance"]["git_sha"] = "a" * 40
        new = make_report_doc()
        new["provenance"]["git_sha"] = "a" * 40
        new["provenance"]["git_dirty"] = True
        result = diff_documents(old, new)
        note = next(n for n in result.notes if "comparing git shas" in n)
        assert note.endswith("+dirty")
        assert "aaaaaaaaaaaa -> aaaaaaaaaaaa+dirty" in note

"""Shared fixtures for the publish pipeline tests.

Synthetic report sections are built from ``PUBLISH_SPECS`` so every
figure key gets plausible table data without running a sweep; the
tests assert structure (panel/series/badge counts, XML classes, exit
codes), never pixels.
"""

import json

import pytest

from repro.obs.publish.figspecs import PUBLISH_SPECS

MODES = ("off", "strict")
XS = (5.0, 10.0, 20.0)

MODEL_HEADERS = [
    "flows", "M", "measured_gbps", "paper_model_gbps", "paper_err%",
    "refit_model_gbps",
]


def _section_for(figure: str) -> dict:
    """A synthetic report section matching the figure's publish spec."""
    spec = PUBLISH_SPECS[figure]
    if spec.column_series:
        headers = list(MODEL_HEADERS)
        rows = [
            [x, 1.5, 80.0 - x, 86.0 - x, 5.0, 81.0] for x in XS
        ]
    else:
        headers = ["mode", "x"] + [p.y for p in spec.panels]
        if spec.bars_by_mode:
            rows = [
                ["off", 1] + [90.0 + i for i in range(len(spec.panels))],
                ["strict", 1] + [35.0 + i for i in range(len(spec.panels))],
                ["fns", 1] + [87.0 + i for i in range(len(spec.panels))],
            ]
        else:
            rows = [
                [mode, x]
                + [
                    (100.0 if mode == "off" else 50.0) - x + i
                    for i in range(len(spec.panels))
                ]
                for mode in MODES
                for x in XS
            ]
    return {
        "figure": figure,
        "figure_id": figure.replace("fig", "Fig "),
        "title": f"synthetic {figure}",
        "headers": headers,
        "rows": rows,
        "claims": [
            {
                "kind": "expect",
                "claim": "off beats strict",
                "paper": "yes",
                "observed": "yes",
                "status": "pass",
            },
            {
                "kind": "expect",
                "claim": "strict stays flat",
                "paper": "flat",
                "observed": "droops",
                "status": "fail",
            },
            {
                "kind": "expect",
                "claim": "needs full scale",
                "paper": "?",
                "observed": "skipped",
                "status": "skip",
            },
        ],
        "truncated_phases": [],
    }


@pytest.fixture
def make_section():
    return _section_for


@pytest.fixture
def make_report(tmp_path):
    """Factory writing a minimal valid report.json; returns its path."""

    def _make(figures=("fig2", "fig12"), filename="report.json"):
        docs = [_section_for(name) for name in figures]
        doc = {
            "schema": "repro.report/1",
            "provenance": {
                "git_sha": "feedc0ffee00" + "0" * 28,
                "scale": "quick",
                "seed": 1,
                "figures": list(figures),
                "config_hash": "abcd1234abcd1234",
            },
            "figures": docs,
            "summary": {
                "claims": 3 * len(docs),
                "passed": len(docs),
                "failed": len(docs),
                "skipped": len(docs),
            },
        }
        path = tmp_path / filename
        path.write_text(json.dumps(doc))
        return path

    return _make


@pytest.fixture
def make_history(tmp_path):
    """Factory writing a synthetic bench_history.jsonl; returns path."""

    def _make(n_rows=3, filename="bench_history.jsonl"):
        path = tmp_path / filename
        with open(path, "w") as handle:
            for i in range(n_rows):
                row = {
                    "schema": "repro.bench-history/1",
                    "git_sha": f"{i:040x}",
                    "utc": f"2026-08-0{i + 1}T00:00:00Z",
                    "scale": "quick",
                    "benchmarks": {
                        "iperf_off": {
                            "events_per_wall_s": 900_000.0 + i * 1000,
                            "events": 169_418,
                            "wall_s": 0.18,
                        },
                        "sweep_serial": {
                            "events_per_wall_s": 66_000.0 + i * 500,
                            "events": 369_393,
                            "wall_s": 5.5,
                        },
                    },
                    "total_wall_s": 6.0,
                }
                handle.write(json.dumps(row) + "\n")
        return path

    return _make

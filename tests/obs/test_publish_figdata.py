"""Figure-artifact construction: sections + specs -> renderable data."""

import pytest

from repro.obs.expectations import SPECS, reference_curves
from repro.obs.publish.figdata import build_figure_artifact
from repro.obs.publish.figspecs import PUBLISH_SPECS
from repro.obs.publish.style import MODE_COLORS, series_color


def test_every_expectation_spec_has_a_publish_spec():
    # Every gated figure must publish; a new expectations module
    # without a PUBLISH_SPECS entry would silently drop a figure
    # from the gallery.
    assert set(PUBLISH_SPECS) == set(SPECS)


@pytest.mark.parametrize("figure", sorted(PUBLISH_SPECS))
def test_artifact_panel_count_matches_spec(figure, make_section):
    spec = PUBLISH_SPECS[figure]
    artifact = build_figure_artifact(make_section(figure), spec)
    assert artifact.name == figure
    assert len(artifact.panels) == len(spec.panels)
    for panel, panel_spec in zip(artifact.panels, spec.panels):
        assert panel.ylabel == panel_spec.ylabel
        if spec.bars_by_mode:
            assert panel.kind == "bars"
            assert len(panel.bars) == 3  # one per synthetic mode
        else:
            assert panel.kind == "lines"
            assert panel.series, f"{figure} panel has no series"


def test_line_panel_series_ours_plus_paper(make_section):
    artifact = build_figure_artifact(
        make_section("fig2"), PUBLISH_SPECS["fig2"]
    )
    gbps = artifact.panels[0]
    ours = [s for s in gbps.series if s.kind == "ours"]
    paper = [s for s in gbps.series if s.kind == "paper"]
    assert [s.label for s in ours] == ["off", "strict"]
    assert len(paper) == len(reference_curves("fig2")["gbps"])
    # Paper overlays reuse the mode's hue (identity by color, ours
    # vs paper by line style).
    by_label = {s.label: s.color for s in gbps.series}
    assert by_label["off (paper)"] == by_label["off"]
    assert all(len(s.points) == 3 for s in ours)


def test_column_series_model_figure(make_section):
    artifact = build_figure_artifact(
        make_section("model"), PUBLISH_SPECS["model"]
    )
    (panel,) = artifact.panels
    labels = [s.label for s in panel.series]
    assert labels == [
        "measured", "refit_model", "paper_model (paper)",
    ]
    kinds = {s.label: s.kind for s in panel.series}
    assert kinds["paper_model (paper)"] == "paper"


def test_bars_panel_refs_from_paper_curves(make_section):
    artifact = build_figure_artifact(
        make_section("fig12"), PUBLISH_SPECS["fig12"]
    )
    gbps = artifact.panels[0]
    by_label = {bar.label: bar for bar in gbps.bars}
    refs = reference_curves("fig12")["gbps"]
    for mode, points in refs.items():
        if mode in by_label:
            assert by_label[mode].ref == points[0][1]
    assert by_label["off"].color == MODE_COLORS["off"]


def test_badges_and_truncation_carried_through(make_section):
    section = make_section("fig2")
    section["truncated_phases"] = ["fig2 off flows=5"]
    artifact = build_figure_artifact(section, PUBLISH_SPECS["fig2"])
    assert artifact.badge_counts() == {"pass": 1, "fail": 1, "skip": 1}
    symbols = sorted(b.symbol for b in artifact.badges)
    assert symbols == sorted(["✓", "✗", "–"])
    assert artifact.truncated == ["fig2 off flows=5"]


def test_non_numeric_cells_are_skipped(make_section):
    section = make_section("fig2")
    section["rows"][0][2] = True  # bool must not count as a number
    section["rows"][1][2] = "n/a"
    artifact = build_figure_artifact(section, PUBLISH_SPECS["fig2"])
    off = next(
        s for s in artifact.panels[0].series if s.label == "off"
    )
    assert len(off.points) == 1  # two of three cells rejected


def test_missing_column_yields_empty_panel(make_section):
    section = make_section("fig2")
    section["headers"] = ["mode", "x", "other"]
    artifact = build_figure_artifact(section, PUBLISH_SPECS["fig2"])
    assert all(not panel.series for panel in artifact.panels)


def test_series_color_stability():
    # A mode keeps its slot; unknown labels get stable extras.
    assert series_color("off", 3) == MODE_COLORS["off"]
    assert series_color("zzz", 1) == series_color("zzz", 1)
    assert series_color("zzz", 0) != series_color("zzz", 1)


@pytest.mark.parametrize("figure", sorted(PUBLISH_SPECS))
def test_reference_curves_columns_exist_in_spec(figure):
    # Paper overlay columns must be plottable: each PAPER_CURVES key
    # must be a panel column of the figure's publish spec.
    spec = PUBLISH_SPECS[figure]
    panel_columns = {p.y for p in spec.panels}
    for column in reference_curves(figure):
        assert column in panel_columns, (
            f"{figure}: PAPER_CURVES column {column!r} has no panel"
        )

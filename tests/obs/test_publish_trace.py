"""Trace digest: Chrome-trace parsing, stats, and the summary figure."""

import json

import pytest

from repro.obs import SpanTracer
from repro.obs.publish.tracedigest import (
    CRITICAL_PATH_HEADERS,
    bin_center_us,
    critical_path_rows,
    digest_artifact,
    digest_trace,
    load_trace,
)


def make_trace() -> dict:
    tracer = SpanTracer()
    tracer.set_process(0, "test")
    # dma_map dominates total time; irq is frequent but cheap.
    for i in range(10):
        tracer.complete(
            "dma_map", "rx", start_ns=i * 10_000, duration_ns=5_000
        )
    for i in range(40):
        tracer.complete(
            "irq", "irq", start_ns=i * 2_000, duration_ns=250
        )
    tracer.complete(
        "invalidation", "rx", start_ns=500_000, duration_ns=90_000
    )
    tracer.instant("epoch_flip", "rx", ts_ns=123_000)
    return tracer.to_dict()


def test_digest_counts_and_order():
    digest = digest_trace(make_trace())
    assert digest.span_count == 51
    assert digest.instant_count == 1
    assert [k.kind for k in digest.kinds] == [
        "invalidation", "dma_map", "irq",
    ]  # ranked by total time, not count
    total = sum(k.total_us for k in digest.kinds)
    assert digest.total_us == pytest.approx(total)
    assert sum(k.share for k in digest.kinds) == pytest.approx(1.0)


def test_digest_per_kind_stats():
    digest = digest_trace(make_trace())
    dma = next(k for k in digest.kinds if k.kind == "dma_map")
    assert dma.count == 10
    assert dma.total_us == pytest.approx(50.0)  # 10 x 5000 ns
    assert dma.mean_us == pytest.approx(5.0)
    assert dma.p50_us == pytest.approx(5.0)
    assert dma.max_us == pytest.approx(5.0)
    # All identical durations land in one half-decade bin.
    assert list(dma.histogram.values()) == [10]
    (bin_idx,) = dma.histogram
    assert bin_center_us(bin_idx) == pytest.approx(5.0, rel=1.0)


def test_critical_path_rows_shape():
    digest = digest_trace(make_trace())
    rows = critical_path_rows(digest, limit=2)
    assert len(rows) == 2
    assert all(len(row) == len(CRITICAL_PATH_HEADERS) for row in rows)
    assert rows[0][0] == "invalidation"
    assert rows[0][3] > rows[1][3]  # share % descends


def test_digest_artifact_panels():
    artifact = digest_artifact(digest_trace(make_trace()), top=2)
    bars, hist = artifact.panels
    assert bars.kind == "bars"
    assert [bar.label for bar in bars.bars] == [
        "invalidation", "dma_map",
    ]
    assert hist.logx
    assert {s.label for s in hist.series} == {
        "invalidation", "dma_map",
    }
    assert "1 kinds omitted" not in artifact.footnote
    assert "3 kinds" in artifact.footnote


def test_digest_ignores_metadata_and_junk():
    doc = make_trace()
    doc["traceEvents"].append({"ph": "M", "name": "process_name"})
    doc["traceEvents"].append({"ph": "X", "name": "bad", "dur": True})
    doc["traceEvents"].append("not an event")
    digest = digest_trace(doc)
    assert digest.span_count == 51  # junk contributed nothing


def test_load_trace_validates(tmp_path):
    good = tmp_path / "trace.json"
    good.write_text(json.dumps(make_trace()))
    assert load_trace(str(good))["traceEvents"]
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(ValueError, match="traceEvents"):
        load_trace(str(bad))

"""The tracer must emit valid Chrome-trace (Perfetto-loadable) JSON."""

import json

from repro.obs import SpanTracer


def test_complete_event_shape():
    tracer = SpanTracer()
    tracer.set_process(0, "phase0")
    tracer.complete("dma", "pcie.rx", 1_000.0, 500.0, bytes=4096)
    doc = tracer.to_dict()
    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 1
    span = spans[0]
    assert span["name"] == "dma"
    assert span["ts"] == 1.0  # microseconds
    assert span["dur"] == 0.5
    assert span["pid"] == 0
    assert isinstance(span["tid"], int)
    assert span["args"] == {"bytes": 4096}


def test_metadata_names_processes_and_threads():
    tracer = SpanTracer()
    tracer.set_process(3, "Fig 2 strict flows=5")
    tracer.complete("walk", "walker0", 0.0, 100.0)
    meta = [e for e in tracer.events if e["ph"] == "M"]
    names = {(e["name"], e["args"]["name"]) for e in meta}
    assert ("process_name", "Fig 2 strict flows=5") in names
    assert ("thread_name", "walker0") in names


def test_tracks_get_stable_distinct_tids():
    tracer = SpanTracer()
    tracer.complete("a", "t1", 0.0, 1.0)
    tracer.complete("b", "t2", 0.0, 1.0)
    tracer.complete("c", "t1", 0.0, 1.0)
    spans = [e for e in tracer.events if e["ph"] == "X"]
    assert spans[0]["tid"] == spans[2]["tid"]
    assert spans[0]["tid"] != spans[1]["tid"]


def test_tids_reset_per_process():
    tracer = SpanTracer()
    tracer.set_process(0, "p0")
    tracer.complete("a", "t1", 0.0, 1.0)
    tracer.set_process(1, "p1")
    tracer.complete("b", "t1", 0.0, 1.0)
    spans = [e for e in tracer.events if e["ph"] == "X"]
    assert spans[0]["pid"] == 0
    assert spans[1]["pid"] == 1


def test_instant_uses_bound_clock():
    tracer = SpanTracer()
    clock = {"now": 2_000.0}
    tracer.bind_clock(lambda: clock["now"])
    tracer.instant("retry", "driver", attempt=1)
    instants = [e for e in tracer.events if e["ph"] == "i"]
    assert instants[0]["ts"] == 2.0
    assert instants[0]["s"] == "t"


def test_unbound_clock_stamps_zero():
    tracer = SpanTracer()
    assert tracer.now() == 0.0
    tracer.instant("x", "t")
    assert [e for e in tracer.events if e["ph"] == "i"][0]["ts"] == 0.0


def test_negative_duration_clamped():
    tracer = SpanTracer()
    tracer.complete("x", "t", 100.0, -5.0)
    assert [e for e in tracer.events if e["ph"] == "X"][0]["dur"] == 0.0


def test_max_events_drops_and_counts():
    tracer = SpanTracer(max_events=2)
    for i in range(5):
        tracer.complete("x", "t", float(i), 1.0)
    assert len(tracer.events) == 2
    assert tracer.dropped_events > 0


def test_document_round_trips_through_json(tmp_path):
    tracer = SpanTracer()
    tracer.set_process(0, "p")
    tracer.complete("dma", "pcie.rx", 0.0, 10.0, bytes=4096)
    tracer.instant("retry", "driver")
    path = tmp_path / "trace.json"
    tracer.write(str(path))
    doc = json.loads(path.read_text())
    assert isinstance(doc["traceEvents"], list)
    assert {e["ph"] for e in doc["traceEvents"]} == {"M", "X", "i"}
    for event in doc["traceEvents"]:
        assert {"name", "ph", "pid", "tid"} <= set(event)

"""``repro publish`` end to end: exit codes, outputs, the index."""

import json

import pytest

from repro.cli import main as repro_main
from repro.obs import SpanTracer
from repro.obs.publish import cli as publish_cli


@pytest.fixture
def trace_file(tmp_path):
    tracer = SpanTracer()
    for i in range(5):
        tracer.complete(
            "dma_map", "rx", start_ns=i * 1_000, duration_ns=400
        )
    path = tmp_path / "trace.json"
    tracer.write(str(path))
    return path


def publish(tmp_path, make_report, trace_file, *extra):
    """Run publish from a fixture report + trace; returns (code, out)."""
    report = make_report()
    outdir = tmp_path / "out"
    argv = [
        str(outdir),
        "--from-report", str(report),
        "--trace", str(trace_file),
        "--figures", "fig2,fig12",
        *extra,
    ]
    return publish_cli.main(argv), outdir


def test_publish_produces_gallery(tmp_path, make_report, trace_file):
    code, outdir = publish(tmp_path, make_report, trace_file)
    assert code == 0
    for name in (
        "index.html", "report.json", "fig2.svg", "fig12.svg",
        "trace_digest.svg", "trace_digest.json",
    ):
        assert (outdir / name).stat().st_size > 0, name
    page = (outdir / "index.html").read_text()
    assert "fig2.svg" in page
    assert "fig12.svg" in page
    assert "report.json" in page
    assert "feedc0ffee00" in page  # provenance sha surfaced
    digest = json.loads((outdir / "trace_digest.json").read_text())
    assert digest["schema"] == "repro.trace-digest/1"
    assert digest["span_count"] == 5


def test_publish_bench_trend_section(
    tmp_path, make_report, trace_file, make_history
):
    history = make_history(n_rows=3)
    code, outdir = publish(
        tmp_path, make_report, trace_file, "--history", str(history)
    )
    assert code == 0
    assert (outdir / "bench_trend.svg").stat().st_size > 0
    assert "3 committed bench runs" in (
        outdir / "index.html"
    ).read_text()


def test_publish_without_history_skips_trend(
    tmp_path, make_report, trace_file
):
    code, outdir = publish(
        tmp_path, make_report, trace_file,
        "--history", str(tmp_path / "missing.jsonl"),
    )
    assert code == 0
    assert not (outdir / "bench_trend.svg").exists()
    assert "no bench history" in (outdir / "index.html").read_text()


def test_unknown_figure_exits_2(tmp_path, make_report, capsys):
    code = publish_cli.main(
        [str(tmp_path / "out"), "--figures", "fig99",
         "--from-report", str(make_report())]
    )
    assert code == 2
    assert "unknown figure" in capsys.readouterr().err


def test_bad_report_exits_2(tmp_path, capsys):
    bad = tmp_path / "report.json"
    bad.write_text(json.dumps({"schema": "nope/9"}))
    code = publish_cli.main(
        [str(tmp_path / "out"), "--from-report", str(bad)]
    )
    assert code == 2
    assert "schema" in capsys.readouterr().err


def test_png_without_matplotlib_exits_2(
    tmp_path, make_report, monkeypatch, capsys
):
    monkeypatch.setattr(
        publish_cli, "have_matplotlib", lambda: False
    )
    code = publish_cli.main(
        [str(tmp_path / "out"), "--format", "png",
         "--from-report", str(make_report())]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "pip install 'repro[publish]'" in err
    assert not (tmp_path / "out").exists()  # bailed before writing


def test_png_with_matplotlib(tmp_path, make_report, trace_file):
    pytest.importorskip("matplotlib")
    code, outdir = publish(
        tmp_path, make_report, trace_file, "--format", "png"
    )
    assert code == 0
    assert (outdir / "fig2.png").stat().st_size > 0
    assert (outdir / "trace_digest.png").stat().st_size > 0


def test_figure_missing_from_report_is_skipped(
    tmp_path, make_report, trace_file, capsys
):
    report = make_report(figures=("fig2",))
    outdir = tmp_path / "out"
    code = publish_cli.main(
        [str(outdir), "--from-report", str(report),
         "--trace", str(trace_file), "--figures", "fig2,fig9"]
    )
    assert code == 0
    assert (outdir / "fig2.svg").exists()
    assert not (outdir / "fig9.svg").exists()
    assert "fig9" in capsys.readouterr().out


def test_report_json_is_copied_verbatim_content(
    tmp_path, make_report, trace_file
):
    code, outdir = publish(tmp_path, make_report, trace_file)
    assert code == 0
    original = json.loads(make_report().read_text())
    published = json.loads((outdir / "report.json").read_text())
    assert published == original


def test_repro_cli_dispatches_publish(
    tmp_path, make_report, trace_file
):
    outdir = tmp_path / "via-main"
    code = repro_main(
        ["publish", str(outdir), "--from-report", str(make_report()),
         "--trace", str(trace_file), "--figures", "fig2"]
    )
    assert code == 0
    assert (outdir / "index.html").exists()


def test_publish_help_mentions_formats(capsys):
    with pytest.raises(SystemExit) as excinfo:
        publish_cli.main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--format" in out
    assert "svg" in out

"""Unit tests for the expectation vocabulary and spec engine."""

import pytest

from repro.experiments import FigureResult
from repro.obs.expect import (
    FigureSpec,
    crossover_at,
    declines_with,
    equal,
    evaluate_figure,
    grows_with,
    is_zero,
    largest_class,
    wins,
    within_band,
)
from repro.obs.expect.engine import EvalContext, available_specs


def make_result():
    result = FigureResult(
        "Fig T", "test", ["mode", "x", "gbps", "drop%", "m1", "m2", "m3"]
    )
    result.rows = [
        ["off", 5, 100.0, 0.0, 0.0, 0.0, 0.0],
        ["off", 20, 99.0, 0.0, 0.0, 0.0, 0.0],
        ["strict", 5, 80.0, 1.0, 0.4, 0.4, 2.0],
        ["strict", 20, 40.0, 9.0, 0.6, 0.6, 3.5],
        ["fns", 5, 99.5, 0.0, 0.0, 0.0, 0.1],
        ["fns", 20, 98.5, 0.0, 0.0, 0.0, 0.1],
    ]
    return result


def run(expectation, result=None, metrics=None):
    ctx = EvalContext(result=result or make_result(), metrics=metrics)
    return expectation.evaluate(ctx)


class TestIsZero:
    def test_pass_and_fail(self):
        assert run(is_zero("drop%", "fns", claim="c")).passed
        assert run(is_zero("drop%", "strict", claim="c")).failed

    def test_tolerance(self):
        assert run(is_zero("m3", "fns", tol=0.2, claim="c")).passed
        assert run(is_zero("m3", "fns", tol=0.05, claim="c")).failed

    def test_at_restricts_rows(self):
        only5 = is_zero("drop%", "strict", at=(5,), tol=1.5, claim="c")
        assert run(only5).passed

    def test_requires_exactly_one_form(self):
        with pytest.raises(ValueError):
            is_zero(claim="c")
        with pytest.raises(ValueError):
            is_zero("drop%", metric="x.n", claim="c")

    def test_metric_form_sums_matching_phases(self):
        metrics = {
            "phases": [
                {"label": "Fig T fns x=5", "final": {"iommu.m1#2": 1.0}},
                {"label": "Fig T strict x=5", "final": {"iommu.m1": 50.0}},
            ]
        }
        claim = is_zero(
            metric="iommu.m1", phase_contains=" fns ", tol=2.0, claim="c"
        )
        assert run(claim, metrics=metrics).passed
        strict = is_zero(
            metric="iommu.m1", phase_contains=" strict ", tol=2.0, claim="c"
        )
        assert run(strict, metrics=metrics).failed

    def test_metric_form_skips_without_metrics(self):
        outcome = run(is_zero(metric="x.n", claim="c"))
        assert outcome.status == "skip"
        assert outcome.symbol == "–"

    def test_metric_form_spec_error_on_no_phase(self):
        outcome = run(
            is_zero(metric="x.n", phase_contains="nope", claim="c"),
            metrics={"phases": []},
        )
        assert outcome.failed
        assert "spec error" in outcome.observed


class TestEqual:
    def test_columns_equal(self):
        assert run(equal("m1", "m2", mode="strict", claim="c")).passed
        assert run(equal("m1", "m3", mode="strict", claim="c")).failed

    def test_between_two_sweep_points(self):
        near = equal(
            "gbps", mode="off", between=(5, 20), tol_abs=2.0, claim="c"
        )
        assert run(near).passed
        tight = equal(
            "gbps", mode="off", between=(5, 20), tol_abs=0.5, claim="c"
        )
        assert run(tight).failed

    def test_requires_exactly_one_form(self):
        with pytest.raises(ValueError):
            equal("m1", claim="c")
        with pytest.raises(ValueError):
            equal("m1", "m2", between=(5, 20), claim="c")


class TestTrends:
    def test_grows_and_declines(self):
        assert run(grows_with("drop%", "strict", factor=2.0, claim="c")).passed
        assert run(declines_with("gbps", "strict", factor=1.5, claim="c")).passed
        assert run(grows_with("gbps", "strict", claim="c")).failed

    def test_ratio_trend(self):
        # strict/off gbps: 0.8 -> 0.404, a declining relative trend.
        claim = declines_with("gbps", "strict", of="off", factor=1.5, claim="c")
        assert run(claim).passed

    def test_needs_two_points(self):
        one = FigureResult("F", "t", ["mode", "x", "gbps"])
        one.rows = [["off", 1, 5.0]]
        outcome = run(grows_with("gbps", "off", claim="c"), result=one)
        assert outcome.failed
        assert "spec error" in outcome.observed


class TestWins:
    def test_per_point_and_factor(self):
        assert run(wins("off", "strict", "gbps", claim="c")).passed
        assert run(wins("off", "strict", "gbps", by=2.0, claim="c")).failed

    def test_agg_max_compares_series_extremes(self):
        tail = wins("strict", "fns", "m3", by=10.0, agg="max", claim="c")
        assert run(tail).passed

    def test_rejects_unknown_agg(self):
        with pytest.raises(ValueError):
            wins("off", "strict", "gbps", agg="median", claim="c")


class TestWithinBand:
    def test_absolute_band(self):
        assert run(
            within_band("gbps", "off", lo=95.0, hi=101.0, claim="c")
        ).passed
        assert run(within_band("gbps", "off", hi=99.5, claim="c")).failed

    def test_relative_band(self):
        near_off = within_band("gbps", "fns", of="off", lo=0.9, hi=1.1, claim="c")
        assert run(near_off).passed
        assert run(
            within_band("gbps", "strict", of="off", lo=0.9, hi=1.1, claim="c")
        ).failed

    def test_slack_and_hi_min_loosen_upper_bound(self):
        # m3 fns/strict ratio is tiny; hi_min gives an absolute escape
        # hatch when hi*base rounds to ~0.
        claim = within_band(
            "m3", "fns", of="strict", hi=0.01, hi_min=0.2, claim="c"
        )
        assert run(claim).passed
        assert run(
            within_band("m3", "fns", of="strict", hi=0.01, claim="c")
        ).failed
        slack = within_band(
            "drop%", "fns", of="off", hi=3.0, slack=0.5, claim="c"
        )
        assert run(slack).passed  # base 0: bound is 0 + slack

    def test_derived_callable(self):
        result = make_result()
        result.raw["k"] = 42.0
        claim = within_band(
            derived=lambda r: r.raw["k"], label="k", lo=40.0, hi=45.0, claim="c"
        )
        assert run(claim, result=result).passed

    def test_requires_bounds_and_target(self):
        with pytest.raises(ValueError):
            within_band("gbps", claim="c")
        with pytest.raises(ValueError):
            within_band(claim="c")


class TestCrossoverAt:
    def test_crossover(self):
        # strict/off gbps ratio: 0.8 at x=5, 0.404 at x=20 — stays below
        # 0.9 up to 5 but never crosses after, so must_cross fails ...
        strictly_below = crossover_at(
            "gbps", "strict", of="off", threshold=0.9, after=5,
            must_cross=False, claim="c",
        )
        assert run(strictly_below).passed
        crossing = crossover_at(
            "gbps", "strict", of="off", threshold=0.9, after=5, claim="c"
        )
        assert run(crossing).failed
        # ... and a threshold below the x=5 ratio fails the below check.
        assert run(
            crossover_at(
                "gbps", "strict", of="off", threshold=0.7, after=5,
                must_cross=False, claim="c",
            )
        ).failed

    def test_unorderable_x_is_spec_error(self):
        outcome = run(
            crossover_at(
                "gbps", "strict", of="off", threshold=0.9, after="a",
                claim="c",
            )
        )
        assert outcome.failed
        assert "spec error" in outcome.observed


class TestLargestClass:
    def test_dominant_column(self):
        claim = largest_class(
            "m3", among=("m1", "m2", "m3"), mode="strict", claim="c"
        )
        assert run(claim).passed
        assert run(
            largest_class("m1", among=("m1", "m3"), mode="strict", claim="c")
        ).failed

    def test_column_must_be_among(self):
        with pytest.raises(ValueError):
            largest_class("gbps", among=("m1", "m2"), claim="c")


class TestSpecErrors:
    def test_unknown_column_fails_with_spec_error(self):
        outcome = run(is_zero("nope", "off", claim="c"))
        assert outcome.failed
        assert "spec error" in outcome.observed

    def test_unknown_mode_fails_with_spec_error(self):
        outcome = run(is_zero("gbps", "iommu=pt", claim="c"))
        assert outcome.failed
        assert "no rows" in outcome.observed

    def test_missing_base_x_is_spec_error(self):
        lopsided = make_result()
        lopsided.rows = [r for r in lopsided.rows if r[:2] != ["off", 20]]
        outcome = run(
            declines_with("gbps", "strict", of="off", claim="c"),
            result=lopsided,
        )
        assert outcome.failed
        assert "spec error" in outcome.observed


class TestEngine:
    def spec(self):
        return FigureSpec(
            figure="figT",
            title="test figure",
            expectations=(
                is_zero("drop%", "fns", claim="fns never drops"),
                wins("off", "strict", "gbps", claim="off beats strict"),
                is_zero(metric="x.n", claim="metric claim"),
            ),
        )

    def test_evaluate_direct_spec(self):
        evaluation = evaluate_figure(self.spec(), make_result())
        assert evaluation.figure == "figT"
        counts = evaluation.counts()
        assert counts == {"claims": 3, "passed": 2, "failed": 0, "skipped": 1}
        assert evaluation.passed
        text = evaluation.format()
        assert "claims: figT" in text
        assert "2/3 claims pass, 1 skipped" in text

    def test_failures_listed(self):
        spec = FigureSpec(
            "figT", "t", (is_zero("drop%", "strict", claim="no drops"),)
        )
        evaluation = evaluate_figure(spec, make_result())
        assert not evaluation.passed
        assert [o.expectation.claim for o in evaluation.failures] == [
            "no drops"
        ]

    def test_only_filters_by_claim_text(self):
        evaluation = evaluate_figure(
            self.spec(), make_result(), only=["beats"]
        )
        assert evaluation.counts()["claims"] == 1

    def test_unknown_key_lists_available(self):
        with pytest.raises(KeyError, match="fig2"):
            evaluate_figure("not-a-figure", make_result())

    def test_to_claims_records(self):
        records = evaluate_figure(self.spec(), make_result()).to_claims()
        assert records[0]["kind"] == "is_zero"
        assert records[0]["status"] == "pass"
        assert set(records[0]) == {
            "kind", "claim", "paper", "observed", "status",
        }


class TestShippedSpecs:
    def test_every_figure_has_a_spec(self):
        keys = set(available_specs())
        assert {
            "fig2", "fig3", "model", "fig7", "fig8", "fig9", "fig10",
            "fig11a", "fig11b", "fig11c", "fig12",
        } <= keys

    def test_specs_have_claims_and_digests(self):
        from repro.obs.expectations import SPECS

        for key, spec in SPECS.items():
            assert spec.figure == key
            assert spec.expectations, key
            parts = spec.digest_parts()
            assert parts[0] == key
            assert len(parts) == 2 + len(spec.expectations)

"""Renderer smoke tests: structure assertions, never pixels.

The builtin SVG backend is asserted by parsing its XML (every mark
carries a CSS class); the matplotlib backend runs only when the
``publish`` extra is installed and otherwise skips cleanly.
"""

import xml.etree.ElementTree as ET

import pytest

from repro.obs.publish.figdata import (
    FigureArtifact,
    PanelData,
    Series,
    build_figure_artifact,
)
from repro.obs.publish.figspecs import PUBLISH_SPECS
from repro.obs.publish.svgbackend import render_figure_svg


def class_counts(path) -> dict:
    counts: dict[str, int] = {}
    for element in ET.parse(path).getroot().iter():
        cls = element.get("class")
        if cls:
            counts[cls] = counts.get(cls, 0) + 1
    return counts


@pytest.mark.parametrize("figure", sorted(PUBLISH_SPECS))
def test_svg_renders_every_figure(figure, make_section, tmp_path):
    artifact = build_figure_artifact(
        make_section(figure), PUBLISH_SPECS[figure]
    )
    out = tmp_path / f"{figure}.svg"
    info = render_figure_svg(artifact, "paper", str(out))
    assert out.stat().st_size > 0
    classes = class_counts(out)
    assert classes["panel"] == len(PUBLISH_SPECS[figure].panels)
    assert info["panels"] == classes["panel"]
    assert info["badges"] == 3
    # Claim chips always present (one pass + one fail chip).
    assert classes["badge-pass"] == 1
    assert classes["badge-fail"] == 1
    if PUBLISH_SPECS[figure].bars_by_mode:
        assert classes["bar"] == info["bars"] > 0
        assert classes["bar-value"] == classes["bar"]
    else:
        assert classes["series-ours"] >= 1
        assert info["series"] == (
            classes["series-ours"] + classes.get("series-paper", 0)
        )


def test_svg_paper_series_are_dashed(make_section, tmp_path):
    artifact = build_figure_artifact(
        make_section("fig2"), PUBLISH_SPECS["fig2"]
    )
    out = tmp_path / "fig2.svg"
    render_figure_svg(artifact, "paper", str(out))
    dashed = [
        el
        for el in ET.parse(out).getroot().iter()
        if el.get("class") == "series-paper"
    ]
    assert dashed
    assert all(el.get("stroke-dasharray") for el in dashed)


def test_svg_truncation_marker(make_section, tmp_path):
    section = make_section("fig2")
    section["truncated_phases"] = ["fig2 off flows=5"]
    artifact = build_figure_artifact(section, PUBLISH_SPECS["fig2"])
    out = tmp_path / "fig2.svg"
    render_figure_svg(artifact, "paper", str(out))
    assert class_counts(out).get("truncated") == 1
    assert "sample cap" in out.read_text()


def test_svg_handles_zero_values_on_log_axis(tmp_path):
    # A zero latency row must not crash the log-scale maths.
    artifact = FigureArtifact(
        name="degenerate",
        figure_id="Fig X",
        title="zeroes",
        panels=[
            PanelData(
                ylabel="us",
                xlabel="bytes",
                logx=True,
                logy=True,
                series=[
                    Series(
                        "off", [(64.0, 0.0), (128.0, 1.0)], "#2a78d6"
                    )
                ],
            )
        ],
    )
    out = tmp_path / "degenerate.svg"
    info = render_figure_svg(artifact, "paper", str(out))
    assert info["panels"] == 1
    content = out.read_text()
    assert "nan" not in content.lower()


def test_svg_empty_artifact_still_renders(tmp_path):
    artifact = FigureArtifact(
        name="empty", figure_id="Fig E", title="no data", panels=[]
    )
    out = tmp_path / "empty.svg"
    info = render_figure_svg(artifact, "arxiv", str(out))
    assert info == {"panels": 0, "series": 0, "bars": 0, "badges": 0}
    ET.parse(out)  # well-formed XML


@pytest.mark.parametrize("figure", ["fig2", "fig12", "model"])
def test_mpl_renders_when_available(figure, make_section, tmp_path):
    pytest.importorskip("matplotlib")
    from repro.obs.publish.mplbackend import render_figure_mpl

    artifact = build_figure_artifact(
        make_section(figure), PUBLISH_SPECS[figure]
    )
    out = tmp_path / f"{figure}.png"
    info = render_figure_mpl(artifact, "paper", str(out))
    assert out.stat().st_size > 0
    assert info["panels"] == len(PUBLISH_SPECS[figure].panels)


def test_mpl_probe_is_quiet_without_matplotlib():
    # have_matplotlib never raises; it gates the png/pdf path.
    from repro.obs.publish.mplbackend import have_matplotlib

    assert have_matplotlib() in (True, False)

"""Unit tests for the metrics registry, phases, scopes and sampler."""

from repro.obs import (
    MetricsRegistry,
    MetricsSampler,
    current_registry,
    observed,
    set_registry,
)
from repro.sim import Simulator


def test_no_registry_by_default():
    assert current_registry() is None


def test_observed_installs_and_restores():
    registry = MetricsRegistry()
    with observed(registry):
        assert current_registry() is registry
        inner = MetricsRegistry()
        with observed(inner):
            assert current_registry() is inner
        assert current_registry() is registry
    assert current_registry() is None


def test_observed_restores_on_exception():
    registry = MetricsRegistry()
    try:
        with observed(registry):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert current_registry() is None


def test_set_registry_explicit():
    registry = MetricsRegistry()
    set_registry(registry)
    try:
        assert current_registry() is registry
    finally:
        set_registry(None)
    assert current_registry() is None


def test_scope_registers_counters_and_gauges():
    registry = MetricsRegistry()
    state = {"count": 0, "level": 3}
    scope = registry.scope("thing")
    scope.counter("count", lambda: state["count"])
    scope.gauge("level", lambda: state["level"])
    state["count"] = 7
    phase = registry.current_phase()
    assert phase.read_all() == {"thing.count": 7, "thing.level": 3}
    kinds = registry.report()["phases"][0]["kinds"]
    assert kinds == {"thing.count": "counter", "thing.level": "gauge"}


def test_scope_dedup_suffixes():
    registry = MetricsRegistry()
    first = registry.scope("pcie.rx")
    second = registry.scope("pcie.rx")
    assert first.prefix == "pcie.rx"
    assert second.prefix == "pcie.rx#2"


def test_phase_separates_namespaces():
    registry = MetricsRegistry()
    registry.begin_phase("a")
    registry.scope("x").counter("n", lambda: 1)
    registry.begin_phase("b")
    registry.scope("x").counter("n", lambda: 2)
    doc = registry.report()
    assert [p["label"] for p in doc["phases"]] == ["a", "b"]
    assert doc["phases"][0]["final"] == {"x.n": 1}
    assert doc["phases"][1]["final"] == {"x.n": 2}


def test_begin_phase_freezes_previous_finals():
    registry = MetricsRegistry()
    state = {"n": 5}
    registry.scope("x").counter("n", lambda: state["n"])
    registry.begin_phase("next")
    state["n"] = 99  # mutation after the phase closed must not leak in
    assert registry.report()["phases"][0]["final"] == {"x.n": 5}


def test_attach_simulator_starts_sampler_and_auto_phases():
    registry = MetricsRegistry(sample_interval_ns=100.0)
    state = {"n": 0}

    sim1 = Simulator()
    registry.scope("x").counter("n", lambda: state["n"])
    registry.attach_simulator(sim1)
    sim1.call_after(50.0, lambda: state.update(n=1))
    sim1.call_after(450.0, lambda: state.update(n=2))
    sim1.run()
    phase1 = registry.current_phase()
    assert phase1.sim_attached
    assert len(phase1.sample_times) >= 2
    assert phase1.series["x.n"][0] == 1

    # A second simulator on the same registry must open a new phase.
    sim2 = Simulator()
    registry.attach_simulator(sim2)
    assert len(registry.phases) == 2


def test_sampler_stops_when_workload_drains():
    registry = MetricsRegistry(sample_interval_ns=100.0)
    sim = Simulator()
    registry.scope("x").counter("n", lambda: 0)
    registry.attach_simulator(sim)
    sim.call_after(250.0, lambda: None)
    sim.run(until=1_000_000.0)
    # The sampler must not have kept itself alive to the horizon.
    samples = len(registry.current_phase().sample_times)
    assert 1 <= samples <= 4


def test_sampler_respects_max_samples():
    sim = Simulator()
    registry = MetricsRegistry()
    phase = registry.current_phase()

    def keep_alive():
        sim.call_after(10.0, keep_alive)

    keep_alive()
    sampler = MetricsSampler(sim, phase, 100.0, max_samples=5)
    sampler.start()
    sim.run(until=10_000.0)
    assert len(phase.sample_times) == 5
    assert sampler.stopped


def test_sampler_flags_truncation_when_workload_outlives_series():
    sim = Simulator()
    registry = MetricsRegistry()
    phase = registry.current_phase()

    def keep_alive():
        sim.call_after(10.0, keep_alive)

    keep_alive()
    sampler = MetricsSampler(sim, phase, 100.0, max_samples=5)
    sampler.start()
    sim.run(until=10_000.0)
    assert sampler.stopped
    assert phase.truncated
    assert phase.to_dict()["truncated"] is True
    # The summary table surfaces the flag next to the sample count.
    headers, rows = registry.summary_rows()
    assert rows[0][headers.index("samples")] == "5 (truncated)"


def test_sampler_drained_workload_is_not_truncated():
    sim = Simulator()
    registry = MetricsRegistry()
    phase = registry.current_phase()
    sim.call_after(250.0, lambda: None)
    sampler = MetricsSampler(sim, phase, 100.0, max_samples=5)
    sampler.start()
    sim.run(until=10_000.0)
    assert sampler.stopped
    assert not phase.truncated
    assert phase.to_dict()["truncated"] is False


def test_series_padded_for_late_registration():
    registry = MetricsRegistry()
    phase = registry.current_phase()
    registry.scope("a").counter("n", lambda: 1)
    phase.record_sample(0.0)
    registry.scope("b").counter("n", lambda: 2)
    phase.record_sample(100.0)
    series = phase.to_dict()["samples"]["series"]
    assert series["a.n"] == [1, 1]
    assert series["b.n"] == [None, 2]


def test_summary_rows_aggregate_instances():
    registry = MetricsRegistry()
    registry.begin_phase("p")
    registry.scope("iommu").counter("translations", lambda: 10)
    registry.scope("pcie.rx").counter("bytes", lambda: 100)
    registry.scope("pcie.tx").counter("bytes", lambda: 50)
    # A second host's pipelines land in "#2" scopes and must still sum.
    registry.scope("pcie.rx").counter("bytes", lambda: 7)
    headers, rows = registry.summary_rows()
    row = dict(zip(headers, rows[0]))
    assert row["phase"] == "p"
    assert row["translations"] == 10
    assert row["dma_bytes"] == 157

"""The observability layer must be zero-cost when uninstalled.

With no registry installed, instrumented objects keep ``obs is None``
and never touch the registry, sampler or tracer.  The tests poison
every obs entry point so any per-event work — a stray registration, a
sampled tick, a span emission — fails loudly.
"""

import pytest

from repro.apps.iperf import run_iperf
from repro.iommu import Iommu
from repro.iova import CachingIovaAllocator
from repro.obs import MetricsRegistry, MetricsSampler, SpanTracer
from repro.obs.hooks import current_registry
from repro.obs.registry import MetricsScope, Phase


def _poison(monkeypatch):
    def bomb(name):
        def _raise(*args, **kwargs):
            raise AssertionError(f"obs work without a registry: {name}")

        return _raise

    monkeypatch.setattr(MetricsRegistry, "scope", bomb("scope"))
    monkeypatch.setattr(
        MetricsRegistry, "attach_simulator", bomb("attach_simulator")
    )
    monkeypatch.setattr(MetricsScope, "_add", bomb("register"))
    monkeypatch.setattr(Phase, "record_sample", bomb("sample"))
    monkeypatch.setattr(MetricsSampler, "start", bomb("sampler.start"))
    monkeypatch.setattr(SpanTracer, "complete", bomb("tracer.complete"))
    monkeypatch.setattr(SpanTracer, "instant", bomb("tracer.instant"))


def test_constructed_objects_have_no_obs_reference():
    assert current_registry() is None
    iommu = Iommu()
    assert iommu.obs is None
    assert iommu.iotlb.obs is None
    assert iommu.invalidation_queue.obs is None
    alloc = CachingIovaAllocator(num_cpus=1)
    assert alloc.obs is None
    assert alloc.rbtree.obs is None


def test_full_run_does_no_obs_work_when_uninstalled(monkeypatch):
    _poison(monkeypatch)
    result = run_iperf(
        "fns", flows=1, warmup_ns=100_000.0, measure_ns=200_000.0
    )
    assert result.rx_goodput_gbps >= 0.0


def test_poison_actually_fires_when_installed(monkeypatch):
    # Sanity-check the poisoning itself: with a registry installed the
    # first registration must trip it.
    from repro.obs import observed

    _poison(monkeypatch)
    with observed(MetricsRegistry()):
        with pytest.raises(AssertionError, match="obs work"):
            run_iperf(
                "fns", flows=1, warmup_ns=100_000.0, measure_ns=200_000.0
            )

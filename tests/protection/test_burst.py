"""Batched same-page DMA translation vs the scalar loop.

``translate_for_dma_burst`` exists purely as a hot-path optimization:
its contract is that its complete counter/cache effect is *identical*
to calling ``translate`` once per transaction, and that it declines
(returns ``None``) whenever any observer could tell the difference
(monitor, stale-hit checks, fault injection, fault queue).
"""

import dataclasses

import pytest

from repro.iommu import DmaFault, Iommu, IommuConfig
from repro.mem import PhysicalMemory
from repro.protection import DeferredDriver, PassthroughDriver, StrictFamilyDriver


def make_pair(factory_name="linux_strict"):
    """Two identically configured driver+iommu stacks."""
    stacks = []
    for _ in range(2):
        iommu = Iommu(IommuConfig())
        physmem = PhysicalMemory(1 << 16)
        factory = getattr(StrictFamilyDriver, factory_name)
        stacks.append((factory(iommu, physmem, num_cpus=2), iommu))
    return stacks


def stats_tuple(iommu):
    return (
        dataclasses.asdict(iommu.stats),
        iommu.iotlb.hits,
        iommu.iotlb.misses,
    )


class TestBurstEquivalence:
    @pytest.mark.parametrize("count", [1, 2, 7])
    def test_burst_counters_equal_scalar_loop(self, count):
        (burst_driver, burst_iommu), (scalar_driver, scalar_iommu) = (
            make_pair()
        )
        for driver in (burst_driver, scalar_driver):
            descriptor, _ = driver.make_rx_descriptor(core=0, pages=2)
            driver._descriptor = descriptor  # stash for the loop below
        burst_iova = burst_driver._descriptor.slots[0].iova
        scalar_iova = scalar_driver._descriptor.slots[0].iova
        reads = burst_driver.translate_for_dma_burst(
            burst_iova, count, "rx"
        )
        scalar_reads = [
            scalar_driver.translate(scalar_iova, "rx")
            for _ in range(count)
        ]
        # The burst reports the first transaction's walk reads (the
        # only one that can miss); replays are hits by construction.
        assert reads == scalar_reads[0]
        assert stats_tuple(burst_iommu) == stats_tuple(scalar_iommu)

    def test_burst_faults_like_scalar_on_unmapped_iova(self):
        (driver, iommu), _ = make_pair()
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=1)
        iova = descriptor.slots[0].iova
        for _ in range(descriptor.size):
            descriptor.take_page()
            descriptor.dma_done()
        driver.retire_rx_descriptor(descriptor, core=0)
        with pytest.raises(DmaFault):
            driver.translate_for_dma_burst(iova, 4, "rx")

    def test_passthrough_burst_is_free(self):
        physmem = PhysicalMemory(1 << 10)
        driver = PassthroughDriver(physmem)
        assert driver.translate_for_dma_burst(0, 16, "rx") == 0


class TestBurstGating:
    def test_stale_hit_checks_disable_base_burst(self):
        (driver, iommu), _ = make_pair()
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=1)
        iommu.enable_stale_hit_checks()
        assert (
            driver.translate_for_dma_burst(
                descriptor.slots[0].iova, 4, "rx"
            )
            is None
        )

    def test_deferred_burst_counts_stale_per_replay(self):
        iommu = Iommu(IommuConfig())
        physmem = PhysicalMemory(1 << 16)
        driver = DeferredDriver(
            iommu, physmem, num_cpus=2, flush_threshold=10_000
        )
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=1)
        iova = descriptor.slots[0].iova
        driver.translate(iova, "rx")
        for _ in range(descriptor.size):
            descriptor.take_page()
            descriptor.dma_done()
        driver.retire_rx_descriptor(descriptor, core=0)
        # Unmapped but not yet flushed: every burst transaction is a
        # stale translation, exactly as the scalar loop would count.
        before = driver.stale_translations
        reads = driver.translate_for_dma_burst(iova, 5, "rx")
        assert reads is not None
        assert driver.stale_translations == before + 5

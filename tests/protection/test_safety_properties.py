"""Property-based safety tests across protection modes.

The strict safety property ([Markuze et al. 2018], paper §3): once an
IOVA is unmapped, a malicious or buggy device can no longer access the
physical page it pointed to.  These tests drive arbitrary descriptor
lifecycles and check the property holds at every retire point for
every strict-family configuration — and that deferred mode genuinely
violates it (which is why the paper refuses that mode).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iommu import Iommu, IommuConfig
from repro.mem import PhysicalMemory
from repro.protection import DeferredDriver, StrictFamilyDriver

FLAG_COMBOS = [
    (False, False, False),  # linux strict
    (True, False, False),  # + preserve (A)
    (False, True, True),  # + contiguous/batched (B)
    (True, True, True),  # F&S
]


def make_driver(flags):
    preserve, contiguous, batched = flags
    iommu = Iommu(IommuConfig())
    driver = StrictFamilyDriver(
        iommu,
        PhysicalMemory(1 << 18),
        num_cpus=2,
        preserve_ptcache=preserve,
        contiguous_iova=contiguous,
        batched_invalidation=batched,
    )
    return driver, iommu


@st.composite
def descriptor_lifecycles(draw):
    """A sequence of descriptor make/consume/retire steps with
    interleaved Tx mappings, with a subset of pages device-accessed."""
    steps = draw(st.integers(min_value=1, max_value=6))
    script = []
    for _ in range(steps):
        touch_mask = draw(st.integers(min_value=0, max_value=(1 << 16) - 1))
        tx_count = draw(st.integers(min_value=0, max_value=4))
        script.append((touch_mask, tx_count))
    return script


@given(
    flags=st.sampled_from(FLAG_COMBOS),
    script=descriptor_lifecycles(),
)
@settings(max_examples=40, deadline=None)
def test_strict_property_holds_at_every_retire(flags, script):
    driver, _iommu = make_driver(flags)
    for touch_mask, tx_count in script:
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        for index, slot in enumerate(descriptor.slots):
            if touch_mask & (1 << (index % 16)):
                driver.translate(slot.iova, "rx")
            descriptor.take_page()
            descriptor.dma_done()
        tx_mappings = []
        for _ in range(tx_count):
            mapping, _ = driver.map_tx_page(core=1)
            driver.translate(mapping.iova, "tx_ack")
            tx_mappings.append(mapping)
        driver.retire_rx_descriptor(descriptor, core=0)
        # THE property: no page of the retired descriptor is reachable.
        for slot in descriptor.slots:
            assert not driver.device_can_access(slot.iova)
        if tx_mappings:
            driver.retire_tx_pages(tx_mappings, core=1)
            for mapping in tx_mappings:
                assert not driver.device_can_access(mapping.iova)


@given(script=descriptor_lifecycles())
@settings(max_examples=20, deadline=None)
def test_deferred_mode_violates_the_property(script):
    """If any page was device-touched, deferred mode leaves a window
    where the device can still reach it after retire."""
    iommu = Iommu(IommuConfig())
    driver = DeferredDriver(
        iommu, PhysicalMemory(1 << 18), num_cpus=2, flush_threshold=10**9
    )
    any_touched = False
    violation_seen = False
    for touch_mask, _tx in script:
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=8)
        touched = []
        for index, slot in enumerate(descriptor.slots):
            if touch_mask & (1 << (index % 16)):
                driver.translate(slot.iova, "rx")
                touched.append(slot)
            descriptor.take_page()
            descriptor.dma_done()
        driver.retire_rx_descriptor(descriptor, core=0)
        any_touched = any_touched or bool(touched)
        if any(driver.device_can_access(slot.iova) for slot in touched):
            violation_seen = True
    if any_touched:
        assert violation_seen
    # The flush closes every window.
    driver.flush()
    assert driver.pending_invalidations == 0


@given(
    flags=st.sampled_from(FLAG_COMBOS),
    pages_touched=st.integers(min_value=0, max_value=64),
)
@settings(max_examples=30, deadline=None)
def test_no_iova_leaks_across_lifecycles(flags, pages_touched):
    """Allocator conservation: after retire, re-making descriptors
    never collides with live mappings (the page table stays
    consistent)."""
    driver, iommu = make_driver(flags)
    for _round in range(3):
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        for index in range(pages_touched):
            driver.translate(descriptor.slots[index].iova, "rx")
        for _ in range(64):
            descriptor.take_page()
            descriptor.dma_done()
        driver.retire_rx_descriptor(descriptor, core=0)
    assert iommu.page_table.mapped_pages == 0

"""Unit tests for the protection drivers (all four safety modes)."""

import pytest

from repro.iommu import DmaFault, Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE
from repro.mem import PhysicalMemory
from repro.protection import (
    DeferredDriver,
    PassthroughDriver,
    StrictFamilyDriver,
)


def make_strict(variant="linux", **kwargs):
    iommu = Iommu(IommuConfig(trace_invalidations=True))
    physmem = PhysicalMemory(1 << 16)
    factory = {
        "linux": StrictFamilyDriver.linux_strict,
        "fns": StrictFamilyDriver.fns,
        "A": StrictFamilyDriver.linux_plus_preserve,
        "B": StrictFamilyDriver.linux_plus_contiguous,
    }[variant]
    return factory(iommu, physmem, num_cpus=2, **kwargs), iommu, physmem


class TestPassthrough:
    def test_descriptor_uses_physical_addresses(self):
        physmem = PhysicalMemory(1 << 10)
        driver = PassthroughDriver(physmem)
        descriptor, cost = driver.make_rx_descriptor(core=0, pages=4)
        assert cost == 0.0
        for slot in descriptor.slots:
            assert slot.iova == slot.frame << 12
        assert driver.translate(descriptor.slots[0].iova, "rx") == 0

    def test_retire_returns_frames(self):
        physmem = PhysicalMemory(1 << 10)
        driver = PassthroughDriver(physmem)
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=4)
        driver.retire_rx_descriptor(descriptor, core=0)
        assert physmem.frames_in_use == 0

    def test_tx_roundtrip(self):
        physmem = PhysicalMemory(1 << 10)
        driver = PassthroughDriver(physmem)
        mapping, _ = driver.map_tx_page(core=0)
        driver.retire_tx_pages([mapping], core=0)
        assert physmem.frames_in_use == 0

    def test_device_always_has_access(self):
        driver = PassthroughDriver(PhysicalMemory(16))
        assert driver.device_can_access(0x1234000)
        assert not driver.strict_safety


class TestStrictSafetyProperty:
    @pytest.mark.parametrize("variant", ["linux", "fns", "A", "B"])
    def test_no_device_access_after_retire(self, variant):
        """The strict property for every strict-family configuration:
        the instant retire returns, the device cannot reach any page of
        the descriptor — neither via IOTLB nor via the page table."""
        driver, iommu, _ = make_strict(variant)
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        # The device translates (and caches) every page.
        for slot in descriptor.slots:
            driver.translate(slot.iova, "rx")
            descriptor.take_page()
            descriptor.dma_done()
        driver.retire_rx_descriptor(descriptor, core=0)
        for slot in descriptor.slots:
            assert not driver.device_can_access(slot.iova)
            with pytest.raises(DmaFault):
                iommu.translate(slot.iova)

    @pytest.mark.parametrize("variant", ["linux", "fns", "A", "B"])
    def test_tx_pages_sealed_after_retire(self, variant):
        driver, iommu, _ = make_strict(variant)
        mappings = []
        for _ in range(8):
            mapping, _ = driver.map_tx_page(core=0)
            driver.translate(mapping.iova, "tx_ack")
            mappings.append(mapping)
        driver.retire_tx_pages(mappings, core=0)
        for mapping in mappings:
            assert not driver.device_can_access(mapping.iova)

    def test_deferred_mode_leaves_stale_window(self):
        """The contrast: deferred mode admits device access after unmap
        (the weaker safety property F&S refuses)."""
        iommu = Iommu(IommuConfig())
        physmem = PhysicalMemory(1 << 16)
        driver = DeferredDriver(iommu, physmem, num_cpus=1,
                                flush_threshold=10_000)
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=4)
        for slot in descriptor.slots:
            driver.translate(slot.iova, "rx")
            descriptor.take_page()
            descriptor.dma_done()
        driver.retire_rx_descriptor(descriptor, core=0)
        # The stale IOTLB entries still translate.
        assert any(
            driver.device_can_access(slot.iova) for slot in descriptor.slots
        )
        driver.translate(descriptor.slots[0].iova, "rx")
        assert driver.stale_translations == 1
        # A flush closes the window.
        driver.flush()
        assert not any(
            driver.device_can_access(slot.iova) for slot in descriptor.slots
        )


class TestFnsMechanisms:
    def test_fns_descriptor_iovas_contiguous(self):
        driver, _, _ = make_strict("fns")
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        iovas = [slot.iova for slot in descriptor.slots]
        assert iovas == list(range(iovas[0], iovas[0] + 64 * PAGE_SIZE, PAGE_SIZE))

    def test_linux_descriptor_iovas_eventually_scatter(self):
        driver, _, _ = make_strict("linux")
        # Churn: map/retire descriptors with Tx (ACK) traffic whose
        # completions lag a few rounds, as in the real datapath.
        from collections import deque

        tx_in_flight = deque()
        for _ in range(30):
            descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
            for slot in descriptor.slots:
                descriptor.take_page()
                descriptor.dma_done()
            for _ in range(4):
                mapping, _ = driver.map_tx_page(core=0)
                tx_in_flight.append(mapping)
            driver.retire_rx_descriptor(descriptor, core=0)
            while len(tx_in_flight) > 12:
                driver.retire_tx_pages([tx_in_flight.popleft()], core=0)
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        iovas = [slot.iova for slot in descriptor.slots]
        gaps = [
            abs(b - a) != PAGE_SIZE for a, b in zip(iovas, iovas[1:])
        ]
        assert any(gaps)

    def test_fns_single_invalidation_request_per_descriptor(self):
        driver, iommu, _ = make_strict("fns")
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        for _ in range(64):
            descriptor.take_page()
            descriptor.dma_done()
        before = iommu.stats.invalidation_requests
        driver.retire_rx_descriptor(descriptor, core=0)
        assert iommu.stats.invalidation_requests - before == 1

    def test_linux_64_invalidation_requests_per_descriptor(self):
        driver, iommu, _ = make_strict("linux")
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        for _ in range(64):
            descriptor.take_page()
            descriptor.dma_done()
        before = iommu.stats.invalidation_requests
        driver.retire_rx_descriptor(descriptor, core=0)
        assert iommu.stats.invalidation_requests - before == 64

    def test_fns_preserves_ptcache_across_retire(self):
        driver, iommu, _ = make_strict("fns")
        first, _ = driver.make_rx_descriptor(core=0, pages=64)
        second, _ = driver.make_rx_descriptor(core=0, pages=64)
        for slot in first.slots:
            driver.translate(slot.iova, "rx")
            first.take_page()
            first.dma_done()
        driver.retire_rx_descriptor(first, core=0)
        # The next descriptor's translation should walk only PT-L4.
        reads = driver.translate(second.slots[0].iova, "rx")
        assert reads <= 2  # L3 hit (1) or at worst a fresh L3 region (cold)

    def test_linux_drops_ptcache_on_retire(self):
        driver, iommu, _ = make_strict("linux")
        first, _ = driver.make_rx_descriptor(core=0, pages=1)

    def test_fns_cpu_cost_lower_than_linux(self):
        def retire_cost(variant):
            driver, _, _ = make_strict(variant)
            descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
            for _ in range(64):
                descriptor.take_page()
                descriptor.dma_done()
            return driver.retire_rx_descriptor(descriptor, core=0)

        assert retire_cost("fns") < retire_cost("linux") / 3

    def test_batching_requires_contiguity(self):
        iommu = Iommu(IommuConfig())
        with pytest.raises(ValueError):
            StrictFamilyDriver(
                iommu,
                PhysicalMemory(64),
                num_cpus=1,
                preserve_ptcache=False,
                contiguous_iova=False,
                batched_invalidation=True,
            )

    def test_sub_chunk_descriptors_slice_chunks(self):
        """Single-page-descriptor devices (Intel ICE, paper §3
        "Generality"): descriptors smaller than a chunk carve
        sequential slices across descriptors, like the Tx datapath."""
        driver, iommu, _ = make_strict("fns")
        descriptors = []
        for _ in range(4):
            descriptor, _ = driver.make_rx_descriptor(core=0, pages=1)
            descriptors.append(descriptor)
        iovas = [d.slots[0].iova for d in descriptors]
        # Consecutive descriptors get consecutive IOVAs (contiguity
        # across descriptors).
        assert iovas[1] == iovas[0] + PAGE_SIZE
        assert iovas[2] == iovas[1] + PAGE_SIZE
        for descriptor in descriptors:
            descriptor.take_page()
            descriptor.dma_done()
            driver.retire_rx_descriptor(descriptor, core=0)
            assert not driver.device_can_access(descriptor.slots[0].iova)
        # The chunk is recycled only after all its slices retire.
        assert driver.chunks.live_chunk_count == 1  # 60 slices remain


class TestTxContiguous:
    def test_tx_retire_groups_runs(self):
        driver, iommu, _ = make_strict("fns")
        mappings = []
        for _ in range(8):
            mapping, _ = driver.map_tx_page(core=0)
            mappings.append(mapping)
        before = iommu.stats.invalidation_requests
        driver.retire_tx_pages(mappings, core=0)
        # 8 consecutive slices of one chunk: a single ranged request.
        assert iommu.stats.invalidation_requests - before == 1

    def test_tx_chunk_recycled_after_full_release(self):
        driver, _, _ = make_strict("fns")
        mappings = []
        for _ in range(64):
            mapping, _ = driver.map_tx_page(core=0)
            mappings.append(mapping)
        driver.retire_tx_pages(mappings, core=0)
        assert driver.chunks.live_chunk_count == 0

    def test_tx_runs_split_across_chunks(self):
        driver, iommu, _ = make_strict("fns")
        mappings = []
        for _ in range(70):  # spans two 64-page chunks
            mapping, _ = driver.map_tx_page(core=0)
            mappings.append(mapping)
        before = iommu.stats.invalidation_requests
        driver.retire_tx_pages(mappings, core=0)
        assert iommu.stats.invalidation_requests - before == 2


class TestAblationConfigurations:
    def test_names(self):
        assert make_strict("linux")[0].name == "linux-strict"
        assert make_strict("fns")[0].name == "fns"
        assert make_strict("A")[0].name == "linux+A"
        assert make_strict("B")[0].name == "linux+B"

    def test_linux_plus_a_preserves_but_scatters(self):
        driver, iommu, _ = make_strict("A")
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        for slot in descriptor.slots:
            driver.translate(slot.iova, "rx")
            descriptor.take_page()
            descriptor.dma_done()
        l3_invalidations_before = iommu.ptcaches.l3.invalidations
        driver.retire_rx_descriptor(descriptor, core=0)
        # Preserve mode never drops PTcache entries on unmap.
        assert iommu.ptcaches.l3.invalidations == l3_invalidations_before

    def test_linux_plus_b_batches_but_drops_ptcache(self):
        driver, iommu, _ = make_strict("B")
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        for slot in descriptor.slots:
            driver.translate(slot.iova, "rx")
            descriptor.take_page()
            descriptor.dma_done()
        before_requests = iommu.stats.invalidation_requests
        l3_before = iommu.ptcaches.l3.invalidations
        driver.retire_rx_descriptor(descriptor, core=0)
        assert iommu.stats.invalidation_requests - before_requests == 1
        assert iommu.ptcaches.l3.invalidations > l3_before

"""Unit tests for the deferred (lazy) protection mode."""

import pytest

from repro.iommu import Iommu, IommuConfig
from repro.mem import PhysicalMemory
from repro.protection import DeferredDriver


def make_driver(flush_threshold=8):
    iommu = Iommu(IommuConfig())
    physmem = PhysicalMemory(1 << 16)
    driver = DeferredDriver(
        iommu, physmem, num_cpus=2, flush_threshold=flush_threshold
    )
    return driver, iommu, physmem


def consume(descriptor):
    for _ in range(descriptor.size):
        descriptor.take_page()
        descriptor.dma_done()


class TestDeferral:
    def test_unmaps_accumulate_until_threshold(self):
        driver, iommu, _ = make_driver(flush_threshold=8)
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=4)
        consume(descriptor)
        driver.retire_rx_descriptor(descriptor, core=0)
        assert driver.pending_invalidations == 4
        assert driver.flushes == 0

    def test_threshold_triggers_global_flush(self):
        driver, iommu, _ = make_driver(flush_threshold=8)
        for _ in range(2):
            descriptor, _ = driver.make_rx_descriptor(core=0, pages=4)
            for slot in descriptor.slots:
                driver.translate(slot.iova, "rx")
            consume(descriptor)
            driver.retire_rx_descriptor(descriptor, core=0)
        assert driver.flushes == 1
        assert driver.pending_invalidations == 0
        assert iommu.iotlb.resident_entries == 0

    def test_iovas_not_reused_before_flush(self):
        """Reuse before the flush would hand a live stale translation
        to a different buffer; the driver must hold IOVAs back."""
        driver, _, _ = make_driver(flush_threshold=10_000)
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=4)
        first_iovas = {slot.iova for slot in descriptor.slots}
        consume(descriptor)
        driver.retire_rx_descriptor(descriptor, core=0)
        replacement, _ = driver.make_rx_descriptor(core=0, pages=4)
        second_iovas = {slot.iova for slot in replacement.slots}
        assert not (first_iovas & second_iovas)

    def test_iovas_reusable_after_flush(self):
        driver, _, _ = make_driver(flush_threshold=10_000)
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=4)
        first_iovas = {slot.iova for slot in descriptor.slots}
        consume(descriptor)
        driver.retire_rx_descriptor(descriptor, core=0)
        driver.flush()
        replacement, _ = driver.make_rx_descriptor(core=0, pages=4)
        second_iovas = {slot.iova for slot in replacement.slots}
        assert first_iovas & second_iovas

    def test_stale_translation_counted(self):
        driver, _, _ = make_driver(flush_threshold=10_000)
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=1)
        iova = descriptor.slots[0].iova
        driver.translate(iova, "rx")
        consume(descriptor)
        driver.retire_rx_descriptor(descriptor, core=0)
        driver.translate(iova, "rx")  # no fault: the safety hole
        assert driver.stale_translations == 1

    def test_tx_pages_also_deferred(self):
        driver, _, _ = make_driver(flush_threshold=10_000)
        mapping, _ = driver.map_tx_page(core=0)
        driver.retire_tx_pages([mapping], core=0)
        assert driver.pending_invalidations == 1

    def test_not_strict(self):
        driver, _, _ = make_driver()
        assert not driver.strict_safety
        assert driver.name == "linux-deferred"

"""Unit tests for the F&S-hugepage driver (§5 extension)."""

import pytest

from repro.iommu import DmaFault, Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE
from repro.mem import PhysicalMemory
from repro.protection import StrictFamilyDriver


def make_driver():
    iommu = Iommu(IommuConfig())
    physmem = PhysicalMemory(1 << 18)
    driver = StrictFamilyDriver.fns_huge(iommu, physmem, num_cpus=2)
    return driver, iommu, physmem


class TestHugeDescriptors:
    def test_descriptor_is_one_huge_mapping(self):
        driver, iommu, _ = make_driver()
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=512)
        assert descriptor.size == 512
        base = descriptor.slots[0].iova
        assert base % (2 * 1024 * 1024) == 0  # 2 MB aligned IOVA
        walk = iommu.page_table.walk(base)
        assert walk.huge
        # Slots expose per-page frames of the contiguous huge backing.
        assert descriptor.slots[17].frame == descriptor.slots[0].frame + 17

    def test_wrong_size_rejected(self):
        driver, _, _ = make_driver()
        with pytest.raises(ValueError):
            driver.make_rx_descriptor(core=0, pages=64)

    def test_single_map_cost(self):
        driver, _, _ = make_driver()
        _, cost = driver.make_rx_descriptor(core=0, pages=512)
        # One map call, not 512: far below the per-page driver.
        assert cost < 512 * driver.costs.map_ns / 4

    def test_strict_safety_after_retire(self):
        driver, iommu, physmem = make_driver()
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=512)
        for slot in descriptor.slots[:8]:
            driver.translate(slot.iova, "rx")
        for _ in range(512):
            descriptor.take_page()
            descriptor.dma_done()
        driver.retire_rx_descriptor(descriptor, core=0)
        for slot in descriptor.slots[:8]:
            assert not driver.device_can_access(slot.iova)
            with pytest.raises(DmaFault):
                iommu.translate(slot.iova)
        assert physmem.huge_in_use == 0

    def test_single_invalidation_request_per_2mb(self):
        driver, iommu, _ = make_driver()
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=512)
        for _ in range(512):
            descriptor.take_page()
            descriptor.dma_done()
        before = iommu.stats.invalidation_requests
        driver.retire_rx_descriptor(descriptor, core=0)
        assert iommu.stats.invalidation_requests - before == 1

    def test_translation_cost_floor_broken(self):
        """One walk covers 512 pages: the per-page compulsory IOTLB
        miss floor of 4 KB mappings does not apply."""
        driver, iommu, _ = make_driver()
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=512)
        for slot in descriptor.slots:
            driver.translate(slot.iova, "rx")
        assert iommu.stats.iotlb_misses == 1
        assert iommu.stats.memory_reads <= 3

    def test_chunk_and_frames_recycled(self):
        driver, _, physmem = make_driver()
        for _ in range(4):
            descriptor, _ = driver.make_rx_descriptor(core=0, pages=512)
            for _ in range(512):
                descriptor.take_page()
                descriptor.dma_done()
            driver.retire_rx_descriptor(descriptor, core=0)
        assert driver.chunks.live_chunk_count == 0
        assert physmem.huge_in_use == 0

    def test_constructor_validation(self):
        iommu = Iommu(IommuConfig())
        with pytest.raises(ValueError):
            StrictFamilyDriver(
                iommu,
                PhysicalMemory(64),
                num_cpus=1,
                preserve_ptcache=True,
                contiguous_iova=True,
                batched_invalidation=True,
                chunk_pages=64,
                hugepages=True,  # needs 512-page chunks
            )

"""``repro serve``: request canonicalization, queue dedup, HTTP API."""

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.experiments import FigureResult, RunScale
from repro.experiments.points import POINT_RUNNERS
from repro.obs.expect import FigureSpec, grows_with
from repro.obs.expect.reproduce import run_reproduce
from repro.parallel import PointSpec, run_points
from repro.serve import JobQueue, ReproduceRequest, ReproServer

MICRO = RunScale(
    name="micro",
    warmup_ns=1_000_000.0,
    measure_ns=2_000_000.0,
    latency_measure_ns=4_000_000.0,
)

EXECUTIONS: list[str] = []


def _counting_point(spec, scale):
    EXECUTIONS.append(spec.label)
    return {"mode": spec.mode, "x": spec.x, "gbps": 10.0 * spec.x}


def _stub_figure(scale, seed=1):
    specs = [
        PointSpec(
            figure="stub",
            runner="t-serve",
            mode="off",
            x=x,
            label=f"stub off x={x} seed={seed}",
            seed=seed * 100 + x,
        )
        for x in (1, 2)
    ]
    values = run_points(specs, scale)
    result = FigureResult("Fig S", "stub", ["mode", "x", "gbps"])
    result.rows = [[v["mode"], v["x"], v["gbps"]] for v in values]
    return result


STUB_SPEC = FigureSpec(
    figure="stub",
    title="stub figure",
    expectations=(
        grows_with("gbps", "off", claim="gbps grows", paper="grows"),
    ),
)


@pytest.fixture(autouse=True)
def scratch_runner():
    EXECUTIONS.clear()
    POINT_RUNNERS["t-serve"] = _counting_point
    yield
    POINT_RUNNERS.pop("t-serve", None)


class TestReproduceRequest:
    def test_config_key_ignores_parallelism(self):
        base = ReproduceRequest(figures=("fig2",), seed=1)
        jobs = ReproduceRequest(figures=("fig2",), seed=1, jobs=8, chunk=2)
        assert base.config_key() == jobs.config_key()

    def test_config_key_covers_output_fields(self):
        base = ReproduceRequest(figures=("fig2",), seed=1)
        assert ReproduceRequest(
            figures=("fig3",), seed=1
        ).config_key() != base.config_key()
        assert ReproduceRequest(
            figures=("fig2",), seed=2
        ).config_key() != base.config_key()
        assert ReproduceRequest(
            figures=("fig2",), seed=1, full=True
        ).config_key() != base.config_key()

    def test_from_json_validates(self):
        good = ReproduceRequest.from_json(
            {"figures": ["fig2"], "seed": 3, "jobs": 2}
        )
        assert good.figures == ("fig2",)
        assert good.seed == 3
        for bad in (
            "not a dict",
            {"figures": "fig2"},
            {"figures": [1]},
            {"seed": "x"},
            {"seed": True},
            {"jobs": -1},
            {"chunk": 0},
        ):
            with pytest.raises(ValueError):
                ReproduceRequest.from_json(bad)


class TestJobQueueDedup:
    def make_queue(self, tmp_path, gate, runs):
        def executor(request, outdir):
            gate.wait(10.0)
            runs.append(request.config_key())
            return 0

        return JobQueue(Path(tmp_path), executor)

    def test_identical_inflight_requests_attach(self, tmp_path):
        gate = threading.Event()
        runs: list[str] = []
        queue = self.make_queue(tmp_path, gate, runs)
        try:
            first, attached1 = queue.submit(ReproduceRequest(seed=1))
            second, attached2 = queue.submit(ReproduceRequest(seed=1))
            assert not attached1
            assert attached2
            assert second is first
            assert first.attachments == 1
            gate.set()
            assert first.wait(10.0)
            assert runs == [first.key]  # one underlying run
        finally:
            gate.set()
            queue.shutdown()

    def test_distinct_configs_run_independently(self, tmp_path):
        gate = threading.Event()
        gate.set()
        runs: list[str] = []
        queue = self.make_queue(tmp_path, gate, runs)
        try:
            a, _ = queue.submit(ReproduceRequest(seed=1))
            b, attached = queue.submit(ReproduceRequest(seed=2))
            assert not attached
            assert b is not a
            assert a.wait(10.0) and b.wait(10.0)
            assert sorted(runs) == sorted([a.key, b.key])
        finally:
            queue.shutdown()

    def test_retired_config_starts_a_fresh_job(self, tmp_path):
        gate = threading.Event()
        gate.set()
        runs: list[str] = []
        queue = self.make_queue(tmp_path, gate, runs)
        try:
            first, _ = queue.submit(ReproduceRequest(seed=1))
            assert first.wait(10.0)
            again, attached = queue.submit(ReproduceRequest(seed=1))
            assert not attached
            assert again is not first
        finally:
            queue.shutdown()

    def test_failing_executor_marks_job_failed(self, tmp_path):
        def executor(request, outdir):
            raise RuntimeError("exploded")

        queue = JobQueue(Path(tmp_path), executor)
        try:
            job, _ = queue.submit(ReproduceRequest(seed=1))
            assert job.wait(10.0)
            assert job.status == "failed"
            assert "exploded" in job.error
            # The key is free again for a retry.
            retry, attached = queue.submit(ReproduceRequest(seed=1))
            assert not attached
        finally:
            queue.shutdown()


@pytest.fixture()
def server(tmp_path, monkeypatch):
    """A ReproServer on a free port running the stub figure."""
    gate = threading.Event()

    def executor(request, outdir):
        gate.wait(10.0)
        return run_reproduce(
            ["stub"],
            scale=MICRO,
            seed=request.seed,
            report_path=str(outdir / "REPORT.md"),
            json_path=str(outdir / "report.json"),
            runners={
                "stub": lambda scale: _stub_figure(scale, seed=request.seed)
            },
            specs={"stub": STUB_SPEC},
            echo=lambda _: None,
            cache=srv.cache,
        )

    srv = ReproServer(
        port=0,
        cache_dir=str(tmp_path / "cache"),
        workdir=str(tmp_path / "jobs"),
        executor=executor,
    )
    monkeypatch.setattr(
        type(srv.cache), "fingerprint_for", lambda self, key: "pinned"
    )
    srv.start()
    srv.gate = gate
    yield srv
    gate.set()
    srv.stop()


def api(server, path, payload=None):
    host, port = server.address
    url = f"http://{host}:{port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data)
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestHTTP:
    def test_healthz(self, server):
        status, doc = api(server, "/healthz")
        assert status == 200
        assert doc == {"status": "ok"}

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            api(server, "/api/nope")
        assert err.value.code == 404

    def test_unknown_job_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            api(server, "/api/jobs/job-999999")
        assert err.value.code == 404

    def test_bad_request_body_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            api(server, "/api/reproduce", payload={"figures": "fig2"})
        assert err.value.code == 400

    def test_concurrent_identical_requests_cost_one_run(self, server):
        payload = {"figures": ["stub"], "seed": 1}
        status, first = api(server, "/api/reproduce", payload=payload)
        assert status == 202
        assert first["attached"] is False
        # The executor is gated, so the job is still live: the second
        # identical request must attach, not enqueue.
        status, second = api(server, "/api/reproduce", payload=payload)
        assert second["id"] == first["id"]
        assert second["attached"] is True

        # Until the run retires, the report endpoint says 202-pending.
        host, port = server.address
        url = f"http://{host}:{port}/api/jobs/{first['id']}/report.json"
        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.status == 202

        server.gate.set()
        job = server.queue.get(first["id"])
        assert job.wait(10.0)
        assert job.exit_code == 0
        assert len(EXECUTIONS) == 2  # the stub figure's two cells, once

        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.status == 200
            report = json.loads(response.read())
        # One underlying run: everything was computed exactly once.
        assert report["provenance"]["cache"]["cells_computed"] == 2
        assert report["provenance"]["cache"]["cells_cached"] == 0
        assert job.attachments == 1

    def test_distinct_configs_run_and_serve_independently(self, server):
        server.gate.set()
        _, job1 = api(
            server, "/api/reproduce",
            payload={"figures": ["stub"], "seed": 1},
        )
        _, job2 = api(
            server, "/api/reproduce",
            payload={"figures": ["stub"], "seed": 2},
        )
        assert job1["id"] != job2["id"]
        assert job2["attached"] is False
        for job_id in (job1["id"], job2["id"]):
            assert server.queue.get(job_id).wait(10.0)
        host, port = server.address
        reports = []
        for job_id in (job1["id"], job2["id"]):
            url = f"http://{host}:{port}/api/jobs/{job_id}/report.json"
            with urllib.request.urlopen(url, timeout=10) as response:
                reports.append(json.loads(response.read()))
        # Different seeds produced different cells; both ran cold.
        assert len(EXECUTIONS) == 4
        rows1 = reports[0]["figures"][0]["rows"]
        rows2 = reports[1]["figures"][0]["rows"]
        assert rows1 == rows2  # same x grid, value depends only on x

    def test_repeated_retired_config_is_served_from_cache(self, server):
        server.gate.set()
        payload = {"figures": ["stub"], "seed": 1}
        _, first = api(server, "/api/reproduce", payload=payload)
        assert server.queue.get(first["id"]).wait(10.0)
        assert len(EXECUTIONS) == 2
        _, again = api(server, "/api/reproduce", payload=payload)
        assert again["attached"] is False  # fresh job...
        job = server.queue.get(again["id"])
        assert job.wait(10.0)
        assert len(EXECUTIONS) == 2  # ...but zero new cell executions
        report = json.loads(job.report_json.read_text())
        assert report["provenance"]["cache"]["cells_cached"] == 2
        assert report["provenance"]["cache"]["cells_computed"] == 0

    def test_jobs_listing_and_cache_stats(self, server):
        server.gate.set()
        _, job = api(
            server, "/api/reproduce",
            payload={"figures": ["stub"], "seed": 1},
        )
        assert server.queue.get(job["id"]).wait(10.0)
        status, listing = api(server, "/api/jobs")
        assert status == 200
        assert [j["id"] for j in listing["jobs"]] == [job["id"]]
        status, stats = api(server, "/api/cache/stats")
        assert status == 200
        assert stats["disk"]["entries"] == 2
        assert stats["run"]["misses"] == 2

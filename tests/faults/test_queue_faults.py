"""Invalidation-queue behaviour under injected completion faults."""

from repro.faults import FaultPlan, FaultSpec, faulted
from repro.iommu import Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE
from repro.iommu.invalidation import InvalidationStatus


def plan_for(kind, probability=1.0, magnitude=0.0, seed=1):
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                "invalidation",
                kind,
                probability=probability,
                magnitude=magnitude,
            ),
        ),
    )


def faulted_iommu(plan):
    with faulted(plan):
        # The queue captures its injector at construction time.
        iommu = Iommu(IommuConfig(invalidation_cpu_ns=250.0))
    return iommu


def warm(iommu, base, pages):
    for page in range(pages):
        iommu.map_page(base + page * PAGE_SIZE, page)
        iommu.translate(base + page * PAGE_SIZE)


def test_dropped_completion_leaves_caches_untouched():
    iommu = faulted_iommu(plan_for("drop-completion"))
    warm(iommu, 0x100000, 2)
    result = iommu.invalidation_queue.submit_invalidation(
        0x100000, 2 * PAGE_SIZE, preserve_ptcache=True
    )
    assert result.status is InvalidationStatus.DROPPED
    assert result.completed_length == 0
    assert not result.completed
    # Nothing was invalidated: the stale entries survive, which is why
    # callers must check the status.
    assert iommu.iotlb.contains(0x100000)
    assert iommu.iotlb.contains(0x101000)
    assert iommu.invalidation_queue.dropped_completions == 1
    # The wait timed out: strictly more expensive than a clean wait.
    assert result.cost_ns > iommu.invalidation_queue.cpu_cost_ns


def test_partial_completion_invalidates_prefix_only():
    iommu = faulted_iommu(plan_for("partial-completion"))
    warm(iommu, 0x200000, 4)
    result = iommu.invalidation_queue.submit_invalidation(
        0x200000, 4 * PAGE_SIZE, preserve_ptcache=True
    )
    assert result.status is InvalidationStatus.PARTIAL
    assert 0 < result.completed_length < 4 * PAGE_SIZE
    assert result.completed_length % PAGE_SIZE == 0
    completed_pages = result.completed_length // PAGE_SIZE
    for page in range(4):
        iova = 0x200000 + page * PAGE_SIZE
        assert iommu.iotlb.contains(iova) == (page >= completed_pages)
    assert iommu.invalidation_queue.partial_completions == 1


def test_delayed_completion_completes_with_extra_cost():
    iommu = faulted_iommu(plan_for("delay-completion", magnitude=3_000.0))
    warm(iommu, 0x300000, 1)
    result = iommu.invalidation_queue.submit_invalidation(
        0x300000, PAGE_SIZE, preserve_ptcache=True
    )
    assert result.status is InvalidationStatus.COMPLETED
    assert result.completed_length == PAGE_SIZE
    assert result.cost_ns == iommu.invalidation_queue.cpu_cost_ns + 3_000.0
    assert not iommu.iotlb.contains(0x300000)
    assert iommu.invalidation_queue.delayed_completions == 1


def test_probability_zero_never_fires():
    iommu = faulted_iommu(plan_for("drop-completion", probability=0.0))
    warm(iommu, 0x400000, 1)
    result = iommu.invalidation_queue.submit_invalidation(
        0x400000, PAGE_SIZE, preserve_ptcache=True
    )
    assert result.completed
    assert iommu.invalidation_queue.dropped_completions == 0


def test_flush_survives_drop_faults():
    """The register-based flush cannot be lost — that is what makes it
    a sound graceful-degradation fallback."""
    iommu = faulted_iommu(plan_for("drop-completion"))
    warm(iommu, 0x500000, 2)
    result = iommu.invalidation_queue.submit_flush()
    assert result.status is InvalidationStatus.COMPLETED
    assert not iommu.iotlb.contains(0x500000)
    assert not iommu.iotlb.contains(0x501000)

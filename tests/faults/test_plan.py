"""Unit tests for declarative fault plans (validation + JSON)."""

import math

import pytest

from repro.faults import KINDS_BY_COMPONENT, FaultPlan, FaultSpec


def test_every_catalog_kind_constructs():
    for component, kinds in KINDS_BY_COMPONENT.items():
        for kind in kinds:
            spec = FaultSpec(component, kind)
            assert spec.active(0.0)


def test_unknown_component_rejected():
    with pytest.raises(ValueError, match="unknown fault component"):
        FaultSpec("gpu", "loss")


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown net fault kind"):
        FaultSpec("net", "drop-completion")


def test_probability_bounds_enforced():
    with pytest.raises(ValueError, match="outside"):
        FaultSpec("net", "loss", probability=1.5)
    with pytest.raises(ValueError, match="outside"):
        FaultSpec("net", "loss", probability=-0.1)


def test_empty_window_rejected():
    with pytest.raises(ValueError, match="empty fault window"):
        FaultSpec("net", "loss", start_ns=100.0, end_ns=100.0)


def test_negative_magnitude_rejected():
    with pytest.raises(ValueError, match="negative magnitude"):
        FaultSpec("net", "reorder", magnitude=-1.0)


def test_window_half_open():
    spec = FaultSpec("net", "loss", start_ns=10.0, end_ns=20.0)
    assert not spec.active(9.9)
    assert spec.active(10.0)
    assert spec.active(19.9)
    assert not spec.active(20.0)


def test_spec_round_trips_including_infinity():
    spec = FaultSpec("pcie", "nack-replay", 5.0, math.inf, 0.25, 1500.0)
    data = spec.to_dict()
    # JSON has no infinity: open windows must serialize as null.
    assert data["end_ns"] is None
    assert FaultSpec.from_dict(data) == spec


def test_plan_round_trips_through_file(tmp_path):
    plan = FaultPlan(
        seed=9,
        name="mixed",
        specs=(
            FaultSpec("invalidation", "drop-completion", 0.0, 1e6, 0.5),
            FaultSpec("net", "loss", probability=0.01),
        ),
    )
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    assert FaultPlan.from_file(str(path)) == plan


def test_plan_accepts_list_specs():
    plan = FaultPlan(specs=[FaultSpec("net", "loss")])
    assert isinstance(plan.specs, tuple)


def test_for_component_and_components():
    plan = FaultPlan(
        specs=(
            FaultSpec("net", "loss"),
            FaultSpec("invalidation", "delay-completion"),
            FaultSpec("net", "reorder"),
        )
    )
    assert len(plan.for_component("net")) == 2
    assert plan.for_component("pcie") == ()
    # Catalog order, not spec order: deterministic regardless of how
    # the plan was assembled.
    assert plan.components == ["invalidation", "net"]

"""Tests for the fault runtime: hooks, RNG streams, timeline."""

from repro.faults import (
    FaultPlan,
    FaultRuntime,
    FaultSpec,
    current_faults,
    faulted,
    injector_for,
)
from repro.sim import Simulator


def drop_plan(seed=1):
    return FaultPlan(
        seed=seed,
        specs=(FaultSpec("invalidation", "drop-completion"),),
    )


def test_no_runtime_installed_by_default():
    assert current_faults() is None
    assert injector_for("invalidation") is None


def test_faulted_installs_and_restores():
    with faulted(drop_plan()) as runtime:
        assert current_faults() is runtime
        assert injector_for("invalidation") is not None
        # No specs for this component: the site pays nothing.
        assert injector_for("pcie") is None
    assert current_faults() is None


def test_faulted_nesting_restores_outer():
    with faulted(drop_plan(seed=1)) as outer:
        with faulted(drop_plan(seed=2)) as inner:
            assert current_faults() is inner
        assert current_faults() is outer


def test_faulted_accepts_prepared_runtime():
    runtime = FaultRuntime(drop_plan())
    with faulted(runtime) as installed:
        assert installed is runtime


def test_site_ordinals_get_distinct_streams():
    runtime = FaultRuntime(drop_plan())
    first = runtime.injector("invalidation")
    second = runtime.injector("invalidation")
    assert first.site == 0 and second.site == 1
    assert [first.rng.random() for _ in range(4)] != [
        second.rng.random() for _ in range(4)
    ]


def test_streams_stable_across_runtimes():
    draws = []
    for _ in range(2):
        runtime = FaultRuntime(drop_plan(seed=7))
        injector = runtime.injector("invalidation")
        draws.append([injector.rng.random() for _ in range(5)])
    assert draws[0] == draws[1]


def test_clock_binding_stamps_records():
    runtime = FaultRuntime(drop_plan())
    assert runtime.now() == 0.0  # unbound: windows at 0 are active
    sim = Simulator()
    runtime.bind_clock(sim)
    sim.call_after(125.0, lambda: runtime.record("net", "loss", "pkt=1"))
    sim.run()
    assert runtime.injected_faults == 1
    record = runtime.records[0]
    assert record.time_ns == 125.0
    assert record.format() == "125.000 net loss pkt=1"
    assert runtime.timeline_text() == record.format()

"""DESIGN.md's failure-model table must match the fault catalog.

The table in DESIGN.md §9 documents every (component, kind) pair the
injectors implement; `KINDS_BY_COMPONENT` is the code's catalog.  A
kind added to one but not the other means either an undocumented fault
or documentation for a fault that does not exist — both fail here.
"""

import re
from pathlib import Path

from repro.faults.plan import KINDS_BY_COMPONENT

DESIGN = Path(__file__).resolve().parents[2] / "DESIGN.md"

# A table row starting `| `component` `kind` |`.
_ROW = re.compile(r"^\| `([a-z]+)` `([a-z-]+)` \|")


def documented_pairs():
    """(component, kind) pairs from the §9 failure-model table."""
    text = DESIGN.read_text(encoding="utf-8")
    start = text.index("## 9. Failure model")
    end = text.index("\n## ", start)
    section = text[start:end]
    pairs = set()
    for line in section.splitlines():
        match = _ROW.match(line)
        if match is not None:
            pairs.add((match.group(1), match.group(2)))
    return pairs


def catalog_pairs():
    return {
        (component, kind)
        for component, kinds in KINDS_BY_COMPONENT.items()
        for kind in kinds
    }


def test_design_table_matches_kind_catalog():
    documented = documented_pairs()
    catalog = catalog_pairs()
    undocumented = catalog - documented
    phantom = documented - catalog
    assert not undocumented, (
        f"fault kinds missing from DESIGN.md's failure-model table: "
        f"{sorted(undocumented)}"
    )
    assert not phantom, (
        f"DESIGN.md documents fault kinds the catalog does not have: "
        f"{sorted(phantom)}"
    )


def test_design_table_is_not_empty():
    # Guard against the regex silently matching nothing: the catalog
    # has 13 kinds today and only ever grows.
    assert len(documented_pairs()) >= 13

"""Hardened vs. unhardened drivers under invalidation-completion faults.

The acceptance bar (and the point of the hardening): an injected fault
may cost throughput, never safety.  The hardened strict driver retries
and finally degrades to a global flush; a deliberately unhardened
variant that ignores completion statuses leaves stale IOTLB entries
live, and the invariant monitor catches the resulting unsafe access.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec, faulted
from repro.iommu import DmaFault, Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE
from repro.mem import PhysicalMemory
from repro.protection import StrictFamilyDriver
from repro.verify import InvariantMonitor, monitored


class LeakyStrictDriver(StrictFamilyDriver):
    """Strict driver with the hardening removed: fire-and-forget.

    Submits invalidations but never checks the completion status — the
    exact bug class ``_invalidate_robust`` (and lint rule REPRO004)
    exists to prevent.  Test-only.
    """

    def _invalidate_robust(
        self, queue, iova, length, preserve_ptcache, ptcache_only=False
    ):
        return queue.submit_invalidation(
            iova, length, preserve_ptcache, ptcache_only=ptcache_only
        ).cost_ns


DROP_EVERYTHING = FaultPlan(
    seed=1,
    name="drop-all-completions",
    specs=(FaultSpec("invalidation", "drop-completion", probability=1.0),),
)


def build(driver_cls, monitor):
    with monitored(monitor), faulted(DROP_EVERYTHING):
        iommu = Iommu(IommuConfig())
        physmem = PhysicalMemory(1 << 16)
        driver = driver_cls(
            iommu,
            physmem,
            num_cpus=1,
            preserve_ptcache=True,
            contiguous_iova=True,
            batched_invalidation=True,
        )
    return driver, iommu


def test_unhardened_driver_is_caught_by_the_monitor():
    monitor = InvariantMonitor(raise_on_violation=False)
    driver, iommu = build(LeakyStrictDriver, monitor)
    with monitored(monitor):
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        stale = descriptor.slots[0].iova
        driver.translate(stale, "rx")  # device warms the IOTLB
        driver.retire_rx_descriptor(descriptor, core=0)
        # Every completion was dropped and the driver never noticed:
        # the stale translation survives retirement.
        assert iommu.iotlb.contains(stale)
        assert driver.device_can_access(stale)
        # A buggy/malicious device replays the stale translation; it
        # still succeeds, and the access lands outside every live
        # buffer — the monitor must flag it.
        driver.translate(stale, "rx")
    assert not monitor.ok
    assert monitor.violations[0].kind == "dma-out-of-bounds"


def test_hardened_driver_same_fault_stays_safe():
    monitor = InvariantMonitor()  # raising: any violation fails loudly
    driver, iommu = build(StrictFamilyDriver, monitor)
    with monitored(monitor):
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=64)
        stale = descriptor.slots[0].iova
        driver.translate(stale, "rx")
        driver.retire_rx_descriptor(descriptor, core=0)
        # The retry budget was burned, then the driver degraded to a
        # global flush: expensive, but the window is closed.
        assert driver.invalidation_retries >= driver.max_invalidation_retries
        assert driver.degraded_flushes >= 1
        assert not iommu.iotlb.contains(stale)
        assert not driver.device_can_access(stale)
        with pytest.raises(DmaFault):
            driver.translate(stale, "rx")
    assert monitor.ok
    assert monitor.faults_observed == 1


def test_degradation_costs_cpu_not_safety():
    """The hardened retire is strictly more expensive under faults —
    the throughput-for-safety trade the sweep quantifies."""
    iommu = Iommu(IommuConfig())
    physmem = PhysicalMemory(1 << 16)
    clean_driver = StrictFamilyDriver.fns(iommu, physmem, num_cpus=1)
    descriptor, _ = clean_driver.make_rx_descriptor(core=0, pages=64)
    clean_cost = clean_driver.retire_rx_descriptor(descriptor, core=0)

    faulty_driver, _ = build(StrictFamilyDriver, InvariantMonitor())
    descriptor, _ = faulty_driver.make_rx_descriptor(core=0, pages=64)
    faulty_cost = faulty_driver.retire_rx_descriptor(descriptor, core=0)
    assert faulty_cost > clean_cost

"""The fault-sweep experiment: table shape and the safety bar."""

from repro.experiments import sweep_plans
from repro.experiments.faultsweep import FAULTS_HEADERS, fault_sweep
from repro.experiments.settings import RunScale
from repro.faults import FaultPlan, FaultSpec

TINY = RunScale(
    name="tiny",
    warmup_ns=300_000.0,
    measure_ns=900_000.0,
    latency_measure_ns=900_000.0,
)


def test_sweep_plans_cover_every_family():
    plans = sweep_plans(seed=1)
    assert [label for label, _ in plans] == [
        "invalidation",
        "pcie",
        "nic",
        "net",
    ]
    for label, plan in plans:
        assert plan.seed == 1
        assert plan.components == [label]


def test_sweep_plans_windows_scale_with_run():
    _, plan = sweep_plans(seed=1, scale=TINY)[1]  # pcie
    horizon = TINY.warmup_ns + TINY.measure_ns
    for spec in plan.specs:
        assert spec.end_ns <= horizon


def test_fault_sweep_degrades_without_violations():
    result = fault_sweep(scale=TINY, seed=1, flows=3)
    assert result.headers == FAULTS_HEADERS
    labels = [row[0] for row in result.rows]
    assert labels == ["none", "invalidation", "pcie", "nic", "net"]
    baseline = result.rows[0]
    assert baseline[1] > 0  # the fault-free row actually moved data
    violations_col = FAULTS_HEADERS.index("violations")
    faults_col = FAULTS_HEADERS.index("faults")
    for row in result.rows[1:]:
        assert row[faults_col] > 0
        assert row[violations_col] == 0
        # Every fault row carries its deterministic timeline in raw.
        assert row[0] in result.raw
        assert result.raw[row[0]]["timeline"]
    # At least one family visibly lost throughput to the faults.
    assert min(row[1] for row in result.rows[1:]) < 0.9 * baseline[1]


def test_fault_sweep_accepts_custom_plan():
    plan = FaultPlan(
        seed=4,
        name="custom",
        specs=(FaultSpec("net", "loss", probability=0.01),),
    )
    result = fault_sweep(scale=TINY, seed=4, flows=2, plan=plan)
    assert [row[0] for row in result.rows] == ["none", "custom"]
    assert "custom" in result.raw

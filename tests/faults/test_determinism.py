"""Determinism of injected faults: the acceptance contract is that
identical (seed, plan, workload) yields **byte-identical** fault
timelines — in process and across interpreter processes with different
hash seeds."""

import os
import pathlib
import subprocess
import sys

import repro
from repro.apps.iperf import run_iperf
from repro.faults import FaultPlan, FaultSpec, faulted

MIXED_PLAN_CODE = """
from repro.apps.iperf import run_iperf
from repro.faults import FaultPlan, FaultSpec, faulted

plan = FaultPlan(seed=7, name="mix", specs=(
    FaultSpec("invalidation", "drop-completion", probability=0.5),
    FaultSpec("pcie", "nack-replay", probability=0.3, magnitude=1500.0),
    FaultSpec("nic", "doorbell-drop", probability=0.2, magnitude=50000.0),
    FaultSpec("net", "loss", probability=0.01),
))
with faulted(plan) as runtime:
    run_iperf("fns", flows=2, warmup_ns=200000.0, measure_ns=600000.0)
print(runtime.timeline_text())
"""


def mixed_plan(seed):
    return FaultPlan(
        seed=seed,
        name="mix",
        specs=(
            FaultSpec("invalidation", "drop-completion", probability=0.5),
            FaultSpec("net", "loss", probability=0.01),
        ),
    )


def timeline(seed):
    with faulted(mixed_plan(seed)) as runtime:
        run_iperf("fns", flows=2, warmup_ns=200_000.0, measure_ns=600_000.0)
    return runtime.timeline_text()


def test_same_seed_same_timeline_in_process():
    first = timeline(seed=5)
    second = timeline(seed=5)
    assert first  # the plan actually injected something
    assert first == second


def test_different_seeds_differ():
    assert timeline(seed=5) != timeline(seed=6)


def test_timeline_identical_across_processes():
    """Two interpreters with different PYTHONHASHSEEDs must print the
    same fault timeline byte for byte."""
    src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
    outputs = set()
    for hash_seed in ("0", "12345"):
        result = subprocess.run(
            [sys.executable, "-c", MIXED_PLAN_CODE],
            capture_output=True,
            text=True,
            env={
                "PYTHONHASHSEED": hash_seed,
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": src_dir + os.pathsep + os.environ.get(
                    "PYTHONPATH", ""
                ),
            },
        )
        assert result.returncode == 0, result.stderr
        outputs.add(result.stdout)
    assert len(outputs) == 1
    assert outputs.pop().strip()  # non-empty: faults were injected

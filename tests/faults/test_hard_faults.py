"""Hard-fault latch semantics and fault-window edge cases.

Hard kinds (`wedge-invq`, `device-wedge`) latch on their first rolled
in-window opportunity, persist past the window's end, and clear only on
an explicit reset — exactly once.  The window tests pin the documented
start-inclusive / end-exclusive activation contract, and the magnitude
tests pin the partial-completion edge values (0.0 falls back to the
default fraction; 1.0 clamps to pages - 1 so a "partial" completion is
never total).
"""

import math

from repro.faults import FaultPlan, FaultSpec, faulted
from repro.faults.injectors import DEFAULT_PARTIAL_FRACTION
from repro.faults.runtime import FaultRuntime
from repro.iommu import Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE
from repro.iommu.invalidation import InvalidationStatus


def plan_for(kind, probability=1.0, magnitude=0.0, seed=1):
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                "invalidation",
                kind,
                probability=probability,
                magnitude=magnitude,
            ),
        ),
    )


def faulted_iommu(plan):
    with faulted(plan):
        # The queue captures its injector at construction time.
        iommu = Iommu(IommuConfig(invalidation_cpu_ns=250.0))
    return iommu


def warm(iommu, base, pages):
    for page in range(pages):
        iommu.map_page(base + page * PAGE_SIZE, page)
        iommu.translate(base + page * PAGE_SIZE)


class Clock:
    """Settable stand-in for the simulator's clock."""

    def __init__(self, now=0.0):
        self.now = now


def runtime_at(plan, now=0.0):
    runtime = FaultRuntime(plan)
    runtime.bind_clock(Clock(now))
    return runtime


def windowed_plan(component, kind, start, end, probability=1.0):
    return FaultPlan(
        seed=3,
        specs=(
            FaultSpec(
                component,
                kind,
                start_ns=start,
                end_ns=end,
                probability=probability,
            ),
        ),
    )


# ---------------------------------------------------------------------------
# wedge-invq: latch, persistence, one-shot clear
# ---------------------------------------------------------------------------
def test_wedge_latches_only_inside_window():
    plan = windowed_plan("invalidation", "wedge-invq", 1_000.0, 2_000.0)
    runtime = runtime_at(plan, now=500.0)
    injector = runtime.injector("invalidation")
    status, _, done = injector.outcome(0x1000, PAGE_SIZE, 250.0)
    assert status == "completed"
    assert done == PAGE_SIZE
    assert not injector.wedged


def test_wedge_persists_past_window_until_reset():
    plan = windowed_plan("invalidation", "wedge-invq", 1_000.0, 2_000.0)
    runtime = runtime_at(plan, now=1_500.0)
    clock = runtime.sim
    injector = runtime.injector("invalidation")

    status, extra, done = injector.outcome(0x1000, PAGE_SIZE, 250.0)
    assert (status, done) == ("dropped", 0)
    assert extra > 0.0
    assert injector.wedged
    assert runtime.unrecovered_wedges() == 1

    # Past the window's end the wedge still drops every submit: a hung
    # queue does not heal when the fault window closes.
    clock.now = 5_000.0
    status, _, done = injector.outcome(0x2000, PAGE_SIZE, 250.0)
    assert (status, done) == ("dropped", 0)
    assert injector.wedged

    injector.notify_reset()
    assert not injector.wedged
    assert runtime.unrecovered_wedges() == 0
    status, _, done = injector.outcome(0x3000, PAGE_SIZE, 250.0)
    assert (status, done) == ("completed", PAGE_SIZE)


def test_wedge_clear_is_one_shot():
    # After a reset the same window must not deterministically re-latch
    # on the very next opportunity, or recovery could never complete.
    plan = windowed_plan("invalidation", "wedge-invq", 1_000.0, 2_000.0)
    runtime = runtime_at(plan, now=1_200.0)
    injector = runtime.injector("invalidation")
    injector.outcome(0x1000, PAGE_SIZE, 250.0)
    assert injector.wedged
    injector.notify_reset()
    # Still inside the window: no re-latch.
    status, _, _ = injector.outcome(0x2000, PAGE_SIZE, 250.0)
    assert status == "completed"
    assert not injector.wedged


def test_wedge_timeline_records_latch_and_clear_only():
    plan = windowed_plan("invalidation", "wedge-invq", 0.0, 2_000.0)
    runtime = runtime_at(plan)
    injector = runtime.injector("invalidation")
    for offset in range(4):
        injector.outcome(0x1000 + offset * PAGE_SIZE, PAGE_SIZE, 250.0)
    injector.notify_reset()
    kinds = [record.detail for record in runtime.records]
    # One latch record, one clear record — not one per dropped submit.
    assert len(runtime.records) == 2
    assert "latched" in kinds[0]
    assert "cleared by reset" in kinds[1]


# ---------------------------------------------------------------------------
# device-wedge: the NIC-side latch
# ---------------------------------------------------------------------------
def test_device_wedge_stalls_forever_until_reset():
    plan = windowed_plan("nic", "device-wedge", 1_000.0, 2_000.0)
    runtime = runtime_at(plan, now=1_500.0)
    clock = runtime.sim
    injector = runtime.injector("nic")

    assert injector.stall_until() == math.inf
    assert injector.wedged
    clock.now = 9_000.0  # long past the window
    assert injector.stall_until() == math.inf

    injector.notify_reset()
    assert not injector.wedged
    assert injector.stall_until() is None


def test_device_wedge_inactive_outside_window():
    plan = windowed_plan("nic", "device-wedge", 1_000.0, 2_000.0)
    runtime = runtime_at(plan, now=0.0)
    injector = runtime.injector("nic")
    assert injector.stall_until() is None
    assert not injector.wedged


# ---------------------------------------------------------------------------
# fault-storm: per-translation spurious aborts
# ---------------------------------------------------------------------------
def test_fault_storm_fires_only_inside_window():
    plan = windowed_plan("iommu", "fault-storm", 1_000.0, 2_000.0)
    runtime = runtime_at(plan, now=1_500.0)
    clock = runtime.sim
    injector = runtime.injector("iommu")
    assert injector.spurious_fault(0x1000, "rx")
    clock.now = 2_000.0
    assert not injector.spurious_fault(0x1000, "rx")
    # A storm is transient, never a latched wedge.
    assert not injector.wedged


# ---------------------------------------------------------------------------
# Window boundaries: start-inclusive, end-exclusive
# ---------------------------------------------------------------------------
def test_window_start_is_inclusive():
    plan = windowed_plan("invalidation", "drop-completion", 1_000.0, 2_000.0)
    runtime = runtime_at(plan, now=1_000.0)
    injector = runtime.injector("invalidation")
    status, _, _ = injector.outcome(0x1000, PAGE_SIZE, 250.0)
    assert status == "dropped"


def test_window_end_is_exclusive():
    plan = windowed_plan("invalidation", "drop-completion", 1_000.0, 2_000.0)
    runtime = runtime_at(plan, now=2_000.0)
    injector = runtime.injector("invalidation")
    status, _, done = injector.outcome(0x1000, PAGE_SIZE, 250.0)
    assert (status, done) == ("completed", PAGE_SIZE)


def test_window_just_before_start_is_inactive():
    plan = windowed_plan("invalidation", "drop-completion", 1_000.0, 2_000.0)
    runtime = runtime_at(plan, now=999.0)
    injector = runtime.injector("invalidation")
    status, _, _ = injector.outcome(0x1000, PAGE_SIZE, 250.0)
    assert status == "completed"


# ---------------------------------------------------------------------------
# Partial-completion magnitude edges (through the real queue)
# ---------------------------------------------------------------------------
def test_partial_magnitude_zero_uses_default_fraction():
    iommu = faulted_iommu(plan_for("partial-completion", magnitude=0.0))
    warm(iommu, 0x600000, 4)
    result = iommu.invalidation_queue.submit_invalidation(
        0x600000, 4 * PAGE_SIZE, preserve_ptcache=True
    )
    assert result.status is InvalidationStatus.PARTIAL
    expected = int(4 * DEFAULT_PARTIAL_FRACTION) * PAGE_SIZE
    assert result.completed_length == expected


def test_partial_magnitude_one_clamps_to_all_but_last_page():
    # magnitude=1.0 would otherwise complete the whole range, turning
    # "partial" into a lie; the injector clamps to pages - 1 so the
    # last page always survives as the stale suffix the driver must
    # re-invalidate.
    iommu = faulted_iommu(plan_for("partial-completion", magnitude=1.0))
    warm(iommu, 0x700000, 4)
    result = iommu.invalidation_queue.submit_invalidation(
        0x700000, 4 * PAGE_SIZE, preserve_ptcache=True
    )
    assert result.status is InvalidationStatus.PARTIAL
    assert result.completed_length == 3 * PAGE_SIZE
    assert iommu.iotlb.contains(0x700000 + 3 * PAGE_SIZE)
    assert not iommu.iotlb.contains(0x700000)

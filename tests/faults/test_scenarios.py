"""End-to-end fault scenarios: every injector family, full testbed.

One scenario per family, each run under a raising
:class:`InvariantMonitor`: the workload must lose throughput relative
to a fault-free baseline while producing **zero** invariant violations.
"""

import pytest

from repro.apps.iperf import run_iperf
from repro.faults import FaultPlan, FaultSpec, faulted
from repro.verify import InvariantMonitor, monitored

WARMUP_NS = 500_000.0
MEASURE_NS = 1_500_000.0
HORIZON = WARMUP_NS + MEASURE_NS
WATCHDOG_NS = 500_000.0


def run_point(plan):
    """One monitored iperf point; returns (result, injected, monitor)."""
    monitor = InvariantMonitor()  # raising: violations fail the test
    injected = 0
    with monitored(monitor):
        if plan is None:
            point = run_iperf(
                "fns",
                flows=3,
                warmup_ns=WARMUP_NS,
                measure_ns=MEASURE_NS,
                strict_until=True,
                watchdog_interval_ns=WATCHDOG_NS,
            )
        else:
            with faulted(plan) as runtime:
                point = run_iperf(
                    "fns",
                    flows=3,
                    warmup_ns=WARMUP_NS,
                    measure_ns=MEASURE_NS,
                    strict_until=True,
                    watchdog_interval_ns=WATCHDOG_NS,
                )
            injected = runtime.injected_faults
    return point, injected, monitor


@pytest.fixture(scope="module")
def baseline_gbps():
    point, _, monitor = run_point(None)
    assert monitor.ok
    assert point.rx_goodput_gbps > 0
    return point.rx_goodput_gbps


def assert_degraded_but_safe(plan, baseline_gbps):
    point, injected, monitor = run_point(plan)
    assert injected > 0, "plan injected nothing; scenario is vacuous"
    assert monitor.ok
    assert len(monitor.violations) == 0
    assert point.rx_goodput_gbps < 0.95 * baseline_gbps
    return point


def test_invalidation_faults_degrade_but_stay_safe(baseline_gbps):
    plan = FaultPlan(
        seed=3,
        name="invalidation",
        specs=(
            FaultSpec(
                "invalidation",
                "drop-completion",
                WARMUP_NS,
                HORIZON,
                probability=1.0,
            ),
        ),
    )
    point = assert_degraded_but_safe(plan, baseline_gbps)
    # The drivers visibly paid for safety.
    assert point.extras["invalidation_retries"] > 0
    assert point.extras["degraded_flushes"] > 0
    assert point.extras["dropped_completions"] > 0


def test_pcie_faults_degrade_but_stay_safe(baseline_gbps):
    plan = FaultPlan(
        seed=3,
        name="pcie",
        specs=(
            FaultSpec(
                "pcie",
                "link-flap",
                WARMUP_NS + 0.1 * MEASURE_NS,
                WARMUP_NS + 0.25 * MEASURE_NS,
            ),
            FaultSpec(
                "pcie",
                "nack-replay",
                0.0,
                HORIZON,
                probability=0.5,
                magnitude=2_000.0,
            ),
        ),
    )
    assert_degraded_but_safe(plan, baseline_gbps)


def test_nic_faults_degrade_but_stay_safe(baseline_gbps):
    plan = FaultPlan(
        seed=3,
        name="nic",
        specs=(
            FaultSpec(
                "nic",
                "ring-stall",
                WARMUP_NS + 0.2 * MEASURE_NS,
                WARMUP_NS + 0.45 * MEASURE_NS,
            ),
            FaultSpec(
                "nic",
                "doorbell-drop",
                0.0,
                HORIZON,
                probability=0.2,
                magnitude=100_000.0,
            ),
        ),
    )
    assert_degraded_but_safe(plan, baseline_gbps)


def test_net_faults_degrade_but_stay_safe(baseline_gbps):
    plan = FaultPlan(
        seed=3,
        name="net",
        specs=(
            FaultSpec(
                "net", "loss", WARMUP_NS, HORIZON, probability=0.005
            ),
            FaultSpec(
                "net",
                "reorder",
                WARMUP_NS,
                HORIZON,
                probability=0.05,
                magnitude=10_000.0,
            ),
        ),
    )
    assert_degraded_but_safe(plan, baseline_gbps)

"""``run_points`` + result cache: warm cells skip execution entirely.

Uses pid-stamping and counting scratch runners: a warm cell returns
the *stored* value (including the pid that computed it), so equality
across runs proves no re-execution, on the serial and pooled paths
alike.
"""

import os

import pytest

from repro.cache.hooks import result_cached
from repro.cache.store import ResultCache
from repro.experiments.points import POINT_RUNNERS
from repro.experiments.settings import QUICK
from repro.faults import FaultPlan, faulted
from repro.obs import MetricsRegistry, SpanTracer, observed
from repro.parallel import PointSpec, RemotePointError, run_points
from repro.verify import InvariantMonitor, monitored
from repro.verify.events import Event
from repro.verify.violation import InvariantViolation

COUNTED: list[str] = []


def _counting_point(spec, scale):
    COUNTED.append(spec.label)
    return {"label": spec.label, "x": spec.x, "pid": os.getpid()}


def _violating_point(spec, scale):
    event = Event()
    raise InvariantViolation(
        "use-after-unmap", f"boom in {spec.label}", event, [event]
    )


@pytest.fixture(autouse=True)
def scratch_runners():
    COUNTED.clear()
    POINT_RUNNERS["t-count"] = _counting_point
    POINT_RUNNERS["t-violate"] = _violating_point
    yield
    POINT_RUNNERS.pop("t-count", None)
    POINT_RUNNERS.pop("t-violate", None)


def specs_for(runner, count=4, payload=None):
    return [
        PointSpec(
            figure="T",
            runner=runner,
            mode="off",
            x=x,
            label=f"T off x={x}",
            seed=x,
            payload=payload,
        )
        for x in range(count)
    ]


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    store = ResultCache(str(tmp_path / "store"))
    monkeypatch.setattr(
        type(store), "fingerprint_for", lambda self, key: "pinned"
    )
    return store


class TestWarmPath:
    def test_serial_warm_run_executes_nothing(self, cache):
        specs = specs_for("t-count")
        with result_cached(cache):
            cold = run_points(specs, QUICK)
            assert len(COUNTED) == 4
            warm = run_points(specs, QUICK)
        assert len(COUNTED) == 4
        assert warm == cold  # stored values, stored pids

    def test_pooled_cold_then_serial_warm(self, cache):
        specs = specs_for("t-count")
        with result_cached(cache):
            cold = run_points(specs, QUICK, jobs=2)
            warm = run_points(specs, QUICK)  # jobs=None: same store
        assert warm == cold
        # The parent never executed a cell: cold values carry worker
        # pids, and the warm run returned exactly those.
        assert all(v["pid"] != os.getpid() for v in warm)
        assert COUNTED == []  # counting happened in the workers

    def test_mixed_sweep_executes_only_cold_cells(self, cache):
        with result_cached(cache):
            run_points(specs_for("t-count", count=2), QUICK)
            assert len(COUNTED) == 2
            values = run_points(specs_for("t-count", count=4), QUICK)
        assert len(COUNTED) == 4  # only x=2,3 were cold
        assert [v["x"] for v in values] == [0, 1, 2, 3]
        assert COUNTED[2:] == ["T off x=2", "T off x=3"]

    def test_phases_identical_cold_and_warm(self, cache):
        specs = specs_for("t-count")
        with result_cached(cache):
            cold_registry = MetricsRegistry()
            with observed(cold_registry):
                run_points(specs, QUICK)
            warm_registry = MetricsRegistry()
            with observed(warm_registry):
                run_points(specs, QUICK)
        assert cold_registry.report() == warm_registry.report()

    def test_phase_labels_match_serial_run(self, cache):
        specs = specs_for("t-count")
        with result_cached(cache):
            registry = MetricsRegistry()
            with observed(registry):
                run_points(specs, QUICK)
        assert [p.label for p in registry.phases] == [
            s.label for s in specs
        ]


class TestBypass:
    def run_twice(self, specs, ctx, cache):
        with result_cached(cache), ctx:
            run_points(specs, QUICK)
            run_points(specs, QUICK)

    def test_payload_specs_bypass(self, cache):
        specs = specs_for("t-count", payload={"plan": "x"})
        import contextlib

        self.run_twice(specs, contextlib.nullcontext(), cache)
        assert len(COUNTED) == 8  # executed both times, no caching
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_monitor_bypasses(self, cache):
        self.run_twice(
            specs_for("t-count"), monitored(InvariantMonitor()), cache
        )
        assert len(COUNTED) == 8
        assert cache.stats.hits == 0

    def test_fault_runtime_bypasses(self, cache):
        plan = FaultPlan(seed=1, name="empty", specs=())
        self.run_twice(specs_for("t-count"), faulted(plan), cache)
        assert len(COUNTED) == 8
        assert cache.stats.hits == 0

    def test_tracer_bypasses(self, cache):
        registry = MetricsRegistry(tracer=SpanTracer())
        self.run_twice(specs_for("t-count"), observed(registry), cache)
        assert len(COUNTED) == 8
        assert cache.stats.hits == 0


class TestErrors:
    def test_cold_violation_raises_remote_point_error(self, cache):
        with result_cached(cache):
            with pytest.raises(RemotePointError, match="boom"):
                run_points(specs_for("t-violate", count=2), QUICK)

    def test_violation_after_warm_cells_adopts_their_phases(self, cache):
        good = specs_for("t-count", count=2)
        with result_cached(cache):
            # Warm the good cells under the same observation shape the
            # mixed run will use (collect=True is part of the key).
            with observed(MetricsRegistry()):
                run_points(good, QUICK)
            mixed = good + [
                PointSpec(
                    figure="T",
                    runner="t-violate",
                    mode="off",
                    x=9,
                    label="T off x=9",
                    seed=9,
                )
            ]
            registry = MetricsRegistry()
            with observed(registry), pytest.raises(RemotePointError):
                run_points(mixed, QUICK)
        # The two warm cells' phases landed before the error, exactly
        # like a serial sweep that died on its third point.
        assert [p.label for p in registry.phases] == [
            "T off x=0", "T off x=1"
        ]
        assert len(COUNTED) == 2  # the violating cell never re-ran them

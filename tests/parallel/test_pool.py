"""``run_points``: ordering, serial fallbacks, error transport, adoption.

These tests register throwaway point runners directly in
``POINT_RUNNERS``; workers inherit the registration because Linux
multiprocessing forks (the real runners are importable either way).
"""

import os

import pytest

from repro.experiments.points import POINT_RUNNERS
from repro.experiments.settings import QUICK
from repro.faults import FaultPlan, faulted
from repro.obs import MetricsRegistry, SpanTracer, observed
from repro.parallel import PointSpec, RemotePointError, run_points
from repro.verify import InvariantMonitor, monitored
from repro.verify.events import Event
from repro.verify.violation import InvariantViolation


def _pid_point(spec, scale):
    return {"label": spec.label, "x": spec.x, "pid": os.getpid()}


def _violating_point(spec, scale):
    event = Event()
    raise InvariantViolation(
        "use-after-unmap", f"boom in {spec.label}", event, [event]
    )


def _crashing_point(spec, scale):
    raise RuntimeError("worker infrastructure failure")


@pytest.fixture()
def scratch_runners():
    names = []

    def register(name, fn):
        POINT_RUNNERS[name] = fn
        names.append(name)
        return name

    yield register
    for name in names:
        POINT_RUNNERS.pop(name, None)


def specs_for(runner, count=4):
    return [
        PointSpec(
            figure="T",
            runner=runner,
            mode="off",
            x=x,
            label=f"T off x={x}",
            seed=x,
        )
        for x in range(count)
    ]


class TestRunPoints:
    def test_unknown_runner_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown point runner"):
            run_points(specs_for("no-such-runner", 1), QUICK)

    def test_negative_jobs_rejected(self, scratch_runners):
        runner = scratch_runners("t-pid", _pid_point)
        with pytest.raises(ValueError):
            run_points(specs_for(runner), QUICK, jobs=-1)

    def test_serial_results_in_spec_order(self, scratch_runners):
        runner = scratch_runners("t-pid", _pid_point)
        values = run_points(specs_for(runner), QUICK)
        assert [v["x"] for v in values] == [0, 1, 2, 3]
        assert all(v["pid"] == os.getpid() for v in values)

    def test_parallel_runs_in_workers_and_keeps_order(
        self, scratch_runners
    ):
        runner = scratch_runners("t-pid", _pid_point)
        values = run_points(specs_for(runner), QUICK, jobs=2)
        assert [v["x"] for v in values] == [0, 1, 2, 3]
        # Work actually moved out of this process.
        assert all(v["pid"] != os.getpid() for v in values)

    def test_single_point_stays_serial(self, scratch_runners):
        runner = scratch_runners("t-pid", _pid_point)
        values = run_points(specs_for(runner, count=1), QUICK, jobs=8)
        assert values[0]["pid"] == os.getpid()

    def test_monitor_forces_serial(self, scratch_runners):
        runner = scratch_runners("t-pid", _pid_point)
        with monitored(InvariantMonitor()):
            values = run_points(specs_for(runner), QUICK, jobs=2)
        assert all(v["pid"] == os.getpid() for v in values)

    def test_fault_runtime_forces_serial(self, scratch_runners):
        runner = scratch_runners("t-pid", _pid_point)
        with faulted(FaultPlan(seed=1, name="empty", specs=())):
            values = run_points(specs_for(runner), QUICK, jobs=2)
        assert all(v["pid"] == os.getpid() for v in values)

    def test_tracer_forces_serial(self, scratch_runners):
        runner = scratch_runners("t-pid", _pid_point)
        registry = MetricsRegistry(tracer=SpanTracer())
        with observed(registry):
            values = run_points(specs_for(runner), QUICK, jobs=2)
        assert all(v["pid"] == os.getpid() for v in values)
        # The serial path still labels one phase per point.
        assert [p.label for p in registry.phases] == [
            s.label for s in specs_for(runner)
        ]

    def test_violation_in_worker_raises_remote_point_error(
        self, scratch_runners
    ):
        runner = scratch_runners("t-boom", _violating_point)
        with pytest.raises(RemotePointError) as info:
            run_points(specs_for(runner), QUICK, jobs=2)
        error = info.value
        assert error.label.startswith("T off x=")
        assert error.kind == "use-after-unmap"
        assert "boom in" in error.format_trace()

    def test_other_worker_exceptions_propagate_as_is(
        self, scratch_runners
    ):
        runner = scratch_runners("t-crash", _crashing_point)
        with pytest.raises(RuntimeError, match="infrastructure"):
            run_points(specs_for(runner), QUICK, jobs=2)

    def test_parallel_phases_match_serial_phases(self, scratch_runners):
        runner = scratch_runners("t-pid", _pid_point)
        serial = MetricsRegistry()
        with observed(serial):
            run_points(specs_for(runner), QUICK)
        parallel = MetricsRegistry()
        with observed(parallel):
            run_points(specs_for(runner), QUICK, jobs=2)
        assert parallel.report() == serial.report()


class TestChunking:
    def test_invalid_chunk_rejected(self, scratch_runners):
        runner = scratch_runners("t-pid", _pid_point)
        with pytest.raises(ValueError, match="chunk"):
            run_points(specs_for(runner), QUICK, jobs=2, chunk=0)

    @pytest.mark.parametrize("chunk", [1, 3, 99])
    def test_results_identical_for_every_chunk_size(
        self, scratch_runners, chunk
    ):
        runner = scratch_runners("t-pid", _pid_point)
        serial = run_points(specs_for(runner, count=5), QUICK)
        pooled = run_points(
            specs_for(runner, count=5), QUICK, jobs=2, chunk=chunk
        )
        strip = lambda vs: [  # noqa: E731 - pids intentionally differ
            {k: v for k, v in value.items() if k != "pid"} for value in vs
        ]
        assert strip(pooled) == strip(serial)

    def test_violation_transported_from_chunk(self, scratch_runners):
        boom = scratch_runners("t-boom", _violating_point)
        with pytest.raises(RemotePointError) as info:
            run_points(specs_for(boom), QUICK, jobs=2, chunk=3)
        assert info.value.kind == "use-after-unmap"

    def test_chunk_stops_at_failing_point_but_keeps_earlier_phases(
        self, scratch_runners
    ):
        pid = scratch_runners("t-pid", _pid_point)
        boom = scratch_runners("t-boom", _violating_point)
        specs = specs_for(pid, count=2) + specs_for(boom, count=1)
        registry = MetricsRegistry()
        with observed(registry):
            with pytest.raises(RemotePointError):
                run_points(specs, QUICK, jobs=2, chunk=3)
        # The two completed points' phases were adopted before the
        # error re-raised; the failing point's phase is not.
        assert [p.label for p in registry.phases] == [
            s.label for s in specs[:2]
        ]


class TestWarmPool:
    def test_pool_persists_across_sweeps(self, scratch_runners):
        from repro.parallel import pool_forks, shutdown_pool

        shutdown_pool()
        runner = scratch_runners("t-pid", _pid_point)
        forks_before = pool_forks()
        run_points(specs_for(runner), QUICK, jobs=2)
        after_first = pool_forks()
        # The regression this guards: each sweep used to build (and
        # tear down) its own executor.  A second sweep through the same
        # pool must not fork again.
        run_points(specs_for(runner), QUICK, jobs=2)
        run_points(specs_for(runner), QUICK, jobs=2, chunk=2)
        assert after_first == forks_before + 1
        assert pool_forks() == after_first

    def test_new_runner_registration_reforks(self, scratch_runners):
        from repro.parallel import pool_forks, shutdown_pool

        shutdown_pool()
        runner = scratch_runners("t-pid", _pid_point)
        run_points(specs_for(runner), QUICK, jobs=2)
        baseline = pool_forks()
        # Registering another runner changes the registry token; the
        # next sweep must re-fork so workers see the registration.
        other = scratch_runners("t-pid-2", _pid_point)
        values = run_points(specs_for(other), QUICK, jobs=2)
        assert pool_forks() == baseline + 1
        assert [v["x"] for v in values] == [0, 1, 2, 3]


class TestAdoptPhase:
    def payload(self):
        source = MetricsRegistry()
        source.begin_phase("cell")
        count = {"n": 0.0}
        scope = source.scope("nic")
        scope.counter("arrived", lambda: count["n"])
        count["n"] = 7.0
        return source.report()["phases"][0]

    def test_round_trips_to_identical_report_entry(self):
        payload = self.payload()
        parent = MetricsRegistry()
        parent.begin_phase("before")
        adopted = parent.adopt_phase(payload)
        entry = parent.report()["phases"][1]
        assert adopted.index == 1
        assert entry["label"] == "cell"
        assert entry["final"] == {"nic.arrived": 7.0}
        assert entry["kinds"] == {"nic.arrived": "counter"}
        index_free = {k: v for k, v in entry.items() if k != "index"}
        payload_free = {k: v for k, v in payload.items() if k != "index"}
        assert index_free == payload_free

    def test_adopted_phase_is_frozen(self):
        parent = MetricsRegistry()
        adopted = parent.adopt_phase(self.payload())
        assert adopted.sim_attached  # attach_simulator must not reuse it
        assert adopted.read_all() == {"nic.arrived": 7.0}

    def test_adoption_finalizes_previous_phase(self):
        parent = MetricsRegistry()
        parent.begin_phase("before")
        parent.adopt_phase(self.payload())
        assert parent.phases[0].final is not None

    def test_summary_rows_cover_adopted_phases(self):
        parent = MetricsRegistry()
        parent.adopt_phase(self.payload())
        _headers, rows = parent.summary_rows()
        assert rows[0][0] == "cell"

"""Per-point seed derivation: pure, stable, collision-averse.

The whole serial/parallel equivalence story rests on these seeds being
a function of the cell coordinates alone — any dependence on process
identity, schedule order or interpreter salt would make a worker's
point diverge from its serial twin.
"""

import os
import subprocess
import sys

from repro.parallel import derive_seed


class TestDeriveSeed:
    def test_same_cell_same_seed(self):
        assert derive_seed(1, "Fig 2", "strict", 20) == derive_seed(
            1, "Fig 2", "strict", 20
        )

    def test_every_coordinate_matters(self):
        base = derive_seed(1, "Fig 2", "strict", 20)
        assert derive_seed(2, "Fig 2", "strict", 20) != base
        assert derive_seed(1, "Fig 3", "strict", 20) != base
        assert derive_seed(1, "Fig 2", "off", 20) != base
        assert derive_seed(1, "Fig 2", "strict", 40) != base

    def test_repr_distinguishes_value_types(self):
        # Faults sweeps use string x values; 1 and "1" are distinct cells.
        assert derive_seed(1, "F", "m", 1) != derive_seed(1, "F", "m", "1")

    def test_grid_has_no_collisions(self):
        seeds = {
            derive_seed(seed, figure, mode, x)
            for seed in (1, 2)
            for figure in ("Fig 2", "Fig 3", "Fig 9")
            for mode in ("off", "strict", "fns")
            for x in (5, 10, 20, 40)
        }
        assert len(seeds) == 2 * 3 * 3 * 4

    def test_fits_positive_int64(self):
        for x in range(64):
            seed = derive_seed(1, "F", "m", x)
            assert 0 <= seed < 2**63

    def test_pinned_values_are_platform_stable(self):
        # Regression pins: the scheme is SHA-256 over a readable key,
        # never hash(), so these exact constants must hold on every
        # platform, process and Python version.  A change here breaks
        # reproducibility of every recorded report/seeded run.
        assert derive_seed(1, "Fig 2", "strict", 20) == 1356013154314119192
        assert derive_seed(7, "Fig 9", "fns", 16384) == 1940712612786761990
        assert (
            derive_seed(1, "Faults", "fns", "pcie") == 2866524879951999007
        )

    def test_same_seed_in_a_fresh_process(self):
        # Cross-process stability, checked for real: a fresh interpreter
        # (fresh hash salt) must derive the identical seed.
        expected = derive_seed(7, "Fig 9", "fns", 16384)
        code = (
            "from repro.parallel import derive_seed;"
            "print(derive_seed(7, 'Fig 9', 'fns', 16384))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env=dict(os.environ),
        )
        assert int(out.stdout.strip()) == expected

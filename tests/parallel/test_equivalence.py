"""Serial/parallel equivalence: ``--jobs N`` must change nothing.

The acceptance bar for the parallel executor: rows, raw point results,
adopted metric phases and the generated reproduce reports are
byte-identical between ``jobs=1`` and ``jobs=N``.  Runs use a micro
scale and reduced grids to keep the suite fast; the cells still cross
worker boundaries (more points than workers).
"""

import json

from repro.experiments import RunScale, fault_sweep, fig2_flows
from repro.experiments.faultsweep import sweep_plans
from repro.obs import MetricsRegistry, observed
from repro.obs.expectations import SPECS
from repro.obs.expect.reproduce import run_reproduce

MICRO = RunScale(
    name="micro",
    warmup_ns=1_000_000.0,
    measure_ns=2_000_000.0,
    latency_measure_ns=4_000_000.0,
)


def run_fig2(jobs, chunk=None):
    registry = MetricsRegistry(sample_interval_ns=500_000.0)
    with observed(registry):
        result = fig2_flows(
            modes=("off", "strict"),
            flows=(5, 10),
            scale=MICRO,
            jobs=jobs,
            chunk=chunk,
        )
    return result, registry.report()


class TestFigureEquivalence:
    def test_fig2_rows_metrics_and_raw_identical(self):
        serial, serial_metrics = run_fig2(jobs=None)
        pooled, pooled_metrics = run_fig2(jobs=3)
        assert pooled.rows == serial.rows
        # Raw per-point results (TestbedResult dataclasses) compare
        # field-by-field, including extras and allocation traces.
        assert pooled.raw == serial.raw
        # Metric phases adopted from workers are indistinguishable from
        # serially recorded ones, down to the JSON byte level.
        assert json.dumps(pooled_metrics, sort_keys=True) == json.dumps(
            serial_metrics, sort_keys=True
        )

    def test_chunk_boundaries_invisible(self):
        # jobs × chunk cells: chunk 1 (worst-case per-point dispatch),
        # a prime that straddles worker boundaries unevenly, and a
        # chunk larger than the whole sweep (single dispatch).  All
        # must reproduce the serial result exactly.
        serial, serial_metrics = run_fig2(jobs=None)
        serial_blob = json.dumps(serial_metrics, sort_keys=True)
        for jobs, chunk in ((2, 1), (2, 3), (4, 3), (4, 99)):
            pooled, pooled_metrics = run_fig2(jobs=jobs, chunk=chunk)
            assert pooled.rows == serial.rows, (jobs, chunk)
            assert pooled.raw == serial.raw, (jobs, chunk)
            assert (
                json.dumps(pooled_metrics, sort_keys=True) == serial_blob
            ), (jobs, chunk)

    def test_fault_sweep_rows_identical(self):
        label, plan = sweep_plans(seed=1, scale=MICRO)[0]
        serial = fault_sweep(scale=MICRO, plan=plan, jobs=None)
        pooled = fault_sweep(scale=MICRO, plan=plan, jobs=2)
        assert pooled.rows == serial.rows
        assert pooled.raw.keys() == serial.raw.keys()
        assert (
            pooled.raw[label]["timeline"] == serial.raw[label]["timeline"]
        )


def fig2_reduced(scale, jobs=None, chunk=None, seed=1):
    return fig2_flows(
        modes=("off", "strict"),
        flows=(5, 10),
        scale=scale,
        jobs=jobs,
        chunk=chunk,
        seed=seed,
    )


class TestReproduceEquivalence:
    def reproduce(self, tmp_path, jobs, chunk=None):
        out = tmp_path / f"jobs{jobs}chunk{chunk}"
        out.mkdir()
        status = run_reproduce(
            ["fig2"],
            scale=MICRO,
            jobs=jobs,
            chunk=chunk,
            report_path=str(out / "REPORT.md"),
            json_path=str(out / "report.json"),
            runners={"fig2": fig2_reduced},
            specs={"fig2": SPECS["fig2"]},
            echo=lambda _: None,
        )
        return (
            status,
            (out / "REPORT.md").read_text(),
            (out / "report.json").read_text(),
        )

    def test_reports_byte_identical_across_jobs(self, tmp_path):
        serial_status, serial_md, serial_json = self.reproduce(tmp_path, 1)
        pooled_status, pooled_md, pooled_json = self.reproduce(tmp_path, 4)
        assert pooled_status == serial_status
        assert pooled_md == serial_md
        assert pooled_json == serial_json
        # A non-default chunk must be equally invisible in the report.
        chunked_status, chunked_md, chunked_json = self.reproduce(
            tmp_path, 2, chunk=1
        )
        assert chunked_status == serial_status
        assert chunked_md == serial_md
        assert chunked_json == serial_json
        doc = json.loads(pooled_json)
        assert doc["provenance"]["config_hash"] == json.loads(serial_json)[
            "provenance"
        ]["config_hash"]

"""Unit tests for Rx descriptors and rings."""

import pytest

from repro.nic import Nic, PageSlot, RxDescriptor, RxRing


def make_descriptor(pages=4, core=0):
    slots = [PageSlot(iova=i * 4096, frame=i) for i in range(pages)]
    return RxDescriptor(slots=slots, core=core)


class TestDescriptor:
    def test_take_page_consumes_in_order(self):
        desc = make_descriptor(3)
        assert desc.take_page().iova == 0
        assert desc.take_page().iova == 4096
        assert desc.free_pages == 1

    def test_exhausted_raises(self):
        desc = make_descriptor(1)
        desc.take_page()
        with pytest.raises(RuntimeError):
            desc.take_page()

    def test_complete_requires_dma_done(self):
        desc = make_descriptor(2)
        desc.take_page()
        desc.take_page()
        assert desc.is_exhausted
        assert not desc.is_complete
        desc.dma_done()
        assert not desc.is_complete
        desc.dma_done()
        assert desc.is_complete

    def test_dma_done_overflow_raises(self):
        desc = make_descriptor(2)
        desc.take_page()
        with pytest.raises(RuntimeError):
            desc.dma_done(2)


class TestRing:
    def test_take_pages_spans_descriptors(self):
        ring = RxRing(core=0)
        ring.post(make_descriptor(2))
        ring.post(make_descriptor(2))
        taken = ring.take_pages(3)
        assert len(taken) == 3
        assert taken[0][0] is not taken[2][0]
        assert ring.free_pages == 1

    def test_take_too_many_raises(self):
        ring = RxRing(core=0)
        ring.post(make_descriptor(2))
        with pytest.raises(RuntimeError):
            ring.take_pages(3)

    def test_pop_completed_only_leading(self):
        ring = RxRing(core=0)
        first, second = make_descriptor(1), make_descriptor(1)
        ring.post(first)
        ring.post(second)
        taken = ring.take_pages(2)
        # Complete the second only: nothing pops (FIFO retirement).
        second.dma_done()
        assert ring.pop_completed() == []
        first.dma_done()
        popped = ring.pop_completed()
        assert popped == [first, second]
        assert ring.completed_descriptors == 2
        assert taken

    def test_head(self):
        ring = RxRing(core=0)
        assert ring.head() is None
        desc = make_descriptor(1)
        ring.post(desc)
        assert ring.head() is desc


class TestNic:
    class FakePacket:
        def __init__(self, flow_id=0, size_bytes=4096):
            self.flow_id = flow_id
            self.size_bytes = size_bytes

    def test_flow_steering_is_stable(self):
        nic = Nic(num_cores=4)
        assert nic.ring_for_flow(5) is nic.ring_for_flow(5)
        assert nic.ring_for_flow(1) is nic.rings[1]
        assert nic.ring_for_flow(6) is nic.rings[2]

    def test_offer_requires_ring_pages(self):
        nic = Nic(num_cores=1)
        packet = self.FakePacket()
        assert not nic.offer(packet, pages_needed=1)
        assert nic.stats.ring_drops == 1
        nic.rings[0].post(make_descriptor(4))
        assert nic.offer(packet, pages_needed=1)

    def test_buffer_overflow_drops(self):
        nic = Nic(num_cores=1, buffer_bytes=8192)
        nic.rings[0].post(make_descriptor(64))
        packets = [self.FakePacket() for _ in range(3)]
        results = [nic.offer(p, 1) for p in packets]
        assert results == [True, True, False]
        assert nic.stats.buffer_drops == 1
        assert nic.stats.drop_fraction == pytest.approx(1 / 3)

    def test_next_packet_fifo(self):
        nic = Nic(num_cores=1)
        nic.rings[0].post(make_descriptor(64))
        first = self.FakePacket(flow_id=0)
        second = self.FakePacket(flow_id=0)
        nic.offer(first, 1)
        nic.offer(second, 1)
        assert nic.next_packet() is first
        assert nic.next_packet() is second
        assert nic.next_packet() is None
        assert nic.stats.dma_packets == 2

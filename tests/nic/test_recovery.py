"""The hard-fault reset & recovery protocol, end to end.

A latched wedge (hung invalidation queue or dead descriptor-fetch
engine) must be detected by the housekeeping tick, recovered by the
quiesce -> reset -> re-arm -> resume sequence, and paid for only in
throughput: zero safety violations, MTTR within the documented bound
(DESIGN.md §14), and no wedge still latched at end of run.
"""

from repro.apps.iperf import run_iperf
from repro.experiments.chaos import DEFAULT_MTTR_BOUND_NS
from repro.faults import FaultPlan, FaultSpec, faulted
from repro.iommu import IommuConfig
from repro.verify import InvariantMonitor, monitored

WARMUP_NS = 1_000_000.0
MEASURE_NS = 3_000_000.0
# Senders stall for an RTO (~4 ms) after a reset drops their in-flight
# segments; the watchdog interval must sit above that.
WATCHDOG_NS = 10_000_000.0


def wedge_plan(component, kind, seed=7):
    return FaultPlan(
        seed=seed,
        name=f"{kind}-test",
        specs=(
            FaultSpec(
                component,
                kind,
                start_ns=1_200_000.0,
                end_ns=2_000_000.0,
            ),
        ),
    )


def run_recovery_point(plan, recovery=True):
    monitor = InvariantMonitor()
    with monitored(monitor):
        with faulted(plan) as runtime:
            point = run_iperf(
                "fns",
                flows=3,
                warmup_ns=WARMUP_NS,
                measure_ns=MEASURE_NS,
                strict_until=True,
                watchdog_interval_ns=WATCHDOG_NS,
                recovery=recovery,
                iommu=IommuConfig(fault_queue=True),
            )
    return point, runtime, monitor


def test_wedged_invalidation_queue_recovers():
    point, runtime, monitor = run_recovery_point(
        wedge_plan("invalidation", "wedge-invq")
    )
    extras = point.extras
    assert extras["recoveries"] >= 1
    assert extras["invq_rearms"] >= 1
    assert runtime.unrecovered_wedges() == 0
    assert 0.0 < extras["mttr_max_ns"] <= DEFAULT_MTTR_BOUND_NS
    assert monitor.violations == []
    # The run survives the wedge and keeps moving traffic.
    assert point.rx_goodput_gbps > 0.0


def test_wedged_device_recovers():
    point, runtime, monitor = run_recovery_point(
        wedge_plan("nic", "device-wedge")
    )
    extras = point.extras
    assert extras["recoveries"] >= 1
    assert runtime.unrecovered_wedges() == 0
    assert 0.0 < extras["mttr_max_ns"] <= DEFAULT_MTTR_BOUND_NS
    assert monitor.violations == []
    assert point.rx_goodput_gbps > 0.0


def test_wedge_stays_latched_without_recovery():
    # The seeded failure the chaos shrinker demo minimizes: same
    # schedule, reset protocol disabled.
    point, runtime, monitor = run_recovery_point(
        wedge_plan("invalidation", "wedge-invq"), recovery=False
    )
    assert runtime.unrecovered_wedges() == 1
    assert point.extras.get("recoveries", 0) == 0
    # Still zero violations: a wedge costs throughput, never safety —
    # every retire degrades to the global-flush fallback.
    assert monitor.violations == []


def test_recovery_timeline_tells_the_full_story():
    _, runtime, _ = run_recovery_point(
        wedge_plan("invalidation", "wedge-invq")
    )
    timeline = runtime.timeline_text()
    for milestone in ("latched", "detect", "reset", "resume", "cleared"):
        assert milestone in timeline
    # Causal order: latch -> detect -> reset (clearing the wedge)
    # -> resume.
    assert timeline.index("latched") < timeline.index("detect")
    assert timeline.index("detect") < timeline.index("resume")


def test_wedge_latching_mid_recovery_is_still_cleared():
    # Regression (chaos root seed 1, plan 190, shrunk to this pair):
    # the ring-stall triggers a device recovery, and the recovery's own
    # retire phase is what first trips the overlapping wedge window —
    # *after* reset_recover's opening re-arm.  The driver must notice
    # the dropped retire completions and re-arm again before resuming:
    # the post-reset RTO stall can outlive the run, leaving no later
    # traffic for the detector to re-flag the latched wedge.
    from repro.experiments.points import POINT_RUNNERS
    from repro.experiments.settings import QUICK
    from repro.parallel import PointSpec

    plan = FaultPlan(
        seed=4242,
        name="chaos-190-min",
        specs=(
            FaultSpec(
                "nic", "ring-stall",
                start_ns=2_601_010.0, end_ns=3_609_470.0,
            ),
            FaultSpec(
                "invalidation", "wedge-invq",
                start_ns=2_972_235.0, end_ns=3_730_417.0,
            ),
        ),
    )
    spec = PointSpec(
        figure="Chaos", runner="chaos_row", mode="fns", x="regression",
        label="chaos regression", seed=plan.seed, payload=(plan, 5, True),
    )
    row = POINT_RUNNERS["chaos_row"](spec, QUICK)
    assert row["outcome"] == "ok"
    assert row["unrecovered_wedges"] == 0
    assert row["violations"] == 0
    assert row["recoveries"] >= 1
    assert row["mttr_max_ns"] <= DEFAULT_MTTR_BOUND_NS


def test_recovery_is_deterministic():
    first = run_recovery_point(wedge_plan("invalidation", "wedge-invq"))
    second = run_recovery_point(wedge_plan("invalidation", "wedge-invq"))
    assert first[1].timeline_text() == second[1].timeline_text()
    assert first[0].extras["mttr_max_ns"] == second[0].extras["mttr_max_ns"]

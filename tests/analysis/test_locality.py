"""Unit tests for the PTcache-L3 reuse-distance analysis."""

import pytest

from repro.analysis import (
    INFINITE,
    l3_key_stream,
    reuse_distances,
    summarize_locality,
)
from repro.iommu.addr import PAGE_SIZE, PTL4_PAGE_SIZE


class TestKeyStream:
    def test_pages_in_same_region_share_key(self):
        trace = [(0, 1), (PAGE_SIZE, 1)]
        keys = l3_key_stream(trace)
        assert keys[0] == keys[1]

    def test_chunk_expansion(self):
        trace = [(0, 3)]
        assert len(l3_key_stream(trace)) == 3

    def test_region_boundary_changes_key(self):
        trace = [(PTL4_PAGE_SIZE - PAGE_SIZE, 2)]
        keys = l3_key_stream(trace)
        assert keys[0] != keys[1]


class TestReuseDistances:
    def test_first_access_is_cold(self):
        assert reuse_distances([1]) == [INFINITE]

    def test_immediate_reuse_distance_zero(self):
        assert reuse_distances([1, 1]) == [INFINITE, 0]

    def test_classic_stack_distance(self):
        # a b c a : 'a' reused after 2 distinct other keys.
        distances = reuse_distances(["a", "b", "c", "a"])
        assert distances == [INFINITE, INFINITE, INFINITE, 2]

    def test_duplicates_between_count_once(self):
        # a b b a : only one distinct key between the two a's.
        distances = reuse_distances(["a", "b", "b", "a"])
        assert distances[-1] == 1

    def test_interleaved_pattern(self):
        distances = reuse_distances(["a", "b", "a", "b"])
        assert distances == [INFINITE, INFINITE, 1, 1]

    def test_matches_naive_computation(self):
        import random

        rng = random.Random(3)
        keys = [rng.randint(0, 20) for _ in range(300)]
        fast = reuse_distances(keys)
        # Naive O(n^2) reference.
        for position, key in enumerate(keys):
            previous = None
            for back in range(position - 1, -1, -1):
                if keys[back] == key:
                    previous = back
                    break
            if previous is None:
                assert fast[position] == INFINITE
            else:
                distinct = len(set(keys[previous + 1 : position]))
                assert fast[position] == distinct


class TestSummary:
    def test_sequential_chunk_trace_is_perfectly_local(self):
        # Like F&S: 64-page chunks, each fully inside <= 2 regions.
        trace = [(i * 64 * PAGE_SIZE, 64) for i in range(10)]
        summary = summarize_locality(trace)
        assert summary.mean_distance < 0.5
        assert summary.fraction_above_64 == 0.0

    def test_scattered_trace_exceeds_cache_size(self):
        # 100 regions round-robin: every reuse sees 99 distinct keys.
        trace = []
        for repeat in range(3):
            for region in range(100):
                trace.append((region * PTL4_PAGE_SIZE, 1))
        summary = summarize_locality(trace)
        assert summary.fraction_above_64 > 0.5
        assert summary.max_distance == 99

    def test_empty_trace(self):
        summary = summarize_locality([])
        assert summary.accesses == 0
        assert summary.mean_distance == 0.0

    def test_cold_accesses_counted(self):
        trace = [(i * PTL4_PAGE_SIZE, 1) for i in range(5)]
        summary = summarize_locality(trace)
        assert summary.cold_accesses == 5

"""Unit tests for percentile utilities and table formatting."""

import pytest

from repro.analysis import (
    LatencyRecorder,
    format_figure,
    format_table,
    percentile,
)


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_p100_is_max(self):
        assert percentile([5, 9, 1], 100) == 9

    def test_small_p_is_min(self):
        assert percentile([5, 9, 1], 1) == 1

    def test_nearest_rank_p99(self):
        samples = list(range(1, 101))
        assert percentile(samples, 99) == 99

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 0)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestLatencyRecorder:
    def test_records_and_reports(self):
        recorder = LatencyRecorder()
        for value in (10.0, 20.0, 30.0):
            recorder.record(value)
        assert len(recorder) == 3
        assert recorder.mean == 20.0
        assert recorder.percentiles((50.0,)) == {50.0: 20.0}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            _ = LatencyRecorder().mean


class TestTables:
    def test_columns_aligned(self):
        table = format_table(["mode", "gbps"], [["off", 100.0], ["strict", 79.5]])
        lines = table.splitlines()
        assert lines[0].startswith("mode")
        assert len(lines) == 4
        # All lines equal width per column: header width respected.
        assert "off" in lines[2] and "strict" in lines[3]

    def test_float_formatting(self):
        table = format_table(["v"], [[0.1234], [123.456], [0.0]])
        assert "0.123" in table
        assert "123" in table
        assert "\n0" in table  # zero shown bare

    def test_figure_block_has_title_and_notes(self):
        block = format_figure("Fig X", ["a"], [[1]], notes="hello")
        assert "== Fig X ==" in block
        assert "hello" in block

"""Unit tests for the §2.2 throughput model utilities."""

import pytest

from repro.analysis import (
    ModelPoint,
    deltas_steady,
    extrapolate_snapshot,
    fit_l0_lm,
    memory_reads_per_packet,
    model_error,
    snapshot_delta,
    throughput_gbps,
)


def test_paper_headline_numbers():
    """The paper's worked example: M = 1.76 at 5 flows -> ~80 Gbps,
    M = 4.36 at 40 flows -> ~35 Gbps, for 4 KB packets."""
    assert throughput_gbps(4096, 1.76) == pytest.approx(79.5, abs=1.0)
    assert throughput_gbps(4096, 4.36) == pytest.approx(35.5, abs=1.0)


def test_intro_worked_example():
    """§1: four sequential 100 ns accesses -> ~400 ns per miss; with
    p = 4 KB and M = 1 the PCIe-limit intuition holds."""
    t = throughput_gbps(4096, 1.0, l0_ns=0.0, lm_ns=400.0)
    assert t == pytest.approx(4096 * 8 / 400.0)


def test_link_cap():
    assert throughput_gbps(4096, 0.0, link_gbps=100.0) == 100.0


def test_memory_reads_sum():
    assert memory_reads_per_packet(1.3, 0.05, 0.05, 0.36) == pytest.approx(
        1.76
    )


def test_invalid_packet_size():
    with pytest.raises(ValueError):
        throughput_gbps(0, 1.0)


class TestFit:
    def test_exact_two_point_fit(self):
        l0, lm = 65.0, 197.0
        points = [
            ModelPoint(4096, m, 4096 * 8 / (l0 + m * lm))
            for m in (1.5, 3.0)
        ]
        fit_l0, fit_lm = fit_l0_lm(points, nonnegative=False)
        assert fit_l0 == pytest.approx(l0, rel=1e-6)
        assert fit_lm == pytest.approx(lm, rel=1e-6)

    def test_nonnegative_fit_never_goes_negative(self):
        # Nearly collinear noisy points push plain LSQ negative.
        points = [
            ModelPoint(4096, 1.59, 78.7),
            ModelPoint(4096, 1.76, 83.0),
        ]
        l0, lm = fit_l0_lm(points)
        assert l0 >= 0 and lm >= 0

    def test_least_squares_over_many_points(self):
        l0, lm = 80.0, 150.0
        points = [
            ModelPoint(4096, m, 4096 * 8 / (l0 + m * lm))
            for m in (1.0, 1.5, 2.0, 3.0, 4.0)
        ]
        fit_l0, fit_lm = fit_l0_lm(points)
        assert fit_l0 == pytest.approx(l0, rel=0.01)
        assert fit_lm == pytest.approx(lm, rel=0.01)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_l0_lm([ModelPoint(4096, 1.0, 50.0)])


def test_model_error_perfect_prediction_is_zero():
    point = ModelPoint(4096, 2.0, throughput_gbps(4096, 2.0))
    assert model_error(point, 65.0, 197.0) == pytest.approx(0.0, abs=1e-9)


def test_model_error_relative():
    point = ModelPoint(4096, 2.0, 2 * throughput_gbps(4096, 2.0))
    assert model_error(point, 65.0, 197.0) == pytest.approx(0.5)


class TestSnapshotAlgebra:
    """The epoch fast-forward's structure-generic counter math."""

    def test_delta_over_nested_structure(self):
        old = {"a": 1, "by": {"x": 2}, "cores": [1.0, 2.0]}
        new = {"a": 5, "by": {"x": 3, "y": 4}, "cores": [2.5, 2.0]}
        assert snapshot_delta(old, new) == {
            "a": 4,
            "by": {"x": 1, "y": 4},
            "cores": [1.5, 0.0],
        }

    def test_delta_over_dataclass_counters(self):
        from repro.iommu.stats import IommuStats

        old = IommuStats(translations=10, iotlb_hits=8)
        new = IommuStats(
            translations=25, iotlb_hits=20, translations_by_source={"rx": 3}
        )
        delta = snapshot_delta(old, new)
        assert delta["translations"] == 15
        assert delta["translations_by_source"] == {"rx": 3}

    def test_steady_within_tolerance(self):
        assert deltas_steady({"a": 100, "b": [1.0]}, {"a": 104, "b": [1.2]},
                             rtol=0.05, atol=1.0)
        assert not deltas_steady({"a": 100}, {"a": 120}, rtol=0.05, atol=1.0)
        # A key present on only one side diffs against zero.
        assert not deltas_steady({}, {"a": 50}, rtol=0.05, atol=1.0)

    def test_extrapolate_preserves_types_and_identity(self):
        base = {"a": 100, "f": 10.0, "keep": 7}
        adjusted = extrapolate_snapshot(base, {"a": 4, "f": 0.5}, 3.0)
        assert adjusted == {"a": 88, "f": 8.5, "keep": 7}
        assert isinstance(adjusted["a"], int)

    def test_extrapolate_rebuilds_dataclass(self):
        from repro.iommu.stats import IommuStats

        base = IommuStats(translations=100, iotlb_hits=90)
        adjusted = extrapolate_snapshot(
            base, {"translations": 10, "iotlb_hits": 9}, 2.0
        )
        assert isinstance(adjusted, IommuStats)
        assert adjusted.translations == 80
        assert adjusted.iotlb_hits == 72
        # delta() against a live stats object then reports base-delta
        # + extrapolated growth — the adjusted-snapshot trick.
        assert base.delta(adjusted).translations == 20

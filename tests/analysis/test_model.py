"""Unit tests for the §2.2 throughput model utilities."""

import pytest

from repro.analysis import (
    ModelPoint,
    fit_l0_lm,
    memory_reads_per_packet,
    model_error,
    throughput_gbps,
)


def test_paper_headline_numbers():
    """The paper's worked example: M = 1.76 at 5 flows -> ~80 Gbps,
    M = 4.36 at 40 flows -> ~35 Gbps, for 4 KB packets."""
    assert throughput_gbps(4096, 1.76) == pytest.approx(79.5, abs=1.0)
    assert throughput_gbps(4096, 4.36) == pytest.approx(35.5, abs=1.0)


def test_intro_worked_example():
    """§1: four sequential 100 ns accesses -> ~400 ns per miss; with
    p = 4 KB and M = 1 the PCIe-limit intuition holds."""
    t = throughput_gbps(4096, 1.0, l0_ns=0.0, lm_ns=400.0)
    assert t == pytest.approx(4096 * 8 / 400.0)


def test_link_cap():
    assert throughput_gbps(4096, 0.0, link_gbps=100.0) == 100.0


def test_memory_reads_sum():
    assert memory_reads_per_packet(1.3, 0.05, 0.05, 0.36) == pytest.approx(
        1.76
    )


def test_invalid_packet_size():
    with pytest.raises(ValueError):
        throughput_gbps(0, 1.0)


class TestFit:
    def test_exact_two_point_fit(self):
        l0, lm = 65.0, 197.0
        points = [
            ModelPoint(4096, m, 4096 * 8 / (l0 + m * lm))
            for m in (1.5, 3.0)
        ]
        fit_l0, fit_lm = fit_l0_lm(points, nonnegative=False)
        assert fit_l0 == pytest.approx(l0, rel=1e-6)
        assert fit_lm == pytest.approx(lm, rel=1e-6)

    def test_nonnegative_fit_never_goes_negative(self):
        # Nearly collinear noisy points push plain LSQ negative.
        points = [
            ModelPoint(4096, 1.59, 78.7),
            ModelPoint(4096, 1.76, 83.0),
        ]
        l0, lm = fit_l0_lm(points)
        assert l0 >= 0 and lm >= 0

    def test_least_squares_over_many_points(self):
        l0, lm = 80.0, 150.0
        points = [
            ModelPoint(4096, m, 4096 * 8 / (l0 + m * lm))
            for m in (1.0, 1.5, 2.0, 3.0, 4.0)
        ]
        fit_l0, fit_lm = fit_l0_lm(points)
        assert fit_l0 == pytest.approx(l0, rel=0.01)
        assert fit_lm == pytest.approx(lm, rel=0.01)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_l0_lm([ModelPoint(4096, 1.0, 50.0)])


def test_model_error_perfect_prediction_is_zero():
    point = ModelPoint(4096, 2.0, throughput_gbps(4096, 2.0))
    assert model_error(point, 65.0, 197.0) == pytest.approx(0.0, abs=1e-9)


def test_model_error_relative():
    point = ModelPoint(4096, 2.0, 2 * throughput_gbps(4096, 2.0))
    assert model_error(point, 65.0, 197.0) == pytest.approx(0.5)

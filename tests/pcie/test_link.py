"""Unit tests for the PCIe DMA pipeline."""

import pytest

from repro.pcie import DmaPipeline, PcieConfig
from repro.sim import Simulator


def test_wire_time_and_tlp_split():
    config = PcieConfig(gbps=128.0, max_payload_bytes=256)
    assert config.wire_ns(4096) == pytest.approx(256.0)
    assert config.transactions(4096) == 16
    assert config.transactions(64) == 1
    assert config.transactions(257) == 2
    assert config.transactions(0) == 0


def test_single_lane_serializes_dmas():
    sim = Simulator()
    pipe = DmaPipeline(sim, PcieConfig(), lanes=1)
    finished = []

    def begin(start):
        return start + 100.0

    for index in range(3):
        pipe.submit(4096, begin, lambda i=index: finished.append((i, sim.now)))
    sim.run()
    assert finished == [(0, 100.0), (1, 200.0), (2, 300.0)]
    assert pipe.completed_dmas == 3
    assert pipe.completed_bytes == 3 * 4096


def test_multi_lane_overlaps_latency():
    sim = Simulator()
    pipe = DmaPipeline(sim, PcieConfig(), lanes=2)
    finished = []
    for index in range(4):
        pipe.submit(64, lambda s: s + 100.0, lambda: finished.append(sim.now))
    sim.run()
    assert finished == [100.0, 100.0, 200.0, 200.0]


def test_begin_runs_at_start_time_not_submit_time():
    """Probes must happen when the DMA starts, so that invalidations by
    earlier completions interleave correctly."""
    sim = Simulator()
    pipe = DmaPipeline(sim, PcieConfig(), lanes=1)
    begin_times = []

    def begin(start):
        begin_times.append(start)
        return start + 50.0

    pipe.submit(64, begin, lambda: None)
    pipe.submit(64, begin, lambda: None)
    sim.run()
    assert begin_times == [0.0, 50.0]


def test_shared_wire_caps_aggregate_rate():
    """Even with 4 lanes, the wire serializer admits at most link rate."""
    sim = Simulator()
    config = PcieConfig(gbps=128.0)
    pipe = DmaPipeline(sim, config, lanes=4)
    finished = []

    def begin(start, size=4096):
        wire_done = pipe.reserve_wire(start, size)
        return wire_done

    for _ in range(8):
        pipe.submit(4096, begin, lambda: finished.append(sim.now))
    sim.run()
    # 8 * 4096 B at 128 Gbps = 8 * 256 ns = 2048 ns minimum.
    assert finished[-1] >= 2048.0 - 1e-6


def test_backwards_completion_rejected():
    sim = Simulator()
    pipe = DmaPipeline(sim, PcieConfig(), lanes=1)
    with pytest.raises(ValueError):
        # A free lane starts the DMA synchronously; the bogus begin()
        # is caught immediately.
        pipe.submit(64, lambda start: start - 1.0, lambda: None)


def test_queue_depth_reporting():
    sim = Simulator()
    pipe = DmaPipeline(sim, PcieConfig(), lanes=1)
    for _ in range(3):
        pipe.submit(64, lambda s: s + 10.0, lambda: None)
    assert pipe.inflight == 1
    assert pipe.queued == 2


def test_zero_lanes_rejected():
    with pytest.raises(ValueError):
        DmaPipeline(Simulator(), PcieConfig(), lanes=0)

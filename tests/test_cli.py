"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, main
from repro.experiments import settings


@pytest.fixture(autouse=True)
def fast_quick(monkeypatch):
    """Shrink the quick scale so CLI tests stay fast."""
    micro = settings.RunScale(
        name="micro",
        warmup_ns=800_000.0,
        measure_ns=1_500_000.0,
        latency_measure_ns=3_000_000.0,
    )
    monkeypatch.setattr("repro.cli.QUICK", micro)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in FIGURES:
        assert name in out


def test_unknown_figure_errors(capsys):
    assert main(["fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_runs_one_figure(capsys):
    assert main(["fig12"]) == 0
    out = capsys.readouterr().out
    assert "Fig 12" in out
    assert "fns" in out


def test_out_file_appended(tmp_path, capsys):
    target = tmp_path / "tables.txt"
    assert main(["fig12", "--out", str(target)]) == 0
    capsys.readouterr()
    assert "Fig 12" in target.read_text()


def test_jobs_flag_runs_figure(capsys):
    assert main(["fig12", "--jobs", "2"]) == 0
    assert "Fig 12" in capsys.readouterr().out


def test_profile_prints_hotspots(capsys):
    assert main(["profile", "fig12", "--lines", "5"]) == 0
    out = capsys.readouterr().out
    assert "Fig 12" in out
    assert "cumulative" in out  # pstats header for the default sort


def test_profile_unknown_figure_errors(capsys):
    assert main(["profile", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_profile_dumps_raw_stats(tmp_path, capsys):
    target = tmp_path / "fig12.pstats"
    assert main(
        ["profile", "fig12", "--lines", "3", "--out", str(target)]
    ) == 0
    capsys.readouterr()
    assert target.stat().st_size > 0


def test_profile_bad_sort_key_errors(capsys):
    assert main(["profile", "fig12", "--sort", "nope"]) == 2
    assert "unknown sort key" in capsys.readouterr().err

"""Unit and integration tests for the request/response app engine."""

import pytest

from repro.apps import segments_for
from repro.apps.base import RequestResponseApp
from repro.host import HostConfig, Testbed


class TestSegmentation:
    def test_small_message_single_segment(self):
        assert segments_for(128, 4096) == (1, 128)

    def test_exact_mtu(self):
        assert segments_for(4096, 4096) == (1, 4096)

    def test_large_message_splits(self):
        assert segments_for(32768, 4096) == (8, 4096)

    def test_non_multiple_rounds_up(self):
        count, size = segments_for(9001, 9000)
        assert count == 2 and size == 9000

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            segments_for(0, 4096)


def build_app(initiator, mode="off", **kwargs):
    config = HostConfig.cascade_lake(mode=mode, num_cores=2)
    testbed = Testbed(config)
    defaults = dict(
        request_bytes=4096,
        response_bytes=4096,
        pipeline_depth=1,
        connections=1,
    )
    defaults.update(kwargs)
    app = RequestResponseApp(testbed, initiator=initiator, **defaults)
    return testbed, app


class TestRemoteInitiated:
    def test_transactions_complete(self):
        testbed, app = build_app("remote", record_latency=True)
        testbed.sim.run(until=5e6)
        assert app.stats.requests_completed > 10
        assert len(app.latency) == app.stats.requests_completed

    def test_bulk_bytes_counted_at_host(self):
        testbed, app = build_app("remote", request_bytes=8192)
        testbed.sim.run(until=5e6)
        assert (
            app.stats.bulk_bytes_delivered
            >= app.stats.requests_completed * 8192
        )

    def test_pipelining_increases_throughput(self):
        _, shallow = build_app("remote")
        shallow_tb = shallow  # naming
        testbed1, app1 = build_app("remote", pipeline_depth=1)
        testbed8, app8 = build_app("remote", pipeline_depth=8)
        testbed1.sim.run(until=5e6)
        testbed8.sim.run(until=5e6)
        assert app8.stats.requests_completed > app1.stats.requests_completed

    def test_latency_recorded_in_order(self):
        testbed, app = build_app("remote", record_latency=True)
        testbed.sim.run(until=3e6)
        assert all(sample > 0 for sample in app.latency.samples)


class TestHostInitiated:
    def test_transactions_complete(self):
        testbed, app = build_app("host", response_bytes=32768)
        testbed.sim.run(until=5e6)
        assert app.stats.requests_completed > 5

    def test_host_app_cost_limits_rate(self):
        fast_tb, fast = build_app("host")
        slow_tb, slow = build_app(
            "host", host_app_cost_ns=lambda b: 500_000.0
        )
        fast_tb.sim.run(until=5e6)
        slow_tb.sim.run(until=5e6)
        assert slow.stats.requests_completed < fast.stats.requests_completed
        # ~1 request per 0.5 ms per connection when app-bound.
        assert slow.stats.requests_completed <= 12


class TestWiring:
    def test_one_app_per_testbed(self):
        testbed, _app = build_app("remote")
        with pytest.raises(RuntimeError):
            RequestResponseApp(
                testbed,
                initiator="remote",
                request_bytes=4096,
                response_bytes=64,
            )

    def test_invalid_initiator(self):
        config = HostConfig.cascade_lake(mode="off", num_cores=2)
        testbed = Testbed(config)
        with pytest.raises(ValueError):
            RequestResponseApp(
                testbed,
                initiator="sideways",
                request_bytes=1,
                response_bytes=1,
            )

    def test_connections_spread_over_cores(self):
        config = HostConfig.cascade_lake(mode="off", num_cores=4)
        testbed = Testbed(config)
        app = RequestResponseApp(
            testbed,
            initiator="remote",
            request_bytes=4096,
            response_bytes=64,
            connections=8,
        )
        cores = {connection.core for connection in app.connections}
        assert cores == {0, 1, 2, 3}

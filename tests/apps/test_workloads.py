"""Integration tests for the five application workloads (short runs)."""

import pytest

from repro.apps import (
    run_bidirectional_iperf,
    run_iperf,
    run_netperf_rpc,
    run_nginx,
    run_redis,
    run_spdk,
)

WARMUP = 1_500_000.0
MEASURE = 3_500_000.0


class TestIperf:
    def test_off_saturates_link(self):
        result = run_iperf("off", 5, warmup_ns=WARMUP, measure_ns=MEASURE)
        assert result.rx_goodput_gbps > 95.0

    def test_modes_ordering(self):
        strict = run_iperf("strict", 5, warmup_ns=WARMUP, measure_ns=MEASURE)
        fns = run_iperf("fns", 5, warmup_ns=WARMUP, measure_ns=MEASURE)
        assert fns.rx_goodput_gbps > strict.rx_goodput_gbps

    def test_bidirectional_runs_both_directions(self):
        result = run_bidirectional_iperf(
            "off", 2, 2, warmup_ns=WARMUP, measure_ns=MEASURE
        )
        assert result.rx_goodput_gbps > 50.0
        assert result.tx_goodput_gbps > 50.0

    def test_rx_tx_interference_hits_strict_hardest(self):
        strict = run_bidirectional_iperf(
            "strict", 2, 2, warmup_ns=WARMUP, measure_ns=MEASURE
        )
        fns = run_bidirectional_iperf(
            "fns", 2, 2, warmup_ns=WARMUP, measure_ns=MEASURE
        )
        assert fns.rx_goodput_gbps > strict.rx_goodput_gbps * 1.2


class TestNetperf:
    def test_records_latency_distribution(self):
        result = run_netperf_rpc(
            "off", 4096, warmup_ns=WARMUP, measure_ns=8e6
        )
        assert result.rpc_count > 20
        assert result.percentiles_ns[50.0] > 0
        assert (
            result.percentiles_ns[99.9] >= result.percentiles_ns[50.0]
        )
        assert result.background_gbps > 50.0

    def test_fns_tail_tracks_off(self):
        off = run_netperf_rpc("off", 1024, warmup_ns=WARMUP, measure_ns=8e6)
        fns = run_netperf_rpc("fns", 1024, warmup_ns=WARMUP, measure_ns=8e6)
        assert fns.percentiles_ns[99.0] < off.percentiles_ns[99.0] * 3


class TestRedis:
    def test_strict_degrades_fns_recovers(self):
        off = run_redis("off", 8192, warmup_ns=WARMUP, measure_ns=MEASURE)
        strict = run_redis("strict", 8192, warmup_ns=WARMUP, measure_ns=MEASURE)
        fns = run_redis("fns", 8192, warmup_ns=WARMUP, measure_ns=MEASURE)
        assert strict.goodput_gbps < off.goodput_gbps * 0.8
        assert fns.goodput_gbps > strict.goodput_gbps * 1.2

    def test_reply_per_request_tx_traffic(self):
        """Redis's per-SET replies create IOTLB contention, visible as
        misses above the compulsory rate at small values (§4.4)."""
        small = run_redis("fns", 4096, warmup_ns=WARMUP, measure_ns=MEASURE)
        large = run_redis("fns", 131072, warmup_ns=WARMUP, measure_ns=MEASURE)
        assert small.iotlb_misses_per_page > large.iotlb_misses_per_page

    def test_requests_counted(self):
        result = run_redis("off", 8192, warmup_ns=WARMUP, measure_ns=MEASURE)
        assert result.requests_per_second > 10_000


class TestNginx:
    def test_app_limited_off_throughput(self):
        result = run_nginx("off", 524288, warmup_ns=WARMUP, measure_ns=MEASURE)
        assert 60.0 < result.goodput_gbps < 99.5

    def test_modes_ordering(self):
        off = run_nginx("off", 524288, warmup_ns=WARMUP, measure_ns=MEASURE)
        strict = run_nginx("strict", 524288, warmup_ns=WARMUP, measure_ns=MEASURE)
        fns = run_nginx("fns", 524288, warmup_ns=WARMUP, measure_ns=MEASURE)
        # Large-page Nginx: strict under-degrades vs the paper in this
        # simulator (see EXPERIMENTS.md); assert non-inversion.
        assert strict.goodput_gbps <= off.goodput_gbps * 1.1
        assert fns.goodput_gbps >= strict.goodput_gbps * 0.95


class TestSpdk:
    def test_io_depth_sustains_throughput(self):
        result = run_spdk("off", 65536, warmup_ns=WARMUP, measure_ns=MEASURE)
        assert result.goodput_gbps > 70.0
        assert result.iops > 50_000

    def test_modes_ordering(self):
        off = run_spdk("off", 65536, warmup_ns=WARMUP, measure_ns=MEASURE)
        strict = run_spdk("strict", 65536, warmup_ns=WARMUP, measure_ns=MEASURE)
        fns = run_spdk("fns", 65536, warmup_ns=WARMUP, measure_ns=MEASURE)
        assert strict.goodput_gbps < off.goodput_gbps * 0.95
        assert fns.goodput_gbps > strict.goodput_gbps

    def test_small_blocks_inflate_iotlb_misses(self):
        small = run_spdk("strict", 32768, warmup_ns=WARMUP, measure_ns=MEASURE)
        large = run_spdk("strict", 262144, warmup_ns=WARMUP, measure_ns=MEASURE)
        assert small.iotlb_misses_per_page > large.iotlb_misses_per_page

"""Regression tests for the DMA-safety invariant monitor.

Each invariant gets two tests: the correct implementation passes, and a
deliberately broken variant (a skipped invalidation, a forged IOTLB
entry, an overlapping allocation) makes the monitor raise
:class:`InvariantViolation` with the right ``kind`` and a usable trace.
"""

import pytest

from repro.iommu import Iommu
from repro.iommu.addr import PAGE_SIZE
from repro.iommu.iommu import DmaFault
from repro.iova.allocator import RbTreeIovaAllocator
from repro.iova.caching import CachingIovaAllocator
from repro.verify import (
    InvalidationEvent,
    InvariantMonitor,
    InvariantViolation,
    TranslateEvent,
    UnmapEvent,
    monitored,
)

HUGE = 512 * PAGE_SIZE  # one PT-L4 page's coverage (2 MB)


def make_iommu(monitor):
    with monitored(monitor):
        return Iommu()


# ---------------------------------------------------------------------------
# Invariant (a): use-after-unmap
# ---------------------------------------------------------------------------
def test_translate_after_complete_invalidation_violates():
    monitor = InvariantMonitor()
    iommu = make_iommu(monitor)
    iova = 0x4000
    iommu.map_page(iova, frame=7)
    iommu.translate(iova)
    iommu.unmap_range(iova, PAGE_SIZE)
    iommu.invalidation_queue.invalidate_range(
        iova, PAGE_SIZE, preserve_ptcache=False
    )
    # A correct IOMMU faults now; forge the stale IOTLB entry a missing
    # invalidation would have left behind.
    iommu.iotlb.insert(iova, 7)
    with pytest.raises(InvariantViolation) as excinfo:
        iommu.translate(iova)
    assert excinfo.value.kind == "use-after-unmap"
    # The trace explains the violation: the unmap and its invalidation
    # for this IOVA must both be visible.
    touching = excinfo.value.events_touching()
    assert any(isinstance(event, UnmapEvent) for event in touching)
    assert any(isinstance(event, InvalidationEvent) for event in touching)
    assert isinstance(touching[-1], TranslateEvent)


def test_correct_unmap_faults_without_violation():
    monitor = InvariantMonitor()
    iommu = make_iommu(monitor)
    iova = 0x4000
    iommu.map_page(iova, frame=7)
    iommu.translate(iova)
    iommu.unmap_range(iova, PAGE_SIZE)
    iommu.invalidation_queue.invalidate_range(
        iova, PAGE_SIZE, preserve_ptcache=False
    )
    with pytest.raises(DmaFault):
        iommu.translate(iova)
    assert monitor.ok
    assert monitor.faults_observed == 1


def test_remap_revives_page():
    monitor = InvariantMonitor()
    iommu = make_iommu(monitor)
    iova = 0x4000
    iommu.map_page(iova, frame=7)
    iommu.unmap_range(iova, PAGE_SIZE)
    iommu.invalidation_queue.invalidate_range(
        iova, PAGE_SIZE, preserve_ptcache=False
    )
    iommu.map_page(iova, frame=9)
    assert iommu.translate(iova).frame == 9
    assert monitor.ok


def test_unmapped_but_uninvalidated_counts_stale_window():
    """Deferred mode's hole: unmapped, invalidation pending — counted,
    not a strict violation (the invalidation has not completed)."""
    monitor = InvariantMonitor()
    with monitored(monitor):
        iommu = Iommu()
        iommu.config.check_stale_hits = True
    iova = 0x4000
    iommu.map_page(iova, frame=7)
    iommu.translate(iova)
    iommu.unmap_range(iova, PAGE_SIZE)
    result = iommu.translate(iova)  # stale IOTLB hit, no invalidation yet
    assert result.stale
    assert monitor.ok
    assert monitor.stale_window_translations == 1


# ---------------------------------------------------------------------------
# Invariant (b): stale PTcache consultation
# ---------------------------------------------------------------------------
def _prime_and_reclaim(iommu, base):
    """Map 2 MB of 4 KB pages, cache its PT-L4 page, reclaim it."""
    iommu.map_range(base, list(range(1000, 1512)))
    iommu.translate(base)  # PTcache-L3 now caches the PT-L4 page
    reclaimed = iommu.unmap_range(base, HUGE)  # whole-page unmap reclaims
    assert any(page.level == 4 for page in reclaimed)
    iommu.invalidation_queue.invalidate_range(
        base, HUGE, preserve_ptcache=True
    )
    return reclaimed


def test_preserved_ptcache_after_reclaim_violates():
    monitor = InvariantMonitor()
    iommu = make_iommu(monitor)
    base = 4 * HUGE
    _prime_and_reclaim(iommu, base)
    # Broken driver: skips the PTcache fallback invalidation.  The next
    # walk in the region consults the preserved entry, which points at
    # the reclaimed page-table page.
    iommu.map_range(base, list(range(2000, 2512)))
    with pytest.raises(InvariantViolation) as excinfo:
        iommu.translate(base)
    assert excinfo.value.kind == "stale-ptcache"


def test_ptcache_fallback_invalidation_is_safe():
    monitor = InvariantMonitor()
    iommu = make_iommu(monitor)
    base = 4 * HUGE
    reclaimed = _prime_and_reclaim(iommu, base)
    # Correct driver (F&S's fallback): drop the PTcache entries covering
    # every reclaimed page-table page.
    for page in reclaimed:
        iommu.invalidation_queue.invalidate_ptcache_range(
            page.base_iova, page.coverage_bytes
        )
    iommu.map_range(base, list(range(2000, 2512)))
    iommu.translate(base)
    assert monitor.ok


def test_descriptor_granularity_unmaps_never_reclaim():
    """Page-sized unmaps reclaim nothing, so preserving PTcaches across
    them (F&S's whole point) never violates."""
    monitor = InvariantMonitor()
    iommu = make_iommu(monitor)
    base = 4 * HUGE
    iommu.map_range(base, list(range(1000, 1016)))
    iommu.translate(base)
    for index in range(16):
        reclaimed = iommu.unmap_range(base + index * PAGE_SIZE, PAGE_SIZE)
        assert reclaimed == []
        iommu.invalidation_queue.invalidate_range(
            base + index * PAGE_SIZE, PAGE_SIZE, preserve_ptcache=True
        )
    iommu.map_range(base, list(range(3000, 3016)))
    iommu.translate(base + PAGE_SIZE)
    assert monitor.ok


# ---------------------------------------------------------------------------
# Invariant (c): allocator discipline
# ---------------------------------------------------------------------------
def test_rbtree_alloc_free_cycle_is_clean():
    monitor = InvariantMonitor()
    with monitored(monitor):
        allocator = RbTreeIovaAllocator()
    spans = [allocator.alloc(4) for _ in range(8)]
    for iova in spans:
        allocator.free(iova, 4)
    assert monitor.ok


def test_overlapping_allocation_violates():
    monitor = InvariantMonitor()
    with monitored(monitor):
        allocator = RbTreeIovaAllocator()
    # Break the gap scan so it hands out the same range twice.
    allocator._scan_down = lambda start, pages, align_pages=1: (0x100, 0)
    allocator.alloc(4)
    with pytest.raises(InvariantViolation) as excinfo:
        allocator.alloc(2)
    assert excinfo.value.kind == "iova-overlap"


def test_double_free_through_rcache_violates():
    """The Linux rcache silently parks a double-freed IOVA in a magazine
    — handing the same range to two owners later.  Only the monitor
    catches the bug at the moment of the bad free."""
    monitor = InvariantMonitor()
    with monitored(monitor):
        allocator = CachingIovaAllocator(num_cpus=2)
    iova = allocator.alloc(1, cpu=0)
    allocator.free(iova, 1, cpu=0)
    with pytest.raises(InvariantViolation) as excinfo:
        allocator.free(iova, 1, cpu=1)
    assert excinfo.value.kind == "iova-bad-free"


def test_free_with_wrong_size_violates():
    monitor = InvariantMonitor()
    with monitored(monitor):
        allocator = RbTreeIovaAllocator()
    iova = allocator.alloc(4)
    with pytest.raises(InvariantViolation) as excinfo:
        allocator.free(iova, 2)
    assert excinfo.value.kind == "iova-bad-free"


def test_stray_free_violates():
    monitor = InvariantMonitor()
    with monitored(monitor):
        allocator = RbTreeIovaAllocator()
    allocator.alloc(4)
    with pytest.raises(InvariantViolation) as excinfo:
        allocator.free(0x123000, 1)
    assert excinfo.value.kind == "iova-bad-free"


# ---------------------------------------------------------------------------
# Monitor mechanics
# ---------------------------------------------------------------------------
def test_no_monitor_means_no_instrumentation():
    iommu = Iommu()  # constructed outside any monitored() block
    assert iommu.monitor is None
    assert iommu.page_table.monitor is None
    assert iommu.invalidation_queue.monitor is None
    iommu.map_page(0x1000, 1)
    iommu.translate(0x1000)


def test_collect_mode_records_instead_of_raising():
    monitor = InvariantMonitor(raise_on_violation=False)
    iommu = make_iommu(monitor)
    iova = 0x4000
    iommu.map_page(iova, frame=7)
    iommu.unmap_range(iova, PAGE_SIZE)
    iommu.invalidation_queue.invalidate_range(
        iova, PAGE_SIZE, preserve_ptcache=False
    )
    iommu.iotlb.insert(iova, 7)
    iommu.translate(iova)  # does not raise
    assert not monitor.ok
    assert monitor.violations[0].kind == "use-after-unmap"
    assert "use-after-unmap" in monitor.violations[0].format_trace()


def test_attach_after_construction():
    iommu = Iommu()  # built unmonitored...
    monitor = InvariantMonitor()
    monitor.attach_iommu(iommu)  # ...then attached post-hoc
    iommu.map_page(0x1000, 1)
    iommu.translate(0x1000)
    assert monitor.events_recorded > 0


def test_two_address_spaces_do_not_collide():
    """Two IOMMUs under one monitor: the same IOVA is unrelated across
    them, so a dead page in one space must not poison the other."""
    monitor = InvariantMonitor()
    first = make_iommu(monitor)
    second = make_iommu(monitor)
    iova = 0x8000
    first.map_page(iova, frame=1)
    first.unmap_range(iova, PAGE_SIZE)
    first.invalidation_queue.invalidate_range(
        iova, PAGE_SIZE, preserve_ptcache=False
    )
    second.map_page(iova, frame=2)
    assert second.translate(iova).frame == 2
    assert monitor.ok

"""CLI wiring for ``repro lint`` and ``repro run --verify``."""

import pytest

from repro.cli import main
from repro.experiments import settings


@pytest.fixture(autouse=True)
def fast_quick(monkeypatch):
    """Shrink the quick scale so the verified runs stay fast."""
    micro = settings.RunScale(
        name="micro",
        warmup_ns=800_000.0,
        measure_ns=1_500_000.0,
        latency_measure_ns=3_000_000.0,
    )
    monkeypatch.setattr("repro.cli.QUICK", micro)


def test_run_alias(capsys):
    assert main(["run", "fig12"]) == 0
    assert "Fig 12" in capsys.readouterr().out


def test_run_with_verify_attaches_monitor(capsys):
    # Fig 12 exercises every strict-family configuration; under
    # --verify each runs with the invariant monitor attached and must
    # complete violation-free.
    assert main(["run", "fig12", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "[verify] fig12:" in out
    assert "0 violations" in out
    assert "translations checked" in out


def test_lint_subcommand_clean_tree(capsys):
    import repro

    src_pkg = repro.__file__.rsplit("/", 1)[0]
    assert main(["lint", src_pkg]) == 0


def test_lint_subcommand_reports_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nstamp = time.time()\n")
    assert main(["lint", str(bad)]) == 1
    assert "REPRO001" in capsys.readouterr().out

"""Unit tests for the CFG builder and the forward-dataflow solver."""

import ast
import textwrap

from repro.verify.analyze.cfg import build_cfg, relevant_exprs
from repro.verify.analyze.dataflow import ForwardAnalysis, solve


def cfg_for(code):
    tree = ast.parse(textwrap.dedent(code))
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return build_cfg(func)


class _ReachingCalls(ForwardAnalysis):
    """Toy may-analysis: set of call names seen on some path so far."""

    meet = "may"

    def transfer(self, node, state):
        names = set()
        for expr in relevant_exprs(node):
            for child in ast.walk(expr):
                if isinstance(child, ast.Call) and isinstance(
                    child.func, ast.Name
                ):
                    names.add(child.func.id)
        return state | frozenset(names)


class _MustCalls(_ReachingCalls):
    meet = "must"


def exit_state(code, analysis):
    cfg = cfg_for(code)
    return solve(cfg, analysis).get(cfg.exit, frozenset())


# ---------------------------------------------------------------------------
# Structure
# ---------------------------------------------------------------------------
def test_straight_line_reaches_exit():
    assert exit_state(
        """
        def f():
            a()
            b()
        """,
        _ReachingCalls(),
    ) == {"a", "b"}


def test_if_else_may_union_must_intersect():
    code = """
        def f(x):
            if x:
                a()
            else:
                b()
            return x
    """
    assert exit_state(code, _ReachingCalls()) == {"a", "b"}
    assert exit_state(code, _MustCalls()) == frozenset()


def test_call_on_both_branches_is_a_must_fact():
    code = """
        def f(x):
            if x:
                a()
            else:
                a()
            return x
    """
    assert exit_state(code, _MustCalls()) == {"a"}


def test_early_return_path_bypasses_later_statements():
    code = """
        def f(x):
            a()
            if x:
                return None
            b()
            return x
    """
    # b() runs on only one of the two return paths.
    assert exit_state(code, _MustCalls()) == {"a"}
    assert exit_state(code, _ReachingCalls()) == {"a", "b"}


def test_while_loop_body_is_optional():
    code = """
        def f(n):
            while n:
                a()
            return n
    """
    assert exit_state(code, _MustCalls()) == frozenset()
    assert exit_state(code, _ReachingCalls()) == {"a"}


def test_while_loop_has_back_edge():
    cfg = cfg_for(
        """
        def f(n):
            while n:
                a()
        """
    )
    loop_heads = [
        nid
        for nid, node in cfg.nodes.items()
        if node.kind == "loop" and isinstance(node.stmt, ast.While)
    ]
    assert len(loop_heads) == 1
    head = loop_heads[0]
    back_edges = [
        e for e in cfg.edges if e.dst == head and e.src > head
    ]
    assert back_edges, "loop body must feed back into the head"


def test_try_body_has_exceptional_edge_to_handler():
    code = """
        def f():
            try:
                a()
            except ValueError:
                b()
            return None
    """
    # a() may be skipped (exception before completion reaches the
    # handler), so only the may-analysis sees it at exit.
    assert exit_state(code, _ReachingCalls()) >= {"a", "b"}
    assert "b" not in exit_state(code, _MustCalls())


def test_raise_routes_to_exit_exceptionally():
    cfg = cfg_for(
        """
        def f():
            raise ValueError("boom")
        """
    )
    exceptional = [
        e for e in cfg.edges if e.dst == cfg.exit and e.exceptional
    ]
    assert exceptional


def test_short_circuit_test_is_decomposed():
    cfg = cfg_for(
        """
        def f(a, b):
            if a and b:
                c()
            return None
        """
    )
    tests = [n for n in cfg.nodes.values() if n.kind == "test"]
    # "a and b" becomes two atomic test nodes.
    assert len(tests) == 2


def test_break_exits_loop():
    code = """
        def f(n):
            while True:
                a()
                break
            return n
    """
    # The loop always runs exactly once: a() is a must-fact.
    assert exit_state(code, _MustCalls()) == {"a"}


def test_for_loop_target_visible_to_transfer():
    cfg = cfg_for(
        """
        def f(items):
            for item in items:
                a()
        """
    )
    loop = next(
        n
        for n in cfg.nodes.values()
        if n.kind == "loop" and isinstance(n.stmt, ast.For)
    )
    exprs = relevant_exprs(loop)
    dumped = " ".join(ast.dump(e) for e in exprs)
    assert "item" in dumped and "items" in dumped


def test_nested_function_body_is_opaque():
    cfg = cfg_for(
        """
        def f():
            def inner():
                a()
            return inner
        """
    )
    # a() lives in the nested function; no transfer should see it.
    for node in cfg.nodes.values():
        for expr in relevant_exprs(node):
            for child in ast.walk(expr):
                assert not (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id == "a"
                )

"""Tests for the determinism/safety lint pass (``repro.verify.lint``)."""

import textwrap

from repro.verify.lint import lint_paths
from repro.verify.lint.engine import lint_source, main


def lint(code):
    return lint_source(textwrap.dedent(code), "example.py")


def codes(code):
    return [finding.code for finding in lint(code)]


# ---------------------------------------------------------------------------
# REPRO001: wall-clock / module-level RNG
# ---------------------------------------------------------------------------
def test_wallclock_calls_flagged():
    assert codes("""
        import time
        def now():
            return time.time()
    """) == ["REPRO001"]
    assert codes("""
        from datetime import datetime
        stamp = datetime.now()
    """) == ["REPRO001"]


def test_module_level_rng_flagged():
    assert codes("""
        import random
        def pick(items):
            return random.choice(items)
    """) == ["REPRO001"]


def test_seeded_rng_allowed():
    # random.Random is the sanctioned seam repro.sim.SeededRng wraps.
    assert codes("""
        import random
        def make(seed):
            return random.Random(seed)
    """) == []


def test_simulated_time_allowed():
    assert codes("""
        def now(sim):
            return sim.now
    """) == []


# ---------------------------------------------------------------------------
# REPRO002: hash-ordered iteration
# ---------------------------------------------------------------------------
def test_set_iteration_flagged():
    assert codes("""
        def schedule(flows):
            for flow in set(flows):
                flow.start()
    """) == ["REPRO002"]
    assert codes("""
        def drain(pending):
            return [retire(entry) for entry in {p.key for p in pending}]
    """) == ["REPRO002"]


def test_sorted_set_iteration_allowed():
    assert codes("""
        def schedule(flows):
            for flow in sorted(set(flows)):
                flow.start()
    """) == []


def test_list_iteration_allowed():
    assert codes("""
        def schedule(flows):
            for flow in flows:
                flow.start()
    """) == []


# ---------------------------------------------------------------------------
# REPRO003: float equality on simulated timestamps
# ---------------------------------------------------------------------------
def test_timestamp_equality_flagged():
    assert codes("""
        def racy(event, other):
            return event.time == other.deadline
    """) == ["REPRO003"]


def test_timestamp_comparison_to_constant_allowed():
    assert codes("""
        def unset(event):
            return event.time == 0
    """) == []


def test_ordering_comparison_allowed():
    assert codes("""
        def earlier(event, other):
            return event.time < other.time
    """) == []


# ---------------------------------------------------------------------------
# REPRO004: drivers that unmap without invalidating
# ---------------------------------------------------------------------------
BAD_DRIVER = """
    class LeakyDriver(ProtectionDriver):
        def retire(self, descriptor):
            for slot in descriptor.slots:
                self.iommu.unmap_range(slot.iova, 4096)
"""

GOOD_DRIVER = """
    class SafeDriver(ProtectionDriver):
        def retire(self, descriptor):
            for slot in descriptor.slots:
                self.iommu.unmap_range(slot.iova, 4096)
                self._invalidate(slot.iova)
        def _invalidate(self, iova):
            self.iommu.invalidation_queue.invalidate_range(iova, 4096, False)
"""


def test_unmap_without_invalidation_flagged():
    assert codes(BAD_DRIVER) == ["REPRO004"]


def test_unmap_with_invalidation_allowed():
    # The invalidation lives in a helper method: the class-wide call-set
    # closure must see it.
    assert codes(GOOD_DRIVER) == []


def test_non_driver_classes_ignored():
    assert codes("""
        class PageTableShim:
            def drop(self, iova):
                self.table.unmap_range(iova, 4096)
    """) == []


def test_checked_invalidation_interface_allowed():
    # submit_invalidation/_invalidate_robust are the hardened seam the
    # fault-injection drivers use; they count as invalidating.
    assert codes("""
        class CheckedDriver(ProtectionDriver):
            def retire(self, slot):
                self.iommu.unmap_range(slot.iova, 4096)
                self._invalidate_robust(self.queue, slot.iova, 4096, False)
    """) == []


RETRY_DRIVER = """
    class RetryDriver(ProtectionDriver):
        def retire(self, slot):
            attempts = 0
            while attempts < 3:
                self.iommu.unmap_range(slot.iova, 4096)
                attempts += 1
            self.queue.invalidate_range(slot.iova, 4096, False)
"""

REARMING_RETRY_DRIVER = """
    class RearmingDriver(ProtectionDriver):
        def retire(self, slot):
            attempts = 0
            while attempts < 3:
                self.iommu.unmap_range(slot.iova, 4096)
                self._rearm(slot.iova)
                attempts += 1

        def _rearm(self, iova):
            self._invalidate_robust(self.queue, iova, 4096, False)
"""


def test_retry_loop_without_rearm_flagged():
    # The class as a whole invalidates (after the loop), but each loop
    # iteration's unmap leaves a stale IOTLB entry until the *final*
    # invalidation — the per-loop rule must still fire.
    findings = lint(RETRY_DRIVER)
    assert [f.code for f in findings] == ["REPRO004"]
    assert "retries an unmap" in findings[0].message


def test_retry_loop_with_rearm_allowed():
    # Re-arming through a helper method counts: the rule chases
    # self-method calls to a fixpoint.
    assert codes(REARMING_RETRY_DRIVER) == []


def test_retry_loop_rule_ignores_non_drivers():
    assert codes("""
        class RingBuffer:
            def drain(self):
                while self.entries:
                    self.table.unmap_range(self.entries.pop(), 4096)
    """) == []


# ---------------------------------------------------------------------------
# noqa + engine mechanics
# ---------------------------------------------------------------------------
def test_noqa_silences_matching_code():
    assert codes("""
        import time
        def now():
            return time.time()  # noqa: REPRO001
    """) == []


def test_noqa_with_other_code_does_not_silence():
    assert codes("""
        import time
        def now():
            return time.time()  # noqa: REPRO002
    """) == ["REPRO001"]


def test_bare_noqa_silences_everything():
    assert codes("""
        import time
        def now():
            return time.time()  # noqa
    """) == []


def test_syntax_error_reported_not_crashed():
    assert codes("def broken(:\n    pass") == ["REPRO000"]


def test_finding_format_is_parseable():
    finding = lint("""
        import time
        t = time.time()
    """)[0]
    path, line, rest = finding.format().split(":", 2)
    assert path == "example.py"
    assert int(line) == 3
    assert "REPRO001" in rest


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert main([str(clean)]) == 0
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "REPRO001" in out
    assert "dirty.py" in out


def test_repo_source_tree_is_clean():
    import repro

    src = repro.__file__.rsplit("/", 2)[0]
    assert lint_paths([src + "/repro"]) == []


# ---------------------------------------------------------------------------
# noqa parsing: comments only, never string literals
# ---------------------------------------------------------------------------
def test_noqa_inside_string_literal_does_not_suppress():
    assert codes("""
        import time
        def now():
            return time.time(), "see # noqa: REPRO001 in the docs"
    """) == ["REPRO001"]


def test_noqa_comment_after_string_still_suppresses():
    assert codes("""
        import time
        def now():
            return time.time(), "# noqa text"  # noqa: REPRO001
    """) == []


# ---------------------------------------------------------------------------
# File discovery: caches and hidden trees are skipped
# ---------------------------------------------------------------------------
def test_iter_python_files_skips_cache_and_hidden(tmp_path):
    from repro.verify.sources import iter_python_files

    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "real.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "real.cpython-311.py").write_text(
        "import time\nt = time.time()\n"
    )
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "secret.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n")

    found = sorted(str(p) for p in iter_python_files([str(tmp_path)]))
    assert found == [str(tmp_path / "pkg" / "real.py")]


def test_iter_python_files_explicit_file_always_yielded(tmp_path):
    from repro.verify.sources import iter_python_files

    cached = tmp_path / "__pycache__"
    cached.mkdir()
    target = cached / "odd.py"
    target.write_text("x = 1\n")
    assert [str(p) for p in iter_python_files([str(target)])] == [
        str(target)
    ]


# ---------------------------------------------------------------------------
# --format json
# ---------------------------------------------------------------------------
def test_main_json_format(tmp_path, capsys):
    import json

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert main([str(dirty), "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["tool"] == "repro-lint"
    assert document["count"] == 1
    assert document["findings"][0]["code"] == "REPRO001"
    assert document["findings"][0]["line"] == 2


def test_main_json_format_clean(tmp_path, capsys):
    import json

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean), "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out)["count"] == 0


def test_main_explain(capsys):
    assert main(["--explain", "REPRO004"]) == 0
    out = capsys.readouterr().out
    assert "REPRO004" in out
    assert main(["--explain", "NOPE"]) == 2

"""Regression: per-page invalidation must drop covering 2 MB IOTLB entries.

The bug: ``Iotlb.invalidate_page`` only probed the 4 KB array, so a
covering huge entry survived a strict-mode per-page unmap+invalidate —
the device kept a live translation for the whole retired 2 MB region.

Three angles:

1. the fixed IOTLB drops the huge entry (unit regression, in
   ``tests/iommu/test_iotlb.py``);
2. the invariant monitor *flags* the stale-huge case on the unfixed
   drop logic (reproduced here by a legacy subclass) as a
   use-after-unmap violation;
3. the fixed path translates to a clean :class:`DmaFault` with zero
   violations.
"""

import pytest

from repro.iommu import Iommu, Iotlb
from repro.iommu.addr import PAGE_SHIFT, PAGE_SIZE
from repro.iommu.iommu import DmaFault
from repro.verify import (
    InvalidationEvent,
    InvariantMonitor,
    InvariantViolation,
    monitored,
)

HUGE = 512 * PAGE_SIZE  # 2 MB


class LegacyIotlb(Iotlb):
    """Pre-fix drop logic: page invalidation ignores the huge array.

    The invalidation *descriptor* still completes (and is reported to
    the monitor) — that is exactly the bug's shape: the driver believes
    the page is unreachable while the 2 MB entry keeps translating it.
    """

    def invalidate_page(self, iova: int) -> bool:
        page_number = iova >> PAGE_SHIFT
        entry_set = self._set_for(page_number)
        dropped = False
        if page_number in entry_set:
            del entry_set[page_number]
            self.invalidations += 1
            dropped = True
        if self.monitor is not None:
            self.monitor.record(
                InvalidationEvent(
                    iova & ~(PAGE_SIZE - 1), PAGE_SIZE, True
                ),
                owner=id(self),
            )
        return dropped


def _huge_mapped_iommu(monitor, legacy: bool):
    """An IOMMU with one cached 2 MB translation, then fully unmapped."""
    with monitored(monitor):
        iommu = Iommu()
        if legacy:
            iommu.iotlb = LegacyIotlb(
                iommu.config.iotlb_entries, iommu.config.iotlb_ways
            )
    iommu.map_huge(0, base_frame=1000)
    assert iommu.translate(0x3000).frame == 1003  # fills the huge entry
    iommu.unmap_range(0, HUGE)  # pages now pending invalidation
    # Strict-mode per-page teardown: invalidate just the touched page.
    iommu.iotlb.invalidate_page(0x3000)
    return iommu


def test_monitor_flags_stale_huge_on_legacy_iotlb():
    monitor = InvariantMonitor()
    iommu = _huge_mapped_iommu(monitor, legacy=True)
    # The huge entry survived, so the translation *succeeds* for a page
    # whose invalidation completed — invariant (a) must fire.
    with pytest.raises(InvariantViolation) as excinfo:
        iommu.translate(0x3000)
    assert excinfo.value.kind == "use-after-unmap"
    assert monitor.violations


def test_fixed_iotlb_faults_cleanly_after_page_invalidation():
    monitor = InvariantMonitor()
    iommu = _huge_mapped_iommu(monitor, legacy=False)
    with pytest.raises(DmaFault):
        iommu.translate(0x3000)
    assert not monitor.violations
    assert monitor.faults_observed == 1


def test_fixed_iotlb_unreachable_across_whole_region():
    # After the per-page invalidation dropped the covering entry, no
    # address in the retired 2 MB region can still translate.
    monitor = InvariantMonitor()
    iommu = _huge_mapped_iommu(monitor, legacy=False)
    for iova in (0x0, 0x3000, HUGE - PAGE_SIZE):
        with pytest.raises(DmaFault):
            iommu.translate(iova)
    assert not monitor.violations

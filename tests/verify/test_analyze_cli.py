"""End-to-end tests for the ``repro analyze`` command line."""

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.verify.analyze.engine import main as analyze_main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "bad_branchy_driver.py")
GOOD = str(FIXTURES / "good_robust_retry.py")


def run(args, capsys):
    code = analyze_main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ---------------------------------------------------------------------------
# Exit codes and text output
# ---------------------------------------------------------------------------
def test_clean_input_exits_zero(capsys):
    code, out, _ = run([GOOD, "--no-baseline"], capsys)
    assert code == 0
    assert out == ""


def test_findings_exit_one_with_text(capsys):
    code, out, _ = run([BAD, "--no-baseline"], capsys)
    assert code == 1
    assert "REPRO004" in out
    assert "bad_branchy_driver.py" in out


def test_missing_path_exits_two(capsys):
    code, _, err = run(["no/such/tree"], capsys)
    assert code == 2
    assert "no such path" in err


def test_dispatch_through_repro_cli(capsys):
    assert repro_main(["analyze", GOOD, "--no-baseline"]) == 0


# ---------------------------------------------------------------------------
# --explain
# ---------------------------------------------------------------------------
def test_explain_known_code(capsys):
    code, out, _ = run(["--explain", "REPRO101"], capsys)
    assert code == 0
    assert "REPRO101" in out
    assert "use-after-unmap" in out


def test_explain_unknown_code(capsys):
    code, _, err = run(["--explain", "REPRO999"], capsys)
    assert code == 2
    assert "unknown rule code" in err


# ---------------------------------------------------------------------------
# Structured output
# ---------------------------------------------------------------------------
def test_json_output_parses(capsys):
    code, out, _ = run([BAD, "--no-baseline", "--format", "json"], capsys)
    assert code == 1
    document = json.loads(out)
    assert document["tool"] == "repro-analyze"
    assert document["count"] == 1
    finding = document["findings"][0]
    assert finding["code"] == "REPRO004"
    assert finding["path"].endswith("bad_branchy_driver.py")


def test_sarif_output_shape(capsys):
    code, out, _ = run([BAD, "--no-baseline", "--format", "sarif"], capsys)
    assert code == 1
    document = json.loads(out)
    assert document["version"] == "2.1.0"
    run_ = document["runs"][0]
    assert run_["tool"]["driver"]["name"] == "repro-analyze"
    rule_ids = {rule["id"] for rule in run_["tool"]["driver"]["rules"]}
    # Every analyzer rule is described even when it did not fire.
    assert {"REPRO004", "REPRO101", "REPRO102", "REPRO103",
            "REPRO104"} <= rule_ids
    result = run_["results"][0]
    assert result["ruleId"] == "REPRO004"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith(
        "bad_branchy_driver.py"
    )
    assert location["region"]["startLine"] > 0


def test_sarif_clean_run_has_empty_results(capsys):
    code, out, _ = run([GOOD, "--no-baseline", "--format", "sarif"], capsys)
    assert code == 0
    assert json.loads(out)["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# Baseline workflow
# ---------------------------------------------------------------------------
def test_baseline_accepts_then_suppresses(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    code, out, _ = run([BAD, "--baseline", baseline, "--write-baseline"],
                       capsys)
    assert code == 0
    assert "wrote 1 finding(s)" in out
    entries = json.loads(Path(baseline).read_text())["entries"]
    assert entries[0]["code"] == "REPRO004"
    assert len(entries[0]["fingerprint"]) == 16

    # With the baseline: clean exit, finding suppressed.
    code, out, err = run([BAD, "--baseline", baseline], capsys)
    assert code == 0
    assert out == ""
    assert "1 baselined finding(s) suppressed" in err

    # Ignoring it brings the finding back.
    code, out, _ = run([BAD, "--baseline", baseline, "--no-baseline"],
                       capsys)
    assert code == 1


def test_missing_baseline_file_means_empty(tmp_path, capsys):
    code, _, _ = run(
        [BAD, "--baseline", str(tmp_path / "absent.json")], capsys
    )
    assert code == 1


def test_baseline_survives_line_drift(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    original = Path(BAD).read_text()
    drifted = tmp_path / "drifted.py"
    drifted.write_text(original)
    code, _, _ = run(
        [str(drifted), "--baseline", baseline, "--write-baseline"], capsys
    )
    assert code == 0
    # Shift every line down: the flagged line's text is unchanged, so
    # the fingerprint still matches.
    fingerprints = {
        entry["fingerprint"]
        for entry in json.loads(Path(baseline).read_text())["entries"]
    }
    drifted.write_text("# a new leading comment\n" + original)
    code, out, _ = run([str(drifted), "--baseline", baseline], capsys)
    assert code == 0, out
    drifted_prints = set()
    run([str(drifted), "--baseline", str(tmp_path / "b2.json"),
         "--write-baseline"], capsys)
    drifted_prints = {
        entry["fingerprint"]
        for entry in json.loads((tmp_path / "b2.json").read_text())[
            "entries"
        ]
    }
    assert drifted_prints == fingerprints


# ---------------------------------------------------------------------------
# The committed repo baseline contract
# ---------------------------------------------------------------------------
def test_committed_baseline_is_empty():
    document = json.loads(
        (Path(__file__).parents[2] / "analyze-baseline.json").read_text()
    )
    assert document["tool"] == "repro-analyze"
    assert document["entries"] == []


def test_noqa_suppresses_analyzer_finding(tmp_path, capsys):
    source = Path(BAD).read_text()
    patched = source.replace(
        "self.iommu.unmap_range(slot.iova, slot.length)",
        "self.iommu.unmap_range(slot.iova, slot.length)"
        "  # noqa: REPRO004",
    )
    target = tmp_path / "suppressed.py"
    target.write_text(patched)
    code, out, _ = run([str(target), "--no-baseline"], capsys)
    assert code == 0, out

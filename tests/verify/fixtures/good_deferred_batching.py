"""Known-good: deferred batching — unmap per slot, one flush after.

The per-iteration facts survive the ``for`` back edge (that is the
whole point of batching) but every path out of ``retire_batch`` goes
through ``_maybe_flush``, which transitively submits the flush; the
rule's call-graph closure recognises the helper as invalidating.
"""


class Driver:
    pass


class DeferredBatchingDriver(Driver):
    def __init__(self, iommu, queue):
        self.iommu = iommu
        self.queue = queue
        self.pending = []

    def retire_batch(self, slots):
        for slot in slots:
            self.iommu.unmap_range(slot.iova, slot.length)
            self._note(slot)
        self._maybe_flush(force=True)

    def _note(self, slot):
        self.pending.append(slot)

    def _maybe_flush(self, force=False):
        if force or len(self.pending) >= 32:
            self.queue.submit_flush(list(self.pending))
            self.pending = []

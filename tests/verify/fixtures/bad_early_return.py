"""Known-bad: an error path returns between unmap and invalidation.

Both calls appear in the method body, so the closure heuristic is
satisfied; the CFG rule follows the ``return None`` edge and sees the
pending unmap escape the function uninvalidated.
"""


class Driver:
    pass


class EarlyReturnDriver(Driver):
    def __init__(self, iommu):
        self.iommu = iommu

    def retire(self, slot):
        self.iommu.unmap_range(slot.iova, slot.length)
        if slot.error:
            return None
        self.iommu.invalidate_range(slot.iova, slot.length)
        return slot

"""Known-bad: a while-loop retries the unmap without re-arming.

Each failed attempt leaves its stale translation live until the loop
finally exits; the single invalidation after the loop only covers the
last attempt.  The CFG rule tags pending-unmap facts that survive a
``while`` back edge and flags the re-entry.
"""


class Driver:
    pass


class RetryLoopDriver(Driver):
    def __init__(self, iommu):
        self.iommu = iommu

    def retire(self, slot):
        done = False
        while not done:
            done = self.iommu.unmap_range(slot.iova, slot.length)
        self.iommu.invalidate_range(slot.iova, slot.length)
        return slot

"""Known-good: a retry loop that re-arms the invalidation per attempt.

Unlike the bad retry fixture, every iteration pairs its unmap with an
invalidation before looping, so no pending fact ever crosses the
``while`` back edge and the confirmed ``break`` path is clean too.
"""


class Driver:
    pass


class RobustRetryDriver(Driver):
    def __init__(self, iommu):
        self.iommu = iommu

    def retire(self, slot):
        attempts = 0
        while attempts < 3:
            self.iommu.unmap_range(slot.iova, slot.length)
            self.iommu.invalidate_range(slot.iova, slot.length)
            if self.iommu.confirmed(slot.iova):
                break
            attempts += 1
        return slot

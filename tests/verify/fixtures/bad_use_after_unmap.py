"""Known-bad: the IOVA handed to unmap flows into a DMA sink.

Statically reachable use-after-unmap: the translate() on the last
line runs against an address whose mapping a previous statement
already tore down.
"""


class StaleReader:
    def issue(self, iommu, slot):
        iommu.unmap_range(slot.iova, slot.length)
        self.log(slot.iova)
        return iommu.translate(slot.iova)

    def log(self, iova):
        pass

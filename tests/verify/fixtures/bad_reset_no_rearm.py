"""Known-bad: reset path resumes mapping without re-arming the queue.

After a wedged invalidation queue the completions for pending unmaps
were dropped; ``reset_recover`` below reposts fresh descriptors (a
map-family call) before anything re-arms the queue, so stale
translations may still be live when DMA resumes.  The branch variant
re-arms only on the slow path — the urgent path must be flagged too.
"""


class Driver:
    pass


class ResetNoRearmDriver(Driver):
    def __init__(self, iommu, queue):
        self.iommu = iommu
        self.queue = queue

    def reset_recover(self, descriptors):
        # BUG: mapping resumes while the queue is still wedged.
        for descriptor in descriptors:
            self.iommu.map_page(descriptor.iova, descriptor.frame)
        self.queue.rearm()


class BranchyResetDriver(Driver):
    def __init__(self, iommu, queue):
        self.iommu = iommu
        self.queue = queue

    def reset_device(self, descriptors, urgent):
        if urgent:
            # BUG: the fast path skips the re-arm entirely.
            pass
        else:
            self.queue.rearm()
        for descriptor in descriptors:
            self.iommu.map_page(descriptor.iova, descriptor.frame)

"""Known-bad: metrics work outside the ``if hooks:`` guard.

The hook getters return ``None`` when observability is off; calling
through the result unguarded both breaks the zero-cost contract and
crashes un-instrumented runs.
"""


def run_phase(spec):
    registry = current_registry()
    registry.begin_phase(spec.label)
    return spec.run()


def current_registry():
    return None

"""REPRO106 fixture: one pool task per sweep point, no chunking."""


def run_points_per_item(pool, specs, scale):
    futures = []
    for spec in specs:
        futures.append(pool.submit(run_one, spec, scale))
    return [future.result() for future in futures]


def run_one(spec, scale):
    return spec, scale

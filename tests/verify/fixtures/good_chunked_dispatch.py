"""REPRO106 fixture: points ride the pool in fixed-size chunks."""


def run_points_chunked(pool, specs, scale, chunk=None):
    chunk_size = chunk if chunk is not None else max(1, len(specs) // 4)
    chunks = [
        specs[index:index + chunk_size]
        for index in range(0, len(specs), chunk_size)
    ]
    futures = []
    for chunk_specs in chunks:
        futures.append(pool.submit(run_chunk, chunk_specs, scale))
    return [
        value for future in futures for value in future.result()
    ]


def run_chunk(specs, scale):
    return [(spec, scale) for spec in specs]

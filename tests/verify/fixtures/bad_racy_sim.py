"""Known-bad: two sim callbacks race on the same attribute.

Both callbacks are armed from ``start`` with no happens-before edge
between them (neither schedules the other), yet both plainly assign
``self.status`` — the same-timestamp firing order decides which value
wins.
"""


class WatchdogPair:
    def __init__(self):
        self.status = None

    def start(self, sim):
        sim.call_after(5, self._on_timeout)
        sim.call_after(5, self._on_complete)

    def _on_timeout(self):
        self.status = "timeout"

    def _on_complete(self):
        self.status = "done"

"""Known-bad: unmap on one branch, invalidation only on the other.

The lint's class-closure heuristic sees both an unmap and an
invalidate somewhere in the method and stays quiet; only the CFG rule
proves the urgent branch reaches ``return`` with the translation
still live in the IOTLB.
"""


class Driver:
    pass


class BranchySplitDriver(Driver):
    def __init__(self, iommu):
        self.iommu = iommu

    def retire(self, slot, urgent):
        if urgent:
            # Fast path skips the invalidation entirely.
            self.iommu.unmap_range(slot.iova, slot.length)
        else:
            self.iommu.invalidate_range(slot.iova, slot.length)
        return slot

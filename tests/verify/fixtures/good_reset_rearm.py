"""Known-good: every reset path re-arms the queue before mapping.

``reset_recover`` follows the protocol directly; ``recover_via_helper``
re-arms through a helper method the rule must resolve transitively.
"""


class Driver:
    pass


class RearmFirstDriver(Driver):
    def __init__(self, iommu, queue):
        self.iommu = iommu
        self.queue = queue

    def reset_recover(self, descriptors):
        self.queue.rearm()
        for descriptor in descriptors:
            self.iommu.map_page(descriptor.iova, descriptor.frame)
        self.queue.flush_all()

    def _rearm_queue(self):
        self.queue.rearm()

    def recover_via_helper(self, descriptors):
        self._rearm_queue()
        for descriptor in descriptors:
            self.iommu.map_page(descriptor.iova, descriptor.frame)

"""Rule tests against the known-bad/known-good fixtures corpus.

The acceptance bar for the CFG-based REPRO004: it must catch the
branch-split and early-return stale paths that the lint's
class-closure heuristic provably misses — both directions are
asserted here (analyzer flags, lint stays quiet).
"""

from pathlib import Path

import repro
from repro.verify.analyze import analyze_paths, analyze_project
from repro.verify.analyze.project import ProjectModel
from repro.verify.lint.engine import lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def analyze_fixture(*names):
    project = ProjectModel()
    for name in names:
        path = FIXTURES / name
        project.add_source(path.read_text(), str(path))
    return analyze_project(project)


def analyze_source(source, path="example.py"):
    project = ProjectModel()
    project.add_source(source, path)
    return analyze_project(project)


def codes(findings):
    return [finding.code for finding in findings]


# ---------------------------------------------------------------------------
# REPRO004: the CFG upgrade vs the lint heuristic
# ---------------------------------------------------------------------------
def test_branchy_unmap_flagged_by_analyzer():
    findings = analyze_fixture("bad_branchy_driver.py")
    assert codes(findings) == ["REPRO004"]
    assert "return without an IOTLB invalidation" in findings[0].message


def test_branchy_unmap_missed_by_lint_heuristic():
    source = (FIXTURES / "bad_branchy_driver.py").read_text()
    lint_codes = [f.code for f in lint_source(source, "bad.py")]
    assert "REPRO004" not in lint_codes


def test_early_return_flagged_by_analyzer():
    findings = analyze_fixture("bad_early_return.py")
    assert codes(findings) == ["REPRO004"]
    assert findings[0].line == 18  # the unmap call site


def test_early_return_missed_by_lint_heuristic():
    source = (FIXTURES / "bad_early_return.py").read_text()
    lint_codes = [f.code for f in lint_source(source, "bad.py")]
    assert "REPRO004" not in lint_codes


def test_retry_loop_without_rearm_flagged():
    findings = analyze_fixture("bad_retry_driver.py")
    assert codes(findings) == ["REPRO004"]
    assert "without re-arming" in findings[0].message


def test_reuse_while_pending_flagged():
    findings = analyze_source(
        """
class Driver:
    pass


class ReuseDriver(Driver):
    def recycle(self, slot, frame):
        self.iommu.unmap_range(slot.iova, slot.length)
        return self.iommu.map_page(slot.iova, frame)
"""
    )
    # Two distinct defects on the same unmap: the reuse while pending,
    # and the stale translation still live at return.
    assert codes(findings) == ["REPRO004", "REPRO004"]
    messages = " / ".join(finding.message for finding in findings)
    assert "remaps/reuses" in messages
    assert "return without an IOTLB invalidation" in messages


def test_non_driver_class_not_checked_for_unmap():
    findings = analyze_source(
        """
class Bookkeeper:
    def retire(self, slot):
        self.iommu.unmap_range(slot.iova, slot.length)
        return slot
"""
    )
    assert "REPRO004" not in codes(findings)


def test_unmap_invalidate_straight_line_clean():
    findings = analyze_source(
        """
class Driver:
    pass


class StrictDriver(Driver):
    def retire(self, slot):
        self.iommu.unmap_range(slot.iova, slot.length)
        self.iommu.invalidate_range(slot.iova, slot.length)
        return slot
"""
    )
    assert findings == []


# ---------------------------------------------------------------------------
# Known-good fixtures: zero noise
# ---------------------------------------------------------------------------
def test_good_deferred_batching_clean():
    assert analyze_fixture("good_deferred_batching.py") == []


def test_good_robust_retry_clean():
    assert analyze_fixture("good_robust_retry.py") == []


def test_whole_fixture_corpus_codes():
    findings = analyze_fixture(
        "bad_branchy_driver.py",
        "bad_early_return.py",
        "bad_retry_driver.py",
        "bad_use_after_unmap.py",
        "bad_racy_sim.py",
        "bad_unguarded_hooks.py",
        "good_deferred_batching.py",
        "good_robust_retry.py",
    )
    assert sorted(codes(findings)) == [
        "REPRO004",
        "REPRO004",
        "REPRO004",
        "REPRO101",
        "REPRO102",
        "REPRO103",
    ]


# ---------------------------------------------------------------------------
# REPRO101: use-after-unmap taint
# ---------------------------------------------------------------------------
def test_use_after_unmap_flagged():
    findings = analyze_fixture("bad_use_after_unmap.py")
    assert codes(findings) == ["REPRO101"]
    assert "slot.iova" in findings[0].message


def test_taint_killed_by_rebinding():
    findings = analyze_source(
        """
class Ring:
    def refill(self, iommu, slot, fresh):
        iommu.unmap_range(slot.iova, slot.length)
        slot = fresh
        return iommu.translate(slot.iova)
"""
    )
    assert findings == []


def test_taint_killed_by_remap():
    findings = analyze_source(
        """
class Ring:
    def refill(self, iommu, slot, frame):
        iommu.unmap_range(slot.iova, slot.length)
        iommu.map_page(slot.iova, frame)
        return iommu.translate(slot.iova)
"""
    )
    assert findings == []


def test_taint_on_one_branch_still_flagged():
    findings = analyze_source(
        """
class Ring:
    def drain(self, iommu, slot, fast):
        if fast:
            iommu.unmap_range(slot.iova, slot.length)
        return iommu.dma_read(slot.iova)
"""
    )
    assert codes(findings) == ["REPRO101"]


# ---------------------------------------------------------------------------
# REPRO102: sim-callback races
# ---------------------------------------------------------------------------
def test_sim_race_flagged():
    findings = analyze_fixture("bad_racy_sim.py")
    assert codes(findings) == ["REPRO102"]
    assert "self.status" in findings[0].message


def test_sim_race_suppressed_by_happens_before():
    findings = analyze_source(
        """
class Chain:
    def start(self, sim):
        self.sim = sim
        sim.call_after(5, self._first)

    def _first(self):
        self.status = "first"
        self.sim.call_after(1, self._second)

    def _second(self):
        self.status = "second"
"""
    )
    assert findings == []


def test_sim_race_ignores_commutative_updates():
    findings = analyze_source(
        """
class Counter:
    def start(self, sim):
        sim.call_after(5, self._a)
        sim.call_after(5, self._b)

    def _a(self):
        self.total += 1

    def _b(self):
        self.total += 2
"""
    )
    assert findings == []


def test_sim_race_sees_lambda_callbacks():
    findings = analyze_source(
        """
class LambdaPair:
    def start(self, sim):
        sim.call_after(5, lambda: self._a(1))
        sim.call_after(5, lambda: self._b(2))

    def _a(self, x):
        self.mode = "a"

    def _b(self, x):
        self.mode = "b"
"""
    )
    assert codes(findings) == ["REPRO102"]


# ---------------------------------------------------------------------------
# REPRO103: zero-cost hook guards
# ---------------------------------------------------------------------------
def test_unguarded_hook_use_flagged():
    findings = analyze_fixture("bad_unguarded_hooks.py")
    assert codes(findings) == ["REPRO103"]


def test_guarded_hook_use_clean():
    findings = analyze_source(
        """
def run_phase(spec):
    registry = current_registry()
    if registry is not None:
        registry.begin_phase(spec.label)
    return spec.run()
"""
    )
    assert findings == []


def test_hook_guard_through_boolean_alias():
    findings = analyze_source(
        """
def run_points(specs):
    registry = current_registry()
    collect = registry is not None
    interval = registry.sample_interval_ns if collect else None
    for spec in specs:
        if collect:
            registry.begin_phase(spec.label)
"""
    )
    assert findings == []


def test_hook_guard_early_return_pattern_clean():
    findings = analyze_source(
        """
class Worker:
    def __init__(self):
        self.obs = current_registry()

    def record(self, value):
        if self.obs is None:
            return
        self.obs.counter("value").add(value)
"""
    )
    assert findings == []


def test_hook_attr_unguarded_in_sibling_method_flagged():
    findings = analyze_source(
        """
class Worker:
    def __init__(self):
        self.obs = current_registry()

    def record(self, value):
        self.obs.counter("value").add(value)
"""
    )
    assert codes(findings) == ["REPRO103"]
    assert "self.obs" in findings[0].message


def test_hook_guard_short_circuit_expression_clean():
    findings = analyze_source(
        """
class Worker:
    def __init__(self):
        self.obs = current_registry()

    def snapshot(self):
        return self.obs is not None and self.obs.tracer is not None
"""
    )
    assert findings == []


# ---------------------------------------------------------------------------
# REPRO104: spec phase selectors vs the live label vocabulary
# ---------------------------------------------------------------------------
RUNNER = """
class FnsMode:
    def __init__(self):
        self.name = "fns"


def run_point(registry, mode, x):
    registry.begin_phase(f"Fig 7 {mode} flows={x}")
"""


def test_unknown_phase_selector_flagged():
    findings = analyze_source(
        RUNNER
        + """
spec = PointSpec(phase_contains=" tcp ")
"""
    )
    assert codes(findings) == ["REPRO104"]
    assert "tcp" in findings[0].message


def test_known_phase_selector_clean():
    findings = analyze_source(
        RUNNER
        + """
spec_a = PointSpec(phase_contains=" fns ")
spec_b = PointSpec(phase_contains="Fig 7")
"""
    )
    assert findings == []


def test_phase_rule_silent_without_vocabulary():
    findings = analyze_source(
        """
spec = PointSpec(phase_contains=" anything ")
"""
    )
    assert findings == []


# ---------------------------------------------------------------------------
# REPRO105: reset paths must re-arm the invalidation queue first
# ---------------------------------------------------------------------------
def test_reset_without_rearm_flagged():
    findings = analyze_fixture("bad_reset_no_rearm.py")
    assert codes(findings) == ["REPRO105", "REPRO105"]
    # Both the map-before-rearm body and the branch that skips the
    # re-arm entirely, each anchored at its map-family call site.
    assert [finding.line for finding in findings] == [23, 39]
    assert "never re-armed" in findings[0].message
    assert "map_page" in findings[0].message


def test_reset_with_rearm_first_is_clean():
    # Includes a helper-mediated re-arm: the rule must resolve
    # transitive callers of rearm(), not just direct calls.
    assert analyze_fixture("good_reset_rearm.py") == []


# ---------------------------------------------------------------------------
# REPRO106: per-item pool dispatch in a sweep loop
# ---------------------------------------------------------------------------
def test_per_item_dispatch_flagged():
    findings = analyze_fixture("bad_per_item_dispatch.py")
    assert codes(findings) == ["REPRO106"]
    assert "one pool task per iterated item" in findings[0].message


def test_chunked_dispatch_is_clean():
    assert analyze_fixture("good_chunked_dispatch.py") == []


def test_submit_of_derived_value_not_flagged():
    # Submitting something computed from the loop variable (not the
    # variable itself) is not the per-item payload pattern.
    findings = analyze_source(
        "def f(pool, items):\n"
        "    for item in items:\n"
        "        pool.submit(work, item.tag)\n"
    )
    assert findings == []


# ---------------------------------------------------------------------------
# The analyzer's own bar: zero findings on the shipped source tree
# ---------------------------------------------------------------------------
def test_repo_source_tree_is_clean():
    src_root = Path(repro.__file__).parent
    assert analyze_paths([str(src_root)]) == []

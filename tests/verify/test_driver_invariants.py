"""Driver-level monitor tests: DMA bounds and violation-free operation.

The strict-family drivers must run their full Rx/Tx datapaths without
tripping any invariant; a DMA outside every registered buffer must trip
invariant (d) even though the translation itself succeeds.
"""

import pytest

from repro.iommu import Iommu
from repro.iommu.addr import PAGE_SIZE
from repro.mem.physmem import PhysicalMemory
from repro.protection.deferred import DeferredDriver
from repro.protection.strict import StrictFamilyDriver
from repro.verify import InvariantMonitor, InvariantViolation, monitored

NUM_CPUS = 2


def build(factory, monitor, **kwargs):
    with monitored(monitor):
        iommu = Iommu()
        physmem = PhysicalMemory()
        return factory(iommu, physmem, NUM_CPUS, **kwargs)


def exercise(driver, pages=8):
    """One full Rx + Tx datapath cycle, translating like the NIC would."""
    descriptor, _ = driver.make_rx_descriptor(core=0, pages=pages)
    for slot in descriptor.slots:
        driver.translate(slot.iova, "rx")
    driver.retire_rx_descriptor(descriptor, core=0)
    mappings = []
    for _ in range(4):
        mapping, _ = driver.map_tx_page(core=1)
        driver.translate(mapping.iova, "tx_data")
        mappings.append(mapping)
    driver.retire_tx_pages(mappings, core=1)


@pytest.mark.parametrize(
    "factory,kwargs",
    [
        (StrictFamilyDriver.linux_strict, {}),
        (StrictFamilyDriver.linux_plus_preserve, {}),
        (StrictFamilyDriver.linux_plus_contiguous, {"chunk_pages": 8}),
        (StrictFamilyDriver.fns, {"chunk_pages": 8}),
    ],
    ids=["linux-strict", "linux+A", "linux+B", "fns"],
)
def test_strict_family_runs_violation_free(factory, kwargs):
    monitor = InvariantMonitor()
    driver = build(factory, monitor, **kwargs)
    for _ in range(6):
        exercise(driver)
    assert monitor.ok
    assert monitor.translations_checked > 0
    assert monitor.stale_window_translations == 0


def test_fns_huge_runs_violation_free():
    monitor = InvariantMonitor()
    driver = build(StrictFamilyDriver.fns_huge, monitor)
    for _ in range(2):
        descriptor, _ = driver.make_rx_descriptor(core=0, pages=512)
        for slot in descriptor.slots[:16]:
            driver.translate(slot.iova, "rx")
        driver.retire_rx_descriptor(descriptor, core=0)
    assert monitor.ok
    assert monitor.translations_checked > 0


def test_dma_outside_registered_buffers_violates():
    monitor = InvariantMonitor()
    driver = build(StrictFamilyDriver.linux_strict, monitor)
    descriptor, _ = driver.make_rx_descriptor(core=0, pages=4)
    for slot in descriptor.slots:
        driver.translate(slot.iova, "rx")
    # A mapping the driver never registered as a DMA buffer (e.g. a
    # leaked page or an attacker-controlled stray descriptor entry):
    # translation succeeds, but the access is out of bounds.
    stray = 0x1000
    driver.iommu.map_page(stray, frame=99)
    with pytest.raises(InvariantViolation) as excinfo:
        driver.translate(stray, "rx")
    assert excinfo.value.kind == "dma-out-of-bounds"


def test_dma_after_retire_is_out_of_bounds_or_dead():
    """After retiring a descriptor, any surviving access to its pages
    must trip an invariant (use-after-unmap if the IOTLB entry survived,
    bounds otherwise)."""
    monitor = InvariantMonitor()
    driver = build(StrictFamilyDriver.linux_strict, monitor)
    descriptor, _ = driver.make_rx_descriptor(core=0, pages=4)
    target = descriptor.slots[0].iova
    frame = descriptor.slots[0].frame
    driver.translate(target, "rx")
    driver.retire_rx_descriptor(descriptor, core=0)
    # Forge the stale IOTLB entry a buggy invalidation would leave.
    driver.iommu.iotlb.insert(target, frame)
    with pytest.raises(InvariantViolation) as excinfo:
        driver.translate(target, "rx")
    assert excinfo.value.kind == "use-after-unmap"


def test_bounds_check_can_be_disabled():
    monitor = InvariantMonitor(check_dma_bounds=False)
    driver = build(StrictFamilyDriver.linux_strict, monitor)
    descriptor, _ = driver.make_rx_descriptor(core=0, pages=2)
    stray = 0x1000
    driver.iommu.map_page(stray, frame=99)
    driver.translate(stray, "rx")
    assert monitor.ok


def test_deferred_mode_stale_window_is_counted_not_fatal():
    """Deferred mode's deliberate hole: a stale IOTLB entry keeps
    translating until the batched flush.  Invariant (a) only fires after
    a *completed* invalidation, so the monitor counts the window."""
    monitor = InvariantMonitor(check_dma_bounds=False)
    with monitored(monitor):
        iommu = Iommu()
        physmem = PhysicalMemory()
        driver = DeferredDriver(iommu, physmem, NUM_CPUS,
                                flush_threshold=10_000)
    descriptor, _ = driver.make_rx_descriptor(core=0, pages=4)
    target = descriptor.slots[0].iova
    driver.translate(target, "rx")
    driver.retire_rx_descriptor(descriptor, core=0)
    # No flush yet: the stale entry still translates (the safety hole).
    driver.translate(target, "rx")
    assert driver.stale_translations == 1
    assert monitor.ok
    assert monitor.stale_window_translations == 1
    # After the flush completes the invalidation, the same access is a
    # hard violation if anything still translates it.
    driver.flush()
    driver.iommu.iotlb.insert(target, descriptor.slots[0].frame)
    with pytest.raises(InvariantViolation) as excinfo:
        driver.translate(target, "rx")
    assert excinfo.value.kind == "use-after-unmap"

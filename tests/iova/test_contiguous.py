"""Unit tests for F&S contiguous chunk allocation."""

import pytest

from repro.iommu.addr import PAGE_SIZE, PTL4_PAGE_SIZE, ptcache_key
from repro.iova import (
    CachingIovaAllocator,
    ChunkIovaAllocator,
    RbTreeIovaAllocator,
)


def make(chunk_pages=64, num_cpus=2):
    base = RbTreeIovaAllocator()
    return ChunkIovaAllocator(base, num_cpus=num_cpus, chunk_pages=chunk_pages)


class TestChunkAllocation:
    def test_chunk_is_contiguous(self):
        chunks = make()
        chunk = chunks.alloc_chunk(cpu=0)
        iovas = [chunk.take_slice() for _ in range(64)]
        for first, second in zip(iovas, iovas[1:]):
            assert second == first + PAGE_SIZE

    def test_chunk_spans_at_most_two_ptl4_pages(self):
        """The paper's guarantee: a 256 KB descriptor chunk touches at
        most 2 unique PTcache-L3 entries."""
        chunks = make()
        for _ in range(50):
            chunk = chunks.alloc_chunk(cpu=0)
            keys = {
                ptcache_key(chunk.base_iova + i * PAGE_SIZE, 3)
                for i in range(64)
            }
            assert len(keys) <= 2
            chunks.release_pages(chunk.base_iova, 64, cpu=0)

    def test_alloc_page_slices_sequentially(self):
        chunks = make(chunk_pages=4)
        first = chunks.alloc_page(cpu=0)
        second = chunks.alloc_page(cpu=0)
        assert second == first + PAGE_SIZE

    def test_new_chunk_when_exhausted(self):
        chunks = make(chunk_pages=2)
        a = chunks.alloc_page(cpu=0)
        chunks.alloc_page(cpu=0)
        c = chunks.alloc_page(cpu=0)  # new chunk
        assert chunks.chunks_allocated == 2
        assert c != a + 2 * PAGE_SIZE or True  # new chunk may be anywhere

    def test_per_cpu_chunks_are_distinct(self):
        chunks = make(chunk_pages=4)
        a = chunks.alloc_page(cpu=0)
        b = chunks.alloc_page(cpu=1)
        assert abs(a - b) >= 4 * PAGE_SIZE


class TestRelease:
    def test_chunk_freed_only_when_fully_released(self):
        base = RbTreeIovaAllocator()
        chunks = ChunkIovaAllocator(base, num_cpus=1, chunk_pages=4)
        iovas = [chunks.alloc_page(cpu=0) for _ in range(4)]
        chunks.release_pages(iovas[0], 2, cpu=0)
        assert chunks.chunks_freed == 0
        assert base.allocated_pages == 4
        chunks.release_pages(iovas[2], 2, cpu=0)
        assert chunks.chunks_freed == 1
        assert base.allocated_pages == 0

    def test_release_crossing_chunk_boundary_rejected(self):
        """Chunks are not address-adjacent, so a release range crossing
        the boundary is split by the caller; a single spanning call is
        an error the allocator catches."""
        base = RbTreeIovaAllocator()
        chunks = ChunkIovaAllocator(base, num_cpus=1, chunk_pages=2)
        iovas = [chunks.alloc_page(cpu=0) for _ in range(4)]
        with pytest.raises(ValueError):
            chunks.release_pages(iovas[1], 2, cpu=0)
        # Split at the boundary instead: tail of chunk 1, head of chunk 2.
        chunks.release_pages(iovas[1], 1, cpu=0)
        chunks.release_pages(iovas[2], 1, cpu=0)
        assert chunks.chunks_freed == 0
        chunks.release_pages(iovas[0], 1, cpu=0)
        chunks.release_pages(iovas[3], 1, cpu=0)
        assert chunks.chunks_freed == 2

    def test_chunk_of_finds_live_chunk(self):
        chunks = make(chunk_pages=4)
        chunk = chunks.alloc_chunk(cpu=0)
        assert chunks.chunk_of(chunk.base_iova + PAGE_SIZE) is chunk
        assert chunks.chunk_of(0xDEAD000) is None

    def test_release_whole_chunk(self):
        chunks = make()
        chunk = chunks.alloc_chunk(cpu=0)
        chunks.release_chunk(chunk, cpu=0)
        assert chunks.live_chunk_count == 0
        with pytest.raises(ValueError):
            chunks.release_chunk(chunk, cpu=0)

    def test_over_release_raises(self):
        chunks = make(chunk_pages=2)
        chunk = chunks.alloc_chunk(cpu=0)
        chunks.release_pages(chunk.base_iova, 2, cpu=0)
        with pytest.raises(ValueError):
            chunks.release_pages(chunk.base_iova, 1, cpu=0)

    def test_release_unknown_iova_raises(self):
        chunks = make()
        with pytest.raises(ValueError):
            chunks.release_pages(0xDEAD000, 1, cpu=0)


class TestChunkObject:
    def test_exhausted_chunk_rejects_slicing(self):
        chunks = make(chunk_pages=1)
        chunk = chunks.alloc_chunk(cpu=0)
        chunk.take_slice()
        with pytest.raises(RuntimeError):
            chunk.take_slice()

    def test_contains(self):
        chunks = make(chunk_pages=4)
        chunk = chunks.alloc_chunk(cpu=0)
        assert chunk.contains(chunk.base_iova)
        assert chunk.contains(chunk.base_iova + 3 * PAGE_SIZE)
        assert not chunk.contains(chunk.base_iova + 4 * PAGE_SIZE)


class TestWithCachingBase:
    def test_chunks_bypass_rcache_via_caching_allocator(self):
        """F&S on top of the standard allocator stack: 64-page chunks go
        straight to the rbtree (no interface change needed)."""
        caching = CachingIovaAllocator(num_cpus=1)
        chunks = ChunkIovaAllocator(caching, num_cpus=1, chunk_pages=64)
        chunk = chunks.alloc_chunk(cpu=0)
        assert caching.cache_misses == 1
        chunks.release_pages(chunk.base_iova, 64, cpu=0)
        assert caching.cached_iova_count() == 0

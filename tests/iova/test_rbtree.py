"""Unit and property tests for the red-black IOVA range tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iova import IovaRange, IovaRbTree


def build_tree(ranges):
    tree = IovaRbTree()
    for lo, hi in ranges:
        tree.insert(IovaRange(lo, hi))
    return tree


class TestBasics:
    def test_empty(self):
        tree = IovaRbTree()
        assert tree.is_empty()
        assert len(tree) == 0
        assert tree.maximum() is None
        assert tree.find(0) is None

    def test_insert_and_find(self):
        tree = build_tree([(10, 19), (30, 39), (0, 4)])
        assert tree.find(10).pfn_hi == 19
        assert tree.find(30).pfn_hi == 39
        assert tree.find(20) is None
        assert len(tree) == 3

    def test_find_containing(self):
        tree = build_tree([(10, 19), (30, 39)])
        assert tree.find_containing(15).pfn_lo == 10
        assert tree.find_containing(39).pfn_lo == 30
        assert tree.find_containing(25) is None

    def test_maximum(self):
        tree = build_tree([(10, 19), (50, 59), (30, 39)])
        assert tree.maximum().pfn_lo == 50

    def test_inorder_iteration_sorted(self):
        tree = build_tree([(50, 59), (10, 19), (30, 39)])
        assert [node.pfn_lo for node in tree] == [10, 30, 50]

    def test_predecessor_walk(self):
        tree = build_tree([(10, 19), (30, 39), (50, 59)])
        node = tree.maximum()
        seen = [node.pfn_lo]
        while True:
            node = tree.predecessor(node)
            if node is None:
                break
            seen.append(node.pfn_lo)
        assert seen == [50, 30, 10]

    def test_delete(self):
        tree = build_tree([(10, 19), (30, 39), (50, 59)])
        tree.delete(tree.find(30))
        assert tree.find(30) is None
        assert [node.pfn_lo for node in tree] == [10, 50]
        tree.check_invariants()

    def test_delete_root_repeatedly(self):
        tree = build_tree([(i * 10, i * 10 + 5) for i in range(20)])
        while not tree.is_empty():
            tree.delete(tree.root)
            tree.check_invariants()

    def test_range_size(self):
        assert IovaRange(10, 19).size == 10


class TestInvariantChecker:
    def test_detects_red_root(self):
        tree = build_tree([(0, 1)])
        tree.root.color = 0  # force RED
        with pytest.raises(AssertionError):
            tree.check_invariants()


@st.composite
def operation_sequences(draw):
    """Sequences of insert/delete ops over disjoint unit ranges."""
    keys = draw(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=120,
            unique=True,
        )
    )
    ops = []
    inserted = []
    for key in keys:
        ops.append(("insert", key))
        inserted.append(key)
        if inserted and draw(st.booleans()):
            victim = draw(st.sampled_from(inserted))
            inserted.remove(victim)
            ops.append(("delete", victim))
    return ops


@given(operation_sequences())
@settings(max_examples=60, deadline=None)
def test_red_black_invariants_hold_under_churn(ops):
    """After every operation the red-black and ordering invariants hold."""
    tree = IovaRbTree()
    live = set()
    for action, key in ops:
        lo = key * 2  # keep ranges disjoint
        if action == "insert":
            tree.insert(IovaRange(lo, lo + 1))
            live.add(key)
        else:
            node = tree.find(lo)
            assert node is not None
            tree.delete(node)
            live.discard(key)
        tree.check_invariants()
        assert len(tree) == len(live)
    assert sorted(node.pfn_lo // 2 for node in tree) == sorted(live)


@given(
    st.lists(
        st.integers(min_value=0, max_value=1_000),
        min_size=1,
        max_size=200,
        unique=True,
    )
)
@settings(max_examples=40, deadline=None)
def test_inorder_matches_sorted_insertion(keys):
    tree = IovaRbTree()
    for key in keys:
        tree.insert(IovaRange(key * 3, key * 3 + 1))
    assert [node.pfn_lo for node in tree] == sorted(key * 3 for key in keys)
    tree.check_invariants()

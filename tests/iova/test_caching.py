"""Unit tests for the per-CPU magazine/depot IOVA cache."""

import pytest

from repro.iommu.addr import PAGE_SIZE
from repro.iova import MAG_SIZE, CachingIovaAllocator


def make(num_cpus=2, **kwargs):
    return CachingIovaAllocator(num_cpus=num_cpus, **kwargs)


class TestFastPath:
    def test_freed_iova_recycled_lifo_on_same_cpu(self):
        alloc = make()
        first = alloc.alloc(1, cpu=0)
        second = alloc.alloc(1, cpu=0)
        alloc.free(first, 1, cpu=0)
        alloc.free(second, 1, cpu=0)
        # LIFO: the most recently freed comes back first.
        assert alloc.alloc(1, cpu=0) == second
        assert alloc.alloc(1, cpu=0) == first

    def test_cache_hit_vs_miss_accounting(self):
        alloc = make()
        iova = alloc.alloc(1, cpu=0)
        assert alloc.cache_misses == 1
        alloc.free(iova, 1, cpu=0)
        alloc.alloc(1, cpu=0)
        assert alloc.cache_hits == 1

    def test_per_cpu_isolation(self):
        """An IOVA freed on cpu 0 is not visible to cpu 1's cache."""
        alloc = make()
        iova = alloc.alloc(1, cpu=0)
        alloc.free(iova, 1, cpu=0)
        other = alloc.alloc(1, cpu=1)
        assert other != iova
        assert alloc.cache_misses == 2

    def test_cached_iovas_stay_allocated_in_rbtree(self):
        """Like Linux: parked IOVAs keep their tree ranges, so fresh
        tree allocations cannot reuse that address space — circulating
        extent exceeds the live working set."""
        alloc = make()
        iova = alloc.alloc(1, cpu=0)
        alloc.free(iova, 1, cpu=0)
        assert alloc.rbtree.is_allocated(iova)
        fresh = alloc.rbtree.alloc(1)
        assert fresh != iova

    def test_cheap_fast_path_cost(self):
        alloc = make(cache_hit_cost_ns=10.0, tree_op_cost_ns=1000.0)
        iova = alloc.alloc(1, cpu=0)  # slow path
        slow_cost = alloc.total_cpu_ns
        alloc.free(iova, 1, cpu=0)
        alloc.alloc(1, cpu=0)  # fast path
        fast_cost = alloc.total_cpu_ns - slow_cost
        assert fast_cost < slow_cost / 10


class TestSizeClasses:
    def test_large_allocations_bypass_cache(self):
        """64-page (F&S chunk sized) requests skip the rcache, exactly
        like Linux (max cached order is 32 pages)."""
        alloc = make()
        iova = alloc.alloc(64, cpu=0)
        alloc.free(iova, 64, cpu=0)
        assert alloc.cached_iova_count() == 0
        assert not alloc.rbtree.is_allocated(iova)

    def test_non_power_of_two_bypasses_cache(self):
        alloc = make()
        iova = alloc.alloc(3, cpu=0)
        alloc.free(iova, 3, cpu=0)
        assert alloc.cached_iova_count() == 0

    def test_different_orders_use_different_magazines(self):
        alloc = make()
        small = alloc.alloc(1, cpu=0)
        big = alloc.alloc(2, cpu=0)
        alloc.free(small, 1, cpu=0)
        alloc.free(big, 2, cpu=0)
        # A size-2 alloc must not return the size-1 IOVA.
        assert alloc.alloc(2, cpu=0) == big
        assert alloc.alloc(1, cpu=0) == small


class TestMagazinesAndDepot:
    def test_magazine_overflow_goes_to_depot(self):
        alloc = make(num_cpus=1)
        iovas = [alloc.alloc(1, cpu=0) for _ in range(2 * MAG_SIZE + 1)]
        for iova in iovas:
            alloc.free(iova, 1, cpu=0)
        assert alloc.depot_magazines(0) == 1
        assert alloc.cached_iova_count() == 2 * MAG_SIZE + 1

    def test_depot_refills_empty_cpu_cache(self):
        alloc = make(num_cpus=2)
        iovas = [alloc.alloc(1, cpu=0) for _ in range(2 * MAG_SIZE + 1)]
        for iova in iovas:
            alloc.free(iova, 1, cpu=0)
        # cpu 1 has an empty cache but can pull the depot magazine.
        misses_before = alloc.cache_misses
        alloc.alloc(1, cpu=1)
        assert alloc.cache_misses == misses_before
        assert alloc.depot_magazines(0) == 0

    def test_depot_overflow_finally_frees_to_tree(self):
        alloc = make(num_cpus=1)
        # Enough frees to overflow the depot (32 magazines).
        count = (2 + 33) * MAG_SIZE + 1
        iovas = [alloc.alloc(1, cpu=0) for _ in range(count)]
        pages_before_free = alloc.rbtree.allocated_pages
        for iova in iovas:
            alloc.free(iova, 1, cpu=0)
        assert alloc.rbtree.allocated_pages < pages_before_free

    def test_cpu_bounds_checked(self):
        alloc = make(num_cpus=2)
        with pytest.raises(ValueError):
            alloc.alloc(1, cpu=2)
        with pytest.raises(ValueError):
            alloc.free(0, 1, cpu=-1)


class TestLocalityDegradation:
    def test_rx_tx_interleaving_scatters_allocation_order(self):
        """The §2.2 phenomenon: interleaved alloc/free from the Rx and
        Tx datapaths on one core degrades the sequential locality of
        allocated IOVAs over time.

        The churn pattern mimics the datapath: descriptor completions
        free 16-page batches, ACK (Tx) IOVAs are allocated per round
        but freed a few rounds *later* (Tx completion lags), and
        replenishment re-allocates the batch.  Delayed Tx frees land in
        the middle of later Rx batches on the LIFO magazine, shuffling
        the allocation order."""
        from collections import deque

        def run_churn(acks_per_round):
            trace: list[tuple[int, int]] = []
            alloc = make(num_cpus=1, trace=trace)
            ring = deque(alloc.alloc(1, cpu=0) for _ in range(128))
            tx_in_flight: deque[int] = deque()
            for _ in range(60):
                # Descriptor completion: free a 16-page batch.
                for _ in range(16):
                    alloc.free(ring.popleft(), 1, cpu=0)
                # ACKs allocated now, freed several rounds later
                # (Tx completion lags Rx processing).
                for _ in range(acks_per_round):
                    tx_in_flight.append(alloc.alloc(1, cpu=0))
                while len(tx_in_flight) > 5 * acks_per_round:
                    alloc.free(tx_in_flight.popleft(), 1, cpu=0)
                # Replenish the descriptor.
                for _ in range(16):
                    ring.append(alloc.alloc(1, cpu=0))
            tail = [iova for iova, _ in trace[-400:]]
            deltas = [
                abs(b - a) // PAGE_SIZE for a, b in zip(tail, tail[1:])
            ]
            # Long jumps = breaks in sequential locality.
            return sum(1 for d in deltas if d > 4)

        no_tx_jumps = run_churn(acks_per_round=0)
        with_tx_jumps = run_churn(acks_per_round=4)
        # Tx interference strictly degrades allocation-order locality.
        assert with_tx_jumps > 2 * max(no_tx_jumps, 1)


class TestSlowPathCharging:
    def test_slow_path_charges_rbtree_not_rcache(self):
        # Regression: the slow path used to plant a spurious 0.0 entry
        # in the rcache's own per-core ledger on every miss.
        alloc = CachingIovaAllocator(num_cpus=2)
        alloc.alloc(1, cpu=1)  # cold cache -> rbtree
        assert alloc.cache_misses == 1
        assert alloc.cpu_ns_by_core == {}
        assert alloc.rbtree.cpu_ns_by_core[1] > 0.0
        assert alloc.total_cpu_ns == alloc.rbtree.total_cpu_ns

    def test_fast_path_still_charges_rcache(self):
        alloc = CachingIovaAllocator(num_cpus=1)
        iova = alloc.alloc(1)
        alloc.free(iova, 1)
        tree_before = alloc.rbtree.total_cpu_ns
        own_before = alloc.cpu_ns_by_core.get(0, 0.0)
        alloc.alloc(1)  # magazine hit
        assert (
            alloc.cpu_ns_by_core[0] - own_before == alloc.cache_hit_cost_ns
        )
        assert alloc.rbtree.total_cpu_ns == tree_before

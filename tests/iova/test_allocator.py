"""Unit and property tests for the rbtree-backed IOVA allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iommu.addr import PAGE_SIZE
from repro.iova import IovaExhaustedError, RbTreeIovaAllocator


class TestTopDownAllocation:
    def test_allocates_from_top_of_space(self):
        alloc = RbTreeIovaAllocator(limit_pfn=0xFF)
        iova = alloc.alloc(1)
        assert iova == 0xFF * PAGE_SIZE

    def test_consecutive_allocations_descend_compactly(self):
        """Linux-style: active IOVAs pack from the top of the space —
        the compactness §2.2 relies on for the PTcache-L1/L2 argument."""
        alloc = RbTreeIovaAllocator(limit_pfn=0xFF)
        first = alloc.alloc(1)
        second = alloc.alloc(1)
        third = alloc.alloc(2)
        assert second == first - PAGE_SIZE
        assert third == second - 2 * PAGE_SIZE

    def test_free_reopens_gap(self):
        alloc = RbTreeIovaAllocator(limit_pfn=0xFF)
        first = alloc.alloc(4)
        alloc.alloc(4)
        alloc.free(first, 4)
        assert alloc.alloc(4) == first

    def test_gap_scan_skips_too_small_gaps(self):
        alloc = RbTreeIovaAllocator(limit_pfn=0xFF)
        top = alloc.alloc(2)
        middle = alloc.alloc(2)
        bottom = alloc.alloc(2)
        alloc.free(middle, 2)
        # A 2-page request reuses the hole (the cached scan position
        # moved up to the hole's upper neighbour on free) ...
        assert alloc.alloc(2) == middle
        alloc.free(middle, 2)
        # ... but a 3-page request cannot fit in it and descends.
        iova = alloc.alloc(3)
        assert iova < bottom
        assert top  # silence linters

    def test_cached_scan_skips_holes_above(self):
        """Linux cached-node semantics: holes that open above the scan
        position after later allocations are not revisited until the
        downward scan fails."""
        alloc = RbTreeIovaAllocator(limit_pfn=0xFF)
        top = alloc.alloc(2)
        alloc.alloc(2)  # middle-ish
        alloc.free(top, 2)  # hole above; cached moves to top's successor
        lower = alloc.alloc(1)  # takes part of the hole region
        assert lower == top + PAGE_SIZE  # hole found via updated cache
        even_lower = alloc.alloc(1)
        assert even_lower == top

    def test_exhaustion_raises(self):
        alloc = RbTreeIovaAllocator(limit_pfn=3)  # 4 pages total
        alloc.alloc(4)
        with pytest.raises(IovaExhaustedError):
            alloc.alloc(1)

    def test_exhaustion_with_fragmentation(self):
        alloc = RbTreeIovaAllocator(limit_pfn=3)
        keep = alloc.alloc(1)
        middle = alloc.alloc(1)
        alloc.alloc(2)
        alloc.free(middle, 1)
        with pytest.raises(IovaExhaustedError):
            alloc.alloc(2)
        assert keep

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            RbTreeIovaAllocator().alloc(0)


class TestFreeValidation:
    def test_free_unallocated_raises(self):
        alloc = RbTreeIovaAllocator()
        with pytest.raises(ValueError):
            alloc.free(0x1000, 1)

    def test_free_wrong_size_raises(self):
        alloc = RbTreeIovaAllocator()
        iova = alloc.alloc(4)
        with pytest.raises(ValueError):
            alloc.free(iova, 2)

    def test_double_free_raises(self):
        alloc = RbTreeIovaAllocator()
        iova = alloc.alloc(1)
        alloc.free(iova, 1)
        with pytest.raises(ValueError):
            alloc.free(iova, 1)


class TestAccounting:
    def test_cpu_cost_charged_per_core(self):
        alloc = RbTreeIovaAllocator(tree_op_cost_ns=100.0)
        alloc.alloc(1, cpu=0)
        alloc.alloc(1, cpu=1)
        iova = alloc.alloc(1, cpu=1)
        alloc.free(iova, 1, cpu=1)
        assert alloc.cpu_ns_by_core[0] == pytest.approx(100.0)
        assert alloc.cpu_ns_by_core[1] >= 300.0
        assert alloc.total_cpu_ns >= 400.0

    def test_scan_cost_grows_with_fragmentation(self):
        alloc = RbTreeIovaAllocator(
            tree_op_cost_ns=100.0, scan_step_cost_ns=10.0
        )
        blocks = [alloc.alloc(1, cpu=0) for _ in range(50)]
        # Free the topmost block: the cached scan position resets to
        # the top, and a size-2 request (which cannot fit the 1-page
        # hole) must now scan past every live range — the worst-case
        # linear search §2.1 describes.
        alloc.free(blocks[0], 1, cpu=0)
        before = alloc.cpu_ns_by_core[0]
        alloc.alloc(2, cpu=0)
        scan_cost = alloc.cpu_ns_by_core[0] - before
        assert scan_cost > 100.0 + 10.0 * 40

    def test_cached_scan_keeps_common_case_cheap(self):
        """With the cached node, back-to-back allocations do not rescan
        the fragmented space above (the Linux optimization F&S's chunk
        allocations rely on)."""
        alloc = RbTreeIovaAllocator(
            tree_op_cost_ns=100.0, scan_step_cost_ns=10.0
        )
        for _ in range(200):
            alloc.alloc(1, cpu=0)
        before = alloc.cpu_ns_by_core[0]
        alloc.alloc(64, cpu=0)
        assert alloc.cpu_ns_by_core[0] - before <= 100.0 + 10.0

    def test_trace_records_allocations(self):
        trace = []
        alloc = RbTreeIovaAllocator(trace=trace)
        a = alloc.alloc(1)
        b = alloc.alloc(64)
        assert trace == [(a, 1), (b, 64)]

    def test_allocated_pages_counter(self):
        alloc = RbTreeIovaAllocator()
        iova = alloc.alloc(8)
        assert alloc.allocated_pages == 8
        alloc.free(iova, 8)
        assert alloc.allocated_pages == 0

    def test_is_allocated(self):
        alloc = RbTreeIovaAllocator()
        iova = alloc.alloc(2)
        assert alloc.is_allocated(iova)
        assert alloc.is_allocated(iova + PAGE_SIZE)
        assert not alloc.is_allocated(iova - PAGE_SIZE)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=64),
            st.booleans(),
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_allocations_never_overlap(ops):
    """Property: live allocations are always pairwise disjoint and the
    rbtree invariants hold throughout alloc/free churn."""
    alloc = RbTreeIovaAllocator()
    live: list[tuple[int, int]] = []
    for pages, should_free in ops:
        iova = alloc.alloc(pages)
        live.append((iova, pages))
        if should_free and len(live) > 1:
            victim = live.pop(0)
            alloc.free(victim[0], victim[1])
        # Check pairwise disjointness.
        intervals = sorted(
            (iova, iova + pages * PAGE_SIZE) for iova, pages in live
        )
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert end <= start
        alloc.tree.check_invariants()

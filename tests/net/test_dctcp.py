"""Unit tests for the DCTCP sender/receiver state machines."""

import pytest

from repro.net import DctcpParams, DctcpReceiver, DctcpSender, Packet, PacketKind


def make_sender(**kwargs):
    params = DctcpParams(init_cwnd=kwargs.pop("init_cwnd", 4.0))
    return DctcpSender(flow_id=1, params=params, **kwargs)


def ack(seq, ecn=False):
    packet = Packet(1, seq, 64, PacketKind.ACK)
    packet.ecn_echo = ecn
    return packet


class TestSenderWindow:
    def test_initial_window_limits_sends(self):
        sender = make_sender()
        packets = sender.take_packets(now=0.0)
        assert len(packets) == 4
        assert [p.seq for p in packets] == [0, 1, 2, 3]
        assert sender.take_packets(now=0.0) == []

    def test_ack_opens_window(self):
        sender = make_sender()
        sender.take_packets(0.0)
        sender.on_ack(ack(2), 10.0)
        packets = sender.take_packets(10.0)
        assert len(packets) >= 2
        assert packets[0].seq == 4

    def test_slow_start_doubles_per_window(self):
        sender = make_sender()
        sender.take_packets(0.0)
        for seq in (1, 2, 3, 4):
            sender.on_ack(ack(seq), 10.0)
        assert sender.cwnd == pytest.approx(8.0)

    def test_congestion_avoidance_linear(self):
        sender = make_sender()
        sender.ssthresh = 4.0
        sender.in_slow_start = False
        sender.take_packets(0.0)
        sender.on_ack(ack(4), 10.0)
        # cwnd grows by ~1 segment per cwnd acked.
        assert 4.0 < sender.cwnd <= 5.5

    def test_max_count_limits_take(self):
        sender = make_sender()
        assert len(sender.take_packets(0.0, max_count=2)) == 2

    def test_limited_flow_respects_backlog(self):
        sender = make_sender(unlimited=False)
        assert sender.take_packets(0.0) == []
        sender.enqueue_segments(2)
        assert len(sender.take_packets(0.0)) == 2
        assert sender.take_packets(0.0) == []


class TestEcn:
    def test_marked_window_shrinks_cwnd(self):
        sender = make_sender()
        sender.take_packets(0.0)
        sender.window_end = 4
        for seq in (1, 2, 3):
            sender.on_ack(ack(seq, ecn=True), 10.0)
        before = sender.cwnd
        sender.on_ack(ack(4, ecn=True), 10.0)
        assert sender.cwnd < before
        assert sender.alpha > 0
        assert not sender.in_slow_start

    def test_unmarked_window_keeps_growing_and_alpha_decays(self):
        sender = make_sender()
        sender.take_packets(0.0)
        sender.window_end = 4
        for seq in (1, 2, 3, 4):
            sender.on_ack(ack(seq), 10.0)
        assert sender.cwnd > 4.0
        # Alpha decays geometrically when nothing is marked.
        assert sender.alpha < 1.0

    def test_alpha_converges_to_mark_fraction(self):
        sender = make_sender()
        sender.in_slow_start = False
        for _ in range(100):
            sender.take_packets(0.0)
            # Ack the window fully marked.
            sender.window_end = sender.snd_nxt
            sender.on_ack(ack(sender.snd_nxt, ecn=True), 0.0)
        assert sender.alpha > 0.9


class TestLossRecovery:
    def test_three_dupacks_trigger_fast_retransmit(self):
        sender = make_sender()
        sender.take_packets(0.0)
        for _ in range(3):
            sender.on_ack(ack(0), 5.0)
        assert sender.fast_retransmits == 1
        retx = sender.take_packets(5.0)
        assert retx[0].seq == 0
        assert retx[0].retransmission

    def test_fast_retransmit_halves_window(self):
        sender = make_sender(init_cwnd=16.0)
        sender.take_packets(0.0)
        for _ in range(3):
            sender.on_ack(ack(0), 5.0)
        assert sender.cwnd == pytest.approx(8.0)

    def test_recovery_exits_on_full_ack(self):
        sender = make_sender()
        sender.take_packets(0.0)
        for _ in range(3):
            sender.on_ack(ack(0), 5.0)
        sender.take_packets(5.0)
        sender.on_ack(ack(4), 10.0)
        assert sender.recovery_until is None

    def test_partial_ack_retransmits_next_hole(self):
        sender = make_sender()
        sender.take_packets(0.0)  # seqs 0..3
        for _ in range(3):
            sender.on_ack(ack(0), 5.0)
        sender.take_packets(5.0)  # retransmit 0
        sender.on_ack(ack(2), 10.0)  # 1 also lost
        retx = sender.take_packets(10.0)
        assert retx[0].seq == 2
        assert retx[0].retransmission

    def test_rto_collapses_window(self):
        sender = make_sender(init_cwnd=16.0)
        sender.take_packets(0.0)
        sender.on_rto(now=1_000_000.0)
        assert sender.cwnd == sender.params.min_cwnd
        assert sender.timeouts == 1
        retx = sender.take_packets(1_000_000.0)
        assert retx[0].seq == 0

    def test_rto_backoff_doubles(self):
        sender = make_sender()
        sender.take_packets(0.0)
        first_deadline = sender.rto_deadline_ns
        sender.on_rto(sender.params.rto_ns)
        assert sender.rto_deadline_ns > first_deadline * 1.5

    def test_idle_rto_is_noop(self):
        sender = make_sender()
        sender.take_packets(0.0)
        sender.on_ack(ack(4), 5.0)
        sender.on_rto(10.0)
        assert sender.timeouts == 0


class TestReceiver:
    def params(self):
        return DctcpParams()

    def data(self, seq, marked=False):
        packet = Packet(1, seq, 4096, PacketKind.DATA)
        packet.ecn_marked = marked
        return packet

    def test_in_order_delivery_with_delayed_ack(self):
        receiver = DctcpReceiver(1, self.params())
        delivered, ack1 = receiver.on_data(self.data(0), 0.0, ack_every=2)
        assert delivered == 1 and ack1 is None
        delivered, ack2 = receiver.on_data(self.data(1), 0.0, ack_every=2)
        assert delivered == 1 and ack2 is not None
        assert ack2.seq == 2

    def test_out_of_order_triggers_immediate_dupack(self):
        receiver = DctcpReceiver(1, self.params())
        receiver.on_data(self.data(0), 0.0, ack_every=64)
        delivered, dup = receiver.on_data(self.data(2), 0.0, ack_every=64)
        assert delivered == 0
        assert dup is not None and dup.seq == 1
        assert dup.sack_seq == 2
        assert receiver.out_of_order_segments == 1

    def test_gap_fill_delivers_buffered(self):
        receiver = DctcpReceiver(1, self.params())
        receiver.on_data(self.data(0), 0.0, ack_every=64)
        receiver.on_data(self.data(2), 0.0, ack_every=64)
        receiver.on_data(self.data(3), 0.0, ack_every=64)
        delivered, ack_pkt = receiver.on_data(self.data(1), 0.0, ack_every=64)
        assert delivered == 3
        assert ack_pkt is not None and ack_pkt.seq == 4
        assert receiver.out_of_order_segments == 0

    def test_duplicate_segment_acked_immediately(self):
        receiver = DctcpReceiver(1, self.params())
        receiver.on_data(self.data(0), 0.0, ack_every=64)
        delivered, dup = receiver.on_data(self.data(0), 0.0, ack_every=64)
        assert delivered == 0
        assert dup is not None
        assert receiver.duplicates_received == 1

    def test_ecn_mark_echoed_once(self):
        receiver = DctcpReceiver(1, self.params())
        _, ack1 = receiver.on_data(self.data(0, marked=True), 0.0, ack_every=1)
        assert ack1.ecn_echo
        _, ack2 = receiver.on_data(self.data(1), 0.0, ack_every=1)
        assert not ack2.ecn_echo

    def test_flush_ack_emits_pending(self):
        receiver = DctcpReceiver(1, self.params())
        receiver.on_data(self.data(0), 0.0, ack_every=8)
        flushed = receiver.flush_ack(100.0)
        assert flushed is not None and flushed.seq == 1
        assert receiver.flush_ack(100.0) is None


class TestClosedLoop:
    def test_lossless_exchange_delivers_everything(self):
        """Sender and receiver glued directly: all segments arrive, all
        are delivered in order, windows grow, no retransmissions."""
        params = DctcpParams(init_cwnd=4.0)
        sender = DctcpSender(1, params)
        receiver = DctcpReceiver(1, params)
        delivered = 0
        for _ in range(200):
            for packet in sender.take_packets(0.0, max_count=8):
                got, maybe_ack = receiver.on_data(packet, 0.0, ack_every=2)
                delivered += got
                if maybe_ack:
                    sender.on_ack(maybe_ack, 0.0)
        assert delivered > 300
        assert sender.retransmissions == 0
        assert receiver.rcv_nxt == delivered

    def test_single_loss_recovers_without_rto(self):
        params = DctcpParams(init_cwnd=8.0)
        sender = DctcpSender(1, params)
        receiver = DctcpReceiver(1, params)
        lost_once = False
        delivered = 0
        for _ in range(100):
            for packet in sender.take_packets(0.0, max_count=8):
                if packet.seq == 5 and not lost_once:
                    lost_once = True
                    continue  # drop it
                got, maybe_ack = receiver.on_data(packet, 0.0, ack_every=2)
                delivered += got
                if maybe_ack:
                    sender.on_ack(maybe_ack, 0.0)
        assert sender.retransmissions >= 1
        assert sender.timeouts == 0
        assert receiver.rcv_nxt == delivered
        assert delivered > 100

"""Property-based tests for DCTCP invariants under arbitrary schedules.

The transport drives every experiment's drop/ACK dynamics, so its state
machine must stay sane under any interleaving of deliveries, losses,
reordering, ECN marks and timeouts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import DctcpParams, DctcpReceiver, DctcpSender

# One network "script" step: what happens to the next sent packet.
DELIVER, DROP, REORDER = "deliver", "drop", "reorder"


@st.composite
def network_scripts(draw):
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from([DELIVER, DELIVER, DELIVER, DROP, REORDER]),
                st.booleans(),  # ECN mark
            ),
            min_size=5,
            max_size=150,
        )
    )
    return steps


@given(network_scripts())
@settings(max_examples=60, deadline=None)
def test_transport_invariants_under_chaos(script):
    """Run a sender/receiver pair through an adversarial network and
    check the invariants after every event."""
    params = DctcpParams(init_cwnd=6.0)
    sender = DctcpSender(1, params)
    receiver = DctcpReceiver(1, params)
    reorder_buffer = []
    now = 0.0
    for action, mark in script:
        now += 10_000.0
        packets = sender.take_packets(now, max_count=4)
        # Deliver any reordered stragglers first half the time.
        if reorder_buffer and action != REORDER:
            packets = reorder_buffer + packets
            reorder_buffer = []
        for packet in packets:
            if action == DROP:
                action = DELIVER  # drop only the first of the batch
                continue
            if action == REORDER:
                reorder_buffer.append(packet)
                action = DELIVER
                continue
            packet.ecn_marked = mark
            _delivered, ack = receiver.on_data(packet, now, ack_every=2)
            if ack is not None:
                sender.on_ack(ack, now)
        if now >= sender.rto_deadline_ns and sender.inflight > 0:
            sender.on_rto(now)
        # --- Invariants ---
        assert sender.snd_una <= sender.snd_nxt
        assert sender.inflight >= 0
        assert sender.cwnd >= params.min_cwnd
        assert sender.cwnd <= params.max_cwnd
        assert 0.0 <= sender.alpha <= 1.0
        assert receiver.rcv_nxt <= sender.snd_nxt
        assert receiver.delivered_segments == receiver.rcv_nxt
    # Everything ever delivered in order was really sent.
    assert receiver.rcv_nxt <= sender.segments_sent


@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=30, deadline=None)
def test_lossless_in_order_path_delivers_exactly_once(rounds):
    """With no loss and no reordering, delivery == send order and no
    retransmissions ever happen."""
    params = DctcpParams()
    sender = DctcpSender(1, params)
    receiver = DctcpReceiver(1, params)
    for _ in range(rounds):
        for packet in sender.take_packets(0.0, max_count=8):
            _, ack = receiver.on_data(packet, 0.0, ack_every=2)
            if ack is not None:
                sender.on_ack(ack, 0.0)
    assert sender.retransmissions == 0
    assert receiver.duplicates_received == 0
    assert receiver.rcv_nxt == sender.snd_una


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60)
)
@settings(max_examples=40, deadline=None)
def test_receiver_reassembly_is_exactly_once(seqs):
    """Feed arbitrary (duplicated, reordered) sequence numbers: the
    receiver delivers each distinct in-order segment exactly once."""
    from repro.net import Packet, PacketKind

    params = DctcpParams()
    receiver = DctcpReceiver(1, params)
    delivered = 0
    for seq in seqs:
        got, _ack = receiver.on_data(
            Packet(1, seq, 4096, PacketKind.DATA), 0.0, ack_every=4
        )
        delivered += got
    distinct = set(seqs)
    contiguous = 0
    while contiguous in distinct:
        contiguous += 1
    assert delivered == contiguous
    assert receiver.rcv_nxt == contiguous

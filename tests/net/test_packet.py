"""Unit tests for the packet representation."""

from repro.net import ACK_SIZE_BYTES, Packet, PacketKind


def test_unique_packet_ids():
    first = Packet(1, 0, 100)
    second = Packet(1, 0, 100)
    assert first.packet_id != second.packet_id


def test_data_kinds():
    assert Packet(1, 0, 100, PacketKind.DATA).is_data
    assert Packet(1, 0, 100, PacketKind.RPC_REQ).is_data
    assert Packet(1, 0, 100, PacketKind.RPC_RESP).is_data
    assert not Packet(1, 0, ACK_SIZE_BYTES, PacketKind.ACK).is_data


def test_default_flags():
    packet = Packet(1, 5, 4096, created_ns=10.0)
    assert not packet.ecn_marked
    assert not packet.ecn_echo
    assert not packet.retransmission
    assert packet.created_ns == 10.0
    assert packet.sack_seq is None


def test_ack_size_constant():
    assert ACK_SIZE_BYTES == 64

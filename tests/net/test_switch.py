"""Unit tests for the switch port model."""

import pytest

from repro.net import Packet, PacketKind, SwitchPort
from repro.sim import Simulator


def data_packet(seq=0, size=4096):
    return Packet(1, seq, size, PacketKind.DATA)


def test_delivery_includes_wire_and_propagation():
    sim = Simulator()
    arrivals = []
    port = SwitchPort(
        sim,
        rate_gbps=100.0,
        propagation_ns=2000.0,
        deliver=lambda p: arrivals.append((p.seq, sim.now)),
    )
    port.enqueue(data_packet(0))
    sim.run()
    # 4096 B at 100 Gbps = 327.68 ns wire + 2000 ns propagation.
    assert arrivals[0][1] == pytest.approx(2327.68)


def test_back_to_back_serialization():
    sim = Simulator()
    arrivals = []
    port = SwitchPort(
        sim, rate_gbps=100.0, propagation_ns=0.0,
        deliver=lambda p: arrivals.append(sim.now),
    )
    port.enqueue(data_packet(0))
    port.enqueue(data_packet(1))
    sim.run()
    assert arrivals[1] - arrivals[0] == pytest.approx(327.68)


def test_overflow_drops():
    sim = Simulator()
    port = SwitchPort(sim, buffer_bytes=8192, deliver=lambda p: None)
    accepted = sum(port.enqueue(data_packet(i)) for i in range(5))
    assert accepted < 5
    assert port.drops == 5 - accepted


def test_ecn_marking_above_threshold():
    sim = Simulator()
    port = SwitchPort(
        sim,
        buffer_bytes=1 << 20,
        ecn_threshold_bytes=8192,
        deliver=lambda p: None,
    )
    packets = [data_packet(i) for i in range(6)]
    for packet in packets:
        port.enqueue(packet)
    # Early packets unmarked, later ones marked once queue > 8 KB.
    assert not packets[0].ecn_marked
    assert packets[-1].ecn_marked


def test_acks_never_ecn_marked():
    sim = Simulator()
    port = SwitchPort(
        sim,
        buffer_bytes=1 << 20,
        ecn_threshold_bytes=1,
        deliver=lambda p: None,
    )
    port.enqueue(data_packet(0))
    ack = Packet(1, 0, 64, PacketKind.ACK)
    port.enqueue(ack)
    assert not ack.ecn_marked


def test_ordering_preserved():
    sim = Simulator()
    arrivals = []
    port = SwitchPort(sim, deliver=lambda p: arrivals.append(p.seq))
    for seq in range(10):
        port.enqueue(data_packet(seq))
    sim.run()
    assert arrivals == list(range(10))


def test_delivered_bytes_counter():
    sim = Simulator()
    port = SwitchPort(sim, deliver=lambda p: None)
    port.enqueue(data_packet(0, size=1000))
    sim.run()
    assert port.delivered_bytes == 1000

"""Every figure runner labels one metrics phase per sweep point.

The metric-based expectations (and the truncation warnings in
REPORT.md) select registry phases by label substring, so each runner
must call ``_obs_phase`` with a distinct ``"<figure> <mode> <x>=..."``
label before every sweep point whenever a registry is installed — and
must stay registry-free (no phases beyond the initial one) otherwise.
"""

import pytest

from repro.experiments import (
    RunScale,
    fig2_flows,
    fig3_ring,
    fig7_fns_flows,
    fig8_fns_ring,
    fig9_rpc_latency,
    fig10_rxtx,
    fig11_nginx,
    fig11_redis,
    fig11_spdk,
    fig12_ablation,
    model_fit,
)
from repro.obs import MetricsRegistry, observed

MICRO = RunScale(
    name="micro",
    warmup_ns=1_000_000.0,
    measure_ns=2_000_000.0,
    latency_measure_ns=4_000_000.0,
)

# (runner, minimal sweep kwargs, expected phase labels in order)
CASES = [
    (
        fig2_flows,
        {"modes": ("off", "strict"), "flows": (5,)},
        ["Fig 2 off flows=5", "Fig 2 strict flows=5"],
    ),
    (
        fig3_ring,
        {"modes": ("off",), "ring_sizes": (256, 512)},
        ["Fig 3 off ring=256", "Fig 3 off ring=512"],
    ),
    (
        model_fit,
        {"flows": (5, 10)},
        ["Model strict flows=5", "Model strict flows=10"],
    ),
    (
        fig7_fns_flows,
        {"modes": ("fns",), "flows": (5, 10)},
        ["Fig 7 fns flows=5", "Fig 7 fns flows=10"],
    ),
    (
        fig8_fns_ring,
        {"modes": ("fns",), "ring_sizes": (256,)},
        ["Fig 8 fns ring=256"],
    ),
    (
        fig9_rpc_latency,
        {"modes": ("off",), "rpc_sizes": (128,)},
        ["Fig 9 off rpc=128"],
    ),
    (
        fig10_rxtx,
        {"modes": ("off",), "core_counts": (1,)},
        ["Fig 10 off cores=1"],
    ),
    (
        fig11_redis,
        {"modes": ("off",), "value_sizes": (8192,)},
        ["Fig 11a off value=8192"],
    ),
    (
        fig11_nginx,
        {"modes": ("off",), "page_sizes": (131072,)},
        ["Fig 11b off page=131072"],
    ),
    (
        fig11_spdk,
        {"modes": ("off",), "block_sizes": (32768,)},
        ["Fig 11c off block=32768"],
    ),
    (
        fig12_ablation,
        {"modes": ("strict", "fns")},
        ["Fig 12 strict", "Fig 12 fns"],
    ),
]


@pytest.mark.parametrize(
    "runner,kwargs,labels", CASES, ids=[c[0].__name__ for c in CASES]
)
def test_runner_labels_one_phase_per_sweep_point(runner, kwargs, labels):
    registry = MetricsRegistry()
    with observed(registry):
        runner(scale=MICRO, **kwargs)
    observed_labels = [p["label"] for p in registry.report()["phases"]]
    assert observed_labels == labels
    assert len(set(observed_labels)) == len(observed_labels)
    # Each labeled phase actually collected that point's metrics.
    for phase in registry.report()["phases"]:
        assert phase["final"], phase["label"]


def test_runner_without_registry_opens_no_phases():
    registry = MetricsRegistry()
    fig12_ablation(modes=("strict",), scale=MICRO)  # registry NOT installed
    assert registry.report()["phases"] == []

"""Tests for the experiment runners and FigureResult plumbing."""

import pytest

from repro.experiments import FigureResult, RunScale, fig2_flows, fig12_ablation

MICRO = RunScale(
    name="micro",
    warmup_ns=1_000_000.0,
    measure_ns=2_000_000.0,
    latency_measure_ns=4_000_000.0,
)


class TestFigureResult:
    def make(self):
        result = FigureResult("Fig X", "title", ["mode", "x", "gbps"])
        result.rows = [["off", 5, 100.0], ["off", 10, 99.0], ["fns", 5, 98.0]]
        return result

    def test_series_filters_by_mode(self):
        assert len(self.make().series("off")) == 2

    def test_row_lookup(self):
        assert self.make().row("fns", 5)[2] == 98.0

    def test_missing_row_raises(self):
        with pytest.raises(KeyError):
            self.make().row("strict", 5)

    def test_format_contains_headers_and_rows(self):
        text = self.make().format()
        assert "Fig X" in text
        assert "gbps" in text
        assert "fns" in text


class TestRunners:
    def test_fig2_micro_run_has_expected_structure(self):
        result = fig2_flows(modes=("off", "strict"), flows=(5,), scale=MICRO)
        assert len(result.rows) == 2
        off = result.row("off", 5)
        strict = result.row("strict", 5)
        # Columns: mode, flows, gbps, drop%, iotlb, m1, m2, m3, M, tx,...
        assert off[2] > 50.0
        assert strict[4] >= 1.0  # compulsory miss floor
        assert (5 in {row[1] for row in result.rows})
        assert result.raw[("strict", 5)].rx_data_pages > 0

    def test_fig12_micro_orders_modes(self):
        result = fig12_ablation(
            modes=("strict", "fns"), value_bytes=8192, scale=MICRO
        )
        gbps = {row[0]: row[2] for row in result.rows}
        assert gbps["fns"] > gbps["strict"]


class TestRunScale:
    def test_presets_are_ordered(self):
        from repro.experiments import FULL, QUICK

        assert QUICK.measure_ns < FULL.measure_ns
        assert QUICK.latency_measure_ns < FULL.latency_measure_ns

"""Chaos search: plan sampling, the ddmin shrinker, and replay.

The sampler must be a pure function of (root seed, index, scale) — the
property that makes `--jobs N` chaos timelines match a serial run.
The shrinker is tested twice: as pure ddmin over fake predicates, and
end-to-end against a seeded wedge schedule replayed with recovery
disabled (the demo failure the CLI minimizes).
"""

from repro.experiments.chaos import (
    DEFAULT_MTTR_BOUND_NS,
    replay_fails,
    run_chaos,
    sample_plan,
    shrink_plan,
)
from repro.experiments.settings import RunScale
from repro.faults import FaultPlan, FaultSpec
from repro.faults.plan import HARD_KINDS, KINDS_BY_COMPONENT

# Small enough to keep the replay tests quick; large enough that a
# mid-run wedge still has room to latch before the horizon.
TINY = RunScale(
    name="tiny",
    warmup_ns=500_000.0,
    measure_ns=1_500_000.0,
    latency_measure_ns=1_500_000.0,
)


# ---------------------------------------------------------------------------
# Plan sampling
# ---------------------------------------------------------------------------
def test_sample_plan_is_a_pure_function():
    assert sample_plan(3, 2) == sample_plan(3, 2)
    assert sample_plan(3, 2, TINY) == sample_plan(3, 2, TINY)


def test_sample_plans_differ_across_indices_and_seeds():
    assert sample_plan(1, 0) != sample_plan(1, 1)
    assert sample_plan(1, 0) != sample_plan(2, 0)


def test_sampled_plans_are_valid_schedules():
    horizon = TINY.warmup_ns + TINY.measure_ns
    for index in range(25):
        plan = sample_plan(1, index, TINY)
        assert 2 <= len(plan.specs) <= 5
        pairs = [(spec.component, spec.kind) for spec in plan.specs]
        assert len(pairs) == len(set(pairs))  # distinct sites
        starts = [spec.start_ns for spec in plan.specs]
        assert starts == sorted(starts)  # stable presentation order
        for spec in plan.specs:
            assert spec.kind in KINDS_BY_COMPONENT[spec.component]
            assert 0.0 <= spec.start_ns < spec.end_ns <= horizon
            assert 0.0 < spec.probability <= 1.0
            if spec.kind == "fault-storm":
                # Per-translation probabilities compound over ~16
                # transactions per page; big values collapse the
                # workload instead of stressing it.
                assert spec.probability <= 0.002
            if spec.kind in HARD_KINDS:
                assert spec.probability == 1.0


# ---------------------------------------------------------------------------
# ddmin over fake predicates (pure shrinker behaviour)
# ---------------------------------------------------------------------------
def spec_for(component, kind, start=0.0):
    return FaultSpec(component, kind, start_ns=start, end_ns=start + 1_000.0)


def plan_of(*specs):
    return FaultPlan(seed=9, name="unit", specs=tuple(specs))


def test_shrink_finds_single_culprit():
    plan = plan_of(
        spec_for("net", "loss", 0.0),
        spec_for("pcie", "nack-replay", 100.0),
        spec_for("invalidation", "wedge-invq", 200.0),
        spec_for("nic", "doorbell-drop", 300.0),
        spec_for("net", "reorder", 400.0),
    )

    def fails(candidate):
        return any(s.kind == "wedge-invq" for s in candidate.specs)

    minimal, evaluations = shrink_plan(plan, fails)
    assert [s.kind for s in minimal.specs] == ["wedge-invq"]
    assert minimal.seed == plan.seed  # untouched streams replay alike
    assert evaluations >= 2


def test_shrink_finds_interacting_pair():
    plan = plan_of(
        spec_for("invalidation", "wedge-invq", 0.0),
        spec_for("net", "loss", 100.0),
        spec_for("nic", "device-wedge", 200.0),
        spec_for("net", "reorder", 300.0),
    )

    def fails(candidate):
        kinds = {s.kind for s in candidate.specs}
        return "wedge-invq" in kinds and "device-wedge" in kinds

    minimal, _ = shrink_plan(plan, fails)
    assert sorted(s.kind for s in minimal.specs) == [
        "device-wedge",
        "wedge-invq",
    ]
    # 1-minimality: dropping either remaining spec loses the failure.
    for index in range(len(minimal.specs)):
        remainder = list(minimal.specs)
        del remainder[index]
        assert not fails(plan_of(*remainder))


def test_shrink_refuses_non_reproducible_plan():
    plan = plan_of(
        spec_for("net", "loss", 0.0),
        spec_for("net", "reorder", 100.0),
    )
    minimal, evaluations = shrink_plan(plan, lambda candidate: False)
    assert minimal == plan  # never "shrink" to something that passes
    assert evaluations == 1


# ---------------------------------------------------------------------------
# Replay integration: the seeded no-recovery failure shrinks to 1 spec
# ---------------------------------------------------------------------------
def demo_plan():
    return FaultPlan(
        seed=13,
        name="demo",
        specs=(
            FaultSpec(
                "invalidation",
                "wedge-invq",
                start_ns=600_000.0,
                end_ns=1_100_000.0,
            ),
            FaultSpec(
                "net",
                "loss",
                start_ns=700_000.0,
                end_ns=1_500_000.0,
                probability=0.005,
            ),
            FaultSpec(
                "invalidation",
                "delay-completion",
                start_ns=800_000.0,
                end_ns=1_600_000.0,
                probability=0.3,
                magnitude=1_000.0,
            ),
        ),
    )


def test_no_recovery_failure_shrinks_to_the_wedge():
    fails = replay_fails(
        mode="fns",
        flows=3,
        recovery=False,
        scale=TINY,
        mttr_bound_ns=DEFAULT_MTTR_BOUND_NS,
    )
    plan = demo_plan()
    assert fails(plan)
    minimal, evaluations = shrink_plan(plan, fails)
    assert len(minimal.specs) <= 3
    assert [s.kind for s in minimal.specs] == ["wedge-invq"]
    assert evaluations >= 3


# ---------------------------------------------------------------------------
# Worker-count invisibility
# ---------------------------------------------------------------------------
def test_chaos_rows_and_timelines_identical_across_jobs():
    serial, serial_failures = run_chaos(
        seeds=2, root_seed=1, flows=3, scale=TINY, jobs=1
    )
    pooled, pooled_failures = run_chaos(
        seeds=2, root_seed=1, flows=3, scale=TINY, jobs=2
    )
    assert serial.rows == pooled.rows
    for index in range(2):
        assert (
            serial.raw[index]["timeline"] == pooled.raw[index]["timeline"]
        )
    assert [f.index for f in serial_failures] == [
        f.index for f in pooled_failures
    ]

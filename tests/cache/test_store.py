"""ResultCache store: keys, round-trips, corruption, stats, gc."""

import os
import pickle

import pytest

from repro.cache.store import (
    CACHE_DIR_ENV,
    ResultCache,
    default_cache_dir,
)
from repro.experiments.settings import QUICK, RunScale
from repro.parallel import PointSpec


def spec_for(x=1, seed=7, runner="iperf_flows", mode="off"):
    return PointSpec(
        figure="T",
        runner=runner,
        mode=mode,
        x=x,
        label=f"T {mode} x={x}",
        seed=seed,
    )


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    store = ResultCache(str(tmp_path / "store"))
    # Key tests must not depend on the real source tree's bytes.
    monkeypatch.setattr(
        type(store), "fingerprint_for", lambda self, key: f"fp:{key}"
    )
    return store


def key(cache, spec, scale=QUICK, **kw):
    kw.setdefault("collect", True)
    kw.setdefault("sample_interval_ns", 100_000.0)
    kw.setdefault("max_samples", 512)
    return cache.key_for(spec, scale, **kw)


class TestKeys:
    def test_key_is_stable(self, cache):
        assert key(cache, spec_for()) == key(cache, spec_for())

    def test_every_coordinate_changes_the_key(self, cache):
        base = key(cache, spec_for())
        assert key(cache, spec_for(x=2)) != base
        assert key(cache, spec_for(seed=8)) != base
        assert key(cache, spec_for(mode="strict")) != base
        assert key(cache, spec_for(runner="other")) != base

    def test_scale_changes_the_key(self, cache):
        other = RunScale(
            name="quick",  # same name, different durations
            warmup_ns=QUICK.warmup_ns + 1,
            measure_ns=QUICK.measure_ns,
            latency_measure_ns=QUICK.latency_measure_ns,
        )
        assert key(cache, spec_for(), scale=other) != key(
            cache, spec_for()
        )

    def test_observation_shape_changes_the_key(self, cache):
        base = key(cache, spec_for())
        assert key(cache, spec_for(), collect=False) != base
        assert key(cache, spec_for(), sample_interval_ns=1.0) != base
        assert key(cache, spec_for(), max_samples=1) != base

    def test_key_context_changes_the_key(self, cache):
        base = key(cache, spec_for())
        cache.key_context = ("spec digest part",)
        assert key(cache, spec_for()) != base

    def test_code_fingerprint_changes_the_key(self, cache, monkeypatch):
        base = key(cache, spec_for())
        monkeypatch.setattr(
            type(cache), "fingerprint_for", lambda self, k: "edited"
        )
        assert key(cache, spec_for()) != base


class TestRoundTrip:
    def test_load_store_round_trip(self, cache):
        spec = spec_for()
        k = key(cache, spec)
        assert cache.load(k) is None  # cold
        payload = {"label": spec.label, "index": 0, "final": {"a": 1}}
        assert cache.store(k, {"gbps": 98.5}, payload, spec=spec)
        value, loaded_payload = cache.load(k)
        assert value == {"gbps": 98.5}
        assert loaded_payload == payload
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.bytes_written > 0
        assert cache.stats.bytes_read > 0

    def test_unpicklable_value_is_refused(self, cache):
        k = key(cache, spec_for())
        assert not cache.store(k, lambda: None, None, spec=spec_for())
        assert cache.load(k) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        spec = spec_for()
        k = key(cache, spec)
        cache.store(k, 1, None, spec=spec)
        path = cache._path_for(k)
        path.write_bytes(b"not a pickle")
        assert cache.load(k) is None
        assert not path.exists()

    def test_key_mismatch_is_a_miss_and_removed(self, cache):
        spec = spec_for()
        k = key(cache, spec)
        other = key(cache, spec_for(x=2))
        cache.store(k, 1, None, spec=spec)
        # Simulate a hash collision / moved file: entry claims another key.
        entry = pickle.loads(cache._path_for(k).read_bytes())
        entry["key"] = other
        cache._path_for(k).write_bytes(pickle.dumps(entry))
        assert cache.load(k) is None
        assert not cache._path_for(k).exists()


class TestOperability:
    def fill(self, cache, count):
        keys = []
        for x in range(count):
            spec = spec_for(x=x)
            k = key(cache, spec)
            cache.store(k, {"x": x, "pad": "p" * 512}, None, spec=spec)
            keys.append(k)
        return keys

    def test_disk_stats(self, cache):
        self.fill(cache, 3)
        disk = cache.disk_stats()
        assert disk["entries"] == 3
        assert disk["bytes"] > 0

    def test_gc_by_age(self, cache):
        keys = self.fill(cache, 3)
        old = cache._path_for(keys[0])
        ancient = os.stat(old).st_mtime - 10 * 86400
        os.utime(old, (ancient, ancient))
        result = cache.gc(max_age_days=1.0)
        assert result["evicted"] == 1
        assert cache.load(keys[0]) is None
        assert cache.load(keys[1]) is not None

    def test_gc_lru_to_budget(self, cache):
        keys = self.fill(cache, 4)
        # Make entry 2 the least recently used, then squeeze the budget
        # so exactly one entry must go.
        lru = cache._path_for(keys[2])
        past = os.stat(lru).st_mtime - 1000
        os.utime(lru, (past, past))
        total = cache.disk_stats()["bytes"]
        entry_size = total // 4
        result = cache.gc(max_bytes=total - entry_size)
        assert result["evicted"] == 1
        assert cache.load(keys[2]) is None
        for k in (keys[0], keys[1], keys[3]):
            assert cache.load(k) is not None

    def test_clear(self, cache):
        self.fill(cache, 3)
        result = cache.clear()
        assert result["evicted"] == 3
        assert cache.disk_stats()["entries"] == 0


def test_default_cache_dir_env_override(monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    assert default_cache_dir() == ".repro-cache"
    monkeypatch.setenv(CACHE_DIR_ENV, "/somewhere/else")
    assert default_cache_dir() == "/somewhere/else"

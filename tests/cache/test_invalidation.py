"""Cache invalidation through ``run_reproduce``: the acceptance tests.

A scratch point runner counts real executions; two stub figures sweep
it through ``run_points``.  Warm runs must execute nothing and produce
byte-identical reports (modulo the ``provenance.cache`` stamp, which
records the warm/cold split by design); editing one figure's spec or
the code fingerprint must rerun exactly the affected cells.
"""

import json

import pytest

from repro.cache.store import ResultCache
from repro.experiments import FigureResult, RunScale
from repro.experiments.points import POINT_RUNNERS
from repro.obs.expect import FigureSpec, grows_with
from repro.obs.expect.reproduce import run_reproduce
from repro.parallel import PointSpec, run_points

MICRO = RunScale(
    name="micro",
    warmup_ns=1_000_000.0,
    measure_ns=2_000_000.0,
    latency_measure_ns=4_000_000.0,
)

EXECUTIONS: list[str] = []


def _counting_point(spec, scale):
    EXECUTIONS.append(spec.label)
    return {"mode": spec.mode, "x": spec.x, "gbps": 10.0 * spec.x}


def _figure_runner(name):
    def runner(scale):
        specs = [
            PointSpec(
                figure=name,
                runner="t-counting",
                mode="off",
                x=x,
                label=f"{name} off x={x}",
                seed=x,
            )
            for x in (1, 2)
        ]
        values = run_points(specs, scale)
        result = FigureResult(
            f"Fig {name}", name, ["mode", "x", "gbps"]
        )
        result.rows = [[v["mode"], v["x"], v["gbps"]] for v in values]
        return result

    return runner


def _spec(name, claim="rows exist"):
    return FigureSpec(
        figure=name,
        title=f"{name} title",
        expectations=(
            grows_with("gbps", "off", claim=claim, paper="grows"),
        ),
    )


@pytest.fixture(autouse=True)
def scratch_runner():
    EXECUTIONS.clear()
    POINT_RUNNERS["t-counting"] = _counting_point
    yield
    POINT_RUNNERS.pop("t-counting", None)


def reproduce(outdir, cache, specs=None, tag=""):
    runners = {"figA": _figure_runner("figA"), "figB": _figure_runner("figB")}
    specs = specs or {"figA": _spec("figA"), "figB": _spec("figB")}
    code = run_reproduce(
        ["figA", "figB"],
        scale=MICRO,
        report_path=str(outdir / f"REPORT{tag}.md"),
        json_path=str(outdir / f"report{tag}.json"),
        runners=runners,
        specs=specs,
        echo=lambda _: None,
        cache=cache,
    )
    assert code == 0
    return json.loads((outdir / f"report{tag}.json").read_text())


def comparable(doc):
    doc = json.loads(json.dumps(doc))  # deep copy
    doc["provenance"].pop("cache", None)
    return doc


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    store = ResultCache(str(tmp_path / "store"))
    # Pin the code fingerprint: these tests drive invalidation
    # explicitly and must not depend on the worktree's bytes.
    monkeypatch.setattr(
        type(store), "fingerprint_for", lambda self, key: "pinned"
    )
    return store


class TestWarmRuns:
    def test_warm_run_computes_nothing(self, tmp_path, cache):
        cold = reproduce(tmp_path, cache, tag="1")
        assert len(EXECUTIONS) == 4  # 2 figures x 2 cells
        assert cold["provenance"]["cache"]["cells_computed"] == 4
        warm = reproduce(tmp_path, cache, tag="2")
        assert len(EXECUTIONS) == 4  # unchanged: all cells from store
        assert warm["provenance"]["cache"]["cells_cached"] == 4
        assert warm["provenance"]["cache"]["cells_computed"] == 0

    def test_warm_report_byte_identical(self, tmp_path, cache):
        reproduce(tmp_path, cache, tag="1")
        reproduce(tmp_path, cache, tag="2")
        cold_doc = json.loads((tmp_path / "report1.json").read_text())
        warm_doc = json.loads((tmp_path / "report2.json").read_text())
        assert comparable(cold_doc) == comparable(warm_doc)
        # REPORT.md carries no cache stamp at all: byte-for-byte.
        assert (tmp_path / "REPORT1.md").read_bytes() == (
            tmp_path / "REPORT2.md"
        ).read_bytes()

    def test_uncached_run_matches_cached_run(self, tmp_path, cache):
        plain = reproduce(tmp_path, None, tag="plain")
        cached = reproduce(tmp_path, cache, tag="cached")
        assert comparable(plain) == comparable(cached)


class TestInvalidation:
    def test_spec_edit_reruns_only_that_figure(self, tmp_path, cache):
        reproduce(tmp_path, cache, tag="1")
        assert len(EXECUTIONS) == 4
        # Edit figB's claim text: part of the spec digest, so figB's
        # two cells rerun while figA's stay warm.
        edited = {
            "figA": _spec("figA"),
            "figB": _spec("figB", claim="rows exist (reworded)"),
        }
        doc = reproduce(tmp_path, cache, specs=edited, tag="2")
        assert len(EXECUTIONS) == 6
        assert all(label.startswith("figB") for label in EXECUTIONS[4:])
        assert doc["provenance"]["cache"]["cells_cached"] == 2
        assert doc["provenance"]["cache"]["cells_computed"] == 2

    def test_spec_edit_report_matches_fully_cold(self, tmp_path, cache):
        reproduce(tmp_path, cache, tag="1")
        edited = {
            "figA": _spec("figA"),
            "figB": _spec("figB", claim="rows exist (reworded)"),
        }
        mixed = reproduce(tmp_path, cache, specs=edited, tag="2")
        cold = reproduce(
            tmp_path,
            ResultCache(str(tmp_path / "fresh")),
            specs=edited,
            tag="3",
        )
        assert comparable(mixed) == comparable(cold)

    def test_code_fingerprint_change_reruns_everything(
        self, tmp_path, cache, monkeypatch
    ):
        reproduce(tmp_path, cache, tag="1")
        assert len(EXECUTIONS) == 4
        monkeypatch.setattr(
            type(cache), "fingerprint_for", lambda self, key: "edited"
        )
        doc = reproduce(tmp_path, cache, tag="2")
        assert len(EXECUTIONS) == 8
        assert doc["provenance"]["cache"]["cells_cached"] == 0
        assert doc["provenance"]["cache"]["cells_computed"] == 4

    def test_seed_change_misses(self, tmp_path, cache):
        reproduce(tmp_path, cache, tag="1")
        runners = {"figA": _figure_runner("figA")}
        specs = {"figA": _spec("figA")}
        code = run_reproduce(
            ["figA"],
            scale=MICRO,
            seed=99,  # recorded in provenance; cells keyed by spec.seed
            report_path=str(tmp_path / "R.md"),
            json_path=str(tmp_path / "r.json"),
            runners=runners,
            specs=specs,
            echo=lambda _: None,
            cache=cache,
        )
        assert code == 0
        # The scratch figure derives cell seeds from x alone, so this
        # still hits; the real figures thread the run seed into
        # derive_seed and would miss.  What must hold either way: the
        # run completes and the stamp reflects actual hits.
        doc = json.loads((tmp_path / "r.json").read_text())
        stamp = doc["provenance"]["cache"]
        assert stamp["cells_cached"] + stamp["cells_computed"] == 2

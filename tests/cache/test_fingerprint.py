"""Code fingerprints: closure walking, edits invalidate, tree fallback."""

import pytest

from repro.cache import fingerprint
from repro.experiments.points import POINT_RUNNERS


@pytest.fixture(autouse=True)
def fresh_memo():
    fingerprint.clear_fingerprint_cache()
    yield
    fingerprint.clear_fingerprint_cache()


@pytest.fixture()
def fake_tree(tmp_path, monkeypatch):
    """A miniature package tree the walker treats as ``repro``."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "a.py").write_text("from . import b\nX = 1\n")
    (root / "b.py").write_text("import repro.c\nY = 2\n")
    (root / "c.py").write_text("Z = 3\n")
    (root / "lonely.py").write_text("L = 4\n")
    monkeypatch.setattr(fingerprint, "_package_root", lambda: root)
    return root


class TestClosure:
    def test_walks_transitive_imports(self, fake_tree):
        files = fingerprint.module_closure("repro.a")
        names = sorted(p.name for p in files)
        # a -> b (relative, which also pulls the package __init__)
        # -> c (absolute); lonely is unreachable.
        assert names == ["__init__.py", "a.py", "b.py", "c.py"]

    def test_unknown_module_raises(self, fake_tree):
        with pytest.raises(FileNotFoundError):
            fingerprint.module_closure("repro.missing")

    def test_out_of_package_module_raises(self, fake_tree):
        with pytest.raises(FileNotFoundError):
            fingerprint.module_closure("tests.cache.test_fingerprint")

    def test_real_tree_closure_resolves(self):
        # Against the installed package: the sweep executor's module
        # reaches its spec types without pulling in the whole tree.
        files = fingerprint.module_closure("repro.parallel.pool")
        names = {p.name for p in files}
        assert "pool.py" in names
        assert "spec.py" in names


class TestRunnerFingerprint:
    def register(self, name, fn):
        POINT_RUNNERS[name] = fn
        return name

    def teardown_method(self):
        POINT_RUNNERS.pop("t-fake", None)

    def test_edit_changes_fingerprint(self, fake_tree):
        fake = type("R", (), {})()
        fake.__module__ = "repro.a"
        self.register("t-fake", fake)
        before = fingerprint.runner_fingerprint("t-fake")
        # Editing a transitively imported file must invalidate, even
        # though a.py itself is untouched (the dirty-worktree case).
        (fake_tree / "c.py").write_text("Z = 4  # edited\n")
        fingerprint.clear_fingerprint_cache()
        after = fingerprint.runner_fingerprint("t-fake")
        assert before != after

    def test_unreachable_edit_keeps_fingerprint(self, fake_tree):
        fake = type("R", (), {})()
        fake.__module__ = "repro.a"
        self.register("t-fake", fake)
        before = fingerprint.runner_fingerprint("t-fake")
        (fake_tree / "lonely.py").write_text("L = 5\n")
        fingerprint.clear_fingerprint_cache()
        assert fingerprint.runner_fingerprint("t-fake") == before

    def test_scratch_runner_falls_back_to_tree(self):
        def scratch(spec, scale):  # defined outside the repro package
            return None

        self.register("t-fake", scratch)
        value = fingerprint.runner_fingerprint("t-fake")
        assert value == fingerprint.tree_fingerprint()

    def test_unknown_runner_falls_back_to_tree(self):
        value = fingerprint.runner_fingerprint("no-such-runner")
        assert value == fingerprint.tree_fingerprint()

    def test_memoized_per_key(self, fake_tree):
        fake = type("R", (), {})()
        fake.__module__ = "repro.a"
        self.register("t-fake", fake)
        first = fingerprint.runner_fingerprint("t-fake")
        # A disk edit without clearing the memo is invisible (one stat
        # of the tree per process, by design)...
        (fake_tree / "a.py").write_text("X = 99\n")
        assert fingerprint.runner_fingerprint("t-fake") == first
        # ...and visible after the cache is dropped.
        fingerprint.clear_fingerprint_cache()
        assert fingerprint.runner_fingerprint("t-fake") != first


def test_tree_fingerprint_is_stable_and_memoized():
    assert fingerprint.tree_fingerprint() == fingerprint.tree_fingerprint()

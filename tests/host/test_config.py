"""Unit tests for host configuration and derived geometry."""

import pytest

from repro.host import HostConfig
from repro.host.config import CpuCosts


class TestGeometry:
    def test_default_matches_paper_setup(self):
        config = HostConfig.cascade_lake()
        assert config.num_cores == 5
        assert config.link_gbps == 100.0
        assert config.mtu_bytes == 4096
        assert config.ring_size_packets == 256
        assert config.descriptor_pages == 64
        assert not config.enable_ddio

    def test_ring_pages_uses_2x_factor(self):
        """The NIC keeps twice the ring size worth of pages mapped
        (the paper's working-set formula)."""
        config = HostConfig.cascade_lake()
        assert config.ring_pages == 2 * 256
        assert config.descriptors_per_ring == 8

    def test_iova_working_set_formula(self):
        """2 x cores x MTU(pow2-rounded-down) x ring size (§2.2)."""
        config = HostConfig.cascade_lake(ring_size_packets=2048)
        assert config.iova_working_set_bytes == 2 * 5 * 4096 * 2048
        config9k = HostConfig.cascade_lake(mtu_bytes=9000)
        # 9000 rounds down to 8192.
        assert config9k.iova_working_set_bytes == 2 * 5 * 8192 * 256

    def test_pages_per_packet(self):
        assert HostConfig.cascade_lake().pages_per_packet == 1
        assert HostConfig.cascade_lake(mtu_bytes=9000).pages_per_packet == 3

    def test_ice_lake_preset(self):
        config = HostConfig.ice_lake()
        assert config.enable_ddio
        assert config.memory_bandwidth_gbps > 100

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            HostConfig(mode="bogus")

    def test_invalid_mtu_rejected(self):
        with pytest.raises(ValueError):
            HostConfig(mtu_bytes=0)

    def test_dctcp_mtu_synced(self):
        config = HostConfig.cascade_lake(mtu_bytes=9000)
        assert config.dctcp.mtu_bytes == 9000


class TestCpuCosts:
    def test_data_touch_grows_with_ring_size(self):
        costs = CpuCosts()
        base = costs.data_touch_ns(256, enable_ddio=False)
        large = costs.data_touch_ns(2048, enable_ddio=False)
        assert large > base * 2

    def test_ddio_discount(self):
        costs = CpuCosts()
        cold = costs.data_touch_ns(256, enable_ddio=False)
        warm = costs.data_touch_ns(256, enable_ddio=True)
        assert warm < cold

"""Unit tests for per-core CPU accounting."""

import pytest

from repro.host import CoreSet
from repro.sim import Simulator


def test_task_completion_after_cost():
    sim = Simulator()
    cores = CoreSet(sim, 2)
    done = []
    cores.run(0, 100.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [100.0]


def test_tasks_serialize_per_core():
    sim = Simulator()
    cores = CoreSet(sim, 2)
    done = []
    cores.run(0, 100.0, lambda: done.append(("a", sim.now)))
    cores.run(0, 50.0, lambda: done.append(("b", sim.now)))
    sim.run()
    assert done == [("a", 100.0), ("b", 150.0)]


def test_cores_are_independent():
    sim = Simulator()
    cores = CoreSet(sim, 2)
    done = []
    cores.run(0, 100.0, lambda: done.append(0))
    cores.run(1, 10.0, lambda: done.append(1))
    sim.run()
    assert done == [1, 0]


def test_charge_without_callback():
    sim = Simulator()
    cores = CoreSet(sim, 1)
    finish = cores.charge(0, 500.0)
    assert finish == 500.0
    assert cores.backlog_ns(0) == 500.0


def test_utilization():
    sim = Simulator()
    cores = CoreSet(sim, 2)
    cores.charge(0, 400.0)
    assert cores.utilization(0, 1000.0) == pytest.approx(0.4)
    assert cores.utilization(1, 1000.0) == 0.0
    assert cores.max_utilization(1000.0) == pytest.approx(0.4)


def test_idle_gap_not_counted_busy():
    sim = Simulator()
    cores = CoreSet(sim, 1)
    cores.run(0, 100.0, lambda: None)
    sim.run()
    sim.call_after(1000.0, lambda: cores.charge(0, 100.0))
    sim.run()
    assert cores.busy_ns[0] == 200.0


def test_invalid_core_rejected():
    sim = Simulator()
    cores = CoreSet(sim, 1)
    with pytest.raises(ValueError):
        cores.run(1, 1.0, lambda: None)
    with pytest.raises(ValueError):
        cores.run(0, -1.0, lambda: None)

"""Integration tests: the full datapath end to end (short runs).

These assert the paper's *qualitative* orderings on short simulations;
the benchmark suite reproduces the full figures.
"""

import pytest

from repro.host import HostConfig, Testbed

WARMUP = 2_000_000.0
MEASURE = 4_000_000.0


def run_mode(mode, flows=5, **overrides):
    testbed = Testbed(HostConfig.cascade_lake(mode=mode, **overrides))
    testbed.add_rx_flows(flows)
    return testbed.run(warmup_ns=WARMUP, measure_ns=MEASURE)


class TestThroughputOrdering:
    def test_off_reaches_line_rate(self):
        result = run_mode("off")
        assert result.rx_goodput_gbps > 95.0

    def test_strict_degrades_fns_recovers(self):
        strict = run_mode("strict")
        fns = run_mode("fns")
        off = run_mode("off")
        assert strict.rx_goodput_gbps < off.rx_goodput_gbps * 0.92
        assert fns.rx_goodput_gbps > off.rx_goodput_gbps * 0.95

    def test_deferred_trades_safety_for_speed(self):
        """Deferred mode is faster than strict — and leaves a window in
        which a malicious device could still reach unmapped pages (the
        benign workload never exploits it, so we probe adversarially)."""
        testbed = Testbed(
            HostConfig.cascade_lake(
                mode="deferred", deferred_flush_threshold=10**9
            )
        )
        testbed.add_rx_flows(5)
        deferred = testbed.run(warmup_ns=WARMUP, measure_ns=MEASURE)
        strict = run_mode("strict")
        assert deferred.rx_goodput_gbps > strict.rx_goodput_gbps
        driver = testbed.host.driver
        # Unflushed unmaps have accumulated ...
        assert driver.pending_invalidations > 0
        # ... and the device can still reach recently unmapped IOVAs.
        recent = [iova for iova, _pages, _core in driver._deferred[-256:]]
        assert any(driver.device_can_access(iova) for iova in recent)

    def test_strict_modes_have_no_stale_translations(self):
        for mode in ("strict", "fns"):
            assert run_mode(mode).stale_translations == 0


class TestMissAccounting:
    def test_strict_compulsory_iotlb_miss_per_page(self):
        result = run_mode("strict")
        assert result.iotlb_misses_per_page >= 1.0

    def test_fns_compulsory_miss_retained(self):
        """F&S does not (and cannot) reduce IOTLB misses below 1/page
        while keeping strict safety."""
        result = run_mode("fns")
        assert result.iotlb_misses_per_page >= 1.0

    def test_fns_zero_l1_l2_misses(self):
        result = run_mode("fns")
        assert result.ptcache_l1_misses_per_page == 0.0
        assert result.ptcache_l2_misses_per_page == 0.0

    def test_fns_l3_misses_order_of_magnitude_below_strict(self):
        strict = run_mode("strict")
        fns = run_mode("fns")
        assert strict.ptcache_l3_misses_per_page > 0.1
        assert (
            fns.ptcache_l3_misses_per_page
            < strict.ptcache_l3_misses_per_page / 10
        )

    def test_m_is_sum_of_components(self):
        result = run_mode("strict")
        expected = (
            result.iotlb_misses_per_page
            + result.ptcache_l1_misses_per_page
            + result.ptcache_l2_misses_per_page
            + result.ptcache_l3_misses_per_page
        )
        assert result.memory_reads_per_page == pytest.approx(expected)

    def test_m1_equals_m2(self):
        """Both upper levels are invalidated by the same events."""
        result = run_mode("strict")
        assert result.ptcache_l1_misses_per_page == pytest.approx(
            result.ptcache_l2_misses_per_page, abs=0.01
        )

    def test_off_mode_has_no_iommu_traffic(self):
        result = run_mode("off")
        assert result.memory_reads_per_page == 0.0
        assert result.invalidation_requests == 0


class TestInvalidationEconomy:
    def test_fns_uses_64x_fewer_invalidation_requests(self):
        strict = run_mode("strict")
        fns = run_mode("fns")
        per_page_strict = strict.invalidation_requests / strict.rx_data_pages
        per_page_fns = fns.invalidation_requests / fns.rx_data_pages
        assert per_page_strict > 0.9  # ~1 per page (+ Tx)
        assert per_page_fns < per_page_strict / 8


class TestDropBehaviour:
    def test_strict_drops_grow_with_flows(self):
        few = run_mode("strict", flows=5)
        many = run_mode("strict", flows=40)
        assert many.drop_fraction > few.drop_fraction

    def test_fns_eliminates_protection_drops(self):
        fns = run_mode("fns", flows=40)
        off = run_mode("off", flows=40)
        assert fns.drop_fraction <= off.drop_fraction + 0.001


class TestLocalityTrace:
    def test_fns_trace_is_chunked(self):
        result = run_mode("fns")
        sizes = {pages for _iova, pages in result.allocation_trace}
        assert sizes <= {64}

    def test_strict_trace_is_per_page(self):
        result = run_mode("strict")
        sizes = {pages for _iova, pages in result.allocation_trace}
        assert sizes == {1}


class TestDeterminism:
    def test_same_config_same_results(self):
        first = run_mode("strict")
        second = run_mode("strict")
        assert first.rx_goodput_gbps == second.rx_goodput_gbps
        assert first.iotlb_misses_per_page == second.iotlb_misses_per_page
        assert first.drops == second.drops


class TestConservation:
    def test_no_frame_leaks_in_steady_state(self):
        """Frames allocated == frames in rings + in flight; after the
        run, usage is bounded by the posted working set."""
        testbed = Testbed(HostConfig.cascade_lake(mode="fns"))
        testbed.add_rx_flows(5)
        testbed.run(warmup_ns=WARMUP, measure_ns=MEASURE)
        host = testbed.host
        posted_pages = sum(
            descriptor.size
            for ring in host.nic.rings
            for descriptor in ring._descriptors
        )
        # Frames in use should be close to the posted pages (plus a few
        # in-flight Tx pages), never unbounded.
        assert host.physmem.frames_in_use < posted_pages + 2000

    def test_fns_page_table_never_reclaims(self):
        """Descriptor-granularity unmaps never reclaim PT pages, so
        F&S never needs its PTcache fallback."""
        testbed = Testbed(HostConfig.cascade_lake(mode="fns"))
        testbed.add_rx_flows(5)
        testbed.run(warmup_ns=WARMUP, measure_ns=MEASURE)
        assert testbed.host.iommu.page_table.stats.pages_reclaimed == 0
        assert testbed.host.driver.ptcache_fallback_invalidations == 0

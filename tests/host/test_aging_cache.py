"""The aged-allocator snapshot cache must be invisible in results.

``Host._age_allocator`` replays a long allocate/free stream to build
long-uptime allocator state; the module-level cache in
``repro.host.server`` snapshots that state per configuration so later
builds (and forked pool workers, via copy-on-write) skip the replay.
Correctness bar: a cache-hit build behaves byte-identically to a
cold one, and the cache stays out of the way whenever observation or
fault hooks are armed.
"""

from repro.host import HostConfig, Testbed
from repro.host.server import _AGED_ALLOCATOR_STATES
from repro.verify import InvariantMonitor, monitored


def run_quick(mode="strict"):
    testbed = Testbed(HostConfig.cascade_lake(mode=mode))
    testbed.add_rx_flows(2)
    result = testbed.run(
        warmup_ns=1_000_000.0, measure_ns=2_000_000.0, strict_until=True
    )
    return result, testbed


def fingerprint(result, testbed):
    return (
        result.rx_goodput_gbps,
        result.drops,
        result.memory_reads_per_page,
        result.allocation_trace,
        testbed.sim.executed_events,
    )


class TestAgingCache:
    def test_cache_hit_build_identical_to_cold_build(self):
        _AGED_ALLOCATOR_STATES.clear()
        cold = fingerprint(*run_quick())
        assert _AGED_ALLOCATOR_STATES  # the cold build populated it
        warm = fingerprint(*run_quick())
        assert warm == cold

    def test_one_entry_per_configuration(self):
        _AGED_ALLOCATOR_STATES.clear()
        run_quick("strict")
        entries = len(_AGED_ALLOCATOR_STATES)
        # Same configuration again: no new entry (the key must not
        # contain anything run-specific such as object addresses).
        run_quick("strict")
        assert len(_AGED_ALLOCATOR_STATES) == entries
        # A different mode ages a different driver type: new entry.
        run_quick("fns")
        assert len(_AGED_ALLOCATOR_STATES) > entries

    def test_armed_monitor_bypasses_cache(self):
        _AGED_ALLOCATOR_STATES.clear()
        with monitored(InvariantMonitor()):
            testbed = Testbed(HostConfig.cascade_lake(mode="strict"))
            testbed.add_rx_flows(1)
        # Registry scopes and monitors hold references into live
        # allocator internals; snapshotting under them would leak one
        # run's observers into another.
        assert not _AGED_ALLOCATOR_STATES

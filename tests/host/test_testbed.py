"""Unit tests for testbed wiring and measurement mechanics."""

import pytest

from repro.host import HostConfig, Testbed


def make_testbed(mode="off", **kwargs):
    return Testbed(HostConfig.cascade_lake(mode=mode, num_cores=2, **kwargs))


class TestFlowSetup:
    def test_rx_flows_registered_both_ends(self):
        testbed = make_testbed()
        flow_ids = testbed.add_rx_flows(3)
        assert len(flow_ids) == 3
        for flow_id in flow_ids:
            assert testbed.host._flows[flow_id].receiver is not None
            assert testbed.remote._flows[flow_id].sender is not None

    def test_tx_flows_registered_both_ends(self):
        testbed = make_testbed()
        flow_ids = testbed.add_tx_flows(2)
        for flow_id in flow_ids:
            assert testbed.host._flows[flow_id].sender is not None
            assert testbed.remote._flows[flow_id].receiver is not None

    def test_explicit_core_pinning(self):
        testbed = make_testbed()
        testbed.add_rx_flows(2, cores=[1, 1])
        for flow_id in testbed.rx_flow_ids:
            assert testbed.host._flows[flow_id].core == 1

    def test_default_round_robin_cores(self):
        testbed = make_testbed()
        testbed.add_rx_flows(4)
        cores = [testbed.host._flows[f].core for f in testbed.rx_flow_ids]
        assert cores == [0, 1, 0, 1]


class TestMeasurement:
    def test_warmup_excluded_from_measurement(self):
        testbed = make_testbed()
        testbed.add_rx_flows(2)
        result = testbed.run(warmup_ns=1e6, measure_ns=2e6)
        # Goodput is computed over the measure window only; with the
        # warmup excluded it reflects steady state, not slow start.
        assert result.elapsed_ns == 2e6
        assert result.rx_goodput_gbps > 0

    def test_result_counts_only_registered_directions(self):
        testbed = make_testbed()
        testbed.add_rx_flows(1)
        result = testbed.run(warmup_ns=1e6, measure_ns=2e6)
        assert result.tx_goodput_gbps == 0.0

    def test_off_mode_reports_no_iommu_metrics(self):
        testbed = make_testbed(mode="off")
        testbed.add_rx_flows(1)
        result = testbed.run(warmup_ns=1e6, measure_ns=2e6)
        assert result.memory_reads_per_page == 0.0

    def test_clock_is_fresh_per_testbed(self):
        first = make_testbed()
        first.add_rx_flows(1)
        first.run(warmup_ns=1e6, measure_ns=1e6)
        second = make_testbed()
        assert second.sim.now == 0.0


class TestWireLevel:
    def test_ports_are_cross_connected(self):
        testbed = make_testbed()
        assert testbed.port_to_host.deliver == testbed.host.packet_from_wire
        assert (
            testbed.port_to_remote.deliver
            == testbed.remote.packet_from_wire
        )

    def test_switch_rate_matches_link(self):
        testbed = make_testbed(link_gbps=25.0)
        assert testbed.port_to_host.pacer.rate_bits_per_ns == 25.0

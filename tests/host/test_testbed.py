"""Unit tests for testbed wiring and measurement mechanics."""

import pytest

from repro.host import HostConfig, Testbed


def make_testbed(mode="off", **kwargs):
    return Testbed(HostConfig.cascade_lake(mode=mode, num_cores=2, **kwargs))


class TestFlowSetup:
    def test_rx_flows_registered_both_ends(self):
        testbed = make_testbed()
        flow_ids = testbed.add_rx_flows(3)
        assert len(flow_ids) == 3
        for flow_id in flow_ids:
            assert testbed.host._flows[flow_id].receiver is not None
            assert testbed.remote._flows[flow_id].sender is not None

    def test_tx_flows_registered_both_ends(self):
        testbed = make_testbed()
        flow_ids = testbed.add_tx_flows(2)
        for flow_id in flow_ids:
            assert testbed.host._flows[flow_id].sender is not None
            assert testbed.remote._flows[flow_id].receiver is not None

    def test_explicit_core_pinning(self):
        testbed = make_testbed()
        testbed.add_rx_flows(2, cores=[1, 1])
        for flow_id in testbed.rx_flow_ids:
            assert testbed.host._flows[flow_id].core == 1

    def test_default_round_robin_cores(self):
        testbed = make_testbed()
        testbed.add_rx_flows(4)
        cores = [testbed.host._flows[f].core for f in testbed.rx_flow_ids]
        assert cores == [0, 1, 0, 1]


class TestMeasurement:
    def test_warmup_excluded_from_measurement(self):
        testbed = make_testbed()
        testbed.add_rx_flows(2)
        result = testbed.run(warmup_ns=1e6, measure_ns=2e6)
        # Goodput is computed over the measure window only; with the
        # warmup excluded it reflects steady state, not slow start.
        assert result.elapsed_ns == 2e6
        assert result.rx_goodput_gbps > 0

    def test_result_counts_only_registered_directions(self):
        testbed = make_testbed()
        testbed.add_rx_flows(1)
        result = testbed.run(warmup_ns=1e6, measure_ns=2e6)
        assert result.tx_goodput_gbps == 0.0

    def test_off_mode_reports_no_iommu_metrics(self):
        testbed = make_testbed(mode="off")
        testbed.add_rx_flows(1)
        result = testbed.run(warmup_ns=1e6, measure_ns=2e6)
        assert result.memory_reads_per_page == 0.0

    def test_clock_is_fresh_per_testbed(self):
        first = make_testbed()
        first.add_rx_flows(1)
        first.run(warmup_ns=1e6, measure_ns=1e6)
        second = make_testbed()
        assert second.sim.now == 0.0


class TestWireLevel:
    def test_ports_are_cross_connected(self):
        testbed = make_testbed()
        assert testbed.port_to_host.deliver == testbed.host.packet_from_wire
        assert (
            testbed.port_to_remote.deliver
            == testbed.remote.packet_from_wire
        )

    def test_switch_rate_matches_link(self):
        testbed = make_testbed(link_gbps=25.0)
        assert testbed.port_to_host.pacer.rate_bits_per_ns == 25.0


class TestFastForward:
    """The epoch fast-forward vs ordinary event stepping."""

    def run_pair(self, mode, warmup_ns=2e6, measure_ns=15e6):
        results = []
        for fast_forward in (False, True):
            testbed = Testbed(HostConfig.cascade_lake(mode=mode))
            testbed.add_rx_flows(2)
            result = testbed.run(
                warmup_ns=warmup_ns,
                measure_ns=measure_ns,
                strict_until=True,
                fast_forward=fast_forward,
            )
            results.append((result, testbed))
        return results

    @pytest.mark.parametrize("mode", ["off", "strict", "fns"])
    def test_within_tolerance_of_stepped_run(self, mode):
        (stepped, _), (forwarded, testbed) = self.run_pair(mode)
        # The fast path must actually have engaged for the comparison
        # to mean anything.
        assert testbed.sim.fast_forwarded_events > 0
        assert forwarded.rx_goodput_gbps == pytest.approx(
            stepped.rx_goodput_gbps, rel=0.05
        )
        assert forwarded.extras["executed_events"] == pytest.approx(
            stepped.extras["executed_events"], rel=0.05
        )
        assert forwarded.memory_reads_per_page == pytest.approx(
            stepped.memory_reads_per_page, rel=0.05, abs=0.05
        )

    def test_fast_forward_is_deterministic(self):
        first = self.run_pair("strict")[1][0]
        second = self.run_pair("strict")[1][0]
        assert first.rx_goodput_gbps == second.rx_goodput_gbps
        assert (
            first.extras["executed_events"]
            == second.extras["executed_events"]
        )

    def test_watchdog_disables_fast_forward(self):
        testbed = Testbed(
            HostConfig.cascade_lake(mode="off"),
            watchdog_interval_ns=1e6,
        )
        testbed.add_rx_flows(2)
        testbed.run(
            warmup_ns=1e6, measure_ns=4e6, fast_forward=True
        )
        assert testbed.sim.fast_forwarded_events == 0

    def test_credited_events_reported_separately(self):
        (_, _), (forwarded, testbed) = self.run_pair("off")
        credited = testbed.sim.fast_forwarded_events
        assert forwarded.extras["executed_events"] == (
            testbed.sim.executed_events + credited
        )


class TestFastForwardEngine:
    def test_fast_forward_advances_clock_and_credit(self):
        testbed = make_testbed()
        sim = testbed.sim
        sim.fast_forward_to(123.0, 456)
        assert sim.now == 123.0
        assert sim.fast_forwarded_events == 456

    def test_fast_forward_rejects_backwards_time(self):
        from repro.sim import SimulationError

        testbed = make_testbed()
        testbed.sim.fast_forward_to(100.0, 0)
        with pytest.raises(SimulationError):
            testbed.sim.fast_forward_to(50.0, 0)

    def test_fast_forward_rejects_negative_credit(self):
        from repro.sim import SimulationError

        testbed = make_testbed()
        with pytest.raises(SimulationError):
            testbed.sim.fast_forward_to(10.0, -1)

"""Unit tests for the ideal remote peer."""

from repro.host import RemotePeer
from repro.net import DctcpParams, Packet, PacketKind
from repro.sim import Simulator


def make_peer(sim=None, **kwargs):
    sim = sim or Simulator()
    sent = []
    peer = RemotePeer(
        sim, DctcpParams(), wire_out=sent.append, **kwargs
    )
    return sim, peer, sent


def test_sender_pumps_initial_window():
    sim, peer, sent = make_peer()
    peer.register_sender(1)
    peer.pump(1)
    assert len(sent) == 10  # init_cwnd
    assert all(p.kind == PacketKind.DATA for p in sent)


def test_ack_opens_more_window():
    sim, peer, sent = make_peer()
    peer.register_sender(1)
    peer.pump(1)
    sent.clear()
    ack = Packet(1, 5, 64, PacketKind.ACK)
    peer.packet_from_wire(ack)
    # Bounded run: the sender's RTO timer re-arms forever without acks.
    sim.run(until=100_000.0)
    assert len(sent) >= 5


def test_receiver_acks_delivered_data():
    sim, peer, sent = make_peer()
    peer.register_receiver(7)
    for seq in range(2):
        peer.packet_from_wire(Packet(7, seq, 4096, PacketKind.DATA))
    sim.run(until=100_000.0)
    acks = [p for p in sent if p.kind == PacketKind.ACK]
    assert acks and acks[-1].seq == 2


def test_delivery_callback_fires():
    sim, peer, sent = make_peer()
    peer.register_receiver(7)
    delivered = []
    peer.on_delivery = lambda flow, segs: delivered.append((flow, segs))
    peer.packet_from_wire(Packet(7, 0, 4096, PacketKind.DATA))
    sim.run(until=100_000.0)
    assert delivered == [(7, 1)]
    assert peer.delivered_segments_by_flow[7] == 1


def test_processing_delay_applied():
    sim, peer, sent = make_peer()
    peer.register_receiver(7)
    times = []
    peer.on_delivery = lambda flow, segs: times.append(sim.now)
    peer.packet_from_wire(Packet(7, 0, 4096, PacketKind.DATA))
    sim.run(until=100_000.0)
    assert times[0] == peer.processing_delay_ns


def test_rto_recovers_lost_window():
    sim, peer, sent = make_peer()
    sender = peer.register_sender(1)
    peer.pump(1)  # packets "lost": no acks ever come back
    sent.clear()
    sim.run(until=sender.params.rto_ns * 3)
    assert sender.timeouts >= 1
    retx = [p for p in sent if p.retransmission]
    assert retx and retx[0].seq == 0


def test_unknown_flow_packets_ignored():
    sim, peer, sent = make_peer()
    peer.packet_from_wire(Packet(99, 0, 4096, PacketKind.DATA))
    sim.run(until=100_000.0)
    assert sent == []


def test_start_all_kicks_every_sender():
    sim, peer, sent = make_peer()
    peer.register_sender(1)
    peer.register_sender(2)
    peer.start_all()
    flows = {p.flow_id for p in sent}
    assert flows == {1, 2}

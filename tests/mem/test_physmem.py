"""Unit tests for the physical frame allocator."""

import pytest

from repro.mem import OutOfMemoryError, PhysicalMemory


def test_alloc_returns_distinct_frames():
    mem = PhysicalMemory(total_frames=16)
    frames = mem.alloc_frames(16)
    assert len(set(frames)) == 16


def test_exhaustion_raises():
    mem = PhysicalMemory(total_frames=2)
    mem.alloc_frames(2)
    with pytest.raises(OutOfMemoryError):
        mem.alloc_frame()


def test_free_allows_reuse():
    mem = PhysicalMemory(total_frames=1)
    frame = mem.alloc_frame()
    mem.free_frame(frame)
    assert mem.alloc_frame() == frame


def test_double_free_raises():
    mem = PhysicalMemory(total_frames=4)
    frame = mem.alloc_frame()
    mem.free_frame(frame)
    with pytest.raises(ValueError):
        mem.free_frame(frame)


def test_free_unallocated_raises():
    mem = PhysicalMemory(total_frames=4)
    with pytest.raises(ValueError):
        mem.free_frame(3)


def test_usage_accounting():
    mem = PhysicalMemory(total_frames=8)
    frames = mem.alloc_frames(5)
    assert mem.frames_in_use == 5
    mem.free_frames(frames[:2])
    assert mem.frames_in_use == 3
    assert mem.alloc_count == 5
    assert mem.free_count == 2


def test_is_allocated():
    mem = PhysicalMemory(total_frames=4)
    frame = mem.alloc_frame()
    assert mem.is_allocated(frame)
    mem.free_frame(frame)
    assert not mem.is_allocated(frame)


def test_negative_count_rejected():
    mem = PhysicalMemory(total_frames=4)
    with pytest.raises(ValueError):
        mem.alloc_frames(-1)


def test_zero_frames_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory(total_frames=0)

"""Unit tests for the memory latency model."""

import pytest

from repro.mem import DEFAULT_L0_NS, DEFAULT_LM_NS, MemoryLatencyModel


def test_paper_fitted_constants():
    """The paper fits l0 = 65 ns and lm = 197 ns (§2.2)."""
    assert DEFAULT_L0_NS == 65.0
    assert DEFAULT_LM_NS == 197.0


def test_uncontended_read_is_base_latency():
    model = MemoryLatencyModel(base_read_ns=100.0)
    assert model.read_latency_ns(0.0) == 100.0


def test_latency_monotone_in_utilization():
    model = MemoryLatencyModel(base_read_ns=100.0)
    latencies = [model.read_latency_ns(u / 10) for u in range(10)]
    assert latencies == sorted(latencies)
    assert latencies[-1] > latencies[0]


def test_saturation_clamped():
    model = MemoryLatencyModel(base_read_ns=100.0)
    assert model.read_latency_ns(1.5) == model.read_latency_ns(0.99)
    assert model.read_latency_ns(0.99) < float("inf")


def test_low_utilization_barely_inflates():
    model = MemoryLatencyModel(base_read_ns=100.0)
    assert model.read_latency_ns(0.2) == pytest.approx(100.0, rel=0.01)


def test_utilization_conversion():
    model = MemoryLatencyModel(channel_bandwidth_gbps=40.0)
    assert model.utilization(20.0) == pytest.approx(0.5)
    assert model.utilization(80.0) == 1.0

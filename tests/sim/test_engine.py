"""Unit tests for the event-calendar engine."""

import pytest

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_call_after_fires_in_order():
    sim = Simulator()
    fired = []
    sim.call_after(30.0, lambda: fired.append("c"))
    sim.call_after(10.0, lambda: fired.append("a"))
    sim.call_after(20.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.call_after(100.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [100.0]


def test_same_time_events_fifo():
    sim = Simulator()
    fired = []
    for label in range(5):
        sim.call_at(50.0, lambda l=label: fired.append(l))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.call_after(500.0, lambda: None)
    end = sim.run(until=200.0)
    assert end == 200.0
    assert sim.now == 200.0
    # The 500 ns event is still pending and fires on the next run.
    fired = []
    sim.call_after(0.0, lambda: fired.append(sim.now))
    sim.run()
    assert sim.now == 500.0


def test_run_until_includes_boundary_events():
    sim = Simulator()
    fired = []
    sim.call_at(100.0, lambda: fired.append("x"))
    sim.run(until=100.0)
    assert fired == ["x"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.call_after(10.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.call_after(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1.0, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.call_after(5.0, lambda: fired.append("second"))

    sim.call_after(10.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 15.0


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, lambda: (fired.append(1), sim.stop()))
    sim.call_after(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, lambda: fired.append(1))
    sim.call_after(2.0, lambda: fired.append(2))
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.call_after(1.0, reenter)
    sim.run()
    assert len(errors) == 1

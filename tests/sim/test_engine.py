"""Unit tests for the event-calendar engine."""

import pytest

from repro.sim import (
    EarlyQuiescenceError,
    SimulationError,
    Simulator,
    Watchdog,
    WatchdogError,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_call_after_fires_in_order():
    sim = Simulator()
    fired = []
    sim.call_after(30.0, lambda: fired.append("c"))
    sim.call_after(10.0, lambda: fired.append("a"))
    sim.call_after(20.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.call_after(100.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [100.0]


def test_same_time_events_fifo():
    sim = Simulator()
    fired = []
    for label in range(5):
        sim.call_at(50.0, lambda l=label: fired.append(l))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.call_after(500.0, lambda: None)
    end = sim.run(until=200.0)
    assert end == 200.0
    assert sim.now == 200.0
    # The 500 ns event is still pending and fires on the next run.
    fired = []
    sim.call_after(0.0, lambda: fired.append(sim.now))
    sim.run()
    assert sim.now == 500.0


def test_run_until_includes_boundary_events():
    sim = Simulator()
    fired = []
    sim.call_at(100.0, lambda: fired.append("x"))
    sim.run(until=100.0)
    assert fired == ["x"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.call_after(10.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.call_after(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1.0, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.call_after(5.0, lambda: fired.append("second"))

    sim.call_after(10.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 15.0


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, lambda: (fired.append(1), sim.stop()))
    sim.call_after(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, lambda: fired.append(1))
    sim.call_after(2.0, lambda: fired.append(2))
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.call_after(1.0, reenter)
    sim.run()
    assert len(errors) == 1


# ---------------------------------------------------------------------------
# strict_until: early calendar drain is an error, not a measurement
# ---------------------------------------------------------------------------
def test_strict_until_requires_until():
    with pytest.raises(SimulationError, match="requires until"):
        Simulator().run(strict_until=True)


def test_strict_until_raises_on_early_drain():
    sim = Simulator()
    sim.call_after(100.0, lambda: None)
    with pytest.raises(EarlyQuiescenceError) as excinfo:
        sim.run(until=1_000.0, strict_until=True)
    assert excinfo.value.now == 100.0
    assert excinfo.value.until == 1_000.0


def test_strict_until_quiet_when_events_reach_horizon():
    sim = Simulator()
    # A self-rescheduling ticker keeps the calendar alive past until.
    def tick():
        sim.call_after(50.0, tick)

    sim.call_after(0.0, tick)
    assert sim.run(until=1_000.0, strict_until=True) == 1_000.0


def test_strict_until_quiet_after_explicit_stop():
    # stop() means "the experiment ended on purpose" — not a dead
    # workload, so strict_until must not fire.
    sim = Simulator()
    sim.call_after(100.0, sim.stop)
    assert sim.run(until=1_000.0, strict_until=True) == 100.0


def test_alive_events_excludes_cancelled():
    sim = Simulator()
    kept = sim.call_after(10.0, lambda: None)
    cancelled = sim.call_after(20.0, lambda: None)
    cancelled.cancel()
    assert sim.pending_events == 2
    assert sim.alive_events == 1
    del kept


def test_pending_event_summary_names_and_overflow():
    sim = Simulator()

    def stuck_callback():
        pass

    for _ in range(3):
        sim.call_after(5.0, stuck_callback)
    lines = sim.pending_event_summary(limit=2)
    assert len(lines) == 3
    assert "stuck_callback" in lines[0]
    assert lines[-1] == "... and 1 more"


# ---------------------------------------------------------------------------
# Watchdog: quiesced-but-unfinished runs raise with a pending trace
# ---------------------------------------------------------------------------
def test_watchdog_raises_on_no_progress():
    sim = Simulator()

    def spin():
        sim.call_after(1.0, spin)  # livelock: busy but going nowhere

    sim.call_after(0.0, spin)
    watchdog = Watchdog(sim, interval_ns=100.0, progress=lambda: 0)
    watchdog.arm()
    with pytest.raises(WatchdogError) as excinfo:
        sim.run(until=10_000.0)
    assert "no progress" in str(excinfo.value)
    assert any("spin" in line for line in excinfo.value.pending_trace)


def test_watchdog_message_previews_next_pending_events():
    sim = Simulator()

    def spin():
        sim.call_after(1.0, spin)

    sim.call_after(0.0, spin)
    watchdog = Watchdog(sim, interval_ns=100.0, progress=lambda: 0)
    watchdog.arm()
    with pytest.raises(WatchdogError) as excinfo:
        sim.run(until=10_000.0)
    message = str(excinfo.value)
    # The message itself names what the calendar was about to run, so a
    # bare log line is enough to start debugging a livelock: up to
    # three "t=<ns> seq=<n> <callback>" entries after "next:".
    assert "next:" in message
    preview = message.split("next:", 1)[1]
    assert "spin" in preview
    assert "t=" in preview and "seq=" in preview
    assert preview.count(";") <= 2  # at most three entries


def test_watchdog_tolerates_progress():
    sim = Simulator()
    work = []

    def produce():
        work.append(len(work))
        sim.call_after(10.0, produce)

    sim.call_after(0.0, produce)
    watchdog = Watchdog(sim, interval_ns=100.0, progress=lambda: len(work))
    watchdog.arm()
    sim.run(until=1_000.0)
    assert watchdog.checks >= 5
    assert len(work) > 50


def test_watchdog_disarms_when_run_finishes():
    sim = Simulator()
    sim.call_after(10.0, lambda: None)
    watchdog = Watchdog(sim, interval_ns=100.0, progress=lambda: 0)
    watchdog.arm()
    # The workload ends before the first check; the watchdog must see
    # an empty calendar and stand down instead of raising.
    sim.run(until=1_000.0)
    assert watchdog.checks == 1


def test_watchdog_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(SimulationError, match="interval"):
        Watchdog(sim, interval_ns=0.0, progress=lambda: 0)


def test_watchdog_rearms_after_error():
    # Regression: _armed used to stay True after a WatchdogError, so a
    # second arm() was a silent no-op and the next run was unguarded.
    sim = Simulator()

    def spin():
        sim.call_after(1.0, spin)

    sim.call_after(0.0, spin)
    watchdog = Watchdog(sim, interval_ns=100.0, progress=lambda: 0)
    watchdog.arm()
    with pytest.raises(WatchdogError):
        sim.run(until=10_000.0)
    first_checks = watchdog.checks
    watchdog.arm()
    with pytest.raises(WatchdogError):
        sim.run(until=20_000.0)
    assert watchdog.checks > first_checks


# ---------------------------------------------------------------------------
# Housekeeping events: observers are invisible to alive_events
# ---------------------------------------------------------------------------
def test_housekeeping_excluded_from_alive_events():
    sim = Simulator()
    sim.call_after(10.0, lambda: None)
    sim.call_after(5.0, lambda: None, housekeeping=True)
    assert sim.pending_events == 2
    assert sim.alive_events == 1


def test_housekeeping_excluded_from_pending_summary():
    sim = Simulator()

    def workload():
        return None

    def observer():
        return None

    sim.call_after(10.0, workload)
    sim.call_after(5.0, observer, housekeeping=True)
    lines = sim.pending_event_summary()
    assert len(lines) == 1
    assert "workload" in lines[0]


def test_housekeeping_only_calendar_triggers_early_quiescence():
    sim = Simulator()
    sim.call_after(1.0, lambda: None)
    # A periodic observer alone must not mask the drained workload.
    def tick():
        if sim.now < 400.0:
            sim.call_after(100.0, tick, housekeeping=True)

    sim.call_after(100.0, tick, housekeeping=True)
    with pytest.raises(EarlyQuiescenceError):
        sim.run(until=10_000.0, strict_until=True)


def test_executed_events_counter():
    sim = Simulator()
    for i in range(5):
        sim.call_after(float(i), lambda: None)
    cancelled = sim.call_after(10.0, lambda: None)
    cancelled.cancel()
    sim.run()
    assert sim.executed_events == 5

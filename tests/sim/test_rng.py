"""Tests for deterministic, stably-seeded randomness."""

import os
import pathlib
import subprocess
import sys

import repro
from repro.sim import SeededRng


def test_same_seed_same_stream():
    first = SeededRng(42, "x")
    second = SeededRng(42, "x")
    assert [first.random() for _ in range(10)] == [
        second.random() for _ in range(10)
    ]


def test_different_names_differ():
    a = SeededRng(42, "a")
    b = SeededRng(42, "b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_is_independent_and_stable():
    root = SeededRng(7)
    child1 = root.fork("net")
    # Draws on the root do not perturb the child stream.
    root.random()
    child2 = SeededRng(7).fork("net")
    assert [child1.random() for _ in range(5)] == [
        child2.random() for _ in range(5)
    ]


def test_stable_across_processes():
    """The stream must not depend on PYTHONHASHSEED (it once did, which
    made whole experiments irreproducible across runs)."""
    code = (
        "from repro.sim import SeededRng;"
        "r = SeededRng(42, 'allocator-aging');"
        "print([r.randint(0, 1000) for _ in range(5)])"
    )
    # The subprocess starts with a clean environment, so it needs an
    # explicit PYTHONPATH pointing at the package actually under test
    # (the parent of the imported ``repro``) to import it at all.
    src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
    outputs = set()
    for hash_seed in ("0", "12345"):
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                "PYTHONHASHSEED": hash_seed,
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": src_dir + os.pathsep + os.environ.get(
                    "PYTHONPATH", ""
                ),
            },
        )
        assert result.returncode == 0, result.stderr
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1


def test_helpers_cover_range():
    rng = SeededRng(1)
    assert 0 <= rng.randint(0, 9) <= 9
    assert 1.0 <= rng.uniform(1.0, 2.0) <= 2.0
    assert rng.choice([5]) == 5
    assert rng.expovariate(1.0) >= 0
    items = list(range(10))
    rng.shuffle(items)
    assert sorted(items) == list(range(10))
    assert len(rng.sample(range(100), 5)) == 5

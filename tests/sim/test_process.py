"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Process, Signal, SimulationError, Simulator, Timeout


def test_process_sleeps_through_timeouts():
    sim = Simulator()
    log = []

    def worker():
        log.append(("start", sim.now))
        yield Timeout(100.0)
        log.append(("mid", sim.now))
        yield Timeout(50.0)
        log.append(("end", sim.now))

    Process(sim, worker())
    sim.run()
    assert log == [("start", 0.0), ("mid", 100.0), ("end", 150.0)]


def test_signal_wakes_waiters_with_value():
    sim = Simulator()
    received = []

    def waiter(signal):
        value = yield signal
        received.append((value, sim.now))

    def firer(signal):
        yield Timeout(42.0)
        signal.fire("payload")

    signal = Signal(sim)
    Process(sim, waiter(signal))
    Process(sim, waiter(signal))
    Process(sim, firer(signal))
    sim.run()
    assert received == [("payload", 42.0), ("payload", 42.0)]


def test_signal_only_wakes_current_waiters():
    sim = Simulator()
    received = []
    signal = Signal(sim)

    def late_waiter():
        yield Timeout(100.0)
        value = yield signal
        received.append(value)

    def firer():
        yield Timeout(10.0)
        signal.fire("early")

    Process(sim, late_waiter())
    Process(sim, firer())
    sim.run()
    # The late waiter subscribed after the fire: it stays blocked.
    assert received == []
    assert signal.waiting == 1


def test_join_returns_generator_value():
    sim = Simulator()
    results = []

    def child():
        yield Timeout(10.0)
        return 123

    def parent():
        value = yield Process(sim, child())
        results.append((value, sim.now))

    Process(sim, parent())
    sim.run()
    assert results == [(123, 10.0)]


def test_join_already_finished_process():
    sim = Simulator()
    results = []

    def child():
        return 7
        yield  # pragma: no cover

    child_proc = Process(sim, child())

    def parent():
        yield Timeout(100.0)
        value = yield child_proc
        results.append(value)

    Process(sim, parent())
    sim.run()
    assert results == [7]


def test_interrupt_terminates_process():
    sim = Simulator()
    log = []

    def worker():
        yield Timeout(100.0)
        log.append("should not happen")

    proc = Process(sim, worker())
    sim.call_after(10.0, proc.interrupt)
    sim.run()
    assert log == []
    assert proc.finished


def test_yielding_garbage_raises():
    sim = Simulator()

    def bad():
        yield "nonsense"

    Process(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-5.0)

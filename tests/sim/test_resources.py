"""Unit tests for queues, pipelines, and pacers."""

import pytest

from repro.sim import FifoQueue, Simulator, TokenBucketPacer, WindowedPipeline


class TestFifoQueue:
    def test_enqueue_dequeue_order(self):
        q = FifoQueue(capacity_bytes=100)
        assert q.try_enqueue("a", 10)
        assert q.try_enqueue("b", 20)
        assert q.dequeue() == ("a", 10)
        assert q.dequeue() == ("b", 20)
        assert q.dequeue() is None

    def test_tail_drop_on_overflow(self):
        q = FifoQueue(capacity_bytes=25)
        assert q.try_enqueue("a", 10)
        assert q.try_enqueue("b", 10)
        assert not q.try_enqueue("c", 10)
        assert q.dropped_items == 1
        assert q.dropped_bytes == 10
        assert len(q) == 2

    def test_occupancy_tracks_bytes(self):
        q = FifoQueue(capacity_bytes=100)
        q.try_enqueue("a", 30)
        q.try_enqueue("b", 40)
        assert q.occupancy_bytes == 70
        q.dequeue()
        assert q.occupancy_bytes == 40

    def test_peak_occupancy(self):
        q = FifoQueue(capacity_bytes=100)
        q.try_enqueue("a", 60)
        q.dequeue()
        q.try_enqueue("b", 30)
        assert q.peak_occupancy_bytes == 60

    def test_ecn_marking_threshold(self):
        q = FifoQueue(capacity_bytes=100, ecn_threshold_bytes=50)
        q.try_enqueue("a", 40)
        assert not q.should_mark()
        q.try_enqueue("b", 20)
        assert q.should_mark()

    def test_no_threshold_never_marks(self):
        q = FifoQueue(capacity_bytes=100)
        q.try_enqueue("a", 99)
        assert not q.should_mark()

    def test_drop_fraction(self):
        q = FifoQueue(capacity_bytes=10)
        q.try_enqueue("a", 10)
        q.try_enqueue("b", 10)
        assert q.drop_fraction == pytest.approx(0.5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FifoQueue(capacity_bytes=0)


class TestWindowedPipeline:
    def test_throughput_limited_by_window_littles_law(self):
        """window W, latency L -> sustained rate = W/L items of size s."""
        sim = Simulator()
        pipe = WindowedPipeline(sim, window_bytes=2000)
        done = []
        # 10 items of 1000 bytes, 100 ns latency each, window fits 2.
        for i in range(10):
            pipe.submit(1000, 100.0, lambda i=i: done.append((i, sim.now)))
        sim.run()
        # 2 in flight at a time -> batches complete at 100, 200, ...
        assert done[0][1] == 100.0
        assert done[1][1] == 100.0
        assert done[2][1] == 200.0
        assert done[-1][1] == 500.0
        assert pipe.completed_items == 10

    def test_oversized_item_admitted_alone(self):
        sim = Simulator()
        pipe = WindowedPipeline(sim, window_bytes=100)
        done = []
        pipe.submit(500, 10.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0]

    def test_max_inflight_items_cap(self):
        sim = Simulator()
        pipe = WindowedPipeline(sim, window_bytes=10**9, max_inflight_items=1)
        done = []
        for _ in range(3):
            pipe.submit(10, 50.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [50.0, 100.0, 150.0]

    def test_queued_items_counts_waiting(self):
        sim = Simulator()
        pipe = WindowedPipeline(sim, window_bytes=10, max_inflight_items=1)
        for _ in range(3):
            pipe.submit(10, 50.0, lambda: None)
        assert pipe.queued_items == 2

    def test_completion_admits_next(self):
        sim = Simulator()
        pipe = WindowedPipeline(sim, window_bytes=10)
        order = []
        pipe.submit(10, 30.0, lambda: order.append("first"))
        pipe.submit(10, 10.0, lambda: order.append("second"))
        sim.run()
        # Second cannot start until first finishes at t=30.
        assert order == ["first", "second"]
        assert sim.now == 40.0


class TestTokenBucketPacer:
    def test_serializes_at_line_rate(self):
        sim = Simulator()
        pacer = TokenBucketPacer(sim, rate_gbps=100.0)  # 100 bits/ns
        times = []
        # 4000-byte packet = 32000 bits = 320 ns of wire time.
        pacer.send(4000, lambda: times.append(sim.now))
        pacer.send(4000, lambda: times.append(sim.now))
        sim.run()
        assert times == [320.0, 640.0]

    def test_idle_restart_from_now(self):
        sim = Simulator()
        pacer = TokenBucketPacer(sim, rate_gbps=100.0)
        times = []
        pacer.send(1000, lambda: times.append(sim.now))
        sim.run()
        assert times == [80.0]
        # After idling, the next send starts from "now", not the old
        # serializer booking: scheduled at t=1080, delivered at 1160.
        sim.call_after(
            1000.0, lambda: pacer.send(1000, lambda: times.append(sim.now))
        )
        sim.run()
        assert times[1] == pytest.approx(1080.0 + 80.0)

    def test_backlog_reporting(self):
        sim = Simulator()
        pacer = TokenBucketPacer(sim, rate_gbps=1.0)  # 1 bit/ns
        pacer.send(125, lambda: None)  # 1000 bits = 1000 ns
        assert pacer.backlog_ns == pytest.approx(1000.0)

"""Fig 2: Linux strict vs IOMMU off while varying the number of flows.

Paper's findings reproduced here:
(a) enabling the IOMMU costs 20-65% throughput, worse with more flows;
(b) drop rates grow with flows under strict protection;
(c) IOTLB misses exceed the compulsory 1/page and grow with flows;
(d) PTcache-L1/L2 misses are nonzero (invalidation-driven) and
    PTcache-L3 misses are much larger (invalidation + locality);
(e) PTcache-L3 allocation locality degrades with flows.

The claims themselves live in ``repro.obs.expectations.fig2`` — the
same spec ``repro reproduce`` gates on.
"""

from conftest import assert_expectations, run_once

from repro.experiments import QUICK, fig2_flows


def test_fig2(benchmark, record_figure):
    result = run_once(benchmark, fig2_flows, scale=QUICK)
    record_figure(result)
    assert_expectations("fig2", result)

"""Fig 2: Linux strict vs IOMMU off while varying the number of flows.

Paper's findings reproduced here:
(a) enabling the IOMMU costs 20-65% throughput, worse with more flows;
(b) drop rates grow with flows under strict protection;
(c) IOTLB misses exceed the compulsory 1/page and grow with flows;
(d) PTcache-L1/L2 misses are nonzero (invalidation-driven) and
    PTcache-L3 misses are much larger (invalidation + locality);
(e) PTcache-L3 allocation locality degrades with flows.
"""

from conftest import run_once

from repro.experiments import QUICK, fig2_flows


def test_fig2(benchmark, record_figure):
    result = run_once(benchmark, fig2_flows, scale=QUICK)
    record_figure(result)
    for flows in (5, 40):
        off = result.row("off", flows)
        strict = result.row("strict", flows)
        # (a) throughput degradation under strict protection.
        assert strict[2] < off[2] * 0.92
        # (c) at least the compulsory one IOTLB miss per page.
        assert strict[4] >= 1.0
        # (d) m1 == m2 (same invalidation events), m3 the largest.
        assert strict[7] >= strict[5] > 0
    # (b) drops grow with flows under strict.
    assert result.row("strict", 40)[3] > result.row("strict", 5)[3]
    # (e) locality (p95 reuse distance) degrades with flows.
    assert (
        result.row("strict", 40)[10] >= result.row("strict", 5)[10] * 0.8
    )

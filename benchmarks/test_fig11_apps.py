"""Fig 11: real applications — Redis, Nginx, SPDK.

Paper's findings:
(a) Redis SET: Linux strict loses 38-70%, worst at small values; F&S
    recovers to near IOMMU-off with a small residual gap at 4 KB values
    (IOTLB contention from per-request replies — §4.4);
(b) Nginx: Linux strict loses 65-70% across page sizes; F&S matches
    the (application-limited, ~90 Gbps) IOMMU-off throughput;
(c) SPDK: Linux strict caps well below line rate; F&S matches
    IOMMU-off except a small gap at 32 KB blocks (request-packet IOTLB
    contention).

Claims (including the documented strict-under-degradation deviation on
bulk 9 K-MTU workloads) live in ``repro.obs.expectations.fig11a/b/c``.
"""

from conftest import assert_expectations, run_once

from repro.experiments import QUICK, fig11_nginx, fig11_redis, fig11_spdk


def test_redis(benchmark, record_figure):
    result = run_once(benchmark, fig11_redis, scale=QUICK)
    record_figure(result)
    assert_expectations("fig11a", result)


def test_nginx(benchmark, record_figure):
    result = run_once(benchmark, fig11_nginx, scale=QUICK)
    record_figure(result)
    assert_expectations("fig11b", result)


def test_spdk(benchmark, record_figure):
    result = run_once(benchmark, fig11_spdk, scale=QUICK)
    record_figure(result)
    assert_expectations("fig11c", result)

"""Fig 11: real applications — Redis, Nginx, SPDK.

Paper's findings:
(a) Redis SET: Linux strict loses 38-70%, worst at small values; F&S
    recovers to near IOMMU-off with a small residual gap at 4 KB values
    (IOTLB contention from per-request replies — §4.4);
(b) Nginx: Linux strict loses 65-70% across page sizes; F&S matches
    the (application-limited, ~90 Gbps) IOMMU-off throughput;
(c) SPDK: Linux strict caps well below line rate; F&S matches
    IOMMU-off except a small gap at 32 KB blocks (request-packet IOTLB
    contention).
"""

from conftest import run_once

from repro.experiments import QUICK, fig11_nginx, fig11_redis, fig11_spdk


def test_redis(benchmark, record_figure):
    result = run_once(benchmark, fig11_redis, scale=QUICK)
    record_figure(result)
    for size in (4096, 8192):
        off = result.row("off", size)
        strict = result.row("strict", size)
        fns = result.row("fns", size)
        # The paper's 38-70% degradation band reproduces at small
        # values (the protection-heavy regime: one reply per SET).
        assert strict[2] < off[2] * 0.75
        assert fns[2] > strict[2] * 1.15
    for size in (32768, 131072):
        # At large values our strict mode under-degrades vs the paper
        # (walk overlap hides the per-miss cost at 9 K MTU; see
        # EXPERIMENTS.md) — assert no inversion and the F&S ordering.
        assert result.row("strict", size)[2] <= result.row("off", size)[2] * 1.02
        assert result.row("fns", size)[2] >= result.row("strict", size)[2] * 0.98
    # Degradation worsens at smaller values (relative throughput).
    small = result.row("strict", 4096)[2] / result.row("off", 4096)[2]
    large = result.row("strict", 131072)[2] / result.row("off", 131072)[2]
    assert small <= large + 0.05
    # F&S near off at large values; small residual gap allowed at 4 KB.
    assert result.row("fns", 131072)[2] > result.row("off", 131072)[2] * 0.9


def test_nginx(benchmark, record_figure):
    result = run_once(benchmark, fig11_nginx, scale=QUICK)
    record_figure(result)
    for size in (131072, 524288, 2097152):
        off = result.row("off", size)
        strict = result.row("strict", size)
        fns = result.row("fns", size)
        # Application-limited ceiling below line rate even with IOMMU off.
        assert off[2] < 99.0
        # Deviation (EXPERIMENTS.md): our strict mode shows little
        # degradation on Nginx's large-page pattern; assert the
        # orderings that do hold.
        assert strict[2] <= off[2] * 1.1
        assert fns[2] > off[2] * 0.85


def test_spdk(benchmark, record_figure):
    result = run_once(benchmark, fig11_spdk, scale=QUICK)
    record_figure(result)
    for size in (32768, 65536):
        off = result.row("off", size)
        strict = result.row("strict", size)
        fns = result.row("fns", size)
        # Small/medium blocks: visible strict degradation, F&S ~ off.
        assert strict[2] < off[2] * 0.95
        assert fns[2] > strict[2]
        assert fns[2] > off[2] * 0.95
    assert result.row("strict", 262144)[2] <= result.row("off", 262144)[2] * 1.02
    # IOTLB contention grows at small block sizes for strict (~1.5x in
    # the paper between 256 KB and 32 KB blocks).
    assert (
        result.row("strict", 32768)[4]
        > result.row("strict", 262144)[4] * 1.05
    )

"""Paper §5 future work: integrating hugepages with F&S.

The paper notes hugepages can reduce IOTLB *miss counts* (greater
reach per entry) but prior hugepage work [Farshin et al. 2023] kept
IOVAs permanently mapped — a weaker safety property.  The natural F&S
integration evaluated here: 2 MB hugepage-backed descriptors, mapped
with a single PT-L3 leaf, unmapped and invalidated as one 2 MB unit at
descriptor completion.  Strict safety is preserved (no access after
retire, at 2 MB descriptor granularity) while the compulsory IOTLB
miss rate drops from 1 per 4 KB page toward 1 per 512 pages.
"""

from conftest import run_once

from repro.apps import run_iperf
from repro.experiments import QUICK, FigureResult


def run_hugepages(scale=QUICK):
    result = FigureResult(
        "Extension-huge",
        "F&S with 2 MB hugepage descriptors (iperf, 5 flows)",
        ["mode", "gbps", "iotlb/pg", "M", "inval/pg", "max_cpu%"],
    )
    for mode in ("strict", "fns", "fns-huge", "off"):
        point = run_iperf(
            mode,
            flows=5,
            warmup_ns=scale.warmup_ns,
            measure_ns=scale.measure_ns,
            ring_size_packets=1024,
        )
        result.rows.append(
            [
                mode,
                round(point.rx_goodput_gbps, 1),
                round(point.iotlb_misses_per_page, 3),
                round(point.memory_reads_per_page, 3),
                round(point.invalidation_requests / point.rx_data_pages, 3),
                round(point.max_core_utilization * 100, 1),
            ]
        )
        result.raw[mode] = point
    return result


def test_fns_hugepages(benchmark, record_figure):
    result = run_once(benchmark, run_hugepages)
    record_figure(result)
    rows = {row[0]: row for row in result.rows}
    # Line rate, like plain F&S.
    assert rows["fns-huge"][1] > rows["off"][1] * 0.95
    # The headline: hugepages break the one-IOTLB-miss-per-page floor
    # that 4 KB mappings cannot escape under strict safety.
    assert rows["fns"][2] >= 1.0
    assert rows["fns-huge"][2] < 0.3
    # Total translation reads drop by >= 5x vs plain F&S.
    assert rows["fns-huge"][3] < rows["fns"][3] / 5
    # Safety is still strict: the mode runs on the same driver family
    # (tests/protection cover the no-access-after-retire property).

"""Paper §3 "Generality of F&S techniques" — single-page descriptors.

Devices like Intel ICE use single-page descriptors; the paper argues
F&S's contiguous allocation and PTcache preservation still apply (the
Tx-style chunk slicing across descriptors), while batched invalidation
loses its leverage (strict safety forces invalidation at descriptor =
page granularity).  The paper leaves the evaluation to future work —
this bench runs it in the simulator.

Expected shape: Linux strict gets *worse* with single-page descriptors
(every page is its own retire burst, so invalidations interleave 1:1
with translations — the full-walk regime), while F&S still holds line
rate, albeit with one invalidation request per page instead of per 64.
"""

from conftest import run_once

from repro.analysis.report import format_figure
from repro.apps import run_iperf
from repro.experiments import QUICK, FigureResult


def run_generality(scale=QUICK):
    result = FigureResult(
        "Generality",
        "Single-page vs 64-page descriptors (iperf, 5 flows)",
        ["mode", "desc_pages", "gbps", "m1/pg", "m3/pg", "inval/pg"],
    )
    for descriptor_pages in (1, 64):
        for mode in ("strict", "fns"):
            point = run_iperf(
                mode,
                flows=5,
                warmup_ns=scale.warmup_ns,
                measure_ns=scale.measure_ns,
                descriptor_pages=descriptor_pages,
            )
            result.rows.append(
                [
                    mode,
                    descriptor_pages,
                    round(point.rx_goodput_gbps, 1),
                    round(point.ptcache_l1_misses_per_page, 3),
                    round(point.ptcache_l3_misses_per_page, 3),
                    round(
                        point.invalidation_requests / point.rx_data_pages, 2
                    ),
                ]
            )
            result.raw[(mode, descriptor_pages)] = point
    return result


def test_single_page_descriptors(benchmark, record_figure):
    result = run_once(benchmark, run_generality)
    record_figure(result)
    strict_1 = result.row("strict", 1)
    strict_64 = result.row("strict", 64)
    fns_1 = result.row("fns", 1)
    fns_64 = result.row("fns", 64)
    # Linux strict suffers badly without multi-page descriptors: the
    # per-page invalidation bursts interleave with translations.
    assert strict_1[2] < strict_64[2] * 0.8
    assert strict_1[3] > strict_64[3] * 3  # m1 explodes
    # F&S still provides line rate: contiguity + preservation survive.
    assert fns_1[2] > fns_64[2] * 0.95
    assert fns_1[3] == 0
    # ... but its batched-invalidation CPU saving is gone (per-page
    # invalidations again), motivating multi-page descriptors.
    assert fns_1[5] > fns_64[5] * 8

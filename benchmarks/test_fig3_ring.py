"""Fig 3: Linux strict vs IOMMU off while varying Rx ring buffer size.

Paper's findings: throughput degradation grows with ring size (up to
15% extra) because the IOVA working set — and hence the PTcache-L3
working set — grows 8x with an 8x ring increase, while IOTLB misses
stay roughly constant (still one compulsory miss per page).  Our
deviation (L3 misses substantial but not growing) is documented in
EXPERIMENTS.md; the spec in ``repro.obs.expectations.fig3`` asserts
the shapes that do reproduce.
"""

from conftest import assert_expectations, run_once

from repro.experiments import QUICK, fig3_ring


def test_fig3(benchmark, record_figure):
    result = run_once(benchmark, fig3_ring, scale=QUICK)
    record_figure(result)
    assert_expectations("fig3", result)

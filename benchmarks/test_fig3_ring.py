"""Fig 3: Linux strict vs IOMMU off while varying Rx ring buffer size.

Paper's findings: throughput degradation grows with ring size (up to
15% extra) because the IOVA working set — and hence the PTcache-L3
working set — grows 8x with an 8x ring increase, while IOTLB misses
stay roughly constant (still one compulsory miss per page).
"""

from conftest import run_once

from repro.experiments import QUICK, fig3_ring


def test_fig3(benchmark, record_figure):
    result = run_once(benchmark, fig3_ring, scale=QUICK)
    record_figure(result)
    small = result.row("strict", 256)
    large = result.row("strict", 2048)
    # Strict always degrades vs off.
    for ring in (256, 2048):
        assert result.row("strict", ring)[2] < result.row("off", ring)[2]
    # IOTLB misses stay in the same band (compulsory-dominated) ...
    assert abs(large[4] - small[4]) < 0.5
    # ... while PTcache-L3 misses remain substantial at every ring
    # size.  (Deviation from the paper: its L3 misses *grow* with ring
    # size via allocator-state diffusion over minutes of uptime, which
    # a millisecond-scale simulation cannot accumulate; see
    # EXPERIMENTS.md.)
    assert small[7] > 0.1 and large[7] > 0.1
    # Locality stays poor at every ring size (Fig 3e).
    assert small[10] >= 10 and large[10] >= 10

"""Fig 9: RPC tail latency colocated with throughput-bound traffic.

Paper's findings: with Linux strict protection, tail latency inflates
by orders of magnitude — P99 from NIC-queueing delay, P99.9+ from
retransmission timeouts after drops.  F&S keeps all percentiles within
a small factor (1.17x, 1.42x at P99.99) of the IOMMU-off case.
Claims live in ``repro.obs.expectations.fig9`` (pinned to the same
RPC sizes this sub-sweep runs).
"""

from conftest import assert_expectations, run_once

from repro.experiments import QUICK, fig9_rpc_latency


def test_fig9(benchmark, record_figure):
    result = run_once(
        benchmark, fig9_rpc_latency, rpc_sizes=(128, 4096, 32768), scale=QUICK
    )
    record_figure(result)
    assert_expectations("fig9", result)

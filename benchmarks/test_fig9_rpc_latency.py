"""Fig 9: RPC tail latency colocated with throughput-bound traffic.

Paper's findings: with Linux strict protection, tail latency inflates
by orders of magnitude — P99 from NIC-queueing delay, P99.9+ from
retransmission timeouts after drops.  F&S keeps all percentiles within
a small factor (1.17x, 1.42x at P99.99) of the IOMMU-off case.
"""

from conftest import run_once

from repro.experiments import QUICK, fig9_rpc_latency


def test_fig9(benchmark, record_figure):
    result = run_once(
        benchmark, fig9_rpc_latency, rpc_sizes=(128, 4096, 32768), scale=QUICK
    )
    record_figure(result)
    for size in (128, 4096, 32768):
        off = result.row("off", size)
        strict = result.row("strict", size)
        fns = result.row("fns", size)
        assert off[2] > 20 and fns[2] > 20, "enough RPC samples"
        assert strict[2] > 0, "strict RPCs complete, if slowly"
        # F&S P50/P99.9 within a small factor of IOMMU-off.
        assert fns[3] < off[3] * 2.0  # p50
        assert fns[6] < max(off[6] * 3.0, off[6] + 200)  # p99.9
    strict_tails = [result.row("strict", s)[6] for s in (128, 4096, 32768)]
    off_tails = [result.row("off", s)[6] for s in (128, 4096, 32768)]
    # Orders-of-magnitude inflation somewhere in the strict tail.
    assert max(strict_tails) > 10 * max(off_tails)

"""Fig 12: each F&S design idea is necessary.

A = preserving IO page table caches; B = contiguous IOVA allocation +
batched invalidations.  Paper's finding on Redis 8 KB SETs: neither
Linux+A nor Linux+B alone reaches F&S — preserving alone still leaves
the locality-driven PTcache-L3 misses, contiguity alone still pays the
invalidation-driven misses — only A+B (F&S) recovers the throughput.
Claims live in ``repro.obs.expectations.fig12``.
"""

from conftest import assert_expectations, run_once

from repro.experiments import QUICK, fig12_ablation


def test_fig12(benchmark, record_figure):
    result = run_once(benchmark, fig12_ablation, scale=QUICK)
    record_figure(result)
    assert_expectations("fig12", result)

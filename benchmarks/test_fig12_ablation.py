"""Fig 12: each F&S design idea is necessary.

A = preserving IO page table caches; B = contiguous IOVA allocation +
batched invalidations.  Paper's finding on Redis 8 KB SETs: neither
Linux+A nor Linux+B alone reaches F&S — preserving alone still leaves
the locality-driven PTcache-L3 misses, contiguity alone still pays the
invalidation-driven misses — only A+B (F&S) recovers the throughput.
"""

from conftest import run_once

from repro.experiments import QUICK, fig12_ablation


def test_fig12(benchmark, record_figure):
    result = run_once(benchmark, fig12_ablation, scale=QUICK)
    record_figure(result)
    gbps = {row[0]: row[2] for row in result.rows}
    l3 = {row[0]: row[3] for row in result.rows}
    # Ordering: Linux lowest; each single idea helps but is not enough;
    # F&S approaches IOMMU-off.
    assert gbps["strict"] < gbps["linux+A"]
    assert gbps["strict"] < gbps["linux+B"]
    assert gbps["linux+A"] < gbps["fns"]
    assert gbps["linux+B"] < gbps["fns"]
    assert gbps["fns"] > gbps["off"] * 0.9
    # Mechanisms: A alone still suffers locality-driven L3 misses; B
    # alone still suffers invalidation-driven L3 misses; F&S neither.
    assert l3["linux+A"] > 0.02
    assert l3["linux+B"] > 0.02
    assert l3["fns"] < 0.02

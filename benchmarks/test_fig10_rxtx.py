"""Fig 10: extreme Rx/Tx interference (Ice Lake, both directions).

Paper's findings: with concurrent Rx and Tx data flows, Linux strict
loses up to ~80% of Rx throughput even at moderate core counts (vs
~20% without Tx data traffic), because Rx/Tx interference inflates
both the IOTLB miss rate and the cost of each miss.  F&S recovers most
of the loss by cutting the per-miss cost.
"""

from conftest import run_once

from repro.experiments import QUICK, fig10_rxtx


def test_fig10(benchmark, record_figure):
    result = run_once(benchmark, fig10_rxtx, scale=QUICK)
    record_figure(result)
    for cores in (2, 4):
        off = result.row("off", cores)
        strict = result.row("strict", cores)
        fns = result.row("fns", cores)
        # Strict collapses under Rx/Tx interference — much worse than
        # the ~20% unidirectional degradation.
        assert strict[2] < off[2] * 0.62
        # F&S recovers a large part of the loss.
        assert fns[2] > strict[2] * 1.3
        assert fns[3] > strict[3]
    # Interference is present even at one core each way.
    assert result.row("strict", 1)[2] < result.row("off", 1)[2]

"""Fig 10: extreme Rx/Tx interference (Ice Lake, both directions).

Paper's findings: with concurrent Rx and Tx data flows, Linux strict
loses up to ~80% of Rx throughput even at moderate core counts (vs
~20% without Tx data traffic), because Rx/Tx interference inflates
both the IOTLB miss rate and the cost of each miss.  F&S recovers most
of the loss by cutting the per-miss cost.  Claims live in
``repro.obs.expectations.fig10``.
"""

from conftest import assert_expectations, run_once

from repro.experiments import QUICK, fig10_rxtx


def test_fig10(benchmark, record_figure):
    result = run_once(benchmark, fig10_rxtx, scale=QUICK)
    record_figure(result)
    assert_expectations("fig10", result)

"""Fig 8: F&S keeps its locality as the IO working set grows.

Paper's findings: F&S throughput stays at the IOMMU-off level across
ring sizes (with a small CPU-side gap at 2048 — §4.4), PTcache-L3
misses stay near zero independent of working-set size (at most 0.053
per page in the paper), and locality is guaranteed per descriptor.
"""

from conftest import run_once

from repro.experiments import QUICK, fig8_fns_ring


def test_fig8(benchmark, record_figure):
    result = run_once(benchmark, fig8_fns_ring, scale=QUICK)
    record_figure(result)
    for ring in (256, 512, 1024, 2048):
        off = result.row("off", ring)
        fns = result.row("fns", ring)
        strict = result.row("strict", ring)
        # F&S close to off everywhere (a small gap is allowed at large
        # rings, where it becomes CPU-bound).
        floor = 0.85 if ring >= 2048 else 0.93
        assert fns[2] > off[2] * floor
        assert strict[2] < fns[2]
        # PTcache-L3 misses independent of working-set size.
        assert fns[7] <= 0.054
        assert fns[5] == 0 and fns[6] == 0
    # F&S locality does not degrade with ring size (p95 distance flat).
    assert result.row("fns", 2048)[10] <= result.row("fns", 256)[10] + 2
    # Linux strict L3 misses stay substantial at every ring size.
    assert result.row("strict", 2048)[7] > 0.1

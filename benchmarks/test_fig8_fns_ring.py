"""Fig 8: F&S keeps its locality as the IO working set grows.

Paper's findings: F&S throughput stays at the IOMMU-off level across
ring sizes (with a small CPU-side gap at 2048 — §4.4), PTcache-L3
misses stay near zero independent of working-set size (at most 0.053
per page in the paper), and locality is guaranteed per descriptor.
Claims live in ``repro.obs.expectations.fig8``.
"""

from conftest import assert_expectations, run_once

from repro.experiments import QUICK, fig8_fns_ring


def test_fig8(benchmark, record_figure):
    result = run_once(benchmark, fig8_fns_ring, scale=QUICK)
    record_figure(result)
    assert_expectations("fig8", result)

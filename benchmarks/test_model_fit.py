"""Section 2.2's analytic model: T = p / (l0 + M * lm).

The paper fits l0 = 65 ns and lm = 197 ns and reports the model within
~10% of measured throughput.  Here we check both directions against
the simulator: the paper's constants predict the simulator's measured
strict-mode throughput from its measured M within 20%, and re-fitting
the constants from the simulated sweep yields non-degenerate values in
the same magnitude range.
"""

from conftest import run_once

from repro.experiments import QUICK, model_fit


def test_model_fit(benchmark, record_figure):
    result = run_once(benchmark, model_fit, scale=QUICK)
    record_figure(result)
    # Paper-constant predictions within 20% at every point.
    for row in result.rows:
        assert result.raw[("error", row[0])] < 0.20
    # The refit is physically sensible (non-negative latencies, right
    # magnitude for the combined constant).
    l0, lm = result.raw["l0_ns"], result.raw["lm_ns"]
    assert l0 >= 0 and lm >= 0
    # At M ~ 1.7 the combined per-packet latency should be 300-550 ns.
    combined = l0 + 1.7 * lm
    assert 250.0 < combined < 600.0

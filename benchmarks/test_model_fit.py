"""Section 2.2's analytic model: T = p / (l0 + M * lm).

The paper fits l0 = 65 ns and lm = 197 ns and reports the model within
~10% of measured throughput.  The spec in
``repro.obs.expectations.model`` checks both directions against the
simulator: the paper's constants predict the simulator's measured
strict-mode throughput from its measured M within 20%, and re-fitting
the constants from the simulated sweep yields non-degenerate values in
the same magnitude range.
"""

from conftest import assert_expectations, run_once

from repro.experiments import QUICK, model_fit


def test_model_fit(benchmark, record_figure):
    result = run_once(benchmark, model_fit, scale=QUICK)
    record_figure(result)
    assert_expectations("model", result)

"""Fig 7: F&S near-completely eliminates memory-protection overheads.

Paper's findings reproduced here, per flow count:
(a) F&S throughput matches IOMMU-off;
(b) F&S eliminates the protection-induced packet drops;
(d) F&S brings PTcache-L1/L2 misses to zero and reduces PTcache-L3
    misses by more than an order of magnitude;
(e) F&S allocation locality is near-perfect (contiguous chunks).

Claims live in ``repro.obs.expectations.fig7``; the run also collects
registry metrics so the metric-based claims (steady-state zero PTcache
misses) evaluate here exactly as they do under ``repro reproduce``.
"""

from conftest import assert_expectations, run_once

from repro.experiments import QUICK, fig7_fns_flows
from repro.obs import MetricsRegistry, observed


def test_fig7(benchmark, record_figure):
    registry = MetricsRegistry()

    def run(scale):
        with observed(registry):
            return fig7_fns_flows(scale=scale)

    result = run_once(benchmark, run, scale=QUICK)
    record_figure(result)
    assert_expectations("fig7", result, metrics=registry.report())

"""Fig 7: F&S near-completely eliminates memory-protection overheads.

Paper's findings reproduced here, per flow count:
(a) F&S throughput matches IOMMU-off;
(b) F&S eliminates the protection-induced packet drops;
(d) F&S brings PTcache-L1/L2 misses to zero and reduces PTcache-L3
    misses by more than an order of magnitude;
(e) F&S allocation locality is near-perfect (contiguous chunks).
"""

from conftest import run_once

from repro.experiments import QUICK, fig7_fns_flows


def test_fig7(benchmark, record_figure):
    result = run_once(benchmark, fig7_fns_flows, scale=QUICK)
    record_figure(result)
    for flows in (5, 10, 20, 40):
        off = result.row("off", flows)
        strict = result.row("strict", flows)
        fns = result.row("fns", flows)
        # (a) F&S within 5% of IOMMU-off, strict clearly below.
        assert fns[2] > off[2] * 0.95
        assert strict[2] < off[2] * 0.92
        # (b) no protection-induced drops.
        assert fns[3] <= off[3] + 0.05
        # (d) zero PTcache-L1/L2 misses; L3 reduced >= 10x.
        assert fns[5] == 0 and fns[6] == 0
        assert fns[7] <= max(strict[7] / 10, 0.054)
        # Strict safety still means >= 1 IOTLB miss per page.
        assert fns[4] >= 1.0
        # (e) near-perfect locality: p95 reuse distance ~ 0-2.
        assert fns[10] <= 4

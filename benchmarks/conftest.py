"""Shared benchmark plumbing.

Each benchmark module reproduces one paper figure: it runs the figure's
sweep once (``benchmark.pedantic`` with a single round — the workload
is a deterministic simulation, not a microbenchmark to be averaged),
prints the reproduced rows/series, and writes them under
``benchmarks/_output/`` so the tables survive pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"


@pytest.fixture
def record_figure():
    """Returns a callable that prints and persists a FigureResult."""

    def _record(result):
        text = result.format()
        print(text)
        OUTPUT_DIR.mkdir(exist_ok=True)
        slug = result.figure_id.lower().replace(" ", "")
        (OUTPUT_DIR / f"{slug}.txt").write_text(text)
        return result

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure sweep exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def assert_expectations(figure_key, result, metrics=None):
    """Evaluate a figure's paper-claims spec; fail on violated claims.

    The same spec drives ``repro reproduce`` and the generated
    REPORT.md, so the benchmark suite and the report cannot disagree
    about what the paper claims or whether the reproduction meets it.
    """
    from repro.obs.expect import evaluate_figure

    evaluation = evaluate_figure(figure_key, result, metrics=metrics)
    print(evaluation.format())
    failed = evaluation.failures
    assert not failed, "violated paper claims:\n" + "\n".join(
        outcome.describe() for outcome in failed
    )
    return evaluation

"""Shared benchmark plumbing.

Each benchmark module reproduces one paper figure: it runs the figure's
sweep once (``benchmark.pedantic`` with a single round — the workload
is a deterministic simulation, not a microbenchmark to be averaged),
prints the reproduced rows/series, and writes them under
``benchmarks/_output/`` so the tables survive pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"


@pytest.fixture
def record_figure():
    """Returns a callable that prints and persists a FigureResult."""

    def _record(result):
        text = result.format()
        print(text)
        OUTPUT_DIR.mkdir(exist_ok=True)
        slug = result.figure_id.lower().replace(" ", "")
        (OUTPUT_DIR / f"{slug}.txt").write_text(text)
        return result

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure sweep exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

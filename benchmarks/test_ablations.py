"""Ablations over the modeling knobs DESIGN.md §5 calls out.

These benches probe the design decisions the paper leaves open (cache
geometries are not public; allocator state depends on uptime) and
demonstrate that the reproduction's headline results are robust across
the plausible ranges — plus the tech-report extras (DDIO on/off).
"""

from conftest import run_once

from repro.apps import run_iperf
from repro.experiments import QUICK, FigureResult
from repro.iommu import IommuConfig


def sweep_ptcache_l3(scale=QUICK):
    """The paper estimates PTcache-L3 at 64-128 entries (Fig 2e's red
    lines).  Sweep the range: strict-mode misses shrink with a bigger
    cache but never vanish (invalidations, not capacity, drive them);
    F&S stays at zero regardless."""
    result = FigureResult(
        "Ablation-L3",
        "PTcache-L3 capacity sweep (iperf, 5 flows)",
        ["mode", "l3_entries", "gbps", "m3/pg"],
    )
    for entries in (32, 64, 128):
        for mode in ("strict", "fns"):
            point = run_iperf(
                mode,
                flows=5,
                warmup_ns=scale.warmup_ns,
                measure_ns=scale.measure_ns,
                iommu=IommuConfig(ptcache_l3_entries=entries),
            )
            result.rows.append(
                [
                    mode,
                    entries,
                    round(point.rx_goodput_gbps, 1),
                    round(point.ptcache_l3_misses_per_page, 3),
                ]
            )
    return result


def sweep_aging(scale=QUICK):
    """Cold-boot vs long-uptime allocator state: the knob behind the
    paper's measured locality (DESIGN.md §5.9)."""
    result = FigureResult(
        "Ablation-aging",
        "Allocator aging sweep (strict, iperf, 5 flows)",
        ["aging_iovas", "gbps", "m3/pg", "iotlb/pg"],
    )
    for aging in (0, 16384, 65536):
        point = run_iperf(
            "strict",
            flows=5,
            warmup_ns=scale.warmup_ns,
            measure_ns=scale.measure_ns,
            allocator_aging_iovas=aging,
        )
        result.rows.append(
            [
                aging,
                round(point.rx_goodput_gbps, 1),
                round(point.ptcache_l3_misses_per_page, 3),
                round(point.iotlb_misses_per_page, 2),
            ]
        )
    return result


def sweep_walkers(scale=QUICK):
    """Concurrent page-walker count: more walkers hide miss cost."""
    result = FigureResult(
        "Ablation-walkers",
        "Walker concurrency sweep (strict, iperf, 5 flows)",
        ["walkers", "gbps", "M"],
    )
    for walkers in (1, 2, 4):
        point = run_iperf(
            "strict",
            flows=5,
            warmup_ns=scale.warmup_ns,
            measure_ns=scale.measure_ns,
            iommu=IommuConfig(walkers=walkers),
        )
        result.rows.append(
            [
                walkers,
                round(point.rx_goodput_gbps, 1),
                round(point.memory_reads_per_page, 2),
            ]
        )
    return result


def sweep_ddio(scale=QUICK):
    """Tech-report extra: DDIO on/off.  The paper found DDIO only
    changes CPU utilization, not IOMMU cache behaviour."""
    result = FigureResult(
        "Ablation-DDIO",
        "DDIO on/off (strict, iperf, 5 flows)",
        ["ddio", "gbps", "M", "max_cpu%"],
    )
    for ddio in (False, True):
        point = run_iperf(
            "strict",
            flows=5,
            warmup_ns=scale.warmup_ns,
            measure_ns=scale.measure_ns,
            enable_ddio=ddio,
        )
        result.rows.append(
            [
                "on" if ddio else "off",
                round(point.rx_goodput_gbps, 1),
                round(point.memory_reads_per_page, 2),
                round(point.max_core_utilization * 100, 1),
            ]
        )
    return result


def test_ptcache_l3_capacity(benchmark, record_figure):
    result = run_once(benchmark, sweep_ptcache_l3)
    record_figure(result)
    strict = {row[1]: row for row in result.rows if row[0] == "strict"}
    fns = {row[1]: row for row in result.rows if row[0] == "fns"}
    # Bigger caches help strict but never eliminate its misses.
    assert strict[32][3] >= strict[128][3]
    assert strict[128][3] > 0.05
    # F&S is insensitive to the unknown geometry — the reproduction's
    # key claims do not depend on the paper's 64-vs-128 uncertainty.
    for entries in (32, 64, 128):
        assert fns[entries][3] < 0.01
        assert fns[entries][2] > strict[entries][2]


def test_allocator_aging(benchmark, record_figure):
    result = run_once(benchmark, sweep_aging)
    record_figure(result)
    by_aging = {row[0]: row for row in result.rows}
    # A cold-booted allocator shows much better locality (fewer L3
    # misses) than an aged one — the uptime dependence DESIGN.md
    # documents.
    assert by_aging[0][2] < by_aging[16384][2]
    assert by_aging[65536][2] >= by_aging[16384][2] * 0.8


def test_walker_concurrency(benchmark, record_figure):
    result = run_once(benchmark, sweep_walkers)
    record_figure(result)
    by_walkers = {row[0]: row for row in result.rows}
    # Fewer walkers -> more serialization -> lower throughput.
    assert by_walkers[1][1] <= by_walkers[4][1] + 1.0


def test_ddio(benchmark, record_figure):
    result = run_once(benchmark, sweep_ddio)
    record_figure(result)
    off_row, on_row = result.rows
    # DDIO does not change IOMMU cache behaviour (paper tech report)...
    assert abs(on_row[2] - off_row[2]) < 0.3
    # ... but reduces CPU (data-touch) cost.
    assert on_row[3] < off_row[3]

#!/usr/bin/env python3
"""Quickstart: compare IO memory protection modes on an iperf workload.

Runs the paper's default microbenchmark setup (Cascade Lake, 100 Gbps,
4 KB MTU, 5 cores, one flow per core) under four protection modes and
prints the headline comparison: Linux strict protection costs real
throughput; F&S provides the same strict safety at IOMMU-off speed by
making each (unavoidable) IOTLB miss cheap.

Run:  python examples/quickstart.py
"""

from repro import run_iperf
from repro.analysis import format_table


def main() -> None:
    rows = []
    for mode in ("off", "strict", "deferred", "fns"):
        result = run_iperf(mode, flows=5, warmup_ns=3e6, measure_ns=8e6)
        rows.append(
            [
                mode,
                f"{result.rx_goodput_gbps:.1f}",
                f"{result.drop_fraction * 100:.2f}",
                f"{result.iotlb_misses_per_page:.2f}",
                f"{result.ptcache_l3_misses_per_page:.3f}",
                f"{result.memory_reads_per_page:.2f}",
                "yes" if mode in ("strict", "fns") else "no",
            ]
        )
    print("iperf, 5 flows, 100 Gbps, 4 KB MTU (paper's default setup)\n")
    print(
        format_table(
            [
                "mode",
                "goodput_gbps",
                "drop%",
                "iotlb/page",
                "ptcache-L3/page",
                "mem reads/page (M)",
                "strict safety",
            ],
            rows,
        )
    )
    print(
        "\nF&S keeps the compulsory ~1 IOTLB miss per page (strict"
        " safety requires it)\nbut drives the page-walk cost toward one"
        " memory read by keeping the IO page\ntable caches hot —"
        " matching IOMMU-off throughput."
    )


if __name__ == "__main__":
    main()

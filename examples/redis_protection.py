#!/usr/bin/env python3
"""Redis under IO memory protection — the paper's Fig 11a + Fig 12.

Part 1 sweeps SET value sizes under three protection modes, showing
that Linux strict protection costs Redis 38-70% of its throughput
while F&S serves at IOMMU-off speed with the same strict safety.

Part 2 runs the ablation at 8 KB values: enabling only PTcache
preservation (Linux+A) or only contiguous-IOVA+batched-invalidation
(Linux+B) each helps, but only the combination (F&S) recovers the
throughput — each idea is necessary.

Run:  python examples/redis_protection.py
"""

from repro import run_redis
from repro.analysis import format_table


def main() -> None:
    print("Part 1: Redis 100% SET throughput (8 cores, 9 K MTU)\n")
    rows = []
    for value_bytes in (4096, 32768, 131072):
        for mode in ("off", "strict", "fns"):
            result = run_redis(
                mode, value_bytes, warmup_ns=2e6, measure_ns=6e6
            )
            rows.append(
                [
                    f"{value_bytes // 1024}KB",
                    mode,
                    f"{result.goodput_gbps:.1f}",
                    f"{result.requests_per_second / 1000:.0f}",
                ]
            )
    print(format_table(["value", "mode", "gbps", "kreq/s"], rows))

    print("\nPart 2: ablation at 8 KB values (Fig 12)\n")
    rows = []
    for mode in ("strict", "linux+A", "linux+B", "fns", "off"):
        result = run_redis(mode, 8192, warmup_ns=2e6, measure_ns=6e6)
        rows.append(
            [
                mode,
                f"{result.goodput_gbps:.1f}",
                f"{result.ptcache_l3_misses_per_page:.3f}",
            ]
        )
    print(format_table(["mode", "gbps", "PTcache-L3 misses/page"], rows))
    print(
        "\nA = preserve PTcaches (fixes invalidation-driven misses);"
        "\nB = contiguous IOVAs + batched invalidation (fixes locality"
        " and CPU cost);\nonly A+B together eliminate the overheads."
    )


if __name__ == "__main__":
    main()

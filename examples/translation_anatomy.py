#!/usr/bin/env python3
"""Anatomy of an address translation — and of the F&S insight.

Drives the IOMMU model directly (no network) to show exactly where the
paper's memory-read counts come from:

1. a cold translation walks all 4 IO page table levels;
2. a warm IOTLB entry is free;
3. strict safety forces the IOTLB entry to die with every unmap, so
   the *next* access misses — that is unavoidable;
4. with Linux's invalidation policy the PTcaches die too and the miss
   costs 4 reads again; with F&S's IOTLB-only invalidation the miss
   costs a single PT-L4 read;
5. the deferred mode's stale-entry safety hole, demonstrated.

Run:  python examples/translation_anatomy.py
"""

from repro.iommu import DmaFault, Iommu, IommuConfig
from repro.iommu.addr import PAGE_SIZE


def show(step: str, detail: str) -> None:
    print(f"  {step:58s} {detail}")


def main() -> None:
    iommu = Iommu(IommuConfig(check_stale_hits=True))
    base = 0x7F00_0000_0000  # some IOVA region
    for page in range(64):
        iommu.map_page(base + page * PAGE_SIZE, frame=1000 + page)

    print("A descriptor's worth of mappings installed (64 pages).\n")

    result = iommu.translate(base)
    show(
        "1. cold translation (all caches empty)",
        f"{result.memory_reads} memory reads (full 4-level walk)",
    )

    result = iommu.translate(base)
    show(
        "2. repeat translation",
        f"IOTLB hit, {result.memory_reads} reads",
    )

    result = iommu.translate(base + PAGE_SIZE)
    show(
        "3. neighbouring page (PTcache-L3 now warm)",
        f"{result.memory_reads} read (only the PT-L4 entry)",
    )

    # --- Linux strict: unmap + invalidate everything -------------------
    iommu.unmap_range(base, PAGE_SIZE)
    iommu.invalidation_queue.invalidate_range(
        base, PAGE_SIZE, preserve_ptcache=False
    )
    try:
        iommu.translate(base)
    except DmaFault:
        show("4. device access after strict unmap", "DMA FAULT (safe)")
    result = iommu.translate(base + 2 * PAGE_SIZE)
    show(
        "5. next page after Linux invalidation",
        f"{result.memory_reads} reads (PTcaches were dropped too)",
    )

    # --- F&S: IOTLB-only invalidation ----------------------------------
    iommu.unmap_range(base + PAGE_SIZE, PAGE_SIZE)
    iommu.invalidation_queue.invalidate_range(
        base + PAGE_SIZE, PAGE_SIZE, preserve_ptcache=True
    )
    try:
        iommu.translate(base + PAGE_SIZE)
    except DmaFault:
        show("6. device access after F&S unmap", "DMA FAULT (equally safe)")
    result = iommu.translate(base + 3 * PAGE_SIZE)
    show(
        "7. next page after F&S invalidation",
        f"{result.memory_reads} read (PTcaches preserved)",
    )

    # --- Deferred: the weaker property ---------------------------------
    iommu.translate(base + 4 * PAGE_SIZE)  # device caches the entry
    iommu.unmap_range(base + 4 * PAGE_SIZE, PAGE_SIZE)  # no invalidation!
    result = iommu.translate(base + 4 * PAGE_SIZE)
    show(
        "8. device access after *deferred* unmap",
        f"STALE IOTLB HIT (frame {result.frame}) — the safety hole",
    )

    print(
        "\nThe F&S thesis in two numbers: the unavoidable per-page miss"
        f" costs\n{4} reads under Linux's invalidation policy and"
        f" {1} read under F&S's."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Tail latency of a latency-sensitive RPC service under colocation.

Reproduces the paper's Fig 9 scenario interactively: a netperf-style
request/response application shares a server with throughput-bound
iperf traffic (as in multi-tenant deployments).  The RPC gets its own
core — the interference is purely in the NIC, PCIe, and IOMMU.

With Linux strict protection, address translation inflates per-DMA
latency; the NIC buffer builds up (P99 = queueing) and overflows
(P99.9+ = retransmission timeouts).  F&S removes the translation cost
and with it the tail inflation.

Run:  python examples/rpc_tail_latency.py
"""

from repro import run_netperf_rpc
from repro.analysis import format_table


def main() -> None:
    rpc_bytes = 4096
    rows = []
    for mode in ("off", "strict", "fns"):
        result = run_netperf_rpc(
            mode, rpc_bytes, warmup_ns=3e6, measure_ns=25e6
        )
        us = {k: v / 1000 for k, v in result.percentiles_ns.items()}
        rows.append(
            [
                mode,
                result.rpc_count,
                f"{us.get(50.0, 0):.0f}",
                f"{us.get(99.0, 0):.0f}",
                f"{us.get(99.9, 0):.0f}",
                f"{result.background_gbps:.0f}",
            ]
        )
    print(f"netperf-style {rpc_bytes} B RPCs colocated with 5 iperf flows\n")
    print(
        format_table(
            ["mode", "rpcs", "p50_us", "p99_us", "p99.9_us", "iperf_gbps"],
            rows,
        )
    )
    print(
        "\nStrict-mode P99.9 jumps to retransmission-timeout territory"
        " (milliseconds);\nF&S stays within a small factor of the"
        " IOMMU-off baseline at every percentile."
    )


if __name__ == "__main__":
    main()

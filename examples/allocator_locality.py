#!/usr/bin/env python3
"""Why IOVA allocation order decides PTcache-L3 hit rates.

Reproduces the paper's Fig 2e/7e methodology standalone: drive the
Linux-style caching IOVA allocator and the F&S chunk allocator through
the same Rx/Tx churn pattern and compare the LRU reuse distances of
their PTcache-L3 entries.  A reuse distance above the cache size
(estimated 64-128 entries) means the entry is evicted before reuse —
an L3 miss per page walk.

Run:  python examples/allocator_locality.py
"""

from collections import deque

from repro.analysis import format_table, summarize_locality
from repro.iova import (
    CachingIovaAllocator,
    ChunkIovaAllocator,
)


def age(allocator, cores: int, iovas: int = 60000) -> None:
    """Reproduce long-uptime allocator state: magazines and depot hold
    shuffled addresses spanning a wide extent (see DESIGN.md §5)."""
    from repro.sim import SeededRng

    rng = SeededRng(7, "example-aging")
    parked = [allocator.alloc(1, cpu=i % cores) for i in range(iovas)]
    rng.shuffle(parked)
    for iova in parked:
        allocator.free(iova, 1, cpu=rng.randint(0, cores - 1))
    allocator.trace.clear()


def churn_linux(cores: int = 5, rounds: int = 400) -> list:
    """Per-page allocations with descriptor-batch frees and lagging
    Tx (ACK) frees — the Linux datapath's allocation pattern."""
    trace: list[tuple[int, int]] = []
    allocator = CachingIovaAllocator(num_cpus=cores, trace=trace)
    age(allocator, cores)
    rings = [
        deque(allocator.alloc(1, cpu=core) for _ in range(512))
        for core in range(cores)
    ]
    tx_in_flight: list[deque] = [deque() for _ in range(cores)]
    for round_index in range(rounds):
        core = round_index % cores
        ring = rings[core]
        for _ in range(64):  # descriptor completion
            allocator.free(ring.popleft(), 1, cpu=core)
        for _ in range(8):  # ACK bursts, freed rounds later
            tx_in_flight[core].append(allocator.alloc(1, cpu=core))
        while len(tx_in_flight[core]) > 32:
            allocator.free(tx_in_flight[core].popleft(), 1, cpu=core)
        for _ in range(64):  # replenish
            ring.append(allocator.alloc(1, cpu=core))
    return trace


def churn_fns(cores: int = 5, rounds: int = 400) -> list:
    """The same churn with F&S descriptor-sized contiguous chunks."""
    trace: list[tuple[int, int]] = []
    base = CachingIovaAllocator(num_cpus=cores, trace=trace)
    chunks = ChunkIovaAllocator(base, num_cpus=cores, chunk_pages=64)
    rings = [
        deque(chunks.alloc_chunk(cpu=core) for _ in range(8))
        for core in range(cores)
    ]
    for round_index in range(rounds):
        core = round_index % cores
        ring = rings[core]
        old = ring.popleft()
        chunks.release_chunk(old, cpu=core)
        ring.append(chunks.alloc_chunk(cpu=core))
    return trace


def main() -> None:
    rows = []
    for name, trace in (("linux", churn_linux()), ("fns", churn_fns())):
        summary = summarize_locality(trace[-20000:])
        rows.append(
            [
                name,
                summary.accesses,
                f"{summary.mean_distance:.1f}",
                f"{summary.p95_distance:.0f}",
                f"{summary.fraction_above_64 * 100:.1f}",
                f"{summary.fraction_above_128 * 100:.1f}",
            ]
        )
    print("PTcache-L3 reuse distances of the IOVA allocation stream\n")
    print(
        format_table(
            ["allocator", "pages", "mean", "p95", ">64 (%)", ">128 (%)"],
            rows,
        )
    )
    print(
        "\nF&S's contiguous per-descriptor chunks keep nearly every"
        " access at distance 0\n(same 2 MB region as the previous"
        " page); the Linux per-page pattern scatters."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's §5 future work, runnable: F&S + 2 MB hugepages.

Strict safety pins the IOTLB miss *count* at one per mapping lifetime;
F&S makes each miss cheap.  The remaining lever the paper points to is
making each mapping *bigger*: a 2 MB hugepage descriptor is mapped with
a single PT-L3 leaf, translated by one (huge-)IOTLB entry, and unmapped
plus invalidated as one unit when the descriptor completes — strict
safety at 2 MB descriptor granularity, with the compulsory miss rate
divided by 512.

Run:  python examples/hugepage_future_work.py
"""

from repro import run_iperf
from repro.analysis import format_table


def main() -> None:
    rows = []
    for mode in ("strict", "fns", "fns-huge", "off"):
        result = run_iperf(
            mode,
            flows=5,
            warmup_ns=2e6,
            measure_ns=6e6,
            ring_size_packets=1024,
        )
        rows.append(
            [
                mode,
                f"{result.rx_goodput_gbps:.1f}",
                f"{result.iotlb_misses_per_page:.3f}",
                f"{result.memory_reads_per_page:.3f}",
                f"{result.invalidation_requests / result.rx_data_pages:.3f}",
                "strict" if mode in ("strict", "fns", "fns-huge") else "none",
            ]
        )
    print("iperf, 5 flows, 1024-packet rings\n")
    print(
        format_table(
            [
                "mode",
                "gbps",
                "iotlb miss/page",
                "mem reads/page",
                "inval req/page",
                "safety",
            ],
            rows,
        )
    )
    print(
        "\nPlain F&S cannot go below ~1 IOTLB miss per page — strict"
        " safety forbids\nreusing a dead translation.  Hugepage"
        " descriptors shrink 'per page' to\n'per 512 pages': the miss"
        " floor itself drops by two orders of magnitude."
    )


if __name__ == "__main__":
    main()

"""The Linux deferred ("lazy") protection mode.

Deferred mode unmaps IOVAs from the page table immediately but *defers*
all cache invalidation: unmapped IOVAs accumulate until a threshold
(Linux: 250 pending ranges or a 10 ms timer), then a single global
IOTLB + PTcache flush retires the batch and the IOVAs are finally freed
for reuse.

The performance upside is fewer invalidation stalls; the safety
downside — which :meth:`device_can_access` and the safety test suite
expose — is that for the whole deferral window a malicious or buggy
device can keep using the stale IOTLB entry for an unmapped (and
possibly reallocated) page.  This is the weaker property the paper's
related work targets and F&S refuses to accept.
"""

from __future__ import annotations

from typing import Optional

from ..iommu import Iommu
from ..iommu.addr import PAGE_SIZE
from ..iova.caching import CachingIovaAllocator
from ..mem.physmem import PhysicalMemory
from ..nic.descriptor import PageSlot, RxDescriptor
from .base import DriverCosts, ProtectionDriver, TxMapping

__all__ = ["DeferredDriver"]


class DeferredDriver(ProtectionDriver):
    """Linux deferred mode: batched global flushes, stale-entry window."""

    name = "linux-deferred"
    strict_safety = False

    def __init__(
        self,
        iommu: Iommu,
        physmem: PhysicalMemory,
        num_cpus: int,
        flush_threshold: int = 250,
        costs: Optional[DriverCosts] = None,
        allocation_trace: Optional[list[tuple[int, int]]] = None,
    ) -> None:
        super().__init__()
        self.iommu = iommu
        self.physmem = physmem
        self.costs = costs or DriverCosts()
        self.flush_threshold = flush_threshold
        # Hardening (repro.faults): when a flush wait comes back slower
        # than this budget, the invalidation fabric is degraded and the
        # deferral window is halved — bounding how much stale-entry
        # exposure can pile up behind a slow flush.  Healthy flushes
        # grow it back toward the configured threshold.
        self.initial_flush_threshold = flush_threshold
        self.min_flush_threshold = max(1, flush_threshold // 8)
        self.flush_cost_budget_ns = (
            1.5 * iommu.invalidation_queue.cpu_cost_ns
        )
        self.allocator = CachingIovaAllocator(
            num_cpus=num_cpus, trace=allocation_trace
        )
        # IOVAs unmapped but not yet flushed: (iova, pages, core).
        self._deferred: list[tuple[int, int, int]] = []
        self.flushes = 0
        # Make the IOMMU detect stale-entry use so experiments can
        # report the safety violations this mode admits (also disables
        # the translation fast path, which would skip the check).
        self.iommu.enable_stale_hit_checks()
        self.stale_translations = 0

    # ------------------------------------------------------------------
    def make_rx_descriptor(self, core: int, pages: int):
        cost = 0.0
        slots = []
        for _ in range(pages):
            frame = self.physmem.alloc_frame()
            iova = self.allocator.alloc(1, cpu=core)
            self.iommu.map_page(iova, frame)
            slots.append(PageSlot(iova=iova, frame=frame))
        cost += pages * self.costs.map_ns
        descriptor = RxDescriptor(slots=slots, core=core)
        self._notify_rx_mapped(descriptor)
        return descriptor, cost

    def retire_rx_descriptor(self, descriptor: RxDescriptor, core: int) -> float:
        self._notify_rx_retired(descriptor)
        cost = 0.0
        for slot in descriptor.slots:
            self.iommu.unmap_range(slot.iova, PAGE_SIZE)
            cost += self.costs.unmap_ns
            self._defer(slot.iova, 1, core)
            self.physmem.free_frame(slot.frame)
        cost += self._maybe_flush()
        return cost

    def map_tx_page(self, core: int):
        frame = self.physmem.alloc_frame()
        iova = self.allocator.alloc(1, cpu=core)
        self.iommu.map_page(iova, frame)
        mapping = TxMapping(iova=iova, frame=frame)
        self._notify_tx_mapped(mapping)
        return mapping, self.costs.map_ns

    def retire_tx_pages(self, mappings, core: int) -> float:
        self._notify_tx_retired(mappings)
        cost = 0.0
        for mapping in mappings:
            self.iommu.unmap_range(mapping.iova, PAGE_SIZE)
            cost += self.costs.unmap_ns
            self._defer(mapping.iova, 1, core)
            self.physmem.free_frame(mapping.frame)
        cost += self._maybe_flush()
        return cost

    # ------------------------------------------------------------------
    def _defer(self, iova: int, pages: int, core: int) -> None:
        # The IOVA is NOT freed yet: reuse before the flush would hand
        # a live stale translation to a different buffer.
        self._deferred.append((iova, pages, core))

    def _maybe_flush(self) -> float:
        if len(self._deferred) < self.flush_threshold:
            return 0.0
        return self.flush()

    def flush(self) -> float:
        """Global invalidation; frees all deferred IOVAs.

        Uses the register-based flush path, which cannot lose its
        completion (only arrive late) — so IOVAs are freed strictly
        *after* a confirmed flush, even under injected faults.  A flush
        that blows the cost budget shrinks the deferral window
        (graceful degradation: more flushes, shorter stale windows);
        healthy flushes restore it.
        """
        result = self.iommu.invalidation_queue.submit_flush()
        if result.cost_ns > self.flush_cost_budget_ns:
            if self.flush_threshold > self.min_flush_threshold:
                self.flush_threshold = max(
                    self.min_flush_threshold, self.flush_threshold // 2
                )
                self.degraded_flushes += 1
        elif self.flush_threshold < self.initial_flush_threshold:
            self.flush_threshold = min(
                self.initial_flush_threshold, self.flush_threshold * 2
            )
        for iova, pages, core in self._deferred:
            self.allocator.free(iova, pages, cpu=core)
        self._deferred.clear()
        self.flushes += 1
        return result.cost_ns

    # ------------------------------------------------------------------
    def translate(self, iova: int, source: str) -> int:
        result = self.iommu.translate(iova, source)
        if result.stale:
            self.stale_translations += 1
        return result.memory_reads

    def translate_for_dma_burst(
        self, iova: int, count: int, source: str
    ) -> Optional[int]:
        # Stale-hit checking keeps the IOMMU fast path off, so the base
        # ``burst_ready`` gate never fires here; batch explicitly.
        # Within one burst no event runs between TLPs, so the page
        # table cannot change: every TLP of the page shares the first
        # TLP's staleness, and calls 2..N are plain IOTLB hits whose
        # whole effect is the four hit counters plus the per-call stale
        # tally this driver keeps.
        iommu = self.iommu
        if (
            iommu.monitor is not None
            or iommu.faults is not None
            or iommu.fault_queue is not None
        ):
            return None
        reads = self.translate(iova, source)
        if count > 1:
            stats = iommu.stats
            stats.translations += count - 1
            by_source = stats.translations_by_source
            by_source[source] = by_source.get(source, 0) + count - 1
            stats.iotlb_hits += count - 1
            iommu.iotlb.hits += count - 1
            if not iommu.page_table.is_mapped(iova):
                self.stale_translations += count - 1
        return reads

    def device_can_access(self, iova: int) -> bool:
        # The stale IOTLB entry keeps the door open until the flush.
        return self.iommu.iotlb.contains(iova) or self.iommu.page_table.is_mapped(iova)

    @property
    def pending_invalidations(self) -> int:
        return len(self._deferred)

"""IOMMU-off baseline: the device uses physical addresses directly.

No translation, no protection: the paper's "IOMMU disabled" line.  The
device can access *all* of physical memory at all times, which
:meth:`device_can_access` reports honestly — this is the unsafe
configuration everything else is compared against.
"""

from __future__ import annotations

from ..mem.physmem import PAGE_SHIFT, PhysicalMemory
from ..nic.descriptor import PageSlot, RxDescriptor
from .base import ProtectionDriver, TxMapping

__all__ = ["PassthroughDriver"]


class PassthroughDriver(ProtectionDriver):
    """No IOMMU: DMA addresses are physical addresses."""

    name = "iommu-off"
    strict_safety = False

    def __init__(self, physmem: PhysicalMemory) -> None:
        super().__init__()
        self.physmem = physmem

    def make_rx_descriptor(self, core: int, pages: int):
        slots = []
        for _ in range(pages):
            frame = self.physmem.alloc_frame()
            slots.append(PageSlot(iova=frame << PAGE_SHIFT, frame=frame))
        descriptor = RxDescriptor(slots=slots, core=core)
        self._notify_rx_mapped(descriptor)
        return descriptor, 0.0

    def retire_rx_descriptor(self, descriptor: RxDescriptor, core: int) -> float:
        self._notify_rx_retired(descriptor)
        for slot in descriptor.slots:
            self.physmem.free_frame(slot.frame)
        return 0.0

    def map_tx_page(self, core: int):
        frame = self.physmem.alloc_frame()
        mapping = TxMapping(iova=frame << PAGE_SHIFT, frame=frame)
        self._notify_tx_mapped(mapping)
        return mapping, 0.0

    def retire_tx_pages(self, mappings, core: int) -> float:
        self._notify_tx_retired(mappings)
        for mapping in mappings:
            self.physmem.free_frame(mapping.frame)
        return 0.0

    def translate(self, iova: int, source: str) -> int:
        return 0

    def translate_for_dma_burst(self, iova, count, source):
        # No IOMMU at all: the scalar loop is `count` pure no-ops, so
        # the whole burst collapses to "zero reads, never aborted".
        return 0

    def device_can_access(self, iova: int) -> bool:
        # Without an IOMMU the device can always reach host memory.
        return True

"""Protection-driver interface.

A protection driver is the OS-side policy layer between the NIC driver
and the IOMMU: it decides how IOVAs are allocated, how pages are mapped
and unmapped, and what gets invalidated when.  The four safety modes of
the paper are four drivers behind one interface:

* :class:`~repro.protection.passthrough.PassthroughDriver` — IOMMU off;
* :class:`~repro.protection.strict.StrictFamilyDriver` — Linux strict
  mode, with F&S's three ideas as independent flags (giving Linux
  strict, F&S, and the Fig 12 ablation points Linux+A / Linux+B);
* :class:`~repro.protection.deferred.DeferredDriver` — Linux deferred
  mode (weaker safety, shown by the safety tests to admit stale
  accesses).

All mutating methods return the **CPU cost in ns** they impose on the
calling core (allocator ops, map/unmap, invalidation-queue waits); the
host model charges this to the core's budget, which is how per-core
throughput effects (Fig 8a's CPU-bound gap, batched invalidation's CPU
saving) appear.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from ..iommu.batch import burst_ready, replay_hits
from ..iommu.invalidation import InvalidationStatus
from ..nic.descriptor import RxDescriptor
from ..obs.hooks import current_registry
from ..verify.events import BufferRegisteredEvent, BufferRetiredEvent
from ..verify.hooks import current_monitor

if TYPE_CHECKING:  # pragma: no cover
    from ..iommu.invalidation import InvalidationQueue

__all__ = ["ProtectionDriver", "TxMapping", "DriverCosts"]


@dataclass(frozen=True)
class TxMapping:
    """One mapped Tx page (a socket buffer handed to the NIC)."""

    iova: int
    frame: int
    cookie: Any = None  # driver-private (e.g. the F&S chunk)


@dataclass
class DriverCosts:
    """CPU cost constants for protection operations (ns per op).

    Values follow the magnitudes reported for Linux dma_map/unmap and
    queued-invalidation waits [Peleg et al. 2015; Malka et al. 2015].
    """

    map_ns: float = 120.0
    unmap_ns: float = 150.0


class ProtectionDriver(ABC):
    """OS policy for IO memory protection (one instance per host)."""

    #: short mode name used in experiment tables
    name: str = "base"
    #: whether the mode upholds the strict safety property
    strict_safety: bool = False
    #: retry budget before an invalidation wait degrades to a global
    #: flush; the exponential backoff base is the spin-wait between
    #: retries.  Both are CPU cost, charged to the retiring core.
    max_invalidation_retries: int = 3
    invalidation_backoff_ns: float = 400.0

    def __init__(self) -> None:
        # Safety-invariant monitor (repro.verify); None in normal runs.
        # Subclasses must call ``super().__init__()`` so the monitor can
        # track which DMA buffers are live (invariant (d)).
        self.monitor = current_monitor()
        # Hardening accounting (repro.faults): retried invalidation
        # waits and last-resort global flushes.
        self.invalidation_retries = 0
        self.degraded_flushes = 0
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope("driver")
            scope.counter(
                "invalidation_retries", lambda: self.invalidation_retries
            )
            scope.counter(
                "degraded_flushes", lambda: self.degraded_flushes
            )

    # ------------------------------------------------------------------
    # Hardened invalidation (timeout-retry-backoff + degradation)
    # ------------------------------------------------------------------
    def _invalidate_robust(
        self,
        queue: "InvalidationQueue",
        iova: int,
        length: int,
        preserve_ptcache: bool,
        ptcache_only: bool = False,
    ) -> float:
        """Invalidate a range and *confirm* it, whatever the fabric does.

        Submits through the checked queue interface; on a dropped or
        partial completion, retries the unconfirmed suffix with
        exponential backoff.  When the retry budget is exhausted, the
        preservation optimisation is abandoned and a register-based
        global flush (full IOTLB + PTcache invalidation) closes the
        window — graceful degradation: throughput is lost, safety is
        not.  Returns the total CPU cost in ns.
        """
        cost = 0.0
        remaining_iova = iova
        remaining = length
        for attempt in range(self.max_invalidation_retries + 1):
            result = queue.submit_invalidation(
                remaining_iova,
                remaining,
                preserve_ptcache=preserve_ptcache,
                ptcache_only=ptcache_only,
            )
            cost += result.cost_ns
            if result.status is InvalidationStatus.COMPLETED:
                return cost
            # Advance over the confirmed prefix and spin before the
            # retry (exponential backoff, charged as CPU time).
            remaining_iova += result.completed_length
            remaining -= result.completed_length
            self.invalidation_retries += 1
            cost += self.invalidation_backoff_ns * (2 ** attempt)
            if self.obs is not None and self.obs.tracer is not None:
                self.obs.tracer.instant(
                    "invalidation.retry",
                    "driver",
                    iova=hex(remaining_iova),
                    attempt=attempt + 1,
                )
        self.degraded_flushes += 1
        cost += queue.flush_all()
        if self.obs is not None and self.obs.tracer is not None:
            self.obs.tracer.instant(
                "invalidation.degraded_flush", "driver", iova=hex(iova)
            )
        return cost

    # ------------------------------------------------------------------
    # Monitor notifications (no-ops when unmonitored)
    # ------------------------------------------------------------------
    def _monitor_owner(self) -> int:
        # Buffer events must share a scope with the TranslateEvents they
        # bound (invariant (d)), which the IOMMU emits under the id of
        # its IOTLB.  Drivers without an IOMMU scope to themselves.
        iommu = getattr(self, "iommu", None)
        return id(iommu.iotlb) if iommu is not None else id(self)

    def _notify_rx_mapped(self, descriptor: RxDescriptor) -> None:
        if self.monitor is not None:
            self.monitor.record(
                BufferRegisteredEvent(
                    "rx",
                    tuple(slot.iova for slot in descriptor.slots),
                    handle=descriptor.descriptor_id,
                ),
                owner=self._monitor_owner(),
            )

    def _notify_rx_retired(self, descriptor: RxDescriptor) -> None:
        if self.monitor is not None:
            self.monitor.record(
                BufferRetiredEvent(
                    "rx",
                    tuple(slot.iova for slot in descriptor.slots),
                    handle=descriptor.descriptor_id,
                ),
                owner=self._monitor_owner(),
            )

    def _notify_tx_mapped(self, mapping: "TxMapping") -> None:
        if self.monitor is not None:
            self.monitor.record(
                BufferRegisteredEvent("tx", (mapping.iova,)),
                owner=self._monitor_owner(),
            )

    def _notify_tx_retired(self, mappings: list["TxMapping"]) -> None:
        if self.monitor is not None:
            self.monitor.record(
                BufferRetiredEvent(
                    "tx", tuple(mapping.iova for mapping in mappings)
                ),
                owner=self._monitor_owner(),
            )

    @abstractmethod
    def make_rx_descriptor(
        self, core: int, pages: int
    ) -> tuple[RxDescriptor, float]:
        """Build and map a fresh Rx descriptor; returns (desc, cpu_ns)."""

    @abstractmethod
    def retire_rx_descriptor(self, descriptor: RxDescriptor, core: int) -> float:
        """Unmap/invalidate/free a consumed descriptor; returns cpu_ns."""

    @abstractmethod
    def map_tx_page(self, core: int) -> tuple[TxMapping, float]:
        """Map one Tx socket-buffer page; returns (mapping, cpu_ns)."""

    @abstractmethod
    def retire_tx_pages(self, mappings: list[TxMapping], core: int) -> float:
        """Unmap/invalidate/free completed Tx pages; returns cpu_ns."""

    @abstractmethod
    def translate(self, iova: int, source: str) -> int:
        """Translate one PCIe transaction; returns page-walk memory reads."""

    def translate_for_dma(self, iova: int, source: str) -> tuple[int, bool]:
        """Translate and report the hard-fault outcome.

        Returns ``(memory_reads, aborted)``.  ``aborted`` is only ever
        ``True`` when the IOMMU has a fault queue attached (the
        hard-fault path); without one an unmapped access raises
        ``DmaFault`` from :meth:`translate` exactly as before.  The
        out-of-band ``consume_abort`` flag lets every driver keep its
        plain ``int``-returning ``translate`` override.
        """
        reads = self.translate(iova, source)
        iommu = getattr(self, "iommu", None)
        if iommu is not None and iommu.fault_queue is not None:
            return reads, iommu.consume_abort()
        return reads, False

    def translate_for_dma_burst(
        self, iova: int, count: int, source: str
    ) -> Optional[int]:
        """Translate a same-page burst of ``count`` TLPs in one call.

        The datapath's inner loop translates ``count`` consecutive
        ``max_payload``-sized TLPs of one page back to back, with no
        simulator event in between.  When the IOMMU's one-entry fast
        path will replay calls 2..N anyway (:func:`~repro.iommu.batch.
        burst_ready`), this translates the first TLP normally — misses,
        walks and ``DmaFault`` behave exactly as the scalar loop's
        first iteration — and applies the remaining N-1 replays as
        counter arithmetic (:func:`~repro.iommu.batch.replay_hits`).

        Returns the first TLP's page-walk read count (later TLPs are
        hits and read nothing), or ``None`` when the burst cannot be
        batched — the caller must then run the scalar
        :meth:`translate_for_dma` loop, which handles monitors, fault
        injection, per-call abort outcomes and stale-hit checking.
        """
        iommu = getattr(self, "iommu", None)
        if iommu is None or not burst_ready(iommu):
            return None
        reads = self.translate(iova, source)
        if count > 1:
            replay_hits(iommu, count - 1, source)
        return reads

    # ------------------------------------------------------------------
    # Hard-fault recovery
    # ------------------------------------------------------------------
    def reset_recover(self, descriptors: list[RxDescriptor]) -> float:
        """Unwedge the invalidation path and retire torn-down buffers.

        The device-reset protocol's driver half, run while the NIC is
        quiesced: first re-arm the invalidation queue (teardown +
        re-init clears a wedged queue — nothing below can confirm an
        invalidation until this happens), then unmap every outstanding
        descriptor through the hardened retire path, and finish with a
        global flush as the re-arm barrier so no stale translation
        survives into the rebuilt rings.  Returns the total CPU cost.

        Mapping fresh descriptors is deliberately *not* done here — the
        host rebuilds rings afterwards — so recovery can never race its
        own cleanup (and analyzer rule REPRO105 holds by construction).
        """
        queue = self._recovery_queue()
        cost = 0.0
        dropped_before = 0
        if queue is not None:
            cost += queue.rearm()
            dropped_before = queue.dropped_completions
        for descriptor in descriptors:
            cost += self.retire_rx_descriptor(
                descriptor, descriptor.core
            )
        if queue is not None:
            if queue.dropped_completions > dropped_before:
                # The queue dropped completions *during* the retire
                # phase — it wedged after the re-arm above (a fault
                # window can open mid-recovery).  Re-arm again before
                # resuming: the closing flush keeps safety either way,
                # but a queue left wedged here would go undetected if
                # the post-reset RTO stall outlives the run.
                cost += queue.rearm()
            cost += queue.flush_all()
        return cost

    def _recovery_queue(self) -> "InvalidationQueue | None":
        """The invalidation queue to re-arm, if this driver has one."""
        iommu = getattr(self, "iommu", None)
        if iommu is None:
            return None
        return iommu.invalidation_queue

    def device_can_access(self, iova: int) -> bool:
        """Whether the device could still reach ``iova`` right now.

        Used by the safety property tests: for strict modes this must
        be ``False`` immediately after the retire call returns.
        """
        return False

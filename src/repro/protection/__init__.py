"""Protection drivers: IOMMU-off, Linux strict/deferred, F&S + ablations."""

from .base import DriverCosts, ProtectionDriver, TxMapping
from .deferred import DeferredDriver
from .passthrough import PassthroughDriver
from .strict import StrictFamilyDriver

__all__ = [
    "ProtectionDriver",
    "TxMapping",
    "DriverCosts",
    "PassthroughDriver",
    "StrictFamilyDriver",
    "DeferredDriver",
]

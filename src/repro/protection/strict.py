"""The strict-mode driver family: Linux strict, F&S, and the ablations.

All four strict-safety configurations the paper evaluates are the same
driver with three boolean knobs (its Fig 12 decomposition):

=====================  =================  ===============  ====================
Configuration          preserve_ptcache   contiguous_iova  batched_invalidation
=====================  =================  ===============  ====================
Linux strict           no                 no               no
Linux + A              yes                no               no
Linux + B              no                 yes              yes
F&S (A + B)            yes                yes              yes
=====================  =================  ===============  ====================

Every configuration upholds the strict safety property: each IOVA is
unmapped and its IOTLB entry invalidated before the retire call
returns, so a malicious/buggy device can never reach a page after its
descriptor completed.  The knobs only change *what else* is invalidated
(the PTcaches), *how* IOVAs are laid out, and *how many* invalidation-
queue entries are spent.

When an unmap does reclaim a page-table page (possible only for unmap
calls covering ≥ 2 MB, which descriptor-granularity operation never
issues), a preserve-mode driver falls back to invalidating the PTcache
entries covering the reclaimed range — F&S's correctness fallback.
"""

from __future__ import annotations

from typing import Optional

from ..iommu import Iommu
from ..iommu.addr import PAGE_SIZE
from ..iova.caching import CachingIovaAllocator
from ..iova.contiguous import ChunkIovaAllocator, IovaChunk
from ..mem.physmem import PhysicalMemory
from ..nic.descriptor import PageSlot, RxDescriptor
from .base import DriverCosts, ProtectionDriver, TxMapping

__all__ = ["StrictFamilyDriver"]

# Per-PTE clear cost inside a range unmap (amortized page walking in
# the kernel's unmap loop).
PTE_CLEAR_NS = 20.0


class StrictFamilyDriver(ProtectionDriver):
    """Strict-safety protection with F&S's ideas as independent flags."""

    strict_safety = True

    def __init__(
        self,
        iommu: Iommu,
        physmem: PhysicalMemory,
        num_cpus: int,
        preserve_ptcache: bool,
        contiguous_iova: bool,
        batched_invalidation: bool,
        chunk_pages: int = 64,
        hugepages: bool = False,
        costs: Optional[DriverCosts] = None,
        allocation_trace: Optional[list[tuple[int, int]]] = None,
    ) -> None:
        if batched_invalidation and not contiguous_iova:
            raise ValueError(
                "batched invalidation requires contiguous IOVAs "
                "(the paper's Fig 12 clubs them for the same reason)"
            )
        if hugepages and (not contiguous_iova or chunk_pages != 512):
            raise ValueError(
                "hugepage descriptors need contiguous 512-page (2 MB) chunks"
            )
        super().__init__()
        self.iommu = iommu
        self.physmem = physmem
        self.num_cpus = num_cpus
        self.preserve_ptcache = preserve_ptcache
        self.contiguous_iova = contiguous_iova
        self.batched_invalidation = batched_invalidation
        self.chunk_pages = chunk_pages
        self.costs = costs or DriverCosts()
        self.allocator = CachingIovaAllocator(
            num_cpus=num_cpus, trace=allocation_trace
        )
        self.hugepages = hugepages
        self.chunks: Optional[ChunkIovaAllocator] = None
        if contiguous_iova:
            self.chunks = ChunkIovaAllocator(
                self.allocator,
                num_cpus=num_cpus,
                chunk_pages=chunk_pages,
                align_chunks=hugepages,
            )
        self.ptcache_fallback_invalidations = 0
        flags = (
            ("A" if preserve_ptcache else "")
            + ("B" if contiguous_iova else "")
        )
        self.name = f"strict[{flags or 'linux'}]"

    # ------------------------------------------------------------------
    # Named configurations
    # ------------------------------------------------------------------
    @classmethod
    def linux_strict(cls, iommu, physmem, num_cpus, **kwargs):
        driver = cls(iommu, physmem, num_cpus, False, False, False, **kwargs)
        driver.name = "linux-strict"
        return driver

    @classmethod
    def fns(cls, iommu, physmem, num_cpus, **kwargs):
        driver = cls(iommu, physmem, num_cpus, True, True, True, **kwargs)
        driver.name = "fns"
        return driver

    @classmethod
    def fns_huge(cls, iommu, physmem, num_cpus, **kwargs):
        """F&S over 2 MB hugepage descriptors (the paper's §5 future
        work): one IOTLB entry and one invalidation per 2 MB, strict
        safety at 2 MB descriptor granularity."""
        kwargs.setdefault("chunk_pages", 512)
        driver = cls(
            iommu, physmem, num_cpus, True, True, True,
            hugepages=True, **kwargs,
        )
        driver.name = "fns-huge"
        return driver

    @classmethod
    def linux_plus_preserve(cls, iommu, physmem, num_cpus, **kwargs):
        """Fig 12's "Linux + A": preserve PTcaches, scattered IOVAs."""
        driver = cls(iommu, physmem, num_cpus, True, False, False, **kwargs)
        driver.name = "linux+A"
        return driver

    @classmethod
    def linux_plus_contiguous(cls, iommu, physmem, num_cpus, **kwargs):
        """Fig 12's "Linux + B": contiguous + batched, PTcaches dropped."""
        driver = cls(iommu, physmem, num_cpus, False, True, True, **kwargs)
        driver.name = "linux+B"
        return driver

    # ------------------------------------------------------------------
    # CPU cost helpers
    # ------------------------------------------------------------------
    def _allocator_cost_around(self, core: int):
        """Context to measure allocator CPU charged to ``core``."""
        return _AllocatorCostProbe(self.allocator, core)

    # ------------------------------------------------------------------
    # Rx datapath
    # ------------------------------------------------------------------
    def make_rx_descriptor(self, core: int, pages: int):
        cost = 0.0
        slots: list[PageSlot] = []
        driver_data = None
        probe = self._allocator_cost_around(core)
        if self.hugepages:
            assert self.chunks is not None
            if pages != 512:
                raise ValueError("hugepage descriptors are 512 pages (2 MB)")
            chunk = self.chunks.alloc_chunk(cpu=core)
            base_frame = self.physmem.alloc_huge()
            self.iommu.map_huge(chunk.base_iova, base_frame)
            for index in range(pages):
                slots.append(
                    PageSlot(
                        iova=chunk.base_iova + index * PAGE_SIZE,
                        frame=base_frame + index,
                    )
                )
            driver_data = (chunk, base_frame)
        elif self.contiguous_iova and pages == self.chunk_pages:
            assert self.chunks is not None
            chunk = self.chunks.alloc_chunk(cpu=core)
            for index in range(pages):
                frame = self.physmem.alloc_frame()
                iova = chunk.base_iova + index * PAGE_SIZE
                self.iommu.map_page(iova, frame)
                slots.append(PageSlot(iova=iova, frame=frame))
            driver_data = chunk
        elif self.contiguous_iova:
            # Sub-chunk descriptors (single-page devices like Intel
            # ICE — the paper's §3 "Generality" case): slices are
            # carved sequentially across descriptors from the per-core
            # chunk, exactly like the Tx datapath.  Contiguity and
            # PTcache preservation apply in full; batched invalidation
            # is limited to the descriptor's (small) runs.
            assert self.chunks is not None
            mappings: list[TxMapping] = []
            for _ in range(pages):
                frame = self.physmem.alloc_frame()
                iova, chunk = self.chunks.alloc_page_with_chunk(cpu=core)
                self.iommu.map_page(iova, frame)
                slots.append(PageSlot(iova=iova, frame=frame))
                mappings.append(
                    TxMapping(iova=iova, frame=frame, cookie=chunk)
                )
            driver_data = mappings
        else:
            for _ in range(pages):
                frame = self.physmem.alloc_frame()
                iova = self.allocator.alloc(1, cpu=core)
                self.iommu.map_page(iova, frame)
                slots.append(PageSlot(iova=iova, frame=frame))
        map_calls = 1 if self.hugepages else pages
        cost += probe.delta() + map_calls * self.costs.map_ns
        descriptor = RxDescriptor(
            slots=slots, core=core, driver_data=driver_data
        )
        self._notify_rx_mapped(descriptor)
        return descriptor, cost

    def retire_rx_descriptor(self, descriptor: RxDescriptor, core: int) -> float:
        self._notify_rx_retired(descriptor)
        cost = 0.0
        probe = self._allocator_cost_around(core)
        if self.hugepages:
            chunk, base_frame = descriptor.driver_data
            length = 512 * PAGE_SIZE
            reclaimed = self.iommu.unmap_range(chunk.base_iova, length)
            cost += self.costs.unmap_ns
            cost += self._invalidate(chunk.base_iova, length, 512, reclaimed)
            assert self.chunks is not None
            self.chunks.release_chunk(chunk, cpu=core)
            self.physmem.free_huge(base_frame)
            cost += probe.delta()
            return cost
        if self.contiguous_iova and isinstance(
            descriptor.driver_data, IovaChunk
        ):
            chunk: IovaChunk = descriptor.driver_data
            base = chunk.base_iova
            length = descriptor.size * PAGE_SIZE
            # One unmap operation for the whole descriptor range.
            reclaimed = self.iommu.unmap_range(base, length)
            cost += self.costs.unmap_ns + descriptor.size * PTE_CLEAR_NS
            cost += self._invalidate(base, length, descriptor.size, reclaimed)
            assert self.chunks is not None
            self.chunks.release_chunk(chunk, cpu=core)
        elif self.contiguous_iova:
            # Sub-chunk descriptor: retire its chunk-local runs, just
            # like the Tx datapath does.
            cost += self._retire_tx_contiguous(descriptor.driver_data, core)
        else:
            # Linux: one unmap + one invalidation per page.
            for slot in descriptor.slots:
                reclaimed = self.iommu.unmap_range(slot.iova, PAGE_SIZE)
                cost += self.costs.unmap_ns
                cost += self._invalidate(slot.iova, PAGE_SIZE, 1, reclaimed)
                self.allocator.free(slot.iova, 1, cpu=core)
        for slot in descriptor.slots:
            self.physmem.free_frame(slot.frame)
        cost += probe.delta()
        return cost

    # ------------------------------------------------------------------
    # Tx datapath
    # ------------------------------------------------------------------
    def map_tx_page(self, core: int):
        probe = self._allocator_cost_around(core)
        frame = self.physmem.alloc_frame()
        if self.contiguous_iova:
            assert self.chunks is not None
            iova, chunk = self.chunks.alloc_page_with_chunk(cpu=core)
            cookie = chunk
        else:
            iova = self.allocator.alloc(1, cpu=core)
            cookie = None
        self.iommu.map_page(iova, frame)
        cost = probe.delta() + self.costs.map_ns
        mapping = TxMapping(iova=iova, frame=frame, cookie=cookie)
        self._notify_tx_mapped(mapping)
        return mapping, cost

    def retire_tx_pages(self, mappings: list[TxMapping], core: int) -> float:
        self._notify_tx_retired(mappings)
        cost = 0.0
        probe = self._allocator_cost_around(core)
        if self.contiguous_iova:
            cost += self._retire_tx_contiguous(mappings, core)
        else:
            for mapping in mappings:
                reclaimed = self.iommu.unmap_range(mapping.iova, PAGE_SIZE)
                cost += self.costs.unmap_ns
                cost += self._invalidate(mapping.iova, PAGE_SIZE, 1, reclaimed)
                self.allocator.free(mapping.iova, 1, cpu=core)
        for mapping in mappings:
            self.physmem.free_frame(mapping.frame)
        cost += probe.delta()
        return cost

    def _retire_tx_contiguous(self, mappings: list[TxMapping], core: int) -> float:
        """Group completed Tx pages into per-chunk contiguous runs and
        retire each run with a single unmap + (batched) invalidation."""
        assert self.chunks is not None
        cost = 0.0
        runs = _contiguous_runs(mappings)
        for chunk, start, count in runs:
            length = count * PAGE_SIZE
            reclaimed = self.iommu.unmap_range(start, length)
            cost += self.costs.unmap_ns + count * PTE_CLEAR_NS
            cost += self._invalidate(start, length, count, reclaimed)
            self.chunks.release_pages(start, count, cpu=core)
            del chunk  # runs are already chunk-local
        return cost

    # ------------------------------------------------------------------
    # Invalidation policy (where the A/B2 flags act)
    # ------------------------------------------------------------------
    def _invalidate(self, iova, length, pages, reclaimed) -> float:
        queue = self.iommu.invalidation_queue
        preserve = self.preserve_ptcache
        cost = 0.0
        if self.batched_invalidation:
            cost += self._invalidate_robust(queue, iova, length, preserve)
        else:
            for index in range(pages):
                cost += self._invalidate_robust(
                    queue, iova + index * PAGE_SIZE, PAGE_SIZE, preserve
                )
        if preserve and reclaimed:
            # Correctness fallback: an unmap actually reclaimed PT
            # pages, so the PTcache entries pointing at them are stale
            # and must be dropped after all.
            for page in reclaimed:
                cost += self._invalidate_robust(
                    queue,
                    page.base_iova,
                    page.coverage_bytes,
                    preserve,
                    ptcache_only=True,
                )
                self.ptcache_fallback_invalidations += 1
        return cost

    # ------------------------------------------------------------------
    def translate(self, iova: int, source: str) -> int:
        return self.iommu.translate(iova, source).memory_reads

    def device_can_access(self, iova: int) -> bool:
        return self.iommu.iotlb.contains(iova) or self.iommu.page_table.is_mapped(iova)


class _AllocatorCostProbe:
    """Measures allocator CPU charged to one core across a call span."""

    __slots__ = ("allocator", "core", "before")

    def __init__(self, allocator: CachingIovaAllocator, core: int):
        self.allocator = allocator
        self.core = core
        self.before = self._current()

    def _current(self) -> float:
        return self.allocator.cpu_ns_by_core.get(
            self.core, 0.0
        ) + self.allocator.rbtree.cpu_ns_by_core.get(self.core, 0.0)

    def delta(self) -> float:
        return self._current() - self.before


def _contiguous_runs(
    mappings: list[TxMapping],
) -> list[tuple[IovaChunk, int, int]]:
    """Merge mappings into (chunk, start_iova, pages) runs.

    Mappings are sorted by IOVA; a run never crosses a chunk boundary
    (the release API requires chunk-local ranges).
    """
    ordered = sorted(mappings, key=lambda m: m.iova)
    runs: list[tuple[IovaChunk, int, int]] = []
    for mapping in ordered:
        chunk = mapping.cookie
        if runs:
            last_chunk, start, count = runs[-1]
            if (
                last_chunk is chunk
                and mapping.iova == start + count * PAGE_SIZE
            ):
                runs[-1] = (last_chunk, start, count + 1)
                continue
        runs.append((chunk, mapping.iova, 1))
    return runs

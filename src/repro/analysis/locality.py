"""PTcache-L3 reuse-distance analysis (Figs 2e, 3e, 7e, 8e).

The paper plots, for each subsequent IOVA allocation, the number of
*unique* PTcache-L3 entries used since that allocation's L3 entry was
last used — the classic LRU stack distance, computed over the
allocator's output stream.  A distance above the cache size means the
entry would have been evicted before reuse (an L3 miss under LRU); the
paper draws thresholds at 64 and 128, its estimated cache-size range.

Multi-page allocations (F&S chunks) are expanded into their page
IOVAs, so an F&S trace shows distance-0 runs within each chunk with
occasional spikes at descriptor boundaries — exactly Fig 7e's shape.

The stack-distance computation uses the standard last-position table
plus a Fenwick tree over positions, O(n log n) overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..iommu.addr import PAGE_SIZE, ptcache_key

__all__ = [
    "l3_key_stream",
    "reuse_distances",
    "LocalitySummary",
    "summarize_locality",
]

INFINITE = -1  # first use of a key (cold): no reuse distance


class _Fenwick:
    """Binary indexed tree for prefix sums over positions."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int):
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, value: int) -> None:
        index += 1
        while index <= self.size:
            self.tree[index] += value
            index += index & -index

    def prefix(self, index: int) -> int:
        """Sum of [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self.tree[index]
            index -= index & -index
        return total

    def range_sum(self, low: int, high: int) -> int:
        if low > high:
            return 0
        return self.prefix(high) - (self.prefix(low - 1) if low else 0)


def l3_key_stream(trace: Sequence[tuple[int, int]]) -> list[int]:
    """Expand an allocation trace into per-page PTcache-L3 keys.

    ``trace`` entries are ``(iova, pages)`` as recorded by the IOVA
    allocators; each page contributes the key of its 2 MB region.
    """
    keys: list[int] = []
    for iova, pages in trace:
        for index in range(pages):
            keys.append(ptcache_key(iova + index * PAGE_SIZE, 3))
    return keys


def reuse_distances(keys: Sequence[int]) -> list[int]:
    """LRU stack distance of each access; ``INFINITE`` (-1) when cold.

    distance = number of *distinct other* keys accessed since this
    key's previous access.
    """
    last_position: dict[int, int] = {}
    fenwick = _Fenwick(len(keys))
    distances: list[int] = []
    for position, key in enumerate(keys):
        previous = last_position.get(key)
        if previous is None:
            distances.append(INFINITE)
        else:
            distinct = fenwick.range_sum(previous + 1, position - 1)
            distances.append(distinct)
            fenwick.add(previous, -1)
        fenwick.add(position, 1)
        last_position[key] = position
    return distances


@dataclass(frozen=True)
class LocalitySummary:
    """Aggregate view of a reuse-distance trace (one figure panel)."""

    accesses: int
    cold_accesses: int
    mean_distance: float
    p95_distance: float
    max_distance: int
    fraction_above_64: float
    fraction_above_128: float


def summarize_locality(trace: Sequence[tuple[int, int]]) -> LocalitySummary:
    """Compute the Fig 2e-style summary for an allocation trace."""
    keys = l3_key_stream(trace)
    distances = reuse_distances(keys)
    warm = sorted(d for d in distances if d != INFINITE)
    cold = len(distances) - len(warm)
    if not warm:
        return LocalitySummary(
            accesses=len(distances),
            cold_accesses=cold,
            mean_distance=0.0,
            p95_distance=0.0,
            max_distance=0,
            fraction_above_64=0.0,
            fraction_above_128=0.0,
        )
    return LocalitySummary(
        accesses=len(distances),
        cold_accesses=cold,
        mean_distance=sum(warm) / len(warm),
        p95_distance=float(warm[min(len(warm) - 1, int(0.95 * len(warm)))]),
        max_distance=warm[-1],
        fraction_above_64=sum(1 for d in warm if d > 64) / len(warm),
        fraction_above_128=sum(1 for d in warm if d > 128) / len(warm),
    )

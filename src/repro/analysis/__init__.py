"""Analysis: throughput model, locality, percentiles, reporting."""

from .locality import (
    INFINITE,
    LocalitySummary,
    l3_key_stream,
    reuse_distances,
    summarize_locality,
)
from .metrics import PERCENTILES_FIG9, LatencyRecorder, percentile
from .model import (
    ModelPoint,
    deltas_steady,
    extrapolate_snapshot,
    fit_l0_lm,
    memory_reads_per_packet,
    model_error,
    snapshot_delta,
    throughput_gbps,
)
from .report import format_figure, format_table

__all__ = [
    "throughput_gbps",
    "memory_reads_per_packet",
    "fit_l0_lm",
    "model_error",
    "ModelPoint",
    "snapshot_delta",
    "deltas_steady",
    "extrapolate_snapshot",
    "l3_key_stream",
    "reuse_distances",
    "summarize_locality",
    "LocalitySummary",
    "INFINITE",
    "percentile",
    "LatencyRecorder",
    "PERCENTILES_FIG9",
    "format_table",
    "format_figure",
]

"""The paper's analytic throughput model (§2.2).

``T = p / (l0 + M * lm)`` — packet size over the per-packet DMA base
latency plus the page-walk memory reads times the per-read latency.
The paper fits ``l0 = 65 ns`` and ``lm = 197 ns`` from its 5- and
10-flow measurements and validates the model within 10% of measured
throughput across experiments; we provide the same fit (exact
two-point solve, least-squares for more points) and validation
helpers, which the model-fit benchmark exercises against the
simulator's own measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "throughput_gbps",
    "memory_reads_per_packet",
    "fit_l0_lm",
    "ModelPoint",
    "model_error",
]


@dataclass(frozen=True)
class ModelPoint:
    """One experiment's (packet size, reads/packet, measured Gbps)."""

    packet_bytes: int
    memory_reads: float
    measured_gbps: float


def throughput_gbps(
    packet_bytes: int,
    memory_reads: float,
    l0_ns: float = 65.0,
    lm_ns: float = 197.0,
    link_gbps: float = float("inf"),
) -> float:
    """Predicted PCIe-limited throughput, optionally capped at the link.

    ``memory_reads`` is the paper's M: IOTLB + counted PTcache misses
    per packet worth of data.
    """
    if packet_bytes <= 0:
        raise ValueError("packet size must be positive")
    latency_ns = l0_ns + memory_reads * lm_ns
    return min(packet_bytes * 8 / latency_ns, link_gbps)


def memory_reads_per_packet(
    iotlb_misses: float, m1: float, m2: float, m3: float
) -> float:
    """The paper's M = m_IOTLB + m1 + m2 + m3."""
    return iotlb_misses + m1 + m2 + m3


def fit_l0_lm(
    points: Sequence[ModelPoint], nonnegative: bool = True
) -> tuple[float, float]:
    """Fit (l0, lm) from measured points.

    Each point gives one linear equation ``l0 + M * lm = p / T``.  Two
    points solve exactly (the paper's method, using its 5- and 10-flow
    runs); more points are fit least-squares.  Both constants are
    latencies, so the default fit constrains them non-negative (plain
    least squares can go negative when the points are nearly
    collinear in M).
    """
    if len(points) < 2:
        raise ValueError("need at least two points to fit two constants")
    coefficients = np.array([[1.0, pt.memory_reads] for pt in points])
    # p/T with T in Gbps == bits/ns: latency in ns.
    latencies = np.array(
        [pt.packet_bytes * 8 / pt.measured_gbps for pt in points]
    )
    if nonnegative:
        from scipy.optimize import nnls

        solution, _residual = nnls(coefficients, latencies)
    else:
        solution, *_ = np.linalg.lstsq(coefficients, latencies, rcond=None)
    l0, lm = float(solution[0]), float(solution[1])
    return l0, lm


def model_error(
    point: ModelPoint,
    l0_ns: float,
    lm_ns: float,
    link_gbps: float = float("inf"),
) -> float:
    """Relative error of the model's prediction for one point."""
    predicted = throughput_gbps(
        point.packet_bytes, point.memory_reads, l0_ns, lm_ns, link_gbps
    )
    return abs(predicted - point.measured_gbps) / point.measured_gbps

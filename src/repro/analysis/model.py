"""The paper's analytic throughput model (§2.2).

``T = p / (l0 + M * lm)`` — packet size over the per-packet DMA base
latency plus the page-walk memory reads times the per-read latency.
The paper fits ``l0 = 65 ns`` and ``lm = 197 ns`` from its 5- and
10-flow measurements and validates the model within 10% of measured
throughput across experiments; we provide the same fit (exact
two-point solve, least-squares for more points) and validation
helpers, which the model-fit benchmark exercises against the
simulator's own measurements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "throughput_gbps",
    "memory_reads_per_packet",
    "fit_l0_lm",
    "ModelPoint",
    "model_error",
    "snapshot_delta",
    "deltas_steady",
    "extrapolate_snapshot",
]


@dataclass(frozen=True)
class ModelPoint:
    """One experiment's (packet size, reads/packet, measured Gbps)."""

    packet_bytes: int
    memory_reads: float
    measured_gbps: float


def throughput_gbps(
    packet_bytes: int,
    memory_reads: float,
    l0_ns: float = 65.0,
    lm_ns: float = 197.0,
    link_gbps: float = float("inf"),
) -> float:
    """Predicted PCIe-limited throughput, optionally capped at the link.

    ``memory_reads`` is the paper's M: IOTLB + counted PTcache misses
    per packet worth of data.
    """
    if packet_bytes <= 0:
        raise ValueError("packet size must be positive")
    latency_ns = l0_ns + memory_reads * lm_ns
    return min(packet_bytes * 8 / latency_ns, link_gbps)


def memory_reads_per_packet(
    iotlb_misses: float, m1: float, m2: float, m3: float
) -> float:
    """The paper's M = m_IOTLB + m1 + m2 + m3."""
    return iotlb_misses + m1 + m2 + m3


def fit_l0_lm(
    points: Sequence[ModelPoint], nonnegative: bool = True
) -> tuple[float, float]:
    """Fit (l0, lm) from measured points.

    Each point gives one linear equation ``l0 + M * lm = p / T``.  Two
    points solve exactly (the paper's method, using its 5- and 10-flow
    runs); more points are fit least-squares.  Both constants are
    latencies, so the default fit constrains them non-negative (plain
    least squares can go negative when the points are nearly
    collinear in M).
    """
    if len(points) < 2:
        raise ValueError("need at least two points to fit two constants")
    coefficients = np.array([[1.0, pt.memory_reads] for pt in points])
    # p/T with T in Gbps == bits/ns: latency in ns.
    latencies = np.array(
        [pt.packet_bytes * 8 / pt.measured_gbps for pt in points]
    )
    if nonnegative:
        from scipy.optimize import nnls

        solution, _residual = nnls(coefficients, latencies)
    else:
        solution, *_ = np.linalg.lstsq(coefficients, latencies, rcond=None)
    l0, lm = float(solution[0]), float(solution[1])
    return l0, lm


def model_error(
    point: ModelPoint,
    l0_ns: float,
    lm_ns: float,
    link_gbps: float = float("inf"),
) -> float:
    """Relative error of the model's prediction for one point."""
    predicted = throughput_gbps(
        point.packet_bytes, point.memory_reads, l0_ns, lm_ns, link_gbps
    )
    return abs(predicted - point.measured_gbps) / point.measured_gbps


# ---------------------------------------------------------------------------
# Steady-state snapshot algebra (the epoch fast-forward's math half)
#
# The model above says steady-state throughput is a *rate*: between
# invalidation/workload transitions every measured counter grows
# linearly in time.  The fast-forward in ``Testbed.run`` exploits this
# by stepping short calibration epochs, checking that per-epoch counter
# deltas have converged, and then extrapolating the remaining window
# analytically.  These three helpers are the structure-generic algebra
# over the testbed's nested snapshot dicts (dicts of counters, lists of
# per-core floats, counter dataclasses, plain ints/floats).
# ---------------------------------------------------------------------------
def _is_counter_dataclass(value) -> bool:
    return dataclasses.is_dataclass(value) and not isinstance(value, type)


def snapshot_delta(old, new):
    """Element-wise ``new - old`` over a nested snapshot structure.

    Keys present only in ``new`` (a flow appearing mid-run) diff
    against zero.  Lists are fixed-shape (per-core arrays) and diff
    element-wise.  Counter dataclasses (e.g. ``IommuStats``) diff
    field-wise into a plain dict.
    """
    if _is_counter_dataclass(new):
        return {
            field.name: snapshot_delta(
                getattr(old, field.name, 0), getattr(new, field.name)
            )
            for field in dataclasses.fields(new)
        }
    if isinstance(new, dict):
        old_map = old if isinstance(old, dict) else {}
        return {
            key: snapshot_delta(old_map.get(key, 0), value)
            for key, value in new.items()
        }
    if isinstance(new, list):
        return [snapshot_delta(o, n) for o, n in zip(old, new)]
    return new - old


def deltas_steady(first, second, rtol: float, atol: float) -> bool:
    """Whether two consecutive epoch deltas agree within tolerance.

    Every numeric leaf must satisfy ``|b - a| <= atol + rtol *
    max(|a|, |b|)`` — the symmetric mixed-tolerance test.  Structures
    are compared over the union of keys (a key missing on one side is
    an implicit zero).
    """
    if isinstance(first, dict) or isinstance(second, dict):
        first_map = first if isinstance(first, dict) else {}
        second_map = second if isinstance(second, dict) else {}
        return all(
            deltas_steady(
                first_map.get(key, 0), second_map.get(key, 0), rtol, atol
            )
            for key in first_map.keys() | second_map.keys()
        )
    if isinstance(first, list):
        return len(first) == len(second) and all(
            deltas_steady(a, b, rtol, atol)
            for a, b in zip(first, second)
        )
    return abs(second - first) <= atol + rtol * max(abs(first), abs(second))


def extrapolate_snapshot(base, delta, scale: float):
    """``base - scale * delta``, element-wise, preserving leaf types.

    This produces the *adjusted* snapshot the fast-forward hands to the
    testbed's delta-based result computation: subtracting the scaled
    steady-state epoch delta from the warmup snapshot makes
    ``live - adjusted`` equal the stepped delta plus the extrapolated
    remainder, without mutating any live counter.  Integer leaves stay
    integers (rounded); keys of ``base`` absent from ``delta`` are
    carried through unchanged.  A counter-dataclass base is rebuilt as
    the same type from its field-wise adjustment.
    """
    if _is_counter_dataclass(base):
        delta_map = delta if isinstance(delta, dict) else {}
        return type(base)(
            **{
                field.name: (
                    extrapolate_snapshot(
                        getattr(base, field.name),
                        delta_map[field.name],
                        scale,
                    )
                    if field.name in delta_map
                    else getattr(base, field.name)
                )
                for field in dataclasses.fields(base)
            }
        )
    if isinstance(delta, dict):
        base_map = base if isinstance(base, dict) else {}
        out = dict(base_map)
        for key, value in delta.items():
            out[key] = extrapolate_snapshot(
                base_map.get(key, 0), value, scale
            )
        return out
    if isinstance(delta, list):
        return [
            extrapolate_snapshot(b, d, scale)
            for b, d in zip(base, delta)
        ]
    if isinstance(base, float) or isinstance(delta, float):
        return base - scale * delta
    return base - round(scale * delta)

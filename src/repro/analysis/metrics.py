"""Latency percentiles and simple metric utilities.

Fig 9 reports P50/P90/P99/P99.9/P99.99; we compute exact empirical
percentiles (nearest-rank) over recorded samples.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["percentile", "LatencyRecorder", "PERCENTILES_FIG9"]

PERCENTILES_FIG9 = (50.0, 90.0, 99.0, 99.9, 99.99)


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (0 < p <= 100) of non-empty samples."""
    if not samples:
        raise ValueError("no samples")
    if not 0 < p <= 100:
        raise ValueError("percentile must be in (0, 100]")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * p // 100))  # ceil
    return ordered[int(rank) - 1]


class LatencyRecorder:
    """Accumulates latency samples (ns) and reports percentiles."""

    def __init__(self) -> None:
        self.samples: list[float] = []

    def record(self, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError("negative latency")
        self.samples.append(latency_ns)

    def __len__(self) -> int:
        return len(self.samples)

    def percentiles(
        self, levels: Sequence[float] = PERCENTILES_FIG9
    ) -> dict[float, float]:
        return {level: percentile(self.samples, level) for level in levels}

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.samples) / len(self.samples)

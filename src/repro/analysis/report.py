"""Plain-text table formatting for benchmark output.

Every benchmark prints the rows/series of its paper figure through
these helpers, so ``pytest benchmarks/ --benchmark-only`` regenerates
the evaluation tables in one readable format.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_figure", "format_markdown_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    def line(parts):
        return "  ".join(part.ljust(width) for part, width in zip(parts, widths))

    out = [line(headers), line("-" * width for width in widths)]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_figure(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: str = "",
) -> str:
    """A titled table block, one per paper figure."""
    block = [f"== {title} ==", format_table(headers, rows)]
    if notes:
        block.append(notes)
    return "\n" + "\n".join(block) + "\n"


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """GitHub-flavored markdown table (for the generated REPORT.md)."""

    def line(parts: Sequence[str]) -> str:
        return "| " + " | ".join(parts) + " |"

    out = [
        line([_md_escape(_fmt(h)) for h in headers]),
        line(["---"] * len(headers)),
    ]
    out.extend(
        line([_md_escape(_fmt(value)) for value in row]) for row in rows
    )
    return "\n".join(out)


def _md_escape(text: str) -> str:
    return text.replace("|", "\\|")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)

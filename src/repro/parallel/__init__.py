"""Process-pool execution of independent sweep points.

A figure sweep is a grid of (mode, x) cells, each a self-contained
simulation with its own testbed and clock — embarrassingly parallel.
This package fans those cells across worker processes while keeping the
results *byte-identical* to a serial run:

* every cell is described declaratively by a picklable
  :class:`~repro.parallel.spec.PointSpec` (figure, runner key, mode, x,
  phase label, derived seed);
* per-point seeds come from :func:`~repro.parallel.seeds.derive_seed`,
  a pure function of (root seed, figure, mode, x), so a point's
  stochastic inputs do not depend on which process runs it or in what
  order;
* workers record each point's metrics in a fresh single-phase registry
  and ship the phase back; the parent adopts the phases in sweep order
  (:meth:`~repro.obs.registry.MetricsRegistry.adopt_phase`), so
  ``report()`` and the generated reports match a serial run row for row.

``run_points`` is the single entry point; ``--jobs N`` on the CLI
routes every sweep (figures, reproduce, bench, faults) through it.
"""

from .seeds import derive_seed
from .spec import PointSpec
from .pool import (
    RemotePointError,
    pool_forks,
    run_points,
    shutdown_pool,
    warm_pool,
)

__all__ = [
    "PointSpec",
    "RemotePointError",
    "derive_seed",
    "pool_forks",
    "run_points",
    "shutdown_pool",
    "warm_pool",
]

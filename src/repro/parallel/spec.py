"""The declarative description of one sweep point.

A :class:`PointSpec` carries everything a worker process needs to run
one cell of a figure sweep: the registered runner's key (functions
don't pickle reliably across refactors; a string key into
:data:`repro.experiments.points.POINT_RUNNERS` does), the cell
coordinates, the metrics phase label, and the cell's derived seed.
Specs must stay picklable and cheap — heavyweight inputs (e.g. a fault
plan) ride in ``payload``, which is built in the parent so every
process sees byte-identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["PointSpec", "RemotePointError"]


@dataclass(frozen=True)
class PointSpec:
    """One sweep cell: coordinates plus execution directions."""

    figure: str  # figure id, e.g. "Fig 2"
    runner: str  # key into repro.experiments.points.POINT_RUNNERS
    mode: str  # protection mode ("off", "strict", "fns", ...)
    x: Any  # the x-axis value (flows, ring size, bytes, ...)
    label: str  # metrics phase label (must match the serial label)
    seed: int  # child seed from derive_seed(root, figure, mode, x)
    payload: Any = None  # extra picklable input (e.g. a FaultPlan)


class RemotePointError(RuntimeError):
    """A worker's point died on an invariant violation.

    :class:`~repro.verify.InvariantViolation` carries live event
    objects that don't survive pickling usefully, so the worker ships
    the *formatted* trace and the parent raises this instead —
    preserving the CLI contract of printing a full event trace.
    """

    def __init__(
        self, label: str, kind: str, message: str, trace: str
    ) -> None:
        super().__init__(f"{label}: {message}")
        self.label = label
        self.kind = kind
        self._trace = trace

    def format_trace(self) -> str:
        return self._trace


def remote_error_payload(label: str, violation: Any) -> tuple:
    """The picklable (label, kind, message, trace) tuple for a worker."""
    kind = getattr(violation, "kind", type(violation).__name__)
    trace: Optional[str] = None
    format_trace = getattr(violation, "format_trace", None)
    if callable(format_trace):
        trace = format_trace()
    return (label, kind, str(violation), trace or str(violation))

"""The warm process pool: run sweep points in parallel, assemble serially.

Execution model:

* The parent builds the full :class:`~repro.parallel.spec.PointSpec`
  list (including any per-point payloads such as fault plans), so every
  input is fixed before any process runs — scheduling order cannot leak
  into results.
* Points are dispatched to the pool in **chunks** (``chunk`` on the CLI;
  auto-sized to two chunks per worker by default), not one submit per
  point: per-point dispatch made ``--jobs 2`` sweeps *slower* than
  serial (the committed BENCH_sim.json regression this fixes) because
  every point paid a round of future bookkeeping and payload pickling.
  A chunk task runs its points exactly like a serial sweep runs them:
  reset the inherited global hooks, open one fresh registry when the
  parent is observing, ``begin_phase`` per point, run the registered
  point runner, and return ``(values, phase_payloads, error)``.
* The pool itself is **persistent and warm**: one forked
  ``ProcessPoolExecutor`` per CLI invocation (created on first parallel
  sweep, reused by every later one), with an initializer that pre-imports
  the runner registry and clears the inherited hooks.  Forking *after*
  the parent has run serial work means workers inherit every
  process-level cache the parent has paid for (imports, specialized
  bytecode, the aged-allocator snapshots of ``repro.host.server``) via
  copy-on-write — which is how a warm pool beats a serial sweep even on
  a single usable CPU.  The pool is re-forked only if a later sweep
  needs more workers or the runner registry changed (tests register
  scratch runners; forked workers must see them).
* The parent consumes chunk futures **in spec order** — not completion
  order — adopting worker phases into its registry as it goes, so the
  phase list, indices and ``#N`` scope names are identical to a serial
  sweep's.

Serial fallbacks (silent, by design — ``--jobs`` is best-effort):
a single point, an installed tracer (spans cannot be merged across
processes), a global invariant monitor or fault runtime (both are
process-local state the sweep's caller expects to interrogate
afterwards).  Fault *rows* still parallelize: their monitors and plans
live inside the point runner.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Optional, Sequence

from ..cache.hooks import current_result_cache
from ..faults.hooks import current_faults, set_faults
from ..obs.hooks import current_registry, observed, set_registry
from ..obs.registry import MetricsRegistry
from ..verify.hooks import current_monitor, set_monitor
from ..verify.violation import InvariantViolation
from .spec import PointSpec, RemotePointError, remote_error_payload

if TYPE_CHECKING:  # imported lazily at runtime (circular with experiments)
    from ..experiments.settings import RunScale

__all__ = [
    "run_points",
    "RemotePointError",
    "shutdown_pool",
    "warm_pool",
    "pool_forks",
]


def _runner_for(key: str):
    # Imported lazily: repro.experiments imports this package for its
    # sweep executors, so a module-level import would be circular.
    from ..experiments.points import POINT_RUNNERS

    try:
        return POINT_RUNNERS[key]
    except KeyError:
        raise KeyError(
            f"unknown point runner {key!r}; "
            f"registered: {sorted(POINT_RUNNERS)}"
        ) from None


def _run_serial(specs: Sequence[PointSpec], scale: RunScale) -> list:
    """Today's behavior, exactly: label the phase, run the point."""
    registry = current_registry()
    values = []
    for spec in specs:
        if registry is not None:
            registry.begin_phase(spec.label)
        values.append(_runner_for(spec.runner)(spec, scale))
    return values


def _usable_cpus() -> int:
    """CPUs this process may actually run on (cpuset-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# The persistent warm pool (one per CLI invocation)
# ---------------------------------------------------------------------------
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_TOKEN: tuple = ()
_POOL_FORKS = 0


def _warm_worker() -> None:
    """Worker initializer: pre-import the runners, drop inherited hooks.

    Runs once per forked worker.  The import is effectively free (the
    parent already imported everything; fork shares the pages) but
    guarantees a worker spawned by a spawn-method interpreter would
    still find the registry.  Hooks are cleared at birth so no chunk
    ever sees the parent's registry/monitor/fault runtime.
    """
    from ..experiments import points  # noqa: F401  (registry side effect)

    set_registry(None)
    set_monitor(None)
    set_faults(None)


def _runners_token() -> tuple:
    from ..experiments.points import POINT_RUNNERS

    return tuple(sorted(POINT_RUNNERS))


def _ensure_pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool, (re)forked only when it cannot serve this sweep.

    A forked worker snapshots the parent at fork time, so the pool must
    be rebuilt when the runner registry has changed since (scratch
    runners registered by tests would otherwise be unknown in the
    workers).  Needing *fewer* workers than the pool has is fine —
    excess workers idle.
    """
    global _POOL, _POOL_WORKERS, _POOL_TOKEN, _POOL_FORKS
    token = _runners_token()
    if _POOL is not None and (
        _POOL_WORKERS < workers or _POOL_TOKEN != token
    ):
        shutdown_pool()
    if _POOL is None:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        _POOL = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_warm_worker,
        )
        _POOL_WORKERS = workers
        _POOL_TOKEN = token
        _POOL_FORKS += 1
    return _POOL


def shutdown_pool() -> None:
    """Tear down the shared pool (end of CLI invocation / tests)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None


def warm_pool(jobs: Optional[int]) -> None:
    """Pre-fork the pool for ``jobs`` before any sweep is timed.

    Benchmarks call this so pool startup — a per-invocation cost, paid
    once — is not billed to whichever sweep happens to run first.
    """
    if jobs is not None and jobs > 1:
        _ensure_pool(max(1, min(jobs, _usable_cpus())))


def pool_forks() -> int:
    """How many times a pool has been forked in this process.

    Regression guard: back-to-back sweeps in one CLI invocation must
    reuse one pool, not pay fork + warmup per sweep call.
    """
    return _POOL_FORKS


# ---------------------------------------------------------------------------
# Worker-side chunk execution
# ---------------------------------------------------------------------------
def _execute_chunk(
    specs: Sequence[PointSpec],
    scale: RunScale,
    collect: bool,
    sample_interval_ns: Optional[float],
    max_samples: int,
) -> tuple:
    """One worker task; returns ``(values, phase_payloads, error)``.

    Runs its points exactly like a serial sweep: one registry for the
    whole chunk, ``begin_phase`` per point.  On an invariant violation
    the chunk stops at the offending point and ships the values and
    phases of the points it completed plus the error payload, so the
    parent can adopt the completed phases before re-raising — the same
    state a serial sweep leaves behind.

    Module-level so it pickles under any multiprocessing start method.
    """
    # A forked worker inherits whatever hooks the parent had at fork
    # time; clear them so every chunk sees exactly the environment a
    # serial point would (its own registry below, no monitor, no fault
    # runtime).  Redundant with the pool initializer, kept for workers
    # forked before a hook was installed.
    set_registry(None)
    set_monitor(None)
    set_faults(None)
    registry: Optional[MetricsRegistry] = None
    if collect:
        registry = MetricsRegistry(
            sample_interval_ns=sample_interval_ns,
            max_samples_per_phase=max_samples,
        )
    values: list = []
    error = None
    for spec in specs:
        if registry is not None:
            registry.begin_phase(spec.label)
        try:
            if registry is not None:
                with observed(registry):
                    value = _runner_for(spec.runner)(spec, scale)
            else:
                value = _runner_for(spec.runner)(spec, scale)
        except InvariantViolation as violation:
            error = remote_error_payload(spec.label, violation)
            break
        values.append(value)
    payloads: list = []
    if registry is not None:
        # Only the phases of *completed* points travel back; a phase
        # opened by the point that tripped the violation does not.
        payloads = registry.report()["phases"][: len(values)]
    return (values, payloads, error)


def _chunked(
    specs: Sequence[PointSpec], size: int
) -> list[Sequence[PointSpec]]:
    return [specs[index:index + size] for index in range(0, len(specs), size)]


# ---------------------------------------------------------------------------
# Content-addressed result cache (repro.cache) integration
# ---------------------------------------------------------------------------
def _cache_bypassed(specs: Sequence[PointSpec], registry) -> bool:
    """Sweeps the cache must not intercept.

    Payload-carrying cells (fault plans, chaos schedules) are runs whose
    *side observations* matter; a tracer's spans cannot be replayed from
    a store; a global monitor or fault runtime means the caller will
    interrogate process state the cached value does not carry.
    """
    if any(spec.payload is not None for spec in specs):
        return True
    if registry is not None and registry.tracer is not None:
        return True
    return current_monitor() is not None or current_faults() is not None


def _run_cold_serial(
    specs: Sequence[PointSpec],
    scale: RunScale,
    collect: bool,
    interval: Optional[float],
    max_samples: int,
) -> tuple:
    """Run cold cells inline, each under its own capture registry.

    Mirrors :func:`_execute_chunk`'s observable behavior (the recorded
    phase payloads are what the parent adopts and the store keeps) but
    runs in the parent process, restoring the ambient hooks afterwards.
    Returns the same ``(values_with_payloads, error)`` shape the pool
    path produces.
    """
    outputs: list = []
    for spec in specs:
        capture: Optional[MetricsRegistry] = None
        try:
            if collect:
                capture = MetricsRegistry(
                    sample_interval_ns=interval,
                    max_samples_per_phase=max_samples,
                )
                capture.begin_phase(spec.label)
                with observed(capture):
                    value = _runner_for(spec.runner)(spec, scale)
                payload = capture.report()["phases"][0]
            else:
                value = _runner_for(spec.runner)(spec, scale)
                payload = None
        except InvariantViolation as violation:
            return (outputs, remote_error_payload(spec.label, violation))
        outputs.append((value, payload))
    return (outputs, None)


def _run_cold_pooled(
    specs: Sequence[PointSpec],
    scale: RunScale,
    collect: bool,
    interval: Optional[float],
    max_samples: int,
    jobs: int,
    chunk: Optional[int],
) -> tuple:
    """Fan cold cells across the warm pool; spec-order outputs."""
    workers = max(1, min(jobs, _usable_cpus()))
    chunk_size = chunk if chunk is not None else max(
        1, -(-len(specs) // (2 * workers))
    )
    pool = _ensure_pool(workers)
    futures = [
        pool.submit(
            _execute_chunk, chunk_specs, scale, collect, interval, max_samples
        )
        for chunk_specs in _chunked(list(specs), chunk_size)
    ]
    outputs: list = []
    for future in futures:
        values, payloads, error = future.result()
        if collect:
            outputs.extend(zip(values, payloads))
        else:
            outputs.extend((value, None) for value in values)
        if error is not None:
            return (outputs, error)
    return (outputs, None)


def _stored_payload(payload: Optional[dict]) -> Optional[dict]:
    """Normalize a phase payload for the store (position-independent).

    The recorded index is chunk-relative and reassigned on adoption;
    zeroing it makes the stored entry identical whichever executor
    produced it.
    """
    if payload is None:
        return None
    normalized = dict(payload)
    normalized["index"] = 0
    return normalized


def _run_points_cached(
    cache,
    specs: Sequence[PointSpec],
    scale: RunScale,
    *,
    registry: Optional[MetricsRegistry],
    jobs: int,
    chunk: Optional[int],
) -> list:
    """The cache-aware executor: warm cells never reach the pool.

    Every cell's key is computed up front; hits are served straight
    from the store and only the misses are executed (serially or
    through the pool, matching the caller's ``jobs``).  Results and
    recorded metric phases are then merged *in spec order* — warm
    phases adopted from the store, cold phases adopted from the
    executor and written back — so the parent registry's phase list is
    identical to an uncached run's and a fully warm sweep re-creates
    the exact report bytes of a cold one.
    """
    collect = registry is not None
    interval = registry.sample_interval_ns if collect else None
    max_samples = registry.max_samples_per_phase if collect else 0
    keys = [
        cache.key_for(
            spec,
            scale,
            collect=collect,
            sample_interval_ns=interval,
            max_samples=max_samples,
        )
        for spec in specs
    ]
    loaded: dict[int, tuple] = {}
    for index, key in enumerate(keys):
        entry = cache.load(key)
        if entry is not None:
            loaded[index] = entry
    cold = [index for index in range(len(specs)) if index not in loaded]
    cold_outputs: list = []
    error = None
    if cold:
        cold_specs = [specs[index] for index in cold]
        if min(jobs, len(cold_specs)) <= 1:
            cold_outputs, error = _run_cold_serial(
                cold_specs, scale, collect, interval, max_samples
            )
        else:
            cold_outputs, error = _run_cold_pooled(
                cold_specs, scale, collect, interval, max_samples,
                jobs, chunk,
            )
    values: list = []
    completed = dict(zip(cold, cold_outputs))
    for index, spec in enumerate(specs):
        if index in loaded:
            value, payload = loaded[index]
        elif index in completed:
            value, payload = completed[index]
            cache.store(
                keys[index], value, _stored_payload(payload), spec=spec
            )
        else:
            # The executor stopped at a violating cold cell; phases of
            # everything before it are already adopted, like a serial
            # run that died mid-sweep.
            raise RemotePointError(*error)
        if collect and payload is not None:
            registry.adopt_phase(payload)
        values.append(value)
    if error is not None:
        raise RemotePointError(*error)
    return values


def run_points(
    specs: Sequence[PointSpec],
    scale: RunScale,
    *,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
) -> list:
    """Run every spec and return their values in spec order.

    ``jobs`` of ``None``, 0 or 1 runs serially (the default path);
    higher values fan the points across the shared warm pool, capped at
    the process's usable CPU count (oversubscribing a cpuset-limited
    container buys nothing but scheduler thrash).  ``chunk`` sets how
    many consecutive points ride in one worker task; ``None`` auto-sizes
    to two chunks per worker (ceiling division, at least 1) — per-chunk
    dispatch cost (payload pickling both ways) is high enough that on
    small sweeps finer chunking measurably loses to serial, which is
    the regression this pool exists to fix.  Results — values,
    metric phases, labels — are identical for every jobs/chunk
    combination; see the module docstring for the conditions that
    silently fall back to serial.

    Raises :class:`RemotePointError` if a worker's point tripped an
    invariant violation; any other worker exception propagates as-is.
    """
    specs = list(specs)
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    requested = min(jobs or 1, len(specs))
    registry = current_registry()
    cache = current_result_cache()
    if cache is not None and not _cache_bypassed(specs, registry):
        return _run_points_cached(
            cache, specs, scale,
            registry=registry, jobs=requested, chunk=chunk,
        )
    serial = (
        requested <= 1
        or (registry is not None and registry.tracer is not None)
        or current_monitor() is not None
        or current_faults() is not None
    )
    if serial:
        return _run_serial(specs, scale)

    workers = max(1, min(requested, _usable_cpus()))
    chunk_size = chunk if chunk is not None else max(
        1, -(-len(specs) // (2 * workers))
    )
    collect = registry is not None
    interval = registry.sample_interval_ns if collect else None
    max_samples = registry.max_samples_per_phase if collect else 0
    values: list = []
    pool = _ensure_pool(workers)
    chunks = _chunked(specs, chunk_size)
    futures = [
        pool.submit(
            _execute_chunk, chunk_specs, scale, collect, interval, max_samples
        )
        for chunk_specs in chunks
    ]
    # Spec order, not completion order: phase adoption must mirror the
    # serial phase sequence exactly.
    for future in futures:
        chunk_values, payloads, error = future.result()
        if collect:
            for payload in payloads:
                registry.adopt_phase(payload)
        if error is not None:
            raise RemotePointError(*error)
        values.extend(chunk_values)
    return values

"""The process pool: run sweep points in parallel, assemble serially.

Execution model:

* The parent builds the full :class:`~repro.parallel.spec.PointSpec`
  list (including any per-point payloads such as fault plans), so every
  input is fixed before any process runs — scheduling order cannot leak
  into results.
* Each worker task runs exactly the same code as a serial point: reset
  the global hooks (a forked worker inherits the parent's installed
  registry, which must not capture worker-side metrics), open a fresh
  single-phase registry when the parent is observing, run the
  registered point runner, and return ``(value, phase_payload,
  error)``.
* The parent consumes futures **in spec order** — not completion
  order — adopting worker phases into its registry as it goes, so the
  phase list, indices and ``#N`` scope names are identical to a serial
  sweep's.

Serial fallbacks (silent, by design — ``--jobs`` is best-effort):
a single point, an installed tracer (spans cannot be merged across
processes), a global invariant monitor or fault runtime (both are
process-local state the sweep's caller expects to interrogate
afterwards).  Fault *rows* still parallelize: their monitors and plans
live inside the point runner.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Optional, Sequence

from ..faults.hooks import current_faults, set_faults
from ..obs.hooks import current_registry, observed, set_registry
from ..obs.registry import MetricsRegistry
from ..verify.hooks import current_monitor, set_monitor
from ..verify.violation import InvariantViolation
from .spec import PointSpec, RemotePointError, remote_error_payload

if TYPE_CHECKING:  # imported lazily at runtime (circular with experiments)
    from ..experiments.settings import RunScale

__all__ = ["run_points", "RemotePointError"]


def _runner_for(key: str):
    # Imported lazily: repro.experiments imports this package for its
    # sweep executors, so a module-level import would be circular.
    from ..experiments.points import POINT_RUNNERS

    try:
        return POINT_RUNNERS[key]
    except KeyError:
        raise KeyError(
            f"unknown point runner {key!r}; "
            f"registered: {sorted(POINT_RUNNERS)}"
        ) from None


def _run_serial(specs: Sequence[PointSpec], scale: RunScale) -> list:
    """Today's behavior, exactly: label the phase, run the point."""
    registry = current_registry()
    values = []
    for spec in specs:
        if registry is not None:
            registry.begin_phase(spec.label)
        values.append(_runner_for(spec.runner)(spec, scale))
    return values


def _execute_point(
    spec: PointSpec,
    scale: RunScale,
    collect: bool,
    sample_interval_ns: Optional[float],
    max_samples: int,
) -> tuple:
    """One worker task; returns ``(value, phase_payload, error)``.

    Module-level so it pickles under any multiprocessing start method.
    """
    # A forked worker inherits the parent's installed hooks; clear them
    # so the point sees exactly the environment a serial point would
    # (its own registry below, no monitor, no fault runtime).
    set_registry(None)
    set_monitor(None)
    set_faults(None)
    registry: Optional[MetricsRegistry] = None
    if collect:
        registry = MetricsRegistry(
            sample_interval_ns=sample_interval_ns,
            max_samples_per_phase=max_samples,
        )
        registry.begin_phase(spec.label)
    try:
        if registry is not None:
            with observed(registry):
                value = _runner_for(spec.runner)(spec, scale)
        else:
            value = _runner_for(spec.runner)(spec, scale)
    except InvariantViolation as violation:
        return (None, None, remote_error_payload(spec.label, violation))
    payload = None
    if registry is not None:
        payload = registry.report()["phases"][0]
    return (value, payload, None)


def run_points(
    specs: Sequence[PointSpec],
    scale: RunScale,
    *,
    jobs: Optional[int] = None,
) -> list:
    """Run every spec and return their values in spec order.

    ``jobs`` of ``None``, 0 or 1 runs serially (the default path);
    higher values fan the points across that many worker processes.
    Results — values, metric phases, labels — are identical either
    way; see the module docstring for the conditions that silently
    fall back to serial.

    Raises :class:`RemotePointError` if a worker's point tripped an
    invariant violation; any other worker exception propagates as-is.
    """
    specs = list(specs)
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    workers = min(jobs or 1, len(specs))
    registry = current_registry()
    serial = (
        workers <= 1
        or (registry is not None and registry.tracer is not None)
        or current_monitor() is not None
        or current_faults() is not None
    )
    if serial:
        return _run_serial(specs, scale)

    collect = registry is not None
    interval = registry.sample_interval_ns if collect else None
    max_samples = registry.max_samples_per_phase if collect else 0
    values = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _execute_point, spec, scale, collect, interval, max_samples
            )
            for spec in specs
        ]
        # Spec order, not completion order: phase adoption must mirror
        # the serial phase sequence exactly.
        for spec, future in zip(specs, futures):
            value, payload, error = future.result()
            if error is not None:
                raise RemotePointError(*error)
            if collect and payload is not None:
                registry.adopt_phase(payload)
            values.append(value)
    return values

"""Deterministic per-point seed derivation.

Each sweep cell gets its own child seed, derived purely from the root
seed and the cell's coordinates — never from process identity, schedule
order or wall clock — so a cell's stochastic inputs are identical
whether it runs serially, in any worker, or alone.

The scheme mirrors :class:`repro.sim.rng.SeededRng`'s stream derivation
(SHA-256 over a readable key), so seeds are stable across platforms,
Python versions and processes (no dependence on ``hash()``, which is
salted per process).
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed"]


def derive_seed(root_seed: int, figure: str, mode: str, x: object) -> int:
    """A 63-bit child seed for the (figure, mode, x) sweep cell.

    Pure and stable: same inputs give the same seed on every platform
    and in every process; any coordinate change gives an unrelated
    seed.  ``x`` is formatted with ``repr`` so ``1`` and ``"1"`` are
    distinct cells.
    """
    key = f"{root_seed}/{figure}/{mode}/{x!r}"
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    # 63 bits keeps the seed a positive int64 for any downstream
    # consumer that packs it into a fixed-width field.
    return int.from_bytes(digest[:8], "big") >> 1

"""IOVA allocator interfaces and the rbtree-backed slow path.

The allocator hands out IOVA *page ranges* and guarantees a range is
only reallocated after it is freed.  Addresses are allocated top-down
from the end of the 48-bit space, exactly like Linux's
``alloc_iova(..., limit_pfn)`` path: walk the red-black tree of
allocated ranges from the highest node downward until a free gap of the
requested size appears.

CPU cost accounting: each operation charges a cost (ns) to the calling
core; the tree path costs much more than the per-CPU cache hit path,
which is the trade-off §2.2 describes.  Costs are tallied per core so
the host model can include them in core utilization.

Every successful allocation can be appended to an *allocation trace*
(``(iova, pages)`` tuples) which the locality analysis
(:mod:`repro.analysis.locality`) converts into the reuse-distance plots
of Figs 2e/3e/7e/8e.
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..iommu.addr import IOVA_BITS, PAGE_SHIFT
from ..obs.hooks import current_registry
from ..verify.events import IovaAllocEvent, IovaFreeEvent
from ..verify.hooks import current_monitor
from .rbtree import IovaRange, IovaRbTree

__all__ = [
    "IovaAllocator",
    "RbTreeIovaAllocator",
    "IovaExhaustedError",
    "DEFAULT_LIMIT_PFN",
]

# Highest allocatable pfn: the top of the 48-bit IOVA space.
DEFAULT_LIMIT_PFN = (1 << (IOVA_BITS - PAGE_SHIFT)) - 1


class IovaExhaustedError(RuntimeError):
    """No free IOVA gap of the requested size exists below the limit."""


class IovaAllocator(Protocol):
    """The allocator interface shared by the slow path and cached fronts.

    ``cpu`` identifies the calling core for cost accounting (and, in the
    caching allocator, selects the per-CPU cache).
    """

    def alloc(self, pages: int, cpu: int = 0) -> int:
        """Allocate ``pages`` contiguous IOVA pages; returns byte address."""
        ...

    def free(self, iova: int, pages: int, cpu: int = 0) -> None:
        """Return a previously allocated range."""
        ...


class RbTreeIovaAllocator:
    """Linux-style rbtree IOVA allocator (the slow path).

    Parameters
    ----------
    limit_pfn:
        Allocation proceeds top-down from this pfn.
    tree_op_cost_ns:
        CPU cost charged per tree operation (insert/delete plus scan);
        the gap scan adds ``scan_step_cost_ns`` per node visited,
        modeling the worst-case linear searches the paper mentions.
    trace:
        When given, successful allocations append ``(iova, pages)``.
    """

    def __init__(
        self,
        limit_pfn: int = DEFAULT_LIMIT_PFN,
        tree_op_cost_ns: float = 300.0,
        scan_step_cost_ns: float = 15.0,
        trace: Optional[list[tuple[int, int]]] = None,
    ) -> None:
        self.limit_pfn = limit_pfn
        self.tree = IovaRbTree()
        self.tree_op_cost_ns = tree_op_cost_ns
        self.scan_step_cost_ns = scan_step_cost_ns
        self.trace = trace
        # Safety-invariant monitor (repro.verify); None in normal runs.
        self.monitor = current_monitor()
        self.cpu_ns_by_core: dict[int, float] = {}
        self.alloc_count = 0
        self.free_count = 0
        self.allocated_pages = 0
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope("iova.rbtree")
            scope.counter("allocs", lambda: self.alloc_count)
            scope.counter("frees", lambda: self.free_count)
            scope.counter("cpu_ns", lambda: self.total_cpu_ns)
            scope.gauge("allocated_pages", lambda: self.allocated_pages)
        # Linux's cached-node optimization: the next gap scan resumes
        # from the last allocation instead of rescanning from the top,
        # keeping the common case O(1) even when higher address space
        # is fragmented.  Gaps that open above the cached node are
        # found by a retry-from-top pass when the downward scan fails.
        self._cached: Optional[IovaRange] = None

    # ------------------------------------------------------------------
    def _charge(self, cpu: int, cost_ns: float) -> None:
        self.cpu_ns_by_core[cpu] = self.cpu_ns_by_core.get(cpu, 0.0) + cost_ns

    def alloc(self, pages: int, cpu: int = 0, align_pages: int = 1) -> int:
        """Allocate top-down; returns the byte address of the range.

        The gap scan starts at the cached node (the previous
        allocation); if no gap exists below it, one retry scans from
        the very top to pick up gaps that opened through frees.
        ``align_pages`` aligns the returned range's start (hugepage
        chunks need 2 MB alignment).
        """
        if pages <= 0:
            raise ValueError("pages must be positive")
        if align_pages <= 0 or align_pages & (align_pages - 1):
            raise ValueError("alignment must be a positive power of two")
        cost = self.tree_op_cost_ns
        found = self._scan_down(self._cached, pages, align_pages)
        if found is None and self._cached is not None:
            found = self._scan_down(None, pages, align_pages)
            cost += self.scan_step_cost_ns * min(len(self.tree), 64)
        if found is None:
            self._charge(cpu, cost)
            raise IovaExhaustedError(
                f"no gap of {pages} pages below pfn {self.limit_pfn:#x}"
            )
        pfn_lo, steps = found
        cost += self.scan_step_cost_ns * steps
        new_range = IovaRange(pfn_lo, pfn_lo + pages - 1)
        self.tree.insert(new_range)
        self._cached = new_range
        self._charge(cpu, cost)
        self.alloc_count += 1
        self.allocated_pages += pages
        iova = pfn_lo << PAGE_SHIFT
        if self.trace is not None:
            self.trace.append((iova, pages))
        if self.monitor is not None:
            self.monitor.record(
                IovaAllocEvent(iova, pages, cpu, "rbtree"),
                owner=id(self),
            )
        return iova

    def _scan_down(
        self, start: Optional[IovaRange], pages: int, align_pages: int = 1
    ):
        """Find the highest (aligned) gap of ``pages`` at/below ``start``.

        Returns ``(pfn_lo, steps)`` or ``None``.  ``start=None`` scans
        from the top of the space.
        """
        steps = 0
        if start is None:
            prev_lo = self.limit_pfn + 1
            node = self.tree.maximum()
        else:
            prev_lo = start.pfn_lo
            node = self.tree.predecessor(start)
        mask = ~(align_pages - 1)
        while node is not None:
            candidate = (prev_lo - pages) & mask
            if candidate > node.pfn_hi:
                return candidate, steps
            prev_lo = node.pfn_lo
            node = self.tree.predecessor(node)
            steps += 1
        candidate = (prev_lo - pages) & mask
        if candidate >= 0:
            return candidate, steps
        return None

    def free(self, iova: int, pages: int, cpu: int = 0) -> None:
        """Free a range previously returned by :meth:`alloc`."""
        if self.monitor is not None:
            self.monitor.record(
                IovaFreeEvent(iova, pages, cpu, "rbtree"),
                owner=id(self),
            )
        pfn_lo = iova >> PAGE_SHIFT
        node = self.tree.find(pfn_lo)
        if node is None:
            raise ValueError(f"iova {iova:#x} is not allocated")
        if node.size != pages:
            raise ValueError(
                f"iova {iova:#x} was allocated with {node.size} pages, "
                f"freed with {pages}"
            )
        if self._cached is not None and node.pfn_lo >= self._cached.pfn_lo:
            # Linux __cached_rbnode_delete_update: a free at or above
            # the cached scan position moves the cached node to the
            # freed node's higher neighbour, so the next downward scan
            # sees the hole just opened.
            self._cached = self.tree.successor(node)
        self.tree.delete(node)
        self._charge(cpu, self.tree_op_cost_ns)
        self.free_count += 1
        self.allocated_pages -= pages

    def is_allocated(self, iova: int) -> bool:
        """Whether the page containing ``iova`` is inside any range."""
        return self.tree.find_containing(iova >> PAGE_SHIFT) is not None

    @property
    def total_cpu_ns(self) -> float:
        return sum(self.cpu_ns_by_core.values())

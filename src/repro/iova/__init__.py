"""IOVA allocation: Linux rbtree + per-CPU caches, and F&S chunks."""

from .allocator import (
    DEFAULT_LIMIT_PFN,
    IovaAllocator,
    IovaExhaustedError,
    RbTreeIovaAllocator,
)
from .caching import (
    MAG_SIZE,
    MAX_CACHED_ORDER,
    CachingIovaAllocator,
    Magazine,
)
from .contiguous import DEFAULT_CHUNK_PAGES, ChunkIovaAllocator, IovaChunk
from .rbtree import IovaRange, IovaRbTree

__all__ = [
    "IovaAllocator",
    "RbTreeIovaAllocator",
    "CachingIovaAllocator",
    "ChunkIovaAllocator",
    "IovaChunk",
    "IovaRange",
    "IovaRbTree",
    "Magazine",
    "IovaExhaustedError",
    "DEFAULT_LIMIT_PFN",
    "DEFAULT_CHUNK_PAGES",
    "MAG_SIZE",
    "MAX_CACHED_ORDER",
]

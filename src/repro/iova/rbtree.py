"""A red-black tree of allocated IOVA ranges (the Linux ``iova`` rbtree).

Linux's IOVA allocator keeps every *allocated* range in a red-black
tree sorted by address and allocates new ranges top-down: starting from
the highest allocated node (or a cached scan position), it walks
predecessors until it finds a free gap large enough.  The tree is the
slow path — O(log n) insert/delete plus a potentially linear gap scan —
which is why Linux fronts it with per-CPU caches (see
:mod:`repro.iova.caching`) and why the paper's §2.2 calls out the CPU
efficiency vs. locality trade-off.

This is a textbook red-black tree (CLRS-style, with a NIL sentinel)
specialized to hold :class:`IovaRange` nodes; :meth:`check_invariants`
verifies the red-black properties for the property-based tests.

Units: allocation is done in *page frame numbers* (pfn = iova >> 12),
matching Linux.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["IovaRange", "IovaRbTree"]

RED = 0
BLACK = 1


class IovaRange:
    """One allocated IOVA range ``[pfn_lo, pfn_hi]`` (inclusive)."""

    __slots__ = ("pfn_lo", "pfn_hi", "color", "parent", "left", "right")

    def __init__(self, pfn_lo: int, pfn_hi: int):
        self.pfn_lo = pfn_lo
        self.pfn_hi = pfn_hi
        self.color = RED
        self.parent: Optional["IovaRange"] = None
        self.left: Optional["IovaRange"] = None
        self.right: Optional["IovaRange"] = None

    @property
    def size(self) -> int:
        return self.pfn_hi - self.pfn_lo + 1

    def __repr__(self) -> str:  # pragma: no cover
        color = "R" if self.color == RED else "B"
        return f"<IovaRange [{self.pfn_lo:#x},{self.pfn_hi:#x}] {color}>"


class IovaRbTree:
    """Red-black tree of non-overlapping :class:`IovaRange` nodes."""

    def __init__(self) -> None:
        self.nil = IovaRange(-1, -1)
        self.nil.color = BLACK
        self.nil.parent = self.nil
        self.nil.left = self.nil
        self.nil.right = self.nil
        self.root: IovaRange = self.nil
        self.size = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return self.root is self.nil

    def find(self, pfn_lo: int) -> Optional[IovaRange]:
        """Find the node whose range starts exactly at ``pfn_lo``."""
        node = self.root
        while node is not self.nil:
            if pfn_lo < node.pfn_lo:
                node = node.left
            elif pfn_lo > node.pfn_lo:
                node = node.right
            else:
                return node
        return None

    def find_containing(self, pfn: int) -> Optional[IovaRange]:
        """Find the node whose range contains ``pfn``, if any."""
        node = self.root
        while node is not self.nil:
            if pfn < node.pfn_lo:
                node = node.left
            elif pfn > node.pfn_hi:
                node = node.right
            else:
                return node
        return None

    def maximum(self) -> Optional[IovaRange]:
        """The highest-addressed range."""
        if self.root is self.nil:
            return None
        node = self.root
        while node.right is not self.nil:
            node = node.right
        return node

    def predecessor(self, node: IovaRange) -> Optional[IovaRange]:
        """The next-lower-addressed range."""
        if node.left is not self.nil:
            node = node.left
            while node.right is not self.nil:
                node = node.right
            return node
        parent = node.parent
        while parent is not self.nil and node is parent.left:
            node = parent
            parent = parent.parent
        return None if parent is self.nil else parent

    def successor(self, node: IovaRange) -> Optional[IovaRange]:
        """The next-higher-addressed range."""
        if node.right is not self.nil:
            node = node.right
            while node.left is not self.nil:
                node = node.left
            return node
        parent = node.parent
        while parent is not self.nil and node is parent.right:
            node = parent
            parent = parent.parent
        return None if parent is self.nil else parent

    def __iter__(self) -> Iterator[IovaRange]:
        """In-order (ascending address) iteration."""
        stack: list[IovaRange] = []
        node = self.root
        while stack or node is not self.nil:
            while node is not self.nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node
            node = node.right

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, node: IovaRange) -> None:
        """Insert an :class:`IovaRange`; ranges must not overlap."""
        parent = self.nil
        current = self.root
        while current is not self.nil:
            parent = current
            if node.pfn_lo < current.pfn_lo:
                current = current.left
            else:
                current = current.right
        node.parent = parent
        node.left = self.nil
        node.right = self.nil
        node.color = RED
        if parent is self.nil:
            self.root = node
        elif node.pfn_lo < parent.pfn_lo:
            parent.left = node
        else:
            parent.right = node
        self.size += 1
        self._insert_fixup(node)

    def _insert_fixup(self, node: IovaRange) -> None:
        while node.parent.color == RED:
            parent = node.parent
            grandparent = parent.parent
            if parent is grandparent.left:
                uncle = grandparent.right
                if uncle.color == RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grandparent.color = RED
                    node = grandparent
                else:
                    if node is parent.right:
                        node = parent
                        self._rotate_left(node)
                        parent = node.parent
                        grandparent = parent.parent
                    parent.color = BLACK
                    grandparent.color = RED
                    self._rotate_right(grandparent)
            else:
                uncle = grandparent.left
                if uncle.color == RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grandparent.color = RED
                    node = grandparent
                else:
                    if node is parent.left:
                        node = parent
                        self._rotate_right(node)
                        parent = node.parent
                        grandparent = parent.parent
                    parent.color = BLACK
                    grandparent.color = RED
                    self._rotate_left(grandparent)
        self.root.color = BLACK

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, node: IovaRange) -> None:
        """Remove a node that is in the tree."""
        removed_color = node.color
        if node.left is self.nil:
            replacement = node.right
            self._transplant(node, node.right)
        elif node.right is self.nil:
            replacement = node.left
            self._transplant(node, node.left)
        else:
            successor = node.right
            while successor.left is not self.nil:
                successor = successor.left
            removed_color = successor.color
            replacement = successor.right
            if successor.parent is node:
                replacement.parent = successor
            else:
                self._transplant(successor, successor.right)
                successor.right = node.right
                successor.right.parent = successor
            self._transplant(node, successor)
            successor.left = node.left
            successor.left.parent = successor
            successor.color = node.color
        self.size -= 1
        if removed_color == BLACK:
            self._delete_fixup(replacement)

    def _transplant(self, old: IovaRange, new: IovaRange) -> None:
        if old.parent is self.nil:
            self.root = new
        elif old is old.parent.left:
            old.parent.left = new
        else:
            old.parent.right = new
        new.parent = old.parent

    def _delete_fixup(self, node: IovaRange) -> None:
        while node is not self.root and node.color == BLACK:
            parent = node.parent
            if node is parent.left:
                sibling = parent.right
                if sibling.color == RED:
                    sibling.color = BLACK
                    parent.color = RED
                    self._rotate_left(parent)
                    sibling = parent.right
                if (
                    sibling.left.color == BLACK
                    and sibling.right.color == BLACK
                ):
                    sibling.color = RED
                    node = parent
                else:
                    if sibling.right.color == BLACK:
                        sibling.left.color = BLACK
                        sibling.color = RED
                        self._rotate_right(sibling)
                        sibling = parent.right
                    sibling.color = parent.color
                    parent.color = BLACK
                    sibling.right.color = BLACK
                    self._rotate_left(parent)
                    node = self.root
            else:
                sibling = parent.left
                if sibling.color == RED:
                    sibling.color = BLACK
                    parent.color = RED
                    self._rotate_right(parent)
                    sibling = parent.left
                if (
                    sibling.right.color == BLACK
                    and sibling.left.color == BLACK
                ):
                    sibling.color = RED
                    node = parent
                else:
                    if sibling.left.color == BLACK:
                        sibling.right.color = BLACK
                        sibling.color = RED
                        self._rotate_left(sibling)
                        sibling = parent.left
                    sibling.color = parent.color
                    parent.color = BLACK
                    sibling.left.color = BLACK
                    self._rotate_right(parent)
                    node = self.root
        node.color = BLACK

    # ------------------------------------------------------------------
    # Rotations
    # ------------------------------------------------------------------
    def _rotate_left(self, node: IovaRange) -> None:
        pivot = node.right
        node.right = pivot.left
        if pivot.left is not self.nil:
            pivot.left.parent = node
        pivot.parent = node.parent
        if node.parent is self.nil:
            self.root = pivot
        elif node is node.parent.left:
            node.parent.left = pivot
        else:
            node.parent.right = pivot
        pivot.left = node
        node.parent = pivot

    def _rotate_right(self, node: IovaRange) -> None:
        pivot = node.left
        node.left = pivot.right
        if pivot.right is not self.nil:
            pivot.right.parent = node
        pivot.parent = node.parent
        if node.parent is self.nil:
            self.root = pivot
        elif node is node.parent.right:
            node.parent.right = pivot
        else:
            node.parent.left = pivot
        pivot.right = node
        node.parent = pivot

    # ------------------------------------------------------------------
    # Verification (for property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the red-black and ordering invariants; raises on violation."""
        if self.root.color != BLACK:
            raise AssertionError("root must be black")
        self._check_subtree(self.root)
        ranges = list(self)
        for earlier, later in zip(ranges, ranges[1:]):
            if earlier.pfn_hi >= later.pfn_lo:
                raise AssertionError(
                    f"ranges overlap or are unsorted: {earlier} vs {later}"
                )

    def _check_subtree(self, node: IovaRange) -> int:
        if node is self.nil:
            return 1
        if node.color == RED:
            if node.left.color == RED or node.right.color == RED:
                raise AssertionError("red node has red child")
        left_height = self._check_subtree(node.left)
        right_height = self._check_subtree(node.right)
        if left_height != right_height:
            raise AssertionError("black heights differ")
        return left_height + (1 if node.color == BLACK else 0)

"""The Linux per-CPU IOVA cache ("rcache"): magazines and a depot.

Linux fronts the rbtree allocator with per-CPU caches so the common
alloc/free path is O(1) and lock-free (§2.1 of the paper).  The real
structure, reproduced here:

* per CPU and per size-order, two *magazines* (``loaded`` and ``prev``)
  of up to 127 IOVAs each;
* a global *depot* of full magazines per order;
* only power-of-two sizes up to 32 pages (order 0..5) are cached —
  larger requests (such as F&S's 64-page descriptor chunks) bypass the
  rcache and go straight to the rbtree;
* crucially, **cached IOVAs remain allocated in the rbtree**; their
  tree ranges are only released when a magazine is flushed from an
  overflowing depot.  This means recycling keeps circulating the same
  addresses (the per-core LIFO behaviour whose poor locality the paper
  blames for PTcache-L3 misses), and the circulating address *extent*
  exceeds the live working set by up to the parked-cache population.

The cost model charges a small constant for cache hits and delegates
to the rbtree's cost model on the slow path, letting experiments show
the CPU-efficiency/locality trade-off quantitatively.
"""

from __future__ import annotations

from typing import Optional

from ..iommu.addr import PAGE_SHIFT
from ..obs.hooks import current_registry
from ..verify.events import IovaAllocEvent, IovaFreeEvent
from ..verify.hooks import current_monitor
from .allocator import DEFAULT_LIMIT_PFN, RbTreeIovaAllocator

__all__ = ["Magazine", "CachingIovaAllocator", "MAG_SIZE", "MAX_CACHED_ORDER"]

MAG_SIZE = 127  # Linux IOVA_MAG_SIZE
MAX_CACHED_ORDER = 5  # caches sizes 1..32 pages, like Linux
DEPOT_MAX_MAGS = 32


class Magazine:
    """A fixed-capacity LIFO stack of IOVA pfns."""

    __slots__ = ("pfns",)

    def __init__(self) -> None:
        self.pfns: list[int] = []

    def is_full(self) -> bool:
        return len(self.pfns) >= MAG_SIZE

    def is_empty(self) -> bool:
        return not self.pfns

    def push(self, pfn: int) -> None:
        if self.is_full():
            raise OverflowError("magazine full")
        self.pfns.append(pfn)

    def pop(self) -> int:
        return self.pfns.pop()

    def __len__(self) -> int:
        return len(self.pfns)


class _CpuRcache:
    """Per-CPU, per-order pair of magazines."""

    __slots__ = ("loaded", "prev")

    def __init__(self) -> None:
        self.loaded = Magazine()
        self.prev = Magazine()


def _order_of(pages: int) -> Optional[int]:
    """Cache order for a request size, or ``None`` if not cacheable."""
    if pages <= 0 or pages & (pages - 1):
        return None
    order = pages.bit_length() - 1
    return order if order <= MAX_CACHED_ORDER else None


class CachingIovaAllocator:
    """The Linux ``alloc_iova_fast`` path: per-CPU caches over the rbtree."""

    def __init__(
        self,
        num_cpus: int,
        limit_pfn: int = DEFAULT_LIMIT_PFN,
        cache_hit_cost_ns: float = 25.0,
        depot_cost_ns: float = 120.0,
        tree_op_cost_ns: float = 300.0,
        trace: Optional[list[tuple[int, int]]] = None,
    ) -> None:
        if num_cpus <= 0:
            raise ValueError("need at least one cpu")
        self.num_cpus = num_cpus
        self.trace = trace
        # The rbtree keeps its own (inner) trace disabled; the caching
        # allocator records the user-visible allocation order.
        self.rbtree = RbTreeIovaAllocator(
            limit_pfn=limit_pfn, tree_op_cost_ns=tree_op_cost_ns
        )
        self.cache_hit_cost_ns = cache_hit_cost_ns
        self.depot_cost_ns = depot_cost_ns
        # Safety-invariant monitor (repro.verify); None in normal runs.
        self.monitor = current_monitor()
        self._cpu_rcaches: list[list[_CpuRcache]] = [
            [_CpuRcache() for _ in range(MAX_CACHED_ORDER + 1)]
            for _ in range(num_cpus)
        ]
        self._depot: list[list[Magazine]] = [
            [] for _ in range(MAX_CACHED_ORDER + 1)
        ]
        self.cpu_ns_by_core: dict[int, float] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.alloc_count = 0
        self.free_count = 0
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope("iova.rcache")
            scope.counter("cache_hits", lambda: self.cache_hits)
            scope.counter("cache_misses", lambda: self.cache_misses)
            scope.counter("allocs", lambda: self.alloc_count)
            scope.counter("frees", lambda: self.free_count)
            scope.counter("cpu_ns", lambda: self.total_cpu_ns)
            scope.gauge("cached_iovas", lambda: self.cached_iova_count())

    # ------------------------------------------------------------------
    def _charge(self, cpu: int, cost_ns: float) -> None:
        self.cpu_ns_by_core[cpu] = self.cpu_ns_by_core.get(cpu, 0.0) + cost_ns

    def _record(self, iova: int, pages: int, cpu: int = 0) -> None:
        if self.trace is not None:
            self.trace.append((iova, pages))
        if self.monitor is not None:
            self.monitor.record(
                IovaAllocEvent(iova, pages, cpu, "rcache"),
                owner=id(self),
            )

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, pages: int, cpu: int = 0, align_pages: int = 1) -> int:
        """Allocate; tries the per-CPU cache, depot, then the rbtree.

        Aligned requests (``align_pages > 1``) bypass the caches — the
        rcache does not track alignment, exactly like Linux.
        """
        if not 0 <= cpu < self.num_cpus:
            raise ValueError(f"cpu {cpu} out of range")
        self.alloc_count += 1
        order = _order_of(pages) if align_pages == 1 else None
        if order is not None:
            rcache = self._cpu_rcaches[cpu][order]
            if not rcache.loaded.is_empty():
                pfn = rcache.loaded.pop()
                self._charge(cpu, self.cache_hit_cost_ns)
                self.cache_hits += 1
                iova = pfn << PAGE_SHIFT
                self._record(iova, pages, cpu)
                return iova
            if not rcache.prev.is_empty():
                rcache.loaded, rcache.prev = rcache.prev, rcache.loaded
                pfn = rcache.loaded.pop()
                self._charge(cpu, self.cache_hit_cost_ns)
                self.cache_hits += 1
                iova = pfn << PAGE_SHIFT
                self._record(iova, pages, cpu)
                return iova
            depot = self._depot[order]
            if depot:
                rcache.loaded = depot.pop()
                pfn = rcache.loaded.pop()
                self._charge(cpu, self.depot_cost_ns)
                self.cache_hits += 1
                iova = pfn << PAGE_SHIFT
                self._record(iova, pages, cpu)
                return iova
        # Slow path: the rbtree (fresh address range, top-down).
        self.cache_misses += 1
        iova = self.rbtree.alloc(pages, cpu=cpu, align_pages=align_pages)
        self._record(iova, pages, cpu)
        return iova

    # ------------------------------------------------------------------
    # Free
    # ------------------------------------------------------------------
    def free(self, iova: int, pages: int, cpu: int = 0) -> None:
        """Free; cacheable sizes park in the per-CPU cache (staying
        allocated in the rbtree), larger sizes return to the tree."""
        if not 0 <= cpu < self.num_cpus:
            raise ValueError(f"cpu {cpu} out of range")
        self.free_count += 1
        if self.monitor is not None:
            self.monitor.record(
                IovaFreeEvent(iova, pages, cpu, "rcache"),
                owner=id(self),
            )
        order = _order_of(pages)
        if order is None:
            self.rbtree.free(iova, pages, cpu=cpu)
            return
        rcache = self._cpu_rcaches[cpu][order]
        if rcache.loaded.is_full():
            if not rcache.prev.is_full():
                rcache.loaded, rcache.prev = rcache.prev, rcache.loaded
            else:
                # Push the full magazine to the depot; on overflow the
                # oldest magazine's pfns are finally freed in the tree.
                depot = self._depot[order]
                depot.append(rcache.loaded)
                rcache.loaded = Magazine()
                if len(depot) > DEPOT_MAX_MAGS:
                    flushed = depot.pop(0)
                    for pfn in flushed.pfns:
                        self.rbtree.free(pfn << PAGE_SHIFT, pages, cpu=cpu)
                self._charge(cpu, self.depot_cost_ns)
        rcache.loaded.push(iova >> PAGE_SHIFT)
        self._charge(cpu, self.cache_hit_cost_ns)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cached_iova_count(self) -> int:
        """Total IOVAs parked in magazines and the depot."""
        parked = 0
        for per_cpu in self._cpu_rcaches:
            for rcache in per_cpu:
                parked += len(rcache.loaded) + len(rcache.prev)
        for depot in self._depot:
            parked += sum(len(mag) for mag in depot)
        return parked

    def depot_magazines(self, order: int) -> int:
        return len(self._depot[order])

    @property
    def total_cpu_ns(self) -> float:
        own = sum(self.cpu_ns_by_core.values())
        return own + self.rbtree.total_cpu_ns

"""F&S contiguous IOVA chunk management.

F&S allocates IOVA space in large contiguous, descriptor-sized chunks
(256 KB = 64 pages by default, matching the Mellanox CX-5 descriptor)
and maps individual 4 KB pages into them:

* **Rx**: the driver allocates one chunk per descriptor up front
  (:meth:`ChunkIovaAllocator.alloc_chunk`) and maps the descriptor's 64
  pages to consecutive chunk offsets.

* **Tx**: pages arrive one at a time (a socket buffer per packet/ACK),
  possibly spanning descriptors, so :meth:`alloc_page` slices the
  current per-core chunk sequentially — in NIC access order — and
  starts a new chunk when the old one is fully carved (paper §3, the
  Tx generalization).

A chunk is returned to the underlying allocator only when every one of
its pages has been released, keeping the allocator interface unchanged
(one of F&S's stated properties).  Note that 64-page requests bypass
the Linux rcache (it caches at most 32-page sizes), so F&S chunks come
from the rbtree slow path — at 1/64th the call rate, which is why F&S's
allocator CPU cost stays low despite using the slow path.
"""

from __future__ import annotations

from typing import Optional

from ..iommu.addr import PAGE_SIZE
from .allocator import IovaAllocator

__all__ = ["IovaChunk", "ChunkIovaAllocator", "DEFAULT_CHUNK_PAGES"]

DEFAULT_CHUNK_PAGES = 64  # 256 KB, one CX-5 descriptor


class IovaChunk:
    """One contiguous chunk being carved into page-sized IOVAs."""

    __slots__ = ("base_iova", "pages", "next_slice", "released")

    def __init__(self, base_iova: int, pages: int):
        self.base_iova = base_iova
        self.pages = pages
        self.next_slice = 0
        self.released = 0

    @property
    def exhausted(self) -> bool:
        """All slices handed out (no more allocations from this chunk)."""
        return self.next_slice >= self.pages

    @property
    def fully_released(self) -> bool:
        return self.released >= self.pages

    def take_slice(self) -> int:
        """Hand out the next sequential 4 KB IOVA."""
        if self.exhausted:
            raise RuntimeError("chunk exhausted")
        iova = self.base_iova + self.next_slice * PAGE_SIZE
        self.next_slice += 1
        return iova

    def contains(self, iova: int) -> bool:
        return (
            self.base_iova <= iova < self.base_iova + self.pages * PAGE_SIZE
        )


class ChunkIovaAllocator:
    """Carves page-sized IOVAs out of contiguous per-core chunks."""

    def __init__(
        self,
        base: IovaAllocator,
        num_cpus: int,
        chunk_pages: int = DEFAULT_CHUNK_PAGES,
        align_chunks: bool = False,
    ) -> None:
        if chunk_pages <= 0:
            raise ValueError("chunk_pages must be positive")
        self.base = base
        self.num_cpus = num_cpus
        self.chunk_pages = chunk_pages
        # Hugepage-backed chunks must start on their own size boundary.
        self.align_chunks = align_chunks
        self._current: list[Optional[IovaChunk]] = [None] * num_cpus
        # Chunks with outstanding pages, keyed by base iova.
        self._live_chunks: dict[int, IovaChunk] = {}
        self.chunks_allocated = 0
        self.chunks_freed = 0

    # ------------------------------------------------------------------
    def alloc_chunk(self, cpu: int = 0) -> IovaChunk:
        """Allocate a whole chunk (the Rx per-descriptor path)."""
        if self.align_chunks:
            base_iova = self.base.alloc(
                self.chunk_pages, cpu=cpu, align_pages=self.chunk_pages
            )
        else:
            base_iova = self.base.alloc(self.chunk_pages, cpu=cpu)
        chunk = IovaChunk(base_iova, self.chunk_pages)
        self._live_chunks[base_iova] = chunk
        self.chunks_allocated += 1
        return chunk

    def alloc_page(self, cpu: int = 0) -> int:
        """Allocate the next sequential page IOVA (the Tx path)."""
        return self.alloc_page_with_chunk(cpu=cpu)[0]

    def alloc_page_with_chunk(self, cpu: int = 0) -> tuple[int, IovaChunk]:
        """Like :meth:`alloc_page` but also returns the owning chunk,
        so callers can split later releases at chunk boundaries without
        a lookup."""
        chunk = self._current[cpu]
        if chunk is None or chunk.exhausted:
            chunk = self.alloc_chunk(cpu=cpu)
            self._current[cpu] = chunk
        return chunk.take_slice(), chunk

    # ------------------------------------------------------------------
    def release_pages(self, iova: int, pages: int, cpu: int = 0) -> None:
        """Mark ``pages`` starting at ``iova`` as no longer in use.

        The range must lie within a single chunk — chunks are not
        address-adjacent, so a Tx descriptor that straddles chunks is
        released with one call per chunk (the datapath splits ranges at
        the chunk boundary it already tracks).  When every page of a
        chunk has been released, the chunk returns to the base
        allocator.
        """
        chunk = self._find_chunk(iova)
        if chunk is None:
            raise ValueError(f"iova {iova:#x} is not in a live chunk")
        end = iova + pages * PAGE_SIZE
        if end > chunk.base_iova + chunk.pages * PAGE_SIZE:
            raise ValueError(
                f"release [{iova:#x}, {end:#x}) crosses the chunk boundary; "
                "split the release at chunk granularity"
            )
        chunk.released += pages
        if chunk.released > chunk.pages:
            raise ValueError(f"chunk {chunk.base_iova:#x} over-released")
        if chunk.fully_released:
            del self._live_chunks[chunk.base_iova]
            if self._current[cpu] is chunk:
                self._current[cpu] = None
            self.base.free(chunk.base_iova, chunk.pages, cpu=cpu)
            self.chunks_freed += 1

    def release_chunk(self, chunk: IovaChunk, cpu: int = 0) -> None:
        """Release a whole chunk at once (the Rx per-descriptor path)."""
        if chunk.base_iova not in self._live_chunks:
            raise ValueError(f"chunk {chunk.base_iova:#x} is not live")
        del self._live_chunks[chunk.base_iova]
        self.base.free(chunk.base_iova, chunk.pages, cpu=cpu)
        self.chunks_freed += 1

    def chunk_of(self, iova: int) -> Optional[IovaChunk]:
        """The live chunk containing ``iova``, if any (for boundary
        splitting in the Tx datapath)."""
        return self._find_chunk(iova)

    # ------------------------------------------------------------------
    def _find_chunk(self, iova: int) -> Optional[IovaChunk]:
        base = iova - (iova % (self.chunk_pages * PAGE_SIZE))
        # Chunks are chunk-size-strided only if the base allocator
        # aligned them; fall back to a scan of live chunks otherwise.
        chunk = self._live_chunks.get(base)
        if chunk is not None and chunk.contains(iova):
            return chunk
        for candidate in self._live_chunks.values():
            if candidate.contains(iova):
                return candidate
        return None

    @property
    def live_chunk_count(self) -> int:
        return len(self._live_chunks)

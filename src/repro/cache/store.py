"""The content-addressed on-disk store behind the result cache.

Layout: one pickle per cell under ``<dir>/objects/<aa>/<key>.pkl``,
where ``key`` is a SHA-256 over everything that determines the cell's
output:

* the cell coordinates (figure, runner, mode, x, label, derived seed);
* the :class:`~repro.experiments.settings.RunScale` durations;
* the observation shape (whether metrics are collected, the sampling
  interval and cap — these change the recorded phase payload);
* the key context installed by :func:`repro.cache.hooks.cache_keyed`
  (``repro reproduce`` supplies the figure's expectation-spec digest
  parts here);
* the code fingerprint of the cell's registered point runner
  (:mod:`repro.cache.fingerprint` — file-content hashing, so dirty
  worktrees invalidate exactly as edits land on disk).

An entry stores the runner's pickled return value plus the cell's
recorded metrics phase payload, which a warm sweep adopts into the
parent registry exactly like a worker-process payload — the mechanism
PR 5 proved byte-identical to inline execution.

Writes are atomic (temp file + rename) so concurrent ``repro serve``
jobs can share one store; a hit refreshes the entry's mtime, which is
the recency signal ``gc`` evicts by.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from .fingerprint import runner_fingerprint

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.settings import RunScale
    from ..parallel.spec import PointSpec

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "DEFAULT_GC_MAX_BYTES",
    "CACHE_DIR_ENV",
]

SCHEMA = "repro.cache/1"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_GC_MAX_BYTES = 1 << 30  # 1 GiB


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache``."""
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


@dataclass
class CacheStats:
    """Per-run counters; one instance lives on each :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def summary(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.bytes_read} B read, {self.bytes_written} B written"
        )


class ResultCache:
    """A content-addressed store of sweep-cell results."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = Path(directory or default_cache_dir())
        self.stats = CacheStats()
        # Extra key material installed by ``cache_keyed`` (the figure's
        # expectation-spec digest parts during ``repro reproduce``).
        self.key_context: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def fingerprint_for(self, runner_key: str) -> str:
        """The code fingerprint half of a key (patchable in tests)."""
        return runner_fingerprint(runner_key)

    def key_for(
        self,
        spec: "PointSpec",
        scale: "RunScale",
        *,
        collect: bool,
        sample_interval_ns: Optional[float],
        max_samples: int,
    ) -> str:
        """The content address of one cell under the current context."""
        material = {
            "schema": SCHEMA,
            "cell": [
                spec.figure,
                spec.runner,
                spec.mode,
                repr(spec.x),
                spec.label,
                spec.seed,
            ],
            "scale": [
                scale.name,
                scale.warmup_ns,
                scale.measure_ns,
                scale.latency_measure_ns,
            ],
            "observe": [collect, sample_interval_ns, max_samples],
            "context": list(self.key_context),
            "code": self.fingerprint_for(spec.runner),
        }
        return hashlib.sha256(
            json.dumps(material, sort_keys=True).encode()
        ).hexdigest()

    def _path_for(self, key: str) -> Path:
        return self.directory / "objects" / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[tuple]:
        """``(value, phase_payload)`` for ``key``, or ``None`` on miss.

        Any unreadable, corrupt or mismatched entry is a miss (and is
        removed so it cannot fail repeatedly); a hit refreshes the
        entry's mtime for LRU eviction.
        """
        path = self._path_for(key)
        try:
            blob = path.read_bytes()
            entry = pickle.loads(blob)
        except OSError:
            self.stats.misses += 1
            return None
        except Exception:
            self._remove(path)
            self.stats.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != SCHEMA
            or entry.get("key") != key
        ):
            self._remove(path)
            self.stats.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        self.stats.bytes_read += len(blob)
        return (entry.get("value"), entry.get("phase"))

    def store(
        self,
        key: str,
        value: object,
        phase_payload: Optional[dict],
        *,
        spec: Optional["PointSpec"] = None,
    ) -> bool:
        """Write one entry atomically; ``False`` if it was unpicklable."""
        entry = {
            "schema": SCHEMA,
            "key": key,
            "figure": spec.figure if spec is not None else None,
            "runner": spec.runner if spec is not None else None,
            "label": spec.label if spec is not None else None,
            "value": value,
            "phase": phase_payload,
        }
        try:
            blob = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        path = self._path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, temp = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(temp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(temp)
                raise
        except OSError:
            return False
        self.stats.stores += 1
        self.stats.bytes_written += len(blob)
        return True

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Operability: stats / gc / clear
    # ------------------------------------------------------------------
    def _entries(self) -> list[tuple[Path, os.stat_result]]:
        objects = self.directory / "objects"
        entries = []
        if not objects.is_dir():
            return entries
        for path in sorted(objects.rglob("*.pkl")):
            if path.name.startswith(".tmp-"):
                continue
            try:
                entries.append((path, path.stat()))
            except OSError:
                continue
        return entries

    def disk_stats(self) -> dict:
        """What is on disk now (as opposed to this run's counters)."""
        entries = self._entries()
        total = sum(stat.st_size for _, stat in entries)
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": total,
        }

    def gc(
        self,
        max_bytes: int = DEFAULT_GC_MAX_BYTES,
        max_age_days: Optional[float] = None,
    ) -> dict:
        """Evict entries: stale ones first, then LRU down to the budget.

        ``max_age_days`` drops anything whose mtime (refreshed on every
        hit) is older; afterwards, if the store still exceeds
        ``max_bytes``, the least-recently-used entries go until it
        fits.  Returns ``{"evicted": n, "freed_bytes": b, ...}``.
        """
        entries = self._entries()
        # Wall clock by design: cache age is a host-side, operational
        # concept, not part of any simulated timeline.
        now = time.time()  # noqa: REPRO001
        evicted = 0
        freed = 0
        kept: list[tuple[Path, os.stat_result]] = []
        for path, stat in entries:
            if (
                max_age_days is not None
                and now - stat.st_mtime > max_age_days * 86400.0
            ):
                self._remove(path)
                evicted += 1
                freed += stat.st_size
            else:
                kept.append((path, stat))
        total = sum(stat.st_size for _, stat in kept)
        # Oldest mtime first = least recently used first.
        kept.sort(key=lambda item: (item[1].st_mtime, str(item[0])))
        for path, stat in kept:
            if total <= max_bytes:
                break
            self._remove(path)
            evicted += 1
            freed += stat.st_size
            total -= stat.st_size
        return {
            "directory": str(self.directory),
            "evicted": evicted,
            "freed_bytes": freed,
            "remaining_bytes": total,
        }

    def clear(self) -> dict:
        """Remove every entry; returns the same shape as :meth:`gc`."""
        entries = self._entries()
        freed = sum(stat.st_size for _, stat in entries)
        for path, _stat in entries:
            self._remove(path)
        return {
            "directory": str(self.directory),
            "evicted": len(entries),
            "freed_bytes": freed,
            "remaining_bytes": 0,
        }

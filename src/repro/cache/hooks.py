"""Global result-cache registration: how the sweep executor finds it.

Same pattern as :mod:`repro.obs.hooks` and :mod:`repro.verify.hooks`:
:func:`repro.parallel.run_points` reads :func:`current_result_cache`
once per sweep; with no cache installed the lookup costs one global
read and a comparison, so un-cached runs are unaffected.

:func:`cache_keyed` adds context to every key computed inside its
block — ``repro reproduce`` wraps each figure's sweep in the figure's
expectation-spec digest parts, so editing a spec invalidates exactly
that figure's cells.

This module is a leaf: it must not import the store (or anything else
from ``repro``) so the executor can import it without cycles.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from .store import ResultCache

__all__ = [
    "current_result_cache",
    "set_result_cache",
    "result_cached",
    "cache_keyed",
]

_CACHE: Optional["ResultCache"] = None


def current_result_cache() -> Optional["ResultCache"]:
    """The globally installed result cache, or ``None`` (the default)."""
    return _CACHE


def set_result_cache(cache: Optional["ResultCache"]) -> None:
    """Install ``cache`` globally; sweeps consult it before dispatch."""
    global _CACHE
    _CACHE = cache


@contextlib.contextmanager
def result_cached(
    cache: Optional["ResultCache"],
) -> Iterator[Optional["ResultCache"]]:
    """Install ``cache`` for the duration of a ``with`` block.

    ``None`` is accepted and installs nothing, so callers can thread an
    optional cache without branching.
    """
    previous = current_result_cache()
    set_result_cache(cache)
    try:
        yield cache
    finally:
        set_result_cache(previous)


@contextlib.contextmanager
def cache_keyed(parts: Sequence[str]) -> Iterator[None]:
    """Mix ``parts`` into every cache key computed inside the block.

    A no-op when no cache is installed.  Nesting replaces (not stacks)
    the context: each figure's sweep runs under its own spec digest.
    """
    cache = current_result_cache()
    if cache is None:
        yield
        return
    previous = cache.key_context
    cache.key_context = tuple(parts)
    try:
        yield
    finally:
        cache.key_context = previous

"""Content-addressed result cache for sweep cells.

``repro reproduce`` is fully deterministic: a cell's output is a pure
function of its :class:`~repro.parallel.spec.PointSpec` coordinates,
its derived seed, the run scale, the expectation spec text and the
code that runs it.  This package keys each cell on exactly those
inputs (:mod:`repro.cache.store`), so an unchanged cell is served from
an on-disk store instead of re-simulated — the same
redundant-work-on-unchanged-input structure the paper's IOTLB/PTcache
attacks, applied to the reproduction pipeline itself.

The cache is ambient, like the metrics registry and invariant monitor
(:mod:`repro.cache.hooks`): ``with result_cached(cache): ...`` makes
:func:`repro.parallel.run_points` consult the store before dispatching
any cell, on the serial, ``--jobs N`` and chunked paths alike.
"""

from .fingerprint import runner_fingerprint, tree_fingerprint
from .hooks import (
    cache_keyed,
    current_result_cache,
    result_cached,
    set_result_cache,
)
from .store import CacheStats, ResultCache, default_cache_dir

__all__ = [
    "CacheStats",
    "ResultCache",
    "cache_keyed",
    "current_result_cache",
    "default_cache_dir",
    "result_cached",
    "runner_fingerprint",
    "set_result_cache",
    "tree_fingerprint",
]

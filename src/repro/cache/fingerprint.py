"""Code fingerprints: which source bytes determine a cell's output.

A cache entry must die when the code that produced it changes.  The
fingerprint of a point runner is a SHA-256 over the *contents* of the
transitive source closure of its module — every ``repro`` file the
runner's module reaches through static ``import`` statements.  Hashing
file contents (not git state) means a dirty worktree invalidates
exactly as an edit lands on disk: there is no window where a stale
cache can mask an uncommitted change.

The closure is computed by parsing ``import``/``from ... import``
statements with :mod:`ast` — no module execution, no dependence on
what happens to be in ``sys.modules`` — and resolving them to files
under the installed ``repro`` package.  Anything that fails to resolve
(or any IO/parse error) falls back to :func:`tree_fingerprint`, a
digest of the whole package tree: conservative, never stale.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import Iterable, Optional

__all__ = [
    "runner_fingerprint",
    "module_closure",
    "tree_fingerprint",
    "clear_fingerprint_cache",
]

_PACKAGE = "repro"

# Per-process memoization: the closure walk reads every file it hashes,
# and a sweep asks for the same runner's fingerprint once per cell.
_FINGERPRINTS: dict[str, str] = {}
_TREE_FINGERPRINT: Optional[str] = None


def clear_fingerprint_cache() -> None:
    """Drop memoized fingerprints (tests that edit source trees)."""
    global _TREE_FINGERPRINT
    _FINGERPRINTS.clear()
    _TREE_FINGERPRINT = None


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _module_file(root: Path, dotted: str) -> Optional[Path]:
    """The file for ``repro.x.y`` under ``root``, or ``None``."""
    parts = dotted.split(".")
    if parts[0] != _PACKAGE:
        return None
    rel = parts[1:]
    candidate = root.joinpath(*rel).with_suffix(".py") if rel else None
    if candidate is not None and candidate.is_file():
        return candidate
    package = root.joinpath(*rel, "__init__.py")
    if package.is_file():
        return package
    return None


def _absolute_name(module_name: str, node: ast.ImportFrom) -> Optional[str]:
    """Resolve a (possibly relative) ``from`` import to a dotted name."""
    if node.level == 0:
        return node.module
    # ``module_name`` is the importing module; its package is the name
    # minus the final component (or itself for an ``__init__``; the
    # distinction only matters one level up, and over-approximating by
    # one package is harmless for a closure).
    base = module_name.split(".")
    base = base[: len(base) - node.level]
    if not base:
        return None
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def _imported_names(
    module_name: str, tree: ast.AST
) -> Iterable[str]:
    """Every dotted module name a module's source mentions importing.

    ``from repro.x import y`` yields both ``repro.x`` and ``repro.x.y``
    — ``y`` may itself be a module, and resolving both costs only a
    pair of ``is_file`` probes.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom):
            resolved = _absolute_name(module_name, node)
            if resolved is None:
                continue
            yield resolved
            for alias in node.names:
                yield f"{resolved}.{alias.name}"


def module_closure(module_name: str) -> list[Path]:
    """The transitive in-package source files reachable from a module.

    Raises on unreadable/unparseable sources so callers can fall back
    to the whole-tree digest rather than fingerprint a partial view.
    """
    root = _package_root()
    start = _module_file(root, module_name)
    if start is None:
        raise FileNotFoundError(module_name)
    seen: dict[Path, str] = {start: module_name}
    queue = [(module_name, start)]
    while queue:
        name, path = queue.pop()
        tree = ast.parse(path.read_bytes(), filename=str(path))
        for dotted in _imported_names(name, tree):
            target = _module_file(root, dotted)
            if target is None or target in seen:
                continue
            seen[target] = dotted
            queue.append((dotted, target))
    return sorted(seen)


def _digest_files(root: Path, files: Iterable[Path]) -> str:
    digest = hashlib.sha256()
    for path in files:
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def tree_fingerprint() -> str:
    """SHA-256 over every ``.py`` file of the installed package tree."""
    global _TREE_FINGERPRINT
    if _TREE_FINGERPRINT is None:
        root = _package_root()
        files = sorted(
            p for p in root.rglob("*.py") if "__pycache__" not in p.parts
        )
        _TREE_FINGERPRINT = _digest_files(root, files)
    return _TREE_FINGERPRINT


def runner_fingerprint(runner_key: str) -> str:
    """The code fingerprint for one registered point runner.

    The closure starts at the module that *defines* the registered
    callable.  Runners registered from outside the ``repro`` package
    (tests register scratch runners) have no resolvable closure and get
    the conservative whole-tree digest.
    """
    cached = _FINGERPRINTS.get(runner_key)
    if cached is not None:
        return cached
    from ..experiments.points import POINT_RUNNERS

    runner = POINT_RUNNERS.get(runner_key)
    module_name = getattr(runner, "__module__", None) or ""
    try:
        files = module_closure(module_name)
        root = _package_root()
        value = _digest_files(root, files)
    except (OSError, SyntaxError, ValueError):
        value = tree_fingerprint()
    _FINGERPRINTS[runner_key] = value
    return value

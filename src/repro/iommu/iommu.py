"""The IOMMU: translation, caching, walking and fault semantics.

This class glues together the IO page table, IOTLB, PTcache hierarchy
and invalidation queue, and exposes the two operations the datapath
performs:

* :meth:`translate` — the per-PCIe-transaction address translation:
  IOTLB probe; on miss a walk shortened by the PTcaches, counting the
  memory reads the walk needs (1 in the best case, 4 in the worst);

* :meth:`reserve_walk` — the *timing* side: page-walk memory reads are
  serialized at the page-table walker and cost ``lm`` (197 ns by the
  paper's fit) each.  Rx and Tx translations share the walker, which is
  how Tx/ACK traffic inflates Rx DMA latency (paper §2.2).

A DMA to an unmapped IOVA raises :class:`DmaFault` — the safety
property.  Strict mode and F&S guarantee that a device access after
unmap faults; the deferred mode does not (stale IOTLB entries may still
translate), which the safety tests demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..faults.hooks import injector_for
from ..mem.latency import DEFAULT_LM_NS, MemoryLatencyModel
from ..obs.hooks import current_registry
from ..verify.events import (
    DmaFaultEvent,
    MapEvent,
    TranslateEvent,
    UnmapEvent,
)
from ..verify.hooks import current_monitor
from .faultq import (
    DEFAULT_FAULT_ABORT_LATENCY_NS,
    DEFAULT_FAULT_QUEUE_CAPACITY,
    FaultReportingQueue,
)
from .invalidation import InvalidationQueue
from .iotlb import Iotlb
from .pagetable import IOPageTable
from .ptcache import PtCacheHierarchy
from .stats import IommuStats

__all__ = ["Iommu", "IommuConfig", "TranslationResult", "DmaFault"]


class DmaFault(Exception):
    """A DMA targeted an IOVA with no valid translation.

    In hardware this aborts the transaction and logs a fault; raising is
    the simulation's way of catching any safety violation immediately.
    """

    def __init__(self, iova: int):
        super().__init__(f"DMA fault: iova {iova:#x} has no translation")
        self.iova = iova


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of one translation.

    ``memory_reads`` is 0 on an IOTLB hit; otherwise the number of IO
    page table accesses the (PTcache-shortened) walk performed.
    ``stale`` flags a translation served from a stale IOTLB entry after
    unmap (possible only in deferred mode) — a safety violation.
    ``aborted`` means the transaction was killed by the hard-fault path
    (fault queue attached): no data moved, a fault record was logged,
    and ``frame`` is meaningless.
    """

    frame: int
    iotlb_hit: bool
    memory_reads: int
    stale: bool = False
    aborted: bool = False


@dataclass
class IommuConfig:
    """Cache geometry and timing knobs for the IOMMU model."""

    iotlb_entries: int = 128
    iotlb_ways: int = 8
    # Verify on every IOTLB hit that the page table still maps the IOVA
    # (detects stale-entry use).  Strict mode and F&S invalidate on every
    # unmap, so an IOTLB hit implies a live mapping and the check is
    # skipped for speed; the deferred driver enables it to surface its
    # safety hole in the tests.
    check_stale_hits: bool = False
    ptcache_l1_entries: int = 32
    ptcache_l2_entries: int = 32
    ptcache_l3_entries: int = 64
    lm_ns: float = DEFAULT_LM_NS
    invalidation_cpu_ns: float = 250.0
    trace_invalidations: bool = False
    # Concurrent page-table walkers.  Hardware IOMMUs track several
    # walks in flight; reads *within* one walk are sequential (each
    # level's read depends on the previous), but walks for different
    # pages proceed in parallel.  The default of 2 reproduces the
    # paper's serial-reads-per-packet throughput model at 4 KB MTU
    # while letting multi-page (9 K MTU) DMAs overlap their per-page
    # walks, as the fitted lm = 197 ns implies.
    walkers: int = 2
    # Hard-fault path.  When True, a DMA to an unmapped IOVA is aborted
    # and logged to a FaultReportingQueue instead of raising DmaFault —
    # how real hardware behaves.  Off by default: the raise is the
    # safety tests' violation detector and must stay the default.
    fault_queue: bool = False
    fault_queue_capacity: int = DEFAULT_FAULT_QUEUE_CAPACITY
    fault_abort_latency_ns: float = DEFAULT_FAULT_ABORT_LATENCY_NS


class Iommu:
    """The full IOMMU model (translation caches + page table + walker)."""

    def __init__(self, config: IommuConfig | None = None) -> None:
        self.config = config or IommuConfig()
        # Safety-invariant monitor (repro.verify); None in normal runs.
        self.monitor = current_monitor()
        self.page_table = IOPageTable()
        self.iotlb = Iotlb(self.config.iotlb_entries, self.config.iotlb_ways)
        self.ptcaches = PtCacheHierarchy(
            self.config.ptcache_l1_entries,
            self.config.ptcache_l2_entries,
            self.config.ptcache_l3_entries,
        )
        self.stats = IommuStats()
        self.invalidation_queue = InvalidationQueue(
            self.iotlb,
            self.ptcaches,
            self.stats,
            cpu_cost_ns=self.config.invalidation_cpu_ns,
            trace=self.config.trace_invalidations,
        )
        self.memory = MemoryLatencyModel(base_read_ns=self.config.lm_ns)
        # Hard-fault path: PRI-style fault log + spurious-fault injector.
        # With no queue attached (the default) unmapped DMAs raise.
        self.fault_queue: Optional[FaultReportingQueue] = None
        if self.config.fault_queue:
            self.fault_queue = FaultReportingQueue(
                capacity=self.config.fault_queue_capacity,
                abort_latency_ns=self.config.fault_abort_latency_ns,
            )
        self.faults = injector_for("iommu")
        # Set by an aborting translate(), consumed by the driver's
        # translate_for_dma() wrapper; a flag rather than a field on
        # every TranslationResult keeps driver translate() signatures
        # (and their subclass overrides) untouched.
        self._abort_pending = False
        if self.config.walkers <= 0:
            raise ValueError("need at least one walker")
        self._walker_free = [0.0] * self.config.walkers
        # One-entry translation fast path.  The NIC splits every 4 KB
        # page into max_payload-sized TLPs, so consecutive translate()
        # calls overwhelmingly repeat the same (source, page).  Cache
        # the last hit keyed on (source, page, IOTLB generation): any
        # IOTLB mutation — insert, eviction, invalidation, flush —
        # bumps the generation and kills the entry, so the cache can
        # never outlive the IOTLB entry it mirrors.  Disabled when a
        # hit needs per-call work the cache would skip (stale-hit
        # checking in deferred mode, the invariant monitor).
        self._fast_enabled = (
            self.monitor is None and not self.config.check_stale_hits
        )
        self._fast_page = -1
        self._fast_source = ""
        self._fast_gen = -1
        self._fast_result: Optional[TranslationResult] = None
        self.obs = current_registry()
        # Hoisted once: reserve_walk runs per page walk and must not
        # re-dereference obs.tracer each time.
        self._tracer = self.obs.tracer if self.obs is not None else None
        if self.obs is not None:
            scope = self.obs.scope("iommu")
            scope.counter("translations", lambda: self.stats.translations)
            scope.counter("iotlb_hits", lambda: self.stats.iotlb_hits)
            scope.counter("iotlb_misses", lambda: self.stats.iotlb_misses)
            scope.counter("walks", lambda: self.stats.walks)
            scope.counter("memory_reads", lambda: self.stats.memory_reads)
            scope.counter("faults", lambda: self.stats.faults)
            scope.counter(
                "invalidation_requests",
                lambda: self.stats.invalidation_requests,
            )
            for level in (1, 2, 3):
                scope.counter(
                    f"ptcache_m{level}",
                    lambda level=level: (
                        self.stats.ptcache_counted_misses[level]
                    ),
                )

    # ------------------------------------------------------------------
    # Translation (the per-transaction fast path)
    # ------------------------------------------------------------------
    def translate(self, iova: int, source: str = "rx") -> TranslationResult:
        """Translate one IOVA as the root complex would.

        Probes the IOTLB; on a miss, probes the PTcaches (in parallel,
        deepest hit wins), walks the remaining levels, refills every
        cache, and reports the number of memory reads the walk cost.
        Raises :class:`DmaFault` if no translation exists anywhere.
        """
        stats = self.stats
        stats.translations += 1
        by_source = stats.translations_by_source
        by_source[source] = by_source.get(source, 0) + 1

        if (
            self.faults is not None
            and self.fault_queue is not None
            and self.faults.spurious_fault(iova, source)
        ):
            # Fault storm: the access is perfectly valid but the
            # reporting path aborts it anyway.  Rolled per translation,
            # so this must run before the fast-path replay.
            return self._abort(iova, source, "storm")

        iotlb = self.iotlb
        if (
            self._fast_page == (iova >> 12)
            and self._fast_gen == iotlb.generation
            and self._fast_source == source
        ):
            # Same page, same IOTLB state: replay the cached hit.  All
            # counters an IOTLB hit would touch are still bumped, and
            # re-touching the MRU entry's LRU position is a no-op, so
            # statistics and cache state match the slow path exactly.
            stats.iotlb_hits += 1
            iotlb.hits += 1
            return self._fast_result  # type: ignore[return-value]

        frame = iotlb.lookup(iova)
        if frame is not None:
            stats.iotlb_hits += 1
            # A present IOTLB entry is used without consulting the page
            # table — if the page table no longer maps this IOVA the
            # access is *stale* (deferred-mode safety hole).
            stale = (
                self.config.check_stale_hits
                and not self.page_table.is_mapped(iova)
            )
            if self.monitor is not None:
                self.monitor.record(
                    TranslateEvent(iova, source, True, stale, frame),
                    owner=id(self.iotlb),
                )
            result = TranslationResult(
                frame=frame, iotlb_hit=True, memory_reads=0, stale=stale
            )
            if self._fast_enabled:
                self._fast_page = iova >> 12
                self._fast_source = source
                self._fast_gen = iotlb.generation
                self._fast_result = result
            return result

        stats.iotlb_misses += 1
        misses_by_source = stats.iotlb_misses_by_source
        misses_by_source[source] = misses_by_source.get(source, 0) + 1

        walk = self.page_table.walk(iova)
        if walk is None:
            if self.fault_queue is not None:
                return self._abort(iova, source, "unmapped")
            stats.faults += 1
            if self.monitor is not None:
                self.monitor.record(
                    DmaFaultEvent(iova, source), owner=id(self.iotlb)
                )
            raise DmaFault(iova)
        stats.walks += 1
        if walk.huge:
            # The walk terminates at the PT-L3 entry: only PTcache-L1
            # and PTcache-L2 can shorten it (1-3 memory reads).
            outcome = self.ptcaches.probe_upper(iova)
            memory_reads = outcome.memory_reads - 1
            self.ptcaches.fill_upper(iova, walk.pages)
            self.iotlb.insert_huge(
                iova, walk.frame - ((iova >> 12) & 511)
            )
        else:
            outcome = self.ptcaches.probe(iova)
            memory_reads = outcome.memory_reads
            self.ptcaches.fill(iova, walk.pages)
            self.iotlb.insert(iova, walk.frame)
        stats.memory_reads += memory_reads
        for level in (1, 2, 3):
            if outcome.counted_misses[level]:
                stats.ptcache_counted_misses[level] += 1
        if self.monitor is not None:
            self.monitor.record(
                TranslateEvent(iova, source, False, False, walk.frame),
                owner=id(self.iotlb),
            )
        if self._fast_enabled:
            # The insert above made this page the IOTLB's MRU entry:
            # the *next* translate of it would be a plain hit, so cache
            # a hit-shaped result (generation snapshot is post-insert).
            self._fast_page = iova >> 12
            self._fast_source = source
            self._fast_gen = iotlb.generation
            self._fast_result = TranslationResult(
                frame=walk.frame, iotlb_hit=True, memory_reads=0
            )
        return TranslationResult(
            frame=walk.frame,
            iotlb_hit=False,
            memory_reads=memory_reads,
        )

    def _abort(
        self, iova: int, source: str, reason: str
    ) -> TranslationResult:
        """Hard-fault path: kill the transaction and log a record."""
        self.stats.faults += 1
        if self.monitor is not None:
            self.monitor.record(
                DmaFaultEvent(iova, source), owner=id(self.iotlb)
            )
        assert self.fault_queue is not None
        self.fault_queue.report(iova, source, reason)
        self._abort_pending = True
        return TranslationResult(
            frame=0, iotlb_hit=False, memory_reads=0, aborted=True
        )

    def consume_abort(self) -> bool:
        """True iff the most recent :meth:`translate` call aborted.

        Drivers' ``translate()`` overrides return only a read count, so
        the abort outcome travels out-of-band through this one-shot
        flag; :meth:`~repro.protection.base.ProtectionDriver.
        translate_for_dma` is the only consumer.
        """
        if self._abort_pending:
            self._abort_pending = False
            return True
        return False

    def enable_stale_hit_checks(self) -> None:
        """Turn on the per-hit stale check (deferred-mode diagnostics).

        Must be used instead of flipping ``config.check_stale_hits``
        directly: a cached fast-path entry replays hits without
        consulting the page table, which would hide exactly the stale
        accesses the check exists to surface, so the fast path is
        disabled and any armed entry is dropped.
        """
        self.config.check_stale_hits = True
        self._fast_enabled = False
        self._fast_page = -1
        self._fast_result = None

    # ------------------------------------------------------------------
    # Walker timing
    # ------------------------------------------------------------------
    def reserve_walk(
        self,
        now: float,
        memory_reads: int,
        utilization: float = 0.0,
        channel: Optional[int] = None,
    ) -> float:
        """Reserve one walk of ``memory_reads`` *sequential* reads.

        Reads within a walk serialize (each level's read depends on the
        previous); walks for different pages run on the IOMMU's walker
        channels.  By default a walk takes the least-loaded channel —
        concurrent walks overlap up to the walker count and queue
        beyond it, which is what makes cheap (1-read) F&S walks almost
        free while expensive (4-read) post-invalidation walks back up.
        Passing ``channel`` pins the walk for tests.  ``utilization``
        optionally inflates per-read latency under memory-bandwidth
        contention.  Returns the completion time.
        """
        if memory_reads <= 0:
            return now
        read_ns = self.memory.read_latency_ns(utilization)
        channels = self._walker_free
        if channel is None:
            index = min(range(len(channels)), key=channels.__getitem__)
        else:
            index = channel % len(channels)
        start = max(now, channels[index])
        finish = start + memory_reads * read_ns
        channels[index] = finish
        if self._tracer is not None:
            self._tracer.complete(
                "walk",
                f"walker{index}",
                start,
                finish - start,
                reads=memory_reads,
            )
        return finish

    @property
    def walker_busy_until(self) -> float:
        """When the most-loaded walker channel frees up."""
        return max(self._walker_free)

    # ------------------------------------------------------------------
    # Mapping interface used by protection drivers
    # ------------------------------------------------------------------
    def map_page(self, iova: int, frame: int) -> None:
        self.page_table.map_page(iova, frame)
        if self.monitor is not None:
            self.monitor.record(
                MapEvent(iova, 1 << 12), owner=id(self.iotlb)
            )

    def map_range(self, iova: int, frames: list[int]) -> None:
        self.page_table.map_range(iova, frames)
        if self.monitor is not None:
            self.monitor.record(
                MapEvent(iova, len(frames) << 12), owner=id(self.iotlb)
            )

    def map_huge(self, iova: int, base_frame: int) -> None:
        """Install a 2 MB leaf (see :meth:`IOPageTable.map_huge`)."""
        self.page_table.map_huge(iova, base_frame)
        if self.monitor is not None:
            self.monitor.record(
                MapEvent(iova, 1 << 21, huge=True), owner=id(self.iotlb)
            )

    def unmap_range(self, iova: int, length: int):
        """Unmap a range in one operation; returns reclaimed PT pages."""
        reclaimed = self.page_table.unmap_range(iova, length)
        if self.monitor is not None:
            self.monitor.record(
                UnmapEvent(
                    iova,
                    length,
                    tuple(page.level for page in reclaimed),
                ),
                owner=id(self.iotlb),
            )
        return reclaimed

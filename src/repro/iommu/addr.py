"""IOVA address arithmetic for the 4-level Intel VT-d style IO page table.

IOVAs are 48 bits wide and translated through four page-table levels
(the paper's PT-L1 .. PT-L4; PT-L1 is the root).  Each page-table page
holds 512 8-byte entries, so each level consumes 9 bits of the IOVA:

====== ============== ======================= =========================
Level  IOVA bits      One *entry* covers      One *page* covers
====== ============== ======================= =========================
PT-L1  [39, 48)       512 GB  (2^39 bytes)    256 TB (the whole space)
PT-L2  [30, 39)       1 GB    (2^30 bytes)    512 GB
PT-L3  [21, 30)       2 MB    (2^21 bytes)    1 GB
PT-L4  [12, 21)       4 KB    (2^12 bytes)    2 MB
====== ============== ======================= =========================

The IO page table caches mirror this: a PTcache-L1 entry maps IOVA bits
[39, 48) to a PT-L2 page (so it covers 2^39 bytes of IOVA space), a
PTcache-L2 entry covers 2^30 bytes, a PTcache-L3 entry covers 2^21
bytes.  These coverage numbers are exactly the ones the paper's §2.2
reasoning relies on.
"""

from __future__ import annotations

__all__ = [
    "IOVA_BITS",
    "IOVA_SPACE_SIZE",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "LEVEL_SHIFTS",
    "ENTRIES_PER_PAGE",
    "PTL4_PAGE_SHIFT",
    "PTL4_PAGE_SIZE",
    "PTL3_PAGE_SHIFT",
    "PTL2_PAGE_SHIFT",
    "vpn",
    "level_index",
    "ptcache_key",
    "ptcache_coverage_bytes",
    "page_align_down",
    "page_align_up",
]

IOVA_BITS = 48
IOVA_SPACE_SIZE = 1 << IOVA_BITS

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

ENTRIES_PER_PAGE = 512  # 9 bits per level

# Shift of the *entry coverage* at each level, keyed by level number
# (1 = root).  A PT-Ln entry selected by IOVA bits [shift, shift + 9).
LEVEL_SHIFTS = {1: 39, 2: 30, 3: 21, 4: 12}

# A PT-L4 page (the leaf page) covers 512 * 4 KB = 2 MB of IOVA space.
PTL4_PAGE_SHIFT = 21
PTL4_PAGE_SIZE = 1 << PTL4_PAGE_SHIFT
# A PT-L3 page covers 1 GB; a PT-L2 page covers 512 GB.
PTL3_PAGE_SHIFT = 30
PTL2_PAGE_SHIFT = 39


def vpn(iova: int) -> int:
    """Virtual page number of an IOVA (its 4 KB page index)."""
    return iova >> PAGE_SHIFT


def level_index(iova: int, level: int) -> int:
    """Index into the PT-L``level`` page for ``iova`` (0..511)."""
    return (iova >> LEVEL_SHIFTS[level]) & (ENTRIES_PER_PAGE - 1)


def ptcache_key(iova: int, level: int) -> int:
    """Tag used by the PTcache at ``level`` (1, 2 or 3) for ``iova``.

    A PTcache-L``level`` entry maps this tag to the PT-L``level+1`` page,
    so the tag is the IOVA truncated at that level's coverage.
    """
    return iova >> LEVEL_SHIFTS[level]


def ptcache_coverage_bytes(level: int) -> int:
    """Bytes of IOVA space covered by one PTcache entry at ``level``."""
    return 1 << LEVEL_SHIFTS[level]


def page_align_down(addr: int) -> int:
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)

"""Batched same-page translation: resolve a NIC burst in one call.

The NIC splits every 4 KB page of a DMA into ``max_payload``-sized PCIe
TLPs and translates each one.  Within one such burst every IOVA lands in
the same page and no simulator event runs in between, so after the first
``translate()`` the IOMMU's one-entry fast path is armed for exactly
that (source, page, generation) and every remaining call is a pure
counter replay — ``translate()`` re-executes four ``+= 1`` statements
and returns the cached hit.  This module replaces those N-1 interpreted
calls with N-1 worth of arithmetic, the translation-batching unit of
work suggested by MMU-aware DMA prefetch designs (Kurth et al. 2018).

Byte-exactness argument: under :func:`burst_ready` the scalar loop's
calls 2..N each take the fast-replay branch of
:meth:`~repro.iommu.iommu.Iommu.translate` (storm injection needs an
armed fault runtime, aborts need a fault queue — both excluded), whose
complete effect is ``translations += 1``, ``translations_by_source[s]
+= 1``, ``iotlb_hits += 1``, ``iotlb.hits += 1`` with a zero-read
result.  :func:`replay_hits` performs those exact increments ``count``
times.  Only the first TLP of a page can miss, walk or fault, so walk
timing and ``DmaFault`` propagation are untouched.

The scalar loop remains the only path whenever any per-call work could
differ — invariant monitor armed, stale-hit checking on (both disable
``_fast_enabled``), fault injection or a fault-reporting queue present.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .iommu import Iommu

__all__ = ["burst_ready", "replay_hits"]


def burst_ready(iommu: Iommu) -> bool:
    """True iff a same-page burst may be replayed arithmetically.

    ``_fast_enabled`` already excludes the invariant monitor and
    stale-hit checking; fault injection (per-translation storm rolls)
    and the fault-reporting queue (per-translation abort outcomes) are
    the two remaining sources of per-call variation.
    """
    return (
        iommu._fast_enabled
        and iommu.faults is None
        and iommu.fault_queue is None
    )


def replay_hits(iommu: Iommu, count: int, source: str) -> None:
    """Apply the counter effect of ``count`` fast-path hit replays.

    Exactly what ``count`` consecutive ``translate()`` calls on the
    armed fast-path page would do — nothing more (the armed entry is
    already the IOTLB's MRU entry, so there is no LRU motion to model).
    """
    stats = iommu.stats
    stats.translations += count
    by_source = stats.translations_by_source
    by_source[source] = by_source.get(source, 0) + count
    stats.iotlb_hits += count
    iommu.iotlb.hits += count

"""The IO page table, with Linux's page-reclamation semantics.

The table is a 4-level radix tree (see :mod:`repro.iommu.addr`).  Two
behaviours of the Linux implementation matter to the paper and are
modeled exactly:

1. **Mapping granularity** is a 4 KB page: ``map_page`` installs one
   PT-L4 entry, creating intermediate PT pages on demand.

2. **Reclamation** (paper Fig 5): an intermediate page-table page is
   freed *only* when a single ``unmap_range`` call covers that page's
   entire address range.  Many small unmaps that together clear a page
   never reclaim it (Fig 5d) — this is what makes it safe for F&S to
   preserve the PTcaches across descriptor-granularity unmaps, since a
   PTcache entry only goes stale when the page it points to is
   reclaimed.

``unmap_range`` reports which page-table pages were reclaimed so the
protection driver can decide whether PTcache invalidation is required
(F&S's correctness fallback, §3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..verify.events import PtPageReclaimedEvent
from ..verify.hooks import current_monitor
from .addr import (
    ENTRIES_PER_PAGE,
    LEVEL_SHIFTS,
    PAGE_SIZE,
    PTL4_PAGE_SHIFT,
    level_index,
)

# Local alias: a 2 MB huge mapping covers the range a PT-L4 page would.
PTL4_PAGE_SHIFT_LOCAL = PTL4_PAGE_SHIFT

__all__ = [
    "IOPageTable",
    "PageTablePage",
    "ReclaimedPage",
    "WalkResult",
    "HugeMapping",
    "MappingError",
]


class MappingError(ValueError):
    """Raised on invalid map/unmap operations (overlap, unaligned, absent)."""


class PageTablePage:
    """One 4 KB page of the IO page table at a given level.

    ``entries`` maps a 9-bit index to either a child :class:`PageTablePage`
    (levels 1-3) or a physical frame number (level 4).
    """

    __slots__ = ("level", "base_iova", "entries")

    def __init__(self, level: int, base_iova: int):
        self.level = level
        self.base_iova = base_iova
        self.entries: dict[int, object] = {}

    @property
    def coverage_bytes(self) -> int:
        """IOVA bytes covered by this whole page (all 512 entries)."""
        return ENTRIES_PER_PAGE << LEVEL_SHIFTS[self.level]

    @property
    def end_iova(self) -> int:
        return self.base_iova + self.coverage_bytes

    def covers(self, iova: int) -> bool:
        return self.base_iova <= iova < self.end_iova

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<PT-L{self.level} page @{self.base_iova:#x} "
            f"{len(self.entries)} entries>"
        )


@dataclass(frozen=True)
class ReclaimedPage:
    """Record of one page-table page freed by an unmap operation."""

    level: int
    base_iova: int
    coverage_bytes: int


@dataclass(frozen=True)
class HugeMapping:
    """A 2 MB leaf entry installed directly in a PT-L3 page.

    ``base_frame`` is the first of 512 physically contiguous frames.
    Huge mappings are the §5 future-work extension: one IOTLB entry
    (and one walk terminating at PT-L3) covers 2 MB, cutting the
    compulsory strict-mode miss rate by 512x at the cost of 2 MB
    protection granularity.
    """

    base_frame: int


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a software walk: the frame plus the visited PT pages.

    ``pages`` holds the PT-L1..PT-L4 pages touched (PT-L1..PT-L3 for a
    huge mapping), used by the walker to refill the PTcaches.
    ``huge`` marks a walk that terminated at a 2 MB leaf.
    """

    frame: int
    pages: tuple[PageTablePage, ...]
    huge: bool = False


@dataclass
class PageTableStats:
    """Operation counts for the IO page table."""

    maps: int = 0
    unmaps: int = 0
    pages_created: int = 0
    pages_reclaimed: int = 0
    reclaims_by_level: dict[int, int] = field(
        default_factory=lambda: {1: 0, 2: 0, 3: 0, 4: 0}
    )


class IOPageTable:
    """A 4-level IO page table with Linux reclamation semantics."""

    def __init__(self) -> None:
        self.root = PageTablePage(level=1, base_iova=0)
        self.stats = PageTableStats()
        self._mapped_pages = 0
        # Safety-invariant monitor (repro.verify); None in normal runs.
        self.monitor = current_monitor()

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_page(self, iova: int, frame: int) -> None:
        """Map the 4 KB IOVA page at ``iova`` to physical ``frame``."""
        if iova % PAGE_SIZE:
            raise MappingError(f"unaligned iova {iova:#x}")
        page = self.root
        for level in (1, 2, 3):
            index = level_index(iova, level)
            child = page.entries.get(index)
            if child is None:
                child_base = iova & ~((1 << LEVEL_SHIFTS[level]) - 1)
                child = PageTablePage(level + 1, child_base)
                page.entries[index] = child
                self.stats.pages_created += 1
            page = child  # type: ignore[assignment]
        leaf_index = level_index(iova, 4)
        if leaf_index in page.entries:
            raise MappingError(f"iova {iova:#x} already mapped")
        page.entries[leaf_index] = frame
        self._mapped_pages += 1
        self.stats.maps += 1

    def map_range(self, iova: int, frames: list[int]) -> None:
        """Map consecutive IOVA pages starting at ``iova`` to ``frames``."""
        for offset, frame in enumerate(frames):
            self.map_page(iova + offset * PAGE_SIZE, frame)

    def map_huge(self, iova: int, base_frame: int) -> None:
        """Install a 2 MB leaf at ``iova`` (must be 2 MB aligned).

        The entry lives in the PT-L3 page where a PT-L4 pointer would
        otherwise go; the 512 backing frames start at ``base_frame``
        and must be physically contiguous.
        """
        if iova % (1 << PTL4_PAGE_SHIFT_LOCAL):
            raise MappingError(f"huge mapping at {iova:#x} not 2 MB aligned")
        page = self.root
        for level in (1, 2):
            index = level_index(iova, level)
            child = page.entries.get(index)
            if child is None:
                child_base = iova & ~((1 << LEVEL_SHIFTS[level]) - 1)
                child = PageTablePage(level + 1, child_base)
                page.entries[index] = child
                self.stats.pages_created += 1
            page = child  # type: ignore[assignment]
        index = level_index(iova, 3)
        if index in page.entries:
            raise MappingError(
                f"iova {iova:#x} already has a PT-L4 page or huge entry"
            )
        page.entries[index] = HugeMapping(base_frame)
        self._mapped_pages += 512
        self.stats.maps += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def walk(self, iova: int) -> Optional[WalkResult]:
        """Full software walk; ``None`` if the IOVA is unmapped."""
        page = self.root
        visited = [page]
        for level in (1, 2, 3):
            child = page.entries.get(level_index(iova, level))
            if child is None:
                return None
            if isinstance(child, HugeMapping):
                # 2 MB leaf in the PT-L3 page: the walk ends one level
                # early; resolve the 4 KB sub-frame by offset.
                offset = (iova >> 12) & (ENTRIES_PER_PAGE - 1)
                return WalkResult(
                    frame=child.base_frame + offset,
                    pages=tuple(visited),
                    huge=True,
                )
            page = child  # type: ignore[assignment]
            visited.append(page)
        frame = page.entries.get(level_index(iova, 4))
        if frame is None:
            return None
        return WalkResult(frame=frame, pages=tuple(visited))  # type: ignore[arg-type]

    def lookup(self, iova: int) -> Optional[int]:
        """Frame mapped at ``iova``'s page, or ``None``."""
        result = self.walk(iova)
        return result.frame if result else None

    def is_mapped(self, iova: int) -> bool:
        return self.lookup(iova) is not None

    @property
    def mapped_pages(self) -> int:
        return self._mapped_pages

    # ------------------------------------------------------------------
    # Unmapping + reclamation
    # ------------------------------------------------------------------
    def unmap_range(self, iova: int, length: int) -> list[ReclaimedPage]:
        """Unmap ``[iova, iova + length)`` in a *single* operation.

        Returns the page-table pages reclaimed by this call.  Linux
        semantics: a PT page is reclaimed iff this one call's range
        covers the page's entire coverage (paper Fig 5).  All 4 KB pages
        in the range must currently be mapped.
        """
        if iova % PAGE_SIZE or length % PAGE_SIZE:
            raise MappingError("unmap range must be page aligned")
        if length <= 0:
            raise MappingError("unmap length must be positive")
        end = iova + length
        # Clear leaf entries (4 KB PTEs or whole 2 MB huge leaves).
        addr = iova
        while addr < end:
            huge_holder, huge_index = self._huge_entry_at(addr)
            if huge_holder is not None:
                huge_base = addr & ~((1 << PTL4_PAGE_SHIFT) - 1)
                if addr != huge_base or end - addr < (1 << PTL4_PAGE_SHIFT):
                    raise MappingError(
                        f"partial unmap of huge mapping at {huge_base:#x}"
                    )
                del huge_holder.entries[huge_index]
                self._mapped_pages -= 512
                self.stats.unmaps += 1
                addr += 1 << PTL4_PAGE_SHIFT
                continue
            leaf = self._leaf_page(addr)
            if leaf is None:
                raise MappingError(f"iova {addr:#x} not mapped")
            index = level_index(addr, 4)
            if index not in leaf.entries:
                raise MappingError(f"iova {addr:#x} not mapped")
            del leaf.entries[index]
            self._mapped_pages -= 1
            self.stats.unmaps += 1
            addr += PAGE_SIZE
        # Reclaim fully covered pages, deepest level first.
        reclaimed: list[ReclaimedPage] = []
        self._reclaim_covered(self.root, iova, end, reclaimed)
        return reclaimed

    def unmap_page(self, iova: int) -> list[ReclaimedPage]:
        """Unmap a single 4 KB page (the Linux per-page unmap path)."""
        return self.unmap_range(iova, PAGE_SIZE)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _leaf_page(self, iova: int) -> Optional[PageTablePage]:
        page = self.root
        for level in (1, 2, 3):
            child = page.entries.get(level_index(iova, level))
            if child is None or isinstance(child, HugeMapping):
                return None
            page = child  # type: ignore[assignment]
        return page

    def _huge_entry_at(self, iova: int):
        """(holder PT-L3 page, index) of a huge leaf covering ``iova``,
        or (None, None)."""
        page = self.root
        for level in (1, 2):
            child = page.entries.get(level_index(iova, level))
            if child is None or isinstance(child, HugeMapping):
                return None, None
            page = child  # type: ignore[assignment]
        index = level_index(iova, 3)
        child = page.entries.get(index)
        if isinstance(child, HugeMapping):
            return page, index
        return None, None

    def _reclaim_covered(
        self,
        page: PageTablePage,
        start: int,
        end: int,
        reclaimed: list[ReclaimedPage],
    ) -> None:
        """Free child pages whose whole coverage lies inside [start, end)."""
        if page.level >= 4:
            return
        shift = LEVEL_SHIFTS[page.level]
        child_span = 1 << shift
        # Only children overlapping the range can be affected.
        first = max(0, (start - page.base_iova) >> shift)
        last = min(
            ENTRIES_PER_PAGE - 1, (end - 1 - page.base_iova) >> shift
        )
        for index in range(first, last + 1):
            child = page.entries.get(index)
            if not isinstance(child, PageTablePage):
                continue
            child_start = page.base_iova + index * child_span
            child_end = child_start + child_span
            if start <= child_start and child_end <= end:
                # The single operation covers this child completely:
                # reclaim it (and implicitly everything below it).
                self._count_subtree_reclaim(child, reclaimed)
                del page.entries[index]
            else:
                self._reclaim_covered(child, start, end, reclaimed)

    def _count_subtree_reclaim(
        self, page: PageTablePage, reclaimed: list[ReclaimedPage]
    ) -> None:
        reclaimed.append(
            ReclaimedPage(page.level, page.base_iova, page.coverage_bytes)
        )
        if self.monitor is not None:
            self.monitor.record(PtPageReclaimedEvent(page))
        self.stats.pages_reclaimed += 1
        self.stats.reclaims_by_level[page.level] += 1
        for child in page.entries.values():
            if isinstance(child, PageTablePage):
                self._count_subtree_reclaim(child, reclaimed)

"""IOMMU model: IO page table, IOTLB, PTcache-L1/L2/L3, invalidation queue.

This package models the Intel VT-d style translation machinery exactly
as the paper describes it in §2.1, including the IO page table caches
(the paper's central discovery) and Linux's page-table-page reclamation
semantics (Fig 5) that make F&S's PTcache preservation safe.
"""

from .addr import (
    ENTRIES_PER_PAGE,
    IOVA_BITS,
    IOVA_SPACE_SIZE,
    LEVEL_SHIFTS,
    PAGE_SHIFT,
    PAGE_SIZE,
    PTL4_PAGE_SHIFT,
    PTL4_PAGE_SIZE,
    level_index,
    ptcache_coverage_bytes,
    ptcache_key,
    vpn,
)
from .batch import burst_ready, replay_hits
from .faultq import FaultReportingQueue, IommuFaultRecord
from .invalidation import InvalidationQueue, InvalidationRequest
from .iommu import DmaFault, Iommu, IommuConfig, TranslationResult
from .iotlb import Iotlb
from .pagetable import (
    IOPageTable,
    MappingError,
    PageTablePage,
    ReclaimedPage,
    WalkResult,
)
from .ptcache import ProbeOutcome, PtCache, PtCacheHierarchy
from .stats import IommuStats, IommuStatsDelta

__all__ = [
    "Iommu",
    "IommuConfig",
    "TranslationResult",
    "DmaFault",
    "IOPageTable",
    "PageTablePage",
    "ReclaimedPage",
    "WalkResult",
    "MappingError",
    "Iotlb",
    "PtCache",
    "PtCacheHierarchy",
    "ProbeOutcome",
    "InvalidationQueue",
    "InvalidationRequest",
    "burst_ready",
    "replay_hits",
    "FaultReportingQueue",
    "IommuFaultRecord",
    "IommuStats",
    "IommuStatsDelta",
    "IOVA_BITS",
    "IOVA_SPACE_SIZE",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PTL4_PAGE_SHIFT",
    "PTL4_PAGE_SIZE",
    "ENTRIES_PER_PAGE",
    "LEVEL_SHIFTS",
    "vpn",
    "level_index",
    "ptcache_key",
    "ptcache_coverage_bytes",
]

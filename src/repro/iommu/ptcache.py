"""IO page table caches (PTcache-L1/L2/L3).

These are the caches the paper's contribution revolves around: per-level
caches inside the IOMMU that map a truncated IOVA to the *next-level
page-table page*, letting a walk skip the upper levels.  A PTcache-L3
hit reduces a walk to a single memory read (the PT-L4 entry).

Geometry defaults follow the paper's estimate (its Fig 2e/3e red lines
put PTcache-L3 at 64–128 entries; we default to 64, the conservative
end) and are configurable.  Each cache is fully associative LRU — upper
level caches in CPU MMUs are typically small and fully associative
[Bhattacharjee 2013], and the paper's reuse-distance methodology
implicitly assumes LRU.

A :class:`PtCacheHierarchy` bundles the three levels and implements the
"probe all levels in parallel, use the deepest hit" walk-shortening
behaviour, plus the two invalidation policies the paper contrasts:

* ``invalidate_range`` — drop every entry covering the range at *all*
  levels (what Linux does on every unmap);
* targeted invalidation of entries pointing at *reclaimed* page-table
  pages only (all F&S needs for correctness).
"""

from __future__ import annotations

from typing import Optional

from ..obs.hooks import current_registry
from ..verify.events import PtCacheHitEvent
from ..verify.hooks import current_monitor
from .addr import LEVEL_SHIFTS, ptcache_key

__all__ = ["PtCache", "PtCacheHierarchy", "ProbeOutcome"]


class PtCache:
    """One fully-associative LRU page-table cache level."""

    def __init__(self, level: int, entries: int) -> None:
        if level not in (1, 2, 3):
            raise ValueError("PTcache levels are 1, 2 and 3")
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.level = level
        self.capacity = entries
        self._entries: dict[int, object] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        # Safety-invariant monitor (repro.verify); None in normal runs.
        self.monitor = current_monitor()
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope(f"ptcache.l{level}")
            scope.counter("hits", lambda: self.hits)
            scope.counter("misses", lambda: self.misses)
            scope.counter("invalidations", lambda: self.invalidations)
            scope.counter("evictions", lambda: self.evictions)
            scope.gauge("resident", lambda: len(self._entries))

    def lookup(self, iova: int) -> Optional[object]:
        """Probe for the PT page covering ``iova`` at this level."""
        key = ptcache_key(iova, self.level)
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        del self._entries[key]
        self._entries[key] = value
        self.hits += 1
        if self.monitor is not None:
            self.monitor.record(PtCacheHitEvent(self.level, iova, value))
        return value

    def contains(self, iova: int) -> bool:
        """Non-counting, non-LRU-touching presence check (for tests)."""
        return ptcache_key(iova, self.level) in self._entries

    def insert(self, iova: int, page: object) -> None:
        key = ptcache_key(iova, self.level)
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        self._entries[key] = page

    def invalidate_range(self, iova: int, length: int) -> int:
        """Drop entries whose coverage intersects ``[iova, iova+length)``."""
        shift = LEVEL_SHIFTS[self.level]
        first = iova >> shift
        last = (iova + length - 1) >> shift
        dropped = 0
        if last - first + 1 >= len(self._entries):
            for key in [k for k in self._entries if first <= k <= last]:
                del self._entries[key]
                dropped += 1
        else:
            for key in range(first, last + 1):
                if key in self._entries:
                    del self._entries[key]
                    dropped += 1
        self.invalidations += dropped
        return dropped

    def flush(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += dropped
        return dropped

    @property
    def resident_entries(self) -> int:
        return len(self._entries)


class ProbeOutcome:
    """Result of probing all PTcache levels for one walk.

    ``deepest_hit_level`` is 3, 2, 1 or 0 (no hit).  ``memory_reads`` is
    the number of IO page table memory accesses the walk then needs:
    ``4 - deepest_hit_level`` (a PTcache-L3 hit leaves only the PT-L4
    read; a total miss costs the full 4 reads).

    ``counted_misses`` holds, per level, whether that level's miss
    *added a memory read* — i.e. missed along with every deeper level.
    This is exactly the paper's m1/m2/m3 accounting ("misses at level i
    that also led to misses in all levels below i").
    """

    __slots__ = ("deepest_hit_level", "memory_reads", "counted_misses")

    # Per-walk dict construction shows up in profiles; there are only
    # four possible counted-miss maps, precomputed here.  Instances
    # still get a copy: ``probe_upper`` mutates its outcome's map.
    _COUNTED_MISSES = {
        deepest: {1: deepest < 1, 2: deepest < 2, 3: deepest < 3}
        for deepest in (0, 1, 2, 3)
    }

    def __init__(self, deepest_hit_level: int):
        self.deepest_hit_level = deepest_hit_level
        self.memory_reads = 4 - deepest_hit_level
        self.counted_misses = self._COUNTED_MISSES[deepest_hit_level].copy()


class PtCacheHierarchy:
    """The three PTcache levels plus walk-shortening and miss accounting."""

    def __init__(
        self,
        l1_entries: int = 32,
        l2_entries: int = 32,
        l3_entries: int = 64,
    ) -> None:
        self.l1 = PtCache(1, l1_entries)
        self.l2 = PtCache(2, l2_entries)
        self.l3 = PtCache(3, l3_entries)
        # The paper's m1/m2/m3: counted (read-adding) misses per level.
        self.counted_misses = {1: 0, 2: 0, 3: 0}

    @property
    def levels(self) -> tuple[PtCache, PtCache, PtCache]:
        return (self.l1, self.l2, self.l3)

    def probe(self, iova: int) -> ProbeOutcome:
        """Probe all levels (conceptually in parallel); deepest hit wins.

        Updates per-level hit/miss statistics and the paper-style
        counted-miss totals.
        """
        hit3 = self.l3.lookup(iova) is not None
        hit2 = self.l2.lookup(iova) is not None
        hit1 = self.l1.lookup(iova) is not None
        if hit3:
            deepest = 3
        elif hit2:
            deepest = 2
        elif hit1:
            deepest = 1
        else:
            deepest = 0
        outcome = ProbeOutcome(deepest)
        for level, counted in outcome.counted_misses.items():
            if counted:
                self.counted_misses[level] += 1
        return outcome

    def probe_upper(self, iova: int) -> ProbeOutcome:
        """Probe only PTcache-L1/L2 (huge walks end at PT-L3).

        The returned outcome's ``memory_reads`` still follows the
        4-level convention; callers of huge walks subtract one (the
        PT-L4 read that does not happen).  Counted misses exclude L3.
        """
        hit2 = self.l2.lookup(iova) is not None
        hit1 = self.l1.lookup(iova) is not None
        deepest = 2 if hit2 else (1 if hit1 else 0)
        outcome = ProbeOutcome(deepest)
        outcome.counted_misses[3] = False
        for level in (1, 2):
            if outcome.counted_misses[level]:
                self.counted_misses[level] += 1
        return outcome

    def fill_upper(self, iova: int, walk_pages) -> None:
        """Refill L1/L2 from a huge walk (chain is PT-L1..PT-L3)."""
        self.l1.insert(iova, walk_pages[1])
        self.l2.insert(iova, walk_pages[2])

    def fill(self, iova: int, walk_pages) -> None:
        """Refill all levels from a completed walk.

        ``walk_pages`` is the PT-L1..PT-L4 page chain from
        :meth:`IOPageTable.walk`; the PTcache-L``i`` entry points at the
        PT-L``i+1`` page.
        """
        self.l1.insert(iova, walk_pages[1])
        self.l2.insert(iova, walk_pages[2])
        self.l3.insert(iova, walk_pages[3])

    def invalidate_range(self, iova: int, length: int) -> int:
        """Linux policy: drop covering entries at every level."""
        return (
            self.l1.invalidate_range(iova, length)
            + self.l2.invalidate_range(iova, length)
            + self.l3.invalidate_range(iova, length)
        )

    def flush(self) -> int:
        return self.l1.flush() + self.l2.flush() + self.l3.flush()

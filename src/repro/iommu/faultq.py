"""The IOMMU fault-reporting queue (PRI-style hard-fault path).

Real IOMMUs do not raise exceptions: a DMA to an unmapped (or
invalidated) IOVA is *aborted* — the root complex returns a completion
with UR/CA status to the device — and a fault record describing the
access is written to a host-visible circular buffer (VT-d's fault
recording registers / fault log, SMMU's event queue, PRI page-request
queues).  The host consumes records off the queue and decides what to
do: ignore, log, or reset the offending function.

:class:`FaultReportingQueue` models that buffer.  It is deliberately
dumb — bounded, ordered, clocked off the simulator — because the
interesting behaviour (what the *driver* does about faults) lives in
:mod:`repro.nic.recovery` and the protection drivers.  When the queue
overflows, new records are dropped but still counted: hardware fault
logs behave the same way, and a fault storm must not grow memory
without bound.

The queue is attached to an :class:`~repro.iommu.iommu.Iommu` via
``IommuConfig(fault_queue=True)``.  Without it (the default), an
unmapped DMA raises :class:`~repro.iommu.iommu.DmaFault` exactly as
before — the hard-abort path is strictly opt-in so that the existing
safety tests keep their raise-on-violation semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..obs.hooks import current_registry

__all__ = ["FaultReportingQueue", "IommuFaultRecord"]

DEFAULT_FAULT_QUEUE_CAPACITY = 256
# Latency charged to the aborted transaction: the root complex detects
# the missing translation, synthesizes the UR/CA completion, and writes
# the fault record.  Order of a microsecond on real parts.
DEFAULT_FAULT_ABORT_LATENCY_NS = 800.0


@dataclass(frozen=True)
class IommuFaultRecord:
    """One logged translation fault (PRI-style record)."""

    time_ns: float
    iova: int
    source: str  # "rx" | "tx" — which datapath issued the DMA
    reason: str  # "unmapped" | "storm"

    def format(self) -> str:
        return (
            f"{self.time_ns:.3f} fault iova={self.iova:#x} "
            f"src={self.source} reason={self.reason}"
        )


class FaultReportingQueue:
    """Bounded host-visible log of aborted DMA translations."""

    def __init__(
        self,
        capacity: int = DEFAULT_FAULT_QUEUE_CAPACITY,
        abort_latency_ns: float = DEFAULT_FAULT_ABORT_LATENCY_NS,
    ) -> None:
        if capacity <= 0:
            raise ValueError("fault queue needs capacity >= 1")
        self.capacity = capacity
        self.abort_latency_ns = abort_latency_ns
        self.records: list[IommuFaultRecord] = []
        self.reported = 0
        self.overflowed = 0
        self.drained = 0
        # Bound late (the Iommu is built before the simulator in some
        # tests); unbound records are stamped 0.0.
        self._clock: Optional[Callable[[], float]] = None
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope("faultq")
            scope.counter("reported", lambda: self.reported)
            scope.counter("overflowed", lambda: self.overflowed)
            scope.counter("drained", lambda: self.drained)
            scope.gauge("depth", lambda: len(self.records))

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated clock used to stamp fault records."""
        self._clock = clock

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Device side (called by the Iommu on an aborted translation)
    # ------------------------------------------------------------------
    def report(self, iova: int, source: str, reason: str) -> float:
        """Log one fault; returns the abort latency to charge the DMA."""
        self.reported += 1
        if len(self.records) < self.capacity:
            self.records.append(
                IommuFaultRecord(self._now(), iova, source, reason)
            )
        else:
            # Hardware fault logs drop-on-full (with a sticky overflow
            # bit); modeling that keeps a fault storm O(capacity).
            self.overflowed += 1
        return self.abort_latency_ns

    # ------------------------------------------------------------------
    # Host side
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self.records)

    def drain(self) -> list[IommuFaultRecord]:
        """Consume and return all pending records, oldest first."""
        records = self.records
        self.records = []
        self.drained += len(records)
        return records

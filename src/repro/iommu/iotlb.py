"""The IOTLB: a set-associative, LRU cache of IOVA → frame translations.

Real IOTLB geometries are not public; the default (128 entries, 8-way)
is in the range prior work assumes [Amit et al. 2010; Neugebauer et al.
2018] and is configurable.  Under the strict protection mode the IOTLB
miss *count* is dominated by compulsory misses (every page's first
transaction after its IOVA was invalidated), so the experiments are not
sensitive to the exact geometry; contention-induced extra misses (the
paper's 1.3–2.2 misses/page) come from concurrent Rx/Tx translations
and do depend on associativity, which tests cover.

Python dicts iterate in insertion order, so each set is a dict used as
an LRU list: hits delete + reinsert the key, evictions pop the oldest.
"""

from __future__ import annotations

from typing import Optional

from ..obs.hooks import current_registry
from ..verify.events import InvalidationEvent, IotlbEvictEvent
from ..verify.hooks import current_monitor
from .addr import PAGE_SHIFT, PAGE_SIZE

__all__ = ["Iotlb"]


class Iotlb:
    """Set-associative LRU IOTLB over 4 KB translations."""

    def __init__(
        self, entries: int = 128, ways: int = 8, huge_entries: int = 32
    ) -> None:
        if entries <= 0 or ways <= 0:
            raise ValueError("entries and ways must be positive")
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        # Dedicated 2 MB-translation array (hardware IOTLBs keep huge
        # entries in a separate, smaller structure).  Fully associative
        # LRU; key is iova >> 21, value is the base frame of the 512
        # contiguous backing frames.
        self.huge_entries = huge_entries
        self._huge: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        # Bumped on every mutation (insert/invalidate/flush).  The
        # IOMMU's one-entry translation fast path caches a (page,
        # generation) pair and treats any generation change as a cache
        # kill, so it can never return a translation the IOTLB no
        # longer holds.
        self.generation = 0
        # Safety-invariant monitor (repro.verify); None in normal runs.
        self.monitor = current_monitor()
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope("iotlb")
            scope.counter("hits", lambda: self.hits)
            scope.counter("misses", lambda: self.misses)
            scope.counter("invalidations", lambda: self.invalidations)
            scope.counter("evictions", lambda: self.evictions)
            scope.gauge("resident", lambda: self.resident_entries)
            scope.gauge("huge_resident", lambda: len(self._huge))

    def _set_for(self, page_number: int) -> dict[int, int]:
        return self._sets[page_number % self.num_sets]

    def lookup(self, iova: int) -> Optional[int]:
        """Probe the IOTLB; returns the frame on hit, ``None`` on miss.

        Both the 4 KB array and the 2 MB array are probed (hardware
        checks them in parallel)."""
        page_number = iova >> PAGE_SHIFT
        entry_set = self._set_for(page_number)
        frame = entry_set.get(page_number)
        if frame is None:
            huge_key = iova >> 21
            base = self._huge.get(huge_key)
            if base is not None:
                del self._huge[huge_key]
                self._huge[huge_key] = base
                self.hits += 1
                return base + (page_number & 511)
            self.misses += 1
            return None
        # LRU touch: move to the back of the insertion order.
        del entry_set[page_number]
        entry_set[page_number] = frame
        self.hits += 1
        return frame

    def contains(self, iova: int) -> bool:
        """Non-counting, non-LRU-touching presence check.

        Used by safety checks ("could the device still translate this
        IOVA?") that must not perturb the statistics.
        """
        page_number = iova >> PAGE_SHIFT
        if page_number in self._set_for(page_number):
            return True
        return (iova >> 21) in self._huge

    def insert(self, iova: int, frame: int) -> None:
        """Install a translation, evicting the set's LRU entry if full."""
        self.generation += 1
        page_number = iova >> PAGE_SHIFT
        entry_set = self._set_for(page_number)
        if page_number in entry_set:
            del entry_set[page_number]
        elif len(entry_set) >= self.ways:
            oldest = next(iter(entry_set))
            del entry_set[oldest]
            self.evictions += 1
            if self.monitor is not None:
                self.monitor.record(
                    IotlbEvictEvent(oldest << PAGE_SHIFT), owner=id(self)
                )
        entry_set[page_number] = frame

    def insert_huge(self, iova: int, base_frame: int) -> None:
        """Install a 2 MB translation, LRU-evicting from the huge array."""
        self.generation += 1
        key = iova >> 21
        if key in self._huge:
            del self._huge[key]
        elif len(self._huge) >= self.huge_entries:
            del self._huge[next(iter(self._huge))]
            self.evictions += 1
        self._huge[key] = base_frame

    def invalidate_page(self, iova: int) -> bool:
        """Drop any entry translating one IOVA page; returns whether one
        existed.

        A page-granule invalidation must drop a *covering* 2 MB entry
        too, not just an exact 4 KB match — hardware invalidates any
        cached translation for the address, whatever its size.  Keeping
        the huge entry would leave the device a stale translation for
        the whole 2 MB region after a strict-mode per-page unmap.
        """
        self.generation += 1
        page_number = iova >> PAGE_SHIFT
        entry_set = self._set_for(page_number)
        dropped = False
        if page_number in entry_set:
            del entry_set[page_number]
            self.invalidations += 1
            dropped = True
        huge_key = iova >> 21
        if huge_key in self._huge:
            del self._huge[huge_key]
            self.invalidations += 1
            dropped = True
        if self.monitor is not None:
            # The invalidation completes whether or not an entry was
            # resident; afterwards any successful translation of this
            # page is a use-after-unmap.  An IOTLB-level invalidation
            # inherently leaves the PTcaches alone.
            self.monitor.record(
                InvalidationEvent(
                    iova & ~(PAGE_SIZE - 1), PAGE_SIZE, True
                ),
                owner=id(self),
            )
        return dropped

    def invalidate_range(self, iova: int, length: int) -> int:
        """Drop all entries within ``[iova, iova + length)``.

        Returns the number of entries dropped.  This is the semantics of
        a single VT-d invalidation-queue IOTLB descriptor with an
        address-range granule — the operation F&S uses for its batched
        per-descriptor invalidations.
        """
        self.generation += 1
        first = iova >> PAGE_SHIFT
        last = (iova + length - 1) >> PAGE_SHIFT
        dropped = 0
        span = last - first + 1
        if span >= self.entries:
            # Cheaper to scan every resident entry than every page.
            for entry_set in self._sets:
                for page_number in [
                    p for p in entry_set if first <= p <= last
                ]:
                    del entry_set[page_number]
                    dropped += 1
        else:
            for page_number in range(first, last + 1):
                entry_set = self._set_for(page_number)
                if page_number in entry_set:
                    del entry_set[page_number]
                    dropped += 1
        first_huge = iova >> 21
        last_huge = (iova + length - 1) >> 21
        for key in [
            k for k in self._huge if first_huge <= k <= last_huge
        ]:
            del self._huge[key]
            dropped += 1
        self.invalidations += dropped
        return dropped

    def flush(self) -> int:
        """Global invalidation (the deferred mode's periodic flush)."""
        self.generation += 1
        dropped = sum(len(s) for s in self._sets) + len(self._huge)
        for entry_set in self._sets:
            entry_set.clear()
        self._huge.clear()
        self.invalidations += dropped
        return dropped

    @property
    def resident_entries(self) -> int:
        return sum(len(s) for s in self._sets) + len(self._huge)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

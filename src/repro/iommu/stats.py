"""IOMMU statistics: the simulation's equivalent of PCM counters.

The paper measures IOTLB and PTcache misses with Intel PCM hardware
counters and normalizes them per 4 KB page of received data.  We count
the same quantities exactly (no sampling), support snapshot/delta so
experiments can exclude warm-up, and tag counts by traffic source
(rx data, tx data, tx acks) for the Fig 2c-style Tx-interference
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IommuStats", "IommuStatsDelta"]


@dataclass
class IommuStats:
    """Monotonic counters maintained by :class:`repro.iommu.Iommu`."""

    translations: int = 0
    iotlb_hits: int = 0
    iotlb_misses: int = 0
    walks: int = 0
    memory_reads: int = 0
    # The paper's m1/m2/m3: PTcache misses that added a memory read.
    ptcache_counted_misses: dict[int, int] = field(
        default_factory=lambda: {1: 0, 2: 0, 3: 0}
    )
    translations_by_source: dict[str, int] = field(default_factory=dict)
    iotlb_misses_by_source: dict[str, int] = field(default_factory=dict)
    faults: int = 0
    invalidation_requests: int = 0
    ptcache_invalidation_requests: int = 0

    def snapshot(self) -> "IommuStats":
        """A deep copy for later delta computation."""
        return IommuStats(
            translations=self.translations,
            iotlb_hits=self.iotlb_hits,
            iotlb_misses=self.iotlb_misses,
            walks=self.walks,
            memory_reads=self.memory_reads,
            ptcache_counted_misses=dict(self.ptcache_counted_misses),
            translations_by_source=dict(self.translations_by_source),
            iotlb_misses_by_source=dict(self.iotlb_misses_by_source),
            faults=self.faults,
            invalidation_requests=self.invalidation_requests,
            ptcache_invalidation_requests=self.ptcache_invalidation_requests,
        )

    def delta(self, since: "IommuStats") -> "IommuStatsDelta":
        """Counter increases since a snapshot."""
        return IommuStatsDelta(
            translations=self.translations - since.translations,
            iotlb_hits=self.iotlb_hits - since.iotlb_hits,
            iotlb_misses=self.iotlb_misses - since.iotlb_misses,
            walks=self.walks - since.walks,
            memory_reads=self.memory_reads - since.memory_reads,
            ptcache_counted_misses={
                level: self.ptcache_counted_misses[level]
                - since.ptcache_counted_misses.get(level, 0)
                for level in (1, 2, 3)
            },
            translations_by_source={
                key: value - since.translations_by_source.get(key, 0)
                for key, value in self.translations_by_source.items()
            },
            iotlb_misses_by_source={
                key: value - since.iotlb_misses_by_source.get(key, 0)
                for key, value in self.iotlb_misses_by_source.items()
            },
            faults=self.faults - since.faults,
            invalidation_requests=self.invalidation_requests
            - since.invalidation_requests,
            ptcache_invalidation_requests=self.ptcache_invalidation_requests
            - since.ptcache_invalidation_requests,
        )


@dataclass
class IommuStatsDelta:
    """Counter increases over a measurement interval, plus per-page views."""

    translations: int
    iotlb_hits: int
    iotlb_misses: int
    walks: int
    memory_reads: int
    ptcache_counted_misses: dict[int, int]
    translations_by_source: dict[str, int]
    iotlb_misses_by_source: dict[str, int]
    faults: int
    invalidation_requests: int
    ptcache_invalidation_requests: int

    def per_page(self, pages: int) -> "PerPageMisses":
        """Normalize by pages of received data (the paper's unit)."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        return PerPageMisses(
            iotlb=self.iotlb_misses / pages,
            l1=self.ptcache_counted_misses[1] / pages,
            l2=self.ptcache_counted_misses[2] / pages,
            l3=self.ptcache_counted_misses[3] / pages,
            memory_reads=self.memory_reads / pages,
        )


@dataclass(frozen=True)
class PerPageMisses:
    """Misses per 4 KB page of data — the y-axis of Figs 2c/2d etc.

    ``memory_reads`` equals ``iotlb + l1 + l2 + l3`` (the paper's M).
    """

    iotlb: float
    l1: float
    l2: float
    l3: float
    memory_reads: float

"""The IOMMU invalidation queue interface.

VT-d exposes invalidations to the driver through a memory-resident
*invalidation queue*: the driver enqueues descriptors and (in strict
mode) spins until the hardware completes them.  Two properties of this
interface carry the paper's design:

1. A single queue entry can invalidate an **address range**, not just
   one page — F&S exploits this to invalidate a whole descriptor's
   worth of contiguous IOVA with one entry (Fig 6b), amortizing the
   per-entry CPU wait.

2. The descriptor has an option to invalidate **only the IOTLB entry
   while preserving the page-structure (PTcache) entries** — F&S's
   mechanism for preserving PTcaches across unmaps (§3).

The CPU cost model: each queue entry costs the submitting core a fixed
submit-plus-wait time (hundreds of ns in practice [Peleg et al. 2015]).
Batched invalidation therefore reduces per-descriptor CPU cost 64x.

Failure model (:mod:`repro.faults`): queued completions can be lost,
delayed, or spuriously partial, so :meth:`submit_invalidation` returns
an :class:`InvalidationResult` the caller must check — cache effects
are applied only over the *completed prefix* of the requested range.
The register-based global flush (:meth:`flush_all`) polls a status
register instead of waiting on a completion descriptor; it can be
slowed but never lost, which makes it the drivers' sound last-resort
fallback.  The legacy :meth:`invalidate_range` discards the status and
exists for unhardened callers — the lint rule REPRO004 and the fault
test suite exist to keep production drivers off that path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..faults.hooks import injector_for
from ..obs.hooks import current_registry
from ..verify.events import (
    FlushEvent,
    InvalidationEvent,
    PtCacheInvalidationEvent,
)
from ..verify.hooks import current_monitor
from .iotlb import Iotlb
from .ptcache import PtCacheHierarchy
from .stats import IommuStats

__all__ = [
    "InvalidationQueue",
    "InvalidationRequest",
    "InvalidationResult",
    "InvalidationStatus",
]


@dataclass(frozen=True)
class InvalidationRequest:
    """One invalidation-queue descriptor (for tracing and tests)."""

    iova: int
    length: int
    preserve_ptcache: bool


class InvalidationStatus(enum.Enum):
    """How one queued descriptor's completion came back."""

    COMPLETED = "completed"
    PARTIAL = "partial"
    DROPPED = "dropped"


# Injector status strings -> enum (the injector answers in plain
# strings so the faults package never imports this module).
_STATUS_BY_NAME = {status.value: status for status in InvalidationStatus}


@dataclass(frozen=True)
class InvalidationResult:
    """One descriptor's outcome: CPU cost, status, completed prefix."""

    cost_ns: float
    status: InvalidationStatus
    completed_length: int

    @property
    def completed(self) -> bool:
        return self.status is InvalidationStatus.COMPLETED


class InvalidationQueue:
    """Models the VT-d queued-invalidation interface.

    ``cpu_cost_ns`` is the per-descriptor submit-and-wait cost charged
    to the requesting core; callers accumulate the returned costs into
    their CPU budget.
    """

    def __init__(
        self,
        iotlb: Iotlb,
        ptcaches: PtCacheHierarchy,
        stats: IommuStats,
        cpu_cost_ns: float = 250.0,
        trace: bool = False,
    ) -> None:
        self.iotlb = iotlb
        self.ptcaches = ptcaches
        self.stats = stats
        self.cpu_cost_ns = cpu_cost_ns
        self.trace = trace
        self.requests: list[InvalidationRequest] = []
        self.total_cpu_ns = 0.0
        # Safety-invariant monitor (repro.verify); None in normal runs.
        self.monitor = current_monitor()
        # Fault injector (repro.faults); None in normal runs.
        self.faults = injector_for("invalidation")
        # Completion-fault accounting.
        self.dropped_completions = 0
        self.partial_completions = 0
        self.delayed_completions = 0
        self.rearms = 0
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope("invq")
            scope.counter("dropped", lambda: self.dropped_completions)
            scope.counter("partial", lambda: self.partial_completions)
            scope.counter("delayed", lambda: self.delayed_completions)
            scope.counter("rearms", lambda: self.rearms)
            scope.counter("cpu_ns", lambda: self.total_cpu_ns)

    # ------------------------------------------------------------------
    # Checked interface (hardened drivers)
    # ------------------------------------------------------------------
    def submit_invalidation(
        self,
        iova: int,
        length: int,
        preserve_ptcache: bool,
        ptcache_only: bool = False,
    ) -> InvalidationResult:
        """Submit one descriptor and wait for its completion report.

        ``preserve_ptcache=False`` is the Linux behaviour (drop IOTLB
        *and* every PTcache entry covering the range); ``True`` is the
        F&S behaviour (IOTLB only).  ``ptcache_only=True`` submits a
        PTcache-entry invalidation instead (F&S's reclaim fallback).

        Cache effects are applied only over the returned completed
        prefix; on ``DROPPED``/``PARTIAL`` the caller must retry, back
        off, or fall back to :meth:`flush_all`.
        """
        if length <= 0:
            # VT-d descriptors always cover at least one page; a
            # zero-length submission is an upstream no-op, not a wait.
            return InvalidationResult(
                0.0, InvalidationStatus.COMPLETED, 0
            )
        status = InvalidationStatus.COMPLETED
        extra_ns = 0.0
        completed_length = length
        if self.faults is not None:
            name, extra_ns, completed_length = self.faults.outcome(
                iova, length, self.cpu_cost_ns
            )
            status = _STATUS_BY_NAME[name]
            if status is InvalidationStatus.DROPPED:
                self.dropped_completions += 1
            elif status is InvalidationStatus.PARTIAL:
                self.partial_completions += 1
            elif extra_ns > 0.0:
                self.delayed_completions += 1
        if completed_length > 0:
            self._apply(
                iova, completed_length, preserve_ptcache, ptcache_only
            )
        if ptcache_only:
            self.stats.ptcache_invalidation_requests += 1
        else:
            self.stats.invalidation_requests += 1
        if self.trace:
            self.requests.append(
                InvalidationRequest(iova, length, preserve_ptcache)
            )
        cost = self.cpu_cost_ns + extra_ns
        self.total_cpu_ns += cost
        if self.obs is not None and self.obs.tracer is not None:
            # The queue has no clock of its own: the span starts "now"
            # on the tracer's bound simulated clock and lasts the
            # submit-and-wait CPU cost.
            self.obs.tracer.complete(
                "invalidation",
                "invq",
                self.obs.tracer.now(),
                cost,
                iova=hex(iova),
                length=length,
                status=status.value,
            )
        return InvalidationResult(cost, status, completed_length)

    def _apply(
        self,
        iova: int,
        length: int,
        preserve_ptcache: bool,
        ptcache_only: bool,
    ) -> None:
        """Apply cache effects over a completed prefix."""
        if ptcache_only:
            self.ptcaches.invalidate_range(iova, length)
            if self.monitor is not None:
                self.monitor.record(
                    PtCacheInvalidationEvent(iova, length),
                    owner=id(self.iotlb),
                )
            return
        self.iotlb.invalidate_range(iova, length)
        if not preserve_ptcache:
            self.ptcaches.invalidate_range(iova, length)
            self.stats.ptcache_invalidation_requests += 1
        if self.monitor is not None:
            self.monitor.record(
                InvalidationEvent(iova, length, preserve_ptcache),
                owner=id(self.iotlb),
            )

    # ------------------------------------------------------------------
    # Legacy unchecked interface
    # ------------------------------------------------------------------
    def invalidate_range(
        self, iova: int, length: int, preserve_ptcache: bool
    ) -> float:
        """Submit one invalidation descriptor and assume it completed.

        Returns only the CPU cost: a dropped or partial completion is
        silently ignored, which is exactly the bug class the fault
        suite demonstrates.  Hardened drivers use
        :meth:`submit_invalidation` and check the result.
        """
        return self.submit_invalidation(
            iova, length, preserve_ptcache
        ).cost_ns

    def invalidate_ptcache_range(self, iova: int, length: int) -> float:
        """Drop only PTcache entries covering a range (no IOTLB).

        Used by F&S when an unmap reclaimed a page-table page: the entry
        pointing at the reclaimed page must go, but the corresponding
        IOTLB invalidation was already issued.
        """
        return self.submit_invalidation(
            iova, length, preserve_ptcache=False, ptcache_only=True
        ).cost_ns

    # ------------------------------------------------------------------
    # Register-based global flush
    # ------------------------------------------------------------------
    def submit_flush(self) -> InvalidationResult:
        """Global IOTLB + PTcache flush via the status-register path.

        Always completes (delay faults only inflate the wait); this is
        the graceful-degradation fallback when queued completions
        cannot be confirmed, and deferred mode's periodic flush.
        """
        extra_ns = 0.0
        if self.faults is not None:
            extra_ns = self.faults.flush_extra(self.cpu_cost_ns)
            if extra_ns > 0.0:
                self.delayed_completions += 1
        self.iotlb.flush()
        self.ptcaches.flush()
        self.stats.invalidation_requests += 1
        self.stats.ptcache_invalidation_requests += 1
        if self.monitor is not None:
            self.monitor.record(FlushEvent(), owner=id(self.iotlb))
        cost = self.cpu_cost_ns + extra_ns
        self.total_cpu_ns += cost
        if self.obs is not None and self.obs.tracer is not None:
            self.obs.tracer.complete(
                "flush", "invq", self.obs.tracer.now(), cost
            )
        return InvalidationResult(
            cost, InvalidationStatus.COMPLETED, 0
        )

    def flush_all(self) -> float:
        """Global flush, returning only the CPU cost (always safe)."""
        return self.submit_flush().cost_ns

    # ------------------------------------------------------------------
    # Queue teardown + re-init (hard-fault recovery)
    # ------------------------------------------------------------------
    def rearm(self) -> float:
        """Tear the queue down and re-initialize it after a wedge.

        VT-d recovery sequence: clear the QIE bit, reset head/tail,
        re-enable.  This is the only operation that clears a latched
        ``wedge-invq`` fault — completions start flowing again
        afterwards.  Returns the CPU cost of the register dance
        (modeled as one submit-and-wait quantum).
        """
        self.rearms += 1
        if self.faults is not None:
            self.faults.notify_reset()
        cost = self.cpu_cost_ns
        self.total_cpu_ns += cost
        if self.obs is not None and self.obs.tracer is not None:
            self.obs.tracer.complete(
                "rearm", "invq", self.obs.tracer.now(), cost
            )
        return cost

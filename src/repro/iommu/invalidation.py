"""The IOMMU invalidation queue interface.

VT-d exposes invalidations to the driver through a memory-resident
*invalidation queue*: the driver enqueues descriptors and (in strict
mode) spins until the hardware completes them.  Two properties of this
interface carry the paper's design:

1. A single queue entry can invalidate an **address range**, not just
   one page — F&S exploits this to invalidate a whole descriptor's
   worth of contiguous IOVA with one entry (Fig 6b), amortizing the
   per-entry CPU wait.

2. The descriptor has an option to invalidate **only the IOTLB entry
   while preserving the page-structure (PTcache) entries** — F&S's
   mechanism for preserving PTcaches across unmaps (§3).

The CPU cost model: each queue entry costs the submitting core a fixed
submit-plus-wait time (hundreds of ns in practice [Peleg et al. 2015]).
Batched invalidation therefore reduces per-descriptor CPU cost 64x.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..verify.events import (
    FlushEvent,
    InvalidationEvent,
    PtCacheInvalidationEvent,
)
from ..verify.hooks import current_monitor
from .iotlb import Iotlb
from .ptcache import PtCacheHierarchy
from .stats import IommuStats

__all__ = ["InvalidationQueue", "InvalidationRequest"]


@dataclass(frozen=True)
class InvalidationRequest:
    """One invalidation-queue descriptor (for tracing and tests)."""

    iova: int
    length: int
    preserve_ptcache: bool


class InvalidationQueue:
    """Models the VT-d queued-invalidation interface.

    ``cpu_cost_ns`` is the per-descriptor submit-and-wait cost charged
    to the requesting core; callers accumulate the returned costs into
    their CPU budget.
    """

    def __init__(
        self,
        iotlb: Iotlb,
        ptcaches: PtCacheHierarchy,
        stats: IommuStats,
        cpu_cost_ns: float = 250.0,
        trace: bool = False,
    ) -> None:
        self.iotlb = iotlb
        self.ptcaches = ptcaches
        self.stats = stats
        self.cpu_cost_ns = cpu_cost_ns
        self.trace = trace
        self.requests: list[InvalidationRequest] = []
        self.total_cpu_ns = 0.0
        # Safety-invariant monitor (repro.verify); None in normal runs.
        self.monitor = current_monitor()

    def invalidate_range(
        self, iova: int, length: int, preserve_ptcache: bool
    ) -> float:
        """Submit one invalidation descriptor for ``[iova, iova+length)``.

        ``preserve_ptcache=False`` is the Linux behaviour (drop IOTLB
        *and* every PTcache entry covering the range); ``True`` is the
        F&S behaviour (IOTLB only).  Returns the CPU cost in ns.
        """
        self.iotlb.invalidate_range(iova, length)
        self.stats.invalidation_requests += 1
        if not preserve_ptcache:
            self.ptcaches.invalidate_range(iova, length)
            self.stats.ptcache_invalidation_requests += 1
        if self.trace:
            self.requests.append(
                InvalidationRequest(iova, length, preserve_ptcache)
            )
        if self.monitor is not None:
            self.monitor.record(
                InvalidationEvent(iova, length, preserve_ptcache),
                owner=id(self.iotlb),
            )
        self.total_cpu_ns += self.cpu_cost_ns
        return self.cpu_cost_ns

    def invalidate_ptcache_range(self, iova: int, length: int) -> float:
        """Drop only PTcache entries covering a range (no IOTLB).

        Used by F&S when an unmap reclaimed a page-table page: the entry
        pointing at the reclaimed page must go, but the corresponding
        IOTLB invalidation was already issued.
        """
        self.ptcaches.invalidate_range(iova, length)
        self.stats.ptcache_invalidation_requests += 1
        if self.monitor is not None:
            self.monitor.record(
                PtCacheInvalidationEvent(iova, length), owner=id(self.iotlb)
            )
        self.total_cpu_ns += self.cpu_cost_ns
        return self.cpu_cost_ns

    def flush_all(self) -> float:
        """Global IOTLB + PTcache flush (deferred mode's periodic flush)."""
        self.iotlb.flush()
        self.ptcaches.flush()
        self.stats.invalidation_requests += 1
        self.stats.ptcache_invalidation_requests += 1
        if self.monitor is not None:
            self.monitor.record(FlushEvent(), owner=id(self.iotlb))
        self.total_cpu_ns += self.cpu_cost_ns
        return self.cpu_cost_ns

"""The live side of fault injection: clock, RNG streams, timeline.

A :class:`FaultRuntime` turns a :class:`~repro.faults.plan.FaultPlan`
into per-site injectors.  Determinism contract:

* all randomness comes from :class:`~repro.sim.SeededRng` streams keyed
  ``faults/<component>/<site-ordinal>`` off the plan seed — never from
  wall clocks or module-level RNG (REPRO001-clean);
* injectors consult the *simulated* clock, bound once per run via
  :meth:`bind_clock` (the testbed does this in its constructor);
* every injected fault is appended to an ordered timeline whose
  :meth:`timeline_text` rendering is byte-identical across processes
  for the same seed and plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..sim.rng import SeededRng
from .injectors import INJECTOR_TYPES, ComponentInjector
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

__all__ = ["FaultRecord", "FaultRuntime"]


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, stamped with the simulated time."""

    time_ns: float
    component: str
    kind: str
    detail: str

    def format(self) -> str:
        return (
            f"{self.time_ns:.3f} {self.component} {self.kind} {self.detail}"
        )


class FaultRuntime:
    """Injector factory, shared clock binding, and the fault timeline."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.records: list[FaultRecord] = []
        self._sim: Optional["Simulator"] = None
        # Site ordinal per component: the Nth queue/pipeline/port built
        # under this runtime gets RNG stream faults/<component>/<N>.
        # Construction order is deterministic, so streams are too.
        self._site_counts: dict[str, int] = {}
        # Every injector built under this runtime, so end-of-run checks
        # can ask whether any hard fault latched and was never reset.
        self.injectors: list[ComponentInjector] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def bind_clock(self, sim: "Simulator") -> None:
        """Attach the simulator whose clock gates fault windows."""
        self._sim = sim

    @property
    def sim(self) -> Optional["Simulator"]:
        return self._sim

    def now(self) -> float:
        """Simulated time, or 0.0 before a clock is bound.

        Unbound-runtime semantics matter for unit tests that poke an
        injector directly: windows starting at 0 are active.
        """
        return self._sim.now if self._sim is not None else 0.0

    # ------------------------------------------------------------------
    # Injector construction
    # ------------------------------------------------------------------
    def injector(self, component: str) -> Optional[ComponentInjector]:
        """A fresh injector for one site, or ``None`` if no specs match."""
        specs = self.plan.for_component(component)
        if not specs:
            return None
        ordinal = self._site_counts.get(component, 0)
        self._site_counts[component] = ordinal + 1
        rng = SeededRng(self.plan.seed, f"faults/{component}/{ordinal}")
        injector = INJECTOR_TYPES[component](self, specs, rng, site=ordinal)
        self.injectors.append(injector)
        return injector

    def unrecovered_wedges(self) -> int:
        """Sites whose latched hard fault was never cleared by a reset.

        The chaos harness treats a nonzero count at end-of-run as a
        liveness failure even if the run otherwise completed.
        """
        return sum(1 for injector in self.injectors if injector.wedged)

    # ------------------------------------------------------------------
    # Timeline
    # ------------------------------------------------------------------
    def record(self, component: str, kind: str, detail: str) -> None:
        self.records.append(
            FaultRecord(self.now(), component, kind, detail)
        )

    @property
    def injected_faults(self) -> int:
        return len(self.records)

    def timeline_text(self) -> str:
        """The full fault timeline, one record per line.

        Byte-identical across processes for identical (seed, plan,
        workload) — the determinism acceptance test diffs this.
        """
        return "\n".join(record.format() for record in self.records)

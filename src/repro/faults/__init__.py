"""Deterministic, seed-driven fault injection for the simulation.

The package splits into a declarative layer and a live layer:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`,
  JSON round-trippable descriptions of what breaks, when, how often;
* :mod:`repro.faults.runtime` / :mod:`repro.faults.injectors` — the
  :class:`FaultRuntime` installed via :func:`faulted`, handing each
  injection site (invalidation queue, PCIe pipeline, NIC, switch port)
  a seeded injector and collecting the ordered fault timeline;
* :mod:`repro.faults.hooks` — the global registration pattern shared
  with :mod:`repro.verify`: sites look up their injector once at
  construction, so an uninstalled runtime costs nothing.

The safety contract, enforced by the ``tests/faults`` suite under the
:class:`~repro.verify.InvariantMonitor`: injected faults may cost
throughput, never DMA safety.
"""

from .hooks import current_faults, faulted, injector_for, set_faults
from .injectors import (
    ComponentInjector,
    InvalidationInjector,
    IommuInjector,
    NetInjector,
    NicInjector,
    PcieInjector,
)
from .plan import HARD_KINDS, KINDS_BY_COMPONENT, FaultPlan, FaultSpec
from .runtime import FaultRecord, FaultRuntime

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "HARD_KINDS",
    "KINDS_BY_COMPONENT",
    "FaultRecord",
    "FaultRuntime",
    "ComponentInjector",
    "InvalidationInjector",
    "PcieInjector",
    "NicInjector",
    "NetInjector",
    "IommuInjector",
    "current_faults",
    "set_faults",
    "faulted",
    "injector_for",
]

"""Global fault-runtime registration, mirroring :mod:`repro.verify.hooks`.

Injection sites (:class:`~repro.iommu.invalidation.InvalidationQueue`,
:class:`~repro.pcie.link.DmaPipeline`, the NIC, the switch ports) call
:func:`injector_for` once at construction time and keep the result in a
``faults`` attribute.  With no plan installed the call returns ``None``
and every injection site reduces to one attribute load and a pointer
comparison — fault support costs nothing in normal runs.

This module is import-light on purpose: the runtime types are imported
lazily inside functions so every instrumented module can import it
without cycles.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from .injectors import ComponentInjector
    from .plan import FaultPlan
    from .runtime import FaultRuntime

__all__ = ["current_faults", "set_faults", "faulted", "injector_for"]

_RUNTIME: Optional["FaultRuntime"] = None


def current_faults() -> Optional["FaultRuntime"]:
    """The globally installed fault runtime, or ``None`` (the default)."""
    return _RUNTIME


def set_faults(runtime: Optional["FaultRuntime"]) -> None:
    """Install ``runtime`` globally; new injection sites attach to it."""
    global _RUNTIME
    _RUNTIME = runtime


def injector_for(component: str) -> Optional["ComponentInjector"]:
    """The active injector for ``component``, or ``None`` (fast path)."""
    runtime = current_faults()
    if runtime is None:
        return None
    return runtime.injector(component)


@contextlib.contextmanager
def faulted(
    plan: Union["FaultPlan", "FaultRuntime"],
) -> Iterator["FaultRuntime"]:
    """Install a fault plan for the duration of a ``with`` block.

    Objects constructed inside the block (testbeds, queues, pipelines)
    attach their injectors; objects constructed outside are untouched.
    Accepts either a :class:`FaultPlan` (a fresh runtime is built) or a
    prepared :class:`FaultRuntime`.
    """
    from .runtime import FaultRuntime

    runtime = plan if isinstance(plan, FaultRuntime) else FaultRuntime(plan)
    previous = current_faults()
    set_faults(runtime)
    try:
        yield runtime
    finally:
        set_faults(previous)

"""Per-component fault injectors.

One injector instance per injection *site* (a queue, a pipeline, a
port), created by :class:`~repro.faults.runtime.FaultRuntime` at site
construction.  Injectors are consulted inline on the component's fast
path and answer in plain floats/strings so that the components never
import each other through this module (no cycles).

Window-scoped kinds (link-flap, lane-loss, ring-stall) are recorded
once per window per site; per-opportunity kinds (drops, NACKs, losses,
reorders) are recorded at every occurrence, which is what makes the
fault timeline a complete account of everything injected.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from ..sim.rng import SeededRng
from .plan import FaultSpec

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import FaultRuntime

__all__ = [
    "ComponentInjector",
    "InvalidationInjector",
    "PcieInjector",
    "NicInjector",
    "NetInjector",
    "IommuInjector",
    "INJECTOR_TYPES",
]

# Default magnitudes, applied when a spec leaves magnitude at 0.0.
DEFAULT_PARTIAL_FRACTION = 0.5
DEFAULT_DELAY_FACTOR = 4.0  # x the queue's per-descriptor CPU cost
DEFAULT_WIRE_SLOWDOWN = 2.0  # half the PCIe lanes remaining
DEFAULT_REPLAY_PENALTY_NS = 1_000.0
DEFAULT_DOORBELL_DELAY_NS = 50_000.0
DEFAULT_REORDER_DELAY_NS = 10_000.0


class ComponentInjector:
    """Shared spec-window and RNG plumbing for one injection site."""

    component = "base"

    def __init__(
        self,
        runtime: "FaultRuntime",
        specs: tuple[FaultSpec, ...],
        rng: SeededRng,
        site: int = 0,
    ) -> None:
        self.runtime = runtime
        self.specs = specs
        self.rng = rng
        self.site = site
        # Window-kind announcements already made: spec index -> True.
        self._announced: dict[int, bool] = {}
        # Hard-fault latch.  A wedge persists past its spec window until
        # the component is reset (notify_reset); a cleared wedge stays
        # cleared so a recovered run cannot deterministically re-wedge
        # on the very next opportunity inside the same window.
        self._wedged_kind: Optional[str] = None
        self._wedge_cleared = False

    # -- helpers --------------------------------------------------------
    def _now(self) -> float:
        return self.runtime.now()

    def _active(self, kind: str) -> Optional[FaultSpec]:
        """The first spec of ``kind`` whose window covers now."""
        now = self._now()
        for spec in self.specs:
            if spec.kind == kind and spec.active(now):
                return spec
        return None

    def _roll(self, spec: FaultSpec) -> bool:
        if spec.probability >= 1.0:
            return True
        return self.rng.random() < spec.probability

    def _record(self, kind: str, detail: str) -> None:
        self.runtime.record(
            self.component, kind, f"site={self.site} {detail}"
        )

    def _announce_window(self, spec: FaultSpec, detail: str) -> None:
        """Record a window-scoped fault once per window per site."""
        key = self.specs.index(spec)
        if not self._announced.get(key):
            self._announced[key] = True
            self._record(spec.kind, detail)

    # -- hard-fault latch ----------------------------------------------
    @property
    def wedged(self) -> bool:
        """Whether a latched hard fault is currently unrecovered."""
        return self._wedged_kind is not None

    def _latch_wedge(self, spec: FaultSpec, detail: str) -> None:
        """Latch a hard fault; recorded once, held until reset."""
        if self._wedged_kind is None:
            self._wedged_kind = spec.kind
            self._record(spec.kind, f"latched {detail}")

    def _wedge_armed(self, kind: str) -> Optional[FaultSpec]:
        """The spec that may latch ``kind`` now (None once cleared)."""
        if self._wedge_cleared:
            return None
        return self._active(kind)

    def notify_reset(self) -> None:
        """A device/queue reset cleared any latched wedge on this site."""
        if self._wedged_kind is not None:
            self._record(self._wedged_kind, "cleared by reset")
            self._wedged_kind = None
            self._wedge_cleared = True


class InvalidationInjector(ComponentInjector):
    """Faults on the IOMMU invalidation queue's completion reports."""

    component = "invalidation"

    def outcome(
        self, iova: int, length: int, cpu_cost_ns: float
    ) -> tuple[str, float, int]:
        """Decide one queued descriptor's fate.

        Returns ``(status, extra_cpu_ns, completed_length)`` with status
        one of ``"completed"``, ``"dropped"``, ``"partial"``.  The
        caller applies invalidation effects only over the completed
        prefix ``[iova, iova + completed_length)``.

        A wedged queue ("wedge-invq") drops *every* submit until the
        driver tears the queue down and rearms it; the wedge latches on
        the first rolled opportunity inside the window and persists past
        the window's end.  Only the latch and the reset are recorded —
        not each dropped submit — to keep timelines compact.
        """
        if self.wedged:
            spec = next(s for s in self.specs if s.kind == "wedge-invq")
            timeout = spec.magnitude or DEFAULT_DELAY_FACTOR * cpu_cost_ns
            return "dropped", timeout, 0
        spec = self._wedge_armed("wedge-invq")
        if spec is not None and self._roll(spec):
            self._latch_wedge(spec, f"iova={iova:#x} len={length:#x}")
            timeout = spec.magnitude or DEFAULT_DELAY_FACTOR * cpu_cost_ns
            return "dropped", timeout, 0
        spec = self._active("drop-completion")
        if spec is not None and self._roll(spec):
            # The completion descriptor never arrives; the driver's
            # wait times out after ``magnitude`` ns (default: 4x the
            # normal submit-and-wait cost).
            timeout = spec.magnitude or DEFAULT_DELAY_FACTOR * cpu_cost_ns
            self._record(
                "drop-completion", f"iova={iova:#x} len={length:#x}"
            )
            return "dropped", timeout, 0
        spec = self._active("partial-completion")
        if spec is not None and self._roll(spec):
            fraction = spec.magnitude or DEFAULT_PARTIAL_FRACTION
            pages = length // 4096
            completed_pages = min(int(pages * fraction), max(pages - 1, 0))
            completed = completed_pages * 4096
            self._record(
                "partial-completion",
                f"iova={iova:#x} len={length:#x} done={completed:#x}",
            )
            return "partial", 0.0, completed
        spec = self._active("delay-completion")
        if spec is not None and self._roll(spec):
            extra = spec.magnitude or DEFAULT_DELAY_FACTOR * cpu_cost_ns
            self._record(
                "delay-completion", f"iova={iova:#x} extra={extra:.0f}"
            )
            return "completed", extra, length
        return "completed", 0.0, length

    def flush_extra(self, cpu_cost_ns: float) -> float:
        """Extra wait on a register-based global flush (delay only).

        The global flush polls a status register rather than waiting on
        a queued completion descriptor, so it cannot be lost — only
        slowed.  This is what makes it a sound last-resort fallback.
        """
        spec = self._active("delay-completion")
        if spec is not None and self._roll(spec):
            extra = spec.magnitude or DEFAULT_DELAY_FACTOR * cpu_cost_ns
            self._record(
                "delay-completion", f"flush extra={extra:.0f}"
            )
            return extra
        return 0.0


class PcieInjector(ComponentInjector):
    """Link flaps, lane loss, and NACK/replay on one DMA pipeline."""

    component = "pcie"

    def hold_until(self) -> Optional[float]:
        """If the link is down (flap window), when it comes back up."""
        spec = self._active("link-flap")
        if spec is None:
            return None
        self._announce_window(
            spec, f"down until={spec.end_ns:.0f}"
        )
        return spec.end_ns

    def wire_slowdown(self) -> float:
        """Serialization slowdown factor while lanes are lost (>= 1)."""
        spec = self._active("lane-loss")
        if spec is None:
            return 1.0
        factor = spec.magnitude or DEFAULT_WIRE_SLOWDOWN
        self._announce_window(spec, f"slowdown={factor:g}")
        return max(factor, 1.0)

    def replay_penalty(self) -> float:
        """Extra completion latency if this DMA's TLP gets NACKed."""
        spec = self._active("nack-replay")
        if spec is None or not self._roll(spec):
            return 0.0
        penalty = spec.magnitude or DEFAULT_REPLAY_PENALTY_NS
        self._record("nack-replay", f"penalty={penalty:.0f}")
        return penalty


class NicInjector(ComponentInjector):
    """Descriptor-ring stalls and dropped doorbells on one NIC."""

    component = "nic"

    def stall_until(self) -> Optional[float]:
        """If the descriptor DMA engine is stalled, when it resumes.

        ``math.inf`` means the device is wedged: it will never resume
        by itself and needs a function-level reset
        (:meth:`notify_reset` via ``Nic.reset_device``).
        """
        if self.wedged:
            return math.inf
        spec = self._wedge_armed("device-wedge")
        if spec is not None and self._roll(spec):
            self._latch_wedge(spec, "descriptor fetch dead")
            return math.inf
        spec = self._active("ring-stall")
        if spec is None:
            return None
        self._announce_window(spec, f"until={spec.end_ns:.0f}")
        return spec.end_ns

    def doorbell_delay(self) -> float:
        """Redelivery delay if this doorbell write is lost (0 = kept)."""
        spec = self._active("doorbell-drop")
        if spec is None or not self._roll(spec):
            return 0.0
        delay = spec.magnitude or DEFAULT_DOORBELL_DELAY_NS
        self._record("doorbell-drop", f"redeliver={delay:.0f}")
        return delay


class NetInjector(ComponentInjector):
    """Packet loss and reordering on one switch port."""

    component = "net"

    def drop(self, packet) -> bool:
        """Whether the wire eats this packet."""
        spec = self._active("loss")
        if spec is None or not self._roll(spec):
            return False
        # Identify packets by (flow, kind, seq), never packet_id: ids
        # come from a process-global counter, and the timeline must be
        # byte-identical across *and within* processes.
        self._record(
            "loss",
            f"flow={packet.flow_id} {packet.kind} seq={packet.seq}",
        )
        return True

    def reorder_delay(self, packet) -> float:
        """Extra propagation delay pushing the packet past successors."""
        spec = self._active("reorder")
        if spec is None or not self._roll(spec):
            return 0.0
        delay = spec.magnitude or DEFAULT_REORDER_DELAY_NS
        self._record(
            "reorder",
            f"flow={packet.flow_id} {packet.kind} seq={packet.seq} "
            f"extra={delay:.0f}",
        )
        return delay


class IommuInjector(ComponentInjector):
    """Spurious translation faults reported by the IOMMU itself."""

    component = "iommu"

    def spurious_fault(self, iova: int, source: str) -> bool:
        """Whether this (mapped, valid) translation faults anyway.

        Models a fault storm: misprogrammed PRI/ATS state or a flaky
        root-complex reporting path pushing bogus fault records.  The
        DMA is aborted exactly like a genuine unmapped access, so the
        host's fault-queue path absorbs the storm.
        """
        spec = self._active("fault-storm")
        if spec is None or not self._roll(spec):
            return False
        self._record("fault-storm", f"iova={iova:#x} src={source}")
        return True


INJECTOR_TYPES: dict[str, type[ComponentInjector]] = {
    "invalidation": InvalidationInjector,
    "pcie": PcieInjector,
    "nic": NicInjector,
    "net": NetInjector,
    "iommu": IommuInjector,
}

"""Declarative fault plans: what breaks, where, when, and how often.

A :class:`FaultPlan` is a seed plus a tuple of :class:`FaultSpec`
entries.  Each spec names a *component* (the injection site), a fault
*kind* (what the hardware does wrong), an activation *window* on the
simulated clock, a per-opportunity *probability*, and a kind-specific
*magnitude* (extra nanoseconds, a fraction, a slowdown factor).

Plans are plain data: JSON round-trippable so that the CLI can load one
from disk (``repro run fig7 --faults plan.json``) and tests can assert
byte-identical fault timelines across processes.  Nothing here touches
the simulator; the :mod:`repro.faults.runtime` layer turns a plan into
live injectors.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Sequence

__all__ = ["FaultPlan", "FaultSpec", "HARD_KINDS", "KINDS_BY_COMPONENT"]

# The injection sites and, per site, the catalog of modeled faults.
# ``magnitude`` semantics are kind-specific and documented in
# DESIGN.md's "Failure model" section:
#
# invalidation  drop-completion     completion descriptor lost; nothing
#                                   invalidated (magnitude: wait-timeout
#                                   ns charged before giving up)
#               delay-completion    completion late (magnitude: extra ns)
#               partial-completion  only a prefix of the range was
#                                   invalidated (magnitude: completed
#                                   fraction, default 0.5)
#               wedge-invq          HARD: the queue stops producing
#                                   completions and stays wedged past
#                                   the window until the driver rearms
#                                   it (magnitude: wait-timeout ns per
#                                   dropped submit)
# pcie          link-flap           link down for the whole window;
#                                   DMA starts are held until it ends
#               lane-loss           link retrains at reduced width
#                                   (magnitude: wire slowdown factor,
#                                   default 2.0)
#               nack-replay         a TLP is NACKed and replayed
#                                   (magnitude: replay penalty ns)
# nic           ring-stall          descriptor DMA engine stalls for the
#                                   window; buffered packets wait
#               doorbell-drop       a doorbell write is lost; the posted
#                                   descriptor is invisible until the
#                                   next write (magnitude: redelivery
#                                   delay ns)
#               device-wedge        HARD: the device stops fetching
#                                   descriptors entirely and stays dead
#                                   until a function-level reset
# net           loss                packet dropped on the wire
#               reorder             packet delayed past its successors
#                                   (magnitude: extra delay ns)
# iommu         fault-storm         spurious translation faults: a DMA
#                                   to a *mapped* IOVA is reported to
#                                   the fault queue and aborted anyway
#                                   (per-translation probability)
KINDS_BY_COMPONENT: dict[str, tuple[str, ...]] = {
    "invalidation": (
        "drop-completion",
        "delay-completion",
        "partial-completion",
        "wedge-invq",
    ),
    "pcie": ("link-flap", "lane-loss", "nack-replay"),
    "nic": ("ring-stall", "doorbell-drop", "device-wedge"),
    "net": ("loss", "reorder"),
    "iommu": ("fault-storm",),
}

# Kinds that latch: once triggered they persist past their window until
# an explicit reset/rearm clears them.  The chaos harness treats an
# unrecovered latched wedge at end-of-run as a liveness failure.
HARD_KINDS: frozenset[str] = frozenset({"wedge-invq", "device-wedge"})


@dataclass(frozen=True)
class FaultSpec:
    """One fault: component, kind, activation window, odds, magnitude."""

    component: str
    kind: str
    start_ns: float = 0.0
    end_ns: float = math.inf
    probability: float = 1.0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        kinds = KINDS_BY_COMPONENT.get(self.component)
        if kinds is None:
            known = ", ".join(sorted(KINDS_BY_COMPONENT))
            raise ValueError(
                f"unknown fault component {self.component!r} "
                f"(known: {known})"
            )
        if self.kind not in kinds:
            raise ValueError(
                f"unknown {self.component} fault kind {self.kind!r} "
                f"(known: {', '.join(kinds)})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability {self.probability} outside [0, 1]"
            )
        if self.end_ns <= self.start_ns:
            raise ValueError(
                f"empty fault window [{self.start_ns}, {self.end_ns})"
            )
        if self.magnitude < 0.0:
            raise ValueError(f"negative magnitude {self.magnitude}")

    def active(self, now_ns: float) -> bool:
        """Whether the spec's window covers simulated time ``now_ns``."""
        return self.start_ns <= now_ns < self.end_ns

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "component": self.component,
            "kind": self.kind,
            "start_ns": self.start_ns,
            # JSON has no infinity; an open-ended window serializes as
            # null and parses back to math.inf.
            "end_ns": None if math.isinf(self.end_ns) else self.end_ns,
            "probability": self.probability,
            "magnitude": self.magnitude,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        end_ns = data.get("end_ns")
        return cls(
            component=data["component"],
            kind=data["kind"],
            start_ns=float(data.get("start_ns", 0.0)),
            end_ns=math.inf if end_ns is None else float(end_ns),
            probability=float(data.get("probability", 1.0)),
            magnitude=float(data.get("magnitude", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault specs."""

    seed: int = 1
    specs: tuple[FaultSpec, ...] = ()
    name: str = "plan"

    def __post_init__(self) -> None:
        # Tolerate lists from callers/JSON; store a hashable tuple.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    def for_component(self, component: str) -> tuple[FaultSpec, ...]:
        return tuple(
            spec for spec in self.specs if spec.component == component
        )

    @property
    def components(self) -> list[str]:
        """Components with at least one spec, in catalog order."""
        return [
            component
            for component in KINDS_BY_COMPONENT
            if self.for_component(component)
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        specs: Sequence[dict[str, Any]] = data.get("specs", [])
        return cls(
            seed=int(data.get("seed", 1)),
            specs=tuple(FaultSpec.from_dict(entry) for entry in specs),
            name=str(data.get("name", "plan")),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

"""Global monitor registration: how instrumented modules find the monitor.

Instrumented classes (:class:`~repro.iommu.Iommu`, the caches, the IOVA
allocators, the protection drivers) read :func:`current_monitor` once at
construction time and keep the result in a ``monitor`` attribute.  Every
emission site is guarded by ``if self.monitor is not None``, so with no
monitor installed the instrumentation costs one attribute load and a
pointer comparison — nothing is allocated and no event objects exist,
keeping benchmark numbers unaffected.

This module is a leaf: it must not import anything from ``repro`` so
that every instrumented module can import it without cycles.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .monitor import InvariantMonitor

__all__ = ["current_monitor", "set_monitor", "monitored"]

_MONITOR: Optional["InvariantMonitor"] = None


def current_monitor() -> Optional["InvariantMonitor"]:
    """The globally installed monitor, or ``None`` (the fast default)."""
    return _MONITOR


def set_monitor(monitor: Optional["InvariantMonitor"]) -> None:
    """Install ``monitor`` globally; new instrumented objects attach to it."""
    global _MONITOR
    _MONITOR = monitor


@contextlib.contextmanager
def monitored(monitor: "InvariantMonitor") -> Iterator["InvariantMonitor"]:
    """Install ``monitor`` for the duration of a ``with`` block.

    Objects constructed inside the block (hosts, drivers, IOMMUs) attach
    themselves to the monitor; objects constructed outside are untouched.
    """
    previous = current_monitor()
    set_monitor(monitor)
    try:
        yield monitor
    finally:
        set_monitor(previous)

"""Source-tree discovery and ``# noqa`` handling shared by both checkers.

``repro lint`` and ``repro analyze`` walk the same files and honour the
same suppression comments; this module is the single implementation.

File discovery skips what is obviously not project source: byte-code
caches, hidden directories, packaging/build output, vendored
dependencies and virtualenvs (detected by ``pyvenv.cfg``).  Without the
pruning, ``repro lint .`` from a repo checkout happily linted
``__pycache__`` and any local venv.

``# noqa`` detection is token-based: only a marker inside an actual
comment token counts, so a string literal that *contains* ``"# noqa"``
(test fixtures, docs, this module) no longer silences findings on its
line.
"""

from __future__ import annotations

import io
import os
import tokenize
from pathlib import Path
from typing import Iterator, Optional, Sequence

__all__ = ["iter_python_files", "noqa_lines", "is_suppressed"]

# Directory basenames that never contain first-party source.
_SKIP_DIR_NAMES = {
    "__pycache__",
    "build",
    "dist",
    "node_modules",
    "site-packages",
}


def _skip_dir(path: Path) -> bool:
    name = path.name
    if name.startswith("."):  # .git, .tox, .venv, .mypy_cache, ...
        return True
    if name in _SKIP_DIR_NAMES or name.endswith(".egg-info"):
        return True
    # A virtualenv by any name announces itself with pyvenv.cfg.
    return (path / "pyvenv.cfg").is_file()


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, pruned and deterministic.

    Files given explicitly are always yielded (even a ``.py`` inside a
    cache directory — an explicit argument is a deliberate choice);
    pruning applies to the directory walk only.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                here = Path(dirpath)
                dirnames[:] = sorted(
                    d for d in dirnames if not _skip_dir(here / d)
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield here / filename
        elif path.suffix == ".py":
            yield path


# ---------------------------------------------------------------------------
# noqa suppression
# ---------------------------------------------------------------------------
def _parse_noqa(comment: str) -> Optional[set[str]]:
    """Codes silenced by one comment token (empty set = silence all)."""
    marker = "# noqa"
    idx = comment.find(marker)
    if idx < 0:
        return None
    rest = comment[idx + len(marker):].strip()
    if rest.startswith(":"):
        return {code.strip() for code in rest[1:].split(",") if code.strip()}
    return set()


def noqa_lines(source: str) -> dict[int, set[str]]:
    """Map line number -> codes silenced there (empty set = all codes).

    Built from the token stream, so ``# noqa`` appearing inside a string
    literal is *not* a suppression.  Tokenisation errors (the caller
    already reported the file as unparseable) yield an empty map.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            codes = _parse_noqa(token.string)
            if codes is not None:
                suppressions[token.start[0]] = codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return suppressions


def is_suppressed(
    suppressions: dict[int, set[str]], line: int, code: str
) -> bool:
    codes = suppressions.get(line)
    if codes is None:
        return False
    return not codes or code in codes

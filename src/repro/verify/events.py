"""Structured events emitted by instrumented simulator components.

Every event is a small plain object.  The monitor receives them in
emission order through :meth:`InvariantMonitor.record`; the most recent
events form the trace attached to an
:class:`~repro.verify.violation.InvariantViolation`.

Events carry byte addresses (``iova``) and byte lengths; the monitor
converts to 4 KB page numbers internally.  ``seq`` is stamped by the
monitor when the event is recorded, not by the emitter.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

__all__ = [
    "Event",
    "MapEvent",
    "UnmapEvent",
    "InvalidationEvent",
    "PtCacheInvalidationEvent",
    "FlushEvent",
    "TranslateEvent",
    "DmaFaultEvent",
    "PtCacheHitEvent",
    "PtPageReclaimedEvent",
    "IotlbEvictEvent",
    "IovaAllocEvent",
    "IovaFreeEvent",
    "BufferRegisteredEvent",
    "BufferRetiredEvent",
]


class Event:
    """Base class for all monitor events.

    ``seq`` and ``owner`` are stamped by
    :meth:`~repro.verify.monitor.InvariantMonitor.record`: ``seq`` is
    the global emission order and ``owner`` scopes the event to one
    instrumented instance (one IOMMU, one allocator), so several
    independent address spaces can share a monitor without their state
    bleeding together.
    """

    __slots__ = ("seq", "owner")

    def __init__(self) -> None:
        self.seq = -1
        self.owner = 0

    def touches(self, iova: int) -> bool:
        """Whether this event concerns the page containing ``iova``."""
        return False

    def _describe(self) -> str:
        return ""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} #{self.seq} {self._describe()}>"


class _RangeEvent(Event):
    """An event covering the IOVA byte range ``[iova, iova+length)``."""

    __slots__ = ("iova", "length")

    def __init__(self, iova: int, length: int) -> None:
        super().__init__()
        self.iova = iova
        self.length = length

    def touches(self, iova: int) -> bool:
        first = self.iova >> 12
        last = (self.iova + max(self.length, 1) - 1) >> 12
        return first <= (iova >> 12) <= last

    def _describe(self) -> str:
        return f"iova={self.iova:#x} length={self.length:#x}"


class MapEvent(_RangeEvent):
    """Pages ``[iova, iova+length)`` were mapped in the IO page table."""

    __slots__ = ("huge",)

    def __init__(self, iova: int, length: int, huge: bool = False) -> None:
        super().__init__(iova, length)
        self.huge = huge


class UnmapEvent(_RangeEvent):
    """A single unmap operation cleared ``[iova, iova+length)``.

    ``reclaimed_levels`` summarizes any page-table pages the operation
    reclaimed (empty for descriptor-granularity unmaps).
    """

    __slots__ = ("reclaimed_levels",)

    def __init__(
        self, iova: int, length: int, reclaimed_levels: Tuple[int, ...] = ()
    ) -> None:
        super().__init__(iova, length)
        self.reclaimed_levels = reclaimed_levels


class InvalidationEvent(_RangeEvent):
    """One invalidation-queue descriptor completed for the range."""

    __slots__ = ("preserve_ptcache",)

    def __init__(self, iova: int, length: int, preserve_ptcache: bool) -> None:
        super().__init__(iova, length)
        self.preserve_ptcache = preserve_ptcache


class PtCacheInvalidationEvent(_RangeEvent):
    """A PTcache-only invalidation (F&S's reclamation fallback)."""

    __slots__ = ()


class FlushEvent(Event):
    """A global IOTLB + PTcache flush (deferred mode's batch retire)."""

    __slots__ = ()

    def touches(self, iova: int) -> bool:
        return True


class TranslateEvent(_RangeEvent):
    """A translation *succeeded* for a device access at ``iova``."""

    __slots__ = ("source", "iotlb_hit", "stale", "frame")

    def __init__(
        self, iova: int, source: str, iotlb_hit: bool, stale: bool, frame: int
    ) -> None:
        super().__init__(iova, 1)
        self.source = source
        self.iotlb_hit = iotlb_hit
        self.stale = stale
        self.frame = frame

    def _describe(self) -> str:
        return (
            f"iova={self.iova:#x} source={self.source} "
            f"hit={self.iotlb_hit} stale={self.stale}"
        )


class DmaFaultEvent(_RangeEvent):
    """A translation faulted (the IOMMU blocked the access)."""

    __slots__ = ("source",)

    def __init__(self, iova: int, source: str) -> None:
        super().__init__(iova, 1)
        self.source = source


class PtCacheHitEvent(_RangeEvent):
    """A PTcache probe hit; ``page`` is the cached page-table page."""

    __slots__ = ("level", "page")

    def __init__(self, level: int, iova: int, page: Any) -> None:
        super().__init__(iova, 1)
        self.level = level
        self.page = page

    def _describe(self) -> str:
        return f"level={self.level} iova={self.iova:#x} page={self.page!r}"


class PtPageReclaimedEvent(Event):
    """An unmap reclaimed one page-table page (``page`` is the object)."""

    __slots__ = ("page",)

    def __init__(self, page: Any) -> None:
        super().__init__()
        self.page = page

    def touches(self, iova: int) -> bool:
        page = self.page
        return bool(
            page.base_iova <= iova < page.base_iova + page.coverage_bytes
        )

    def _describe(self) -> str:
        return repr(self.page)


class IotlbEvictEvent(_RangeEvent):
    """The IOTLB capacity-evicted a page's entry (not a safety event by
    itself; kept in the trace to explain later misses)."""

    __slots__ = ()

    def __init__(self, iova: int) -> None:
        super().__init__(iova, 1)


class IovaAllocEvent(_RangeEvent):
    """The allocator handed out ``pages`` IOVA pages at ``iova``.

    ``layer`` names the allocator that emitted the event ("rcache" for
    the user-visible caching front, "rbtree" for direct slow-path use)
    so the monitor books each layer's outstanding set separately (a
    cached free parks in a magazine while staying allocated in the
    rbtree, so the two layers legitimately disagree).
    """

    __slots__ = ("pages", "cpu", "layer")

    def __init__(self, iova: int, pages: int, cpu: int, layer: str) -> None:
        super().__init__(iova, pages << 12)
        self.pages = pages
        self.cpu = cpu
        self.layer = layer

    def _describe(self) -> str:
        return f"iova={self.iova:#x} pages={self.pages} layer={self.layer}"


class IovaFreeEvent(IovaAllocEvent):
    """The allocator was asked to free ``pages`` IOVA pages at ``iova``."""

    __slots__ = ()


class BufferRegisteredEvent(Event):
    """A protection driver mapped a DMA buffer the device may target.

    ``kind`` is "rx" (descriptor page slots) or "tx" (socket-buffer
    pages); ``iovas`` lists the page-aligned IOVAs of every 4 KB page in
    the buffer; ``handle`` identifies the buffer for retirement.
    """

    __slots__ = ("kind", "iovas", "handle")

    def __init__(
        self, kind: str, iovas: Tuple[int, ...], handle: Optional[int] = None
    ) -> None:
        super().__init__()
        self.kind = kind
        self.iovas = iovas
        self.handle = handle

    def touches(self, iova: int) -> bool:
        page = iova >> 12
        return any((base >> 12) == page for base in self.iovas)

    def _describe(self) -> str:
        return f"kind={self.kind} pages={len(self.iovas)} handle={self.handle}"


class BufferRetiredEvent(BufferRegisteredEvent):
    """The driver retired (unmapped/freed) a previously registered buffer."""

    __slots__ = ()

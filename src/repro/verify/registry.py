"""The pluggable rule registry shared by ``repro lint`` and ``repro analyze``.

Both static checkers — the fast per-file AST lint
(:mod:`repro.verify.lint`) and the whole-program CFG/dataflow analyzer
(:mod:`repro.verify.analyze`) — report :class:`Finding` objects tagged
with a ``REPROxxx`` code.  This module is the single source of truth
for what those codes *mean*: one :class:`RuleInfo` per code, with a
short summary (shown in SARIF rule metadata) and a longer explanation
(shown by ``--explain CODE``).

A code may be implemented by more than one engine: ``REPRO004`` has a
fast class-closure heuristic in the lint and a path-sensitive
CFG/dataflow implementation in the analyzer.  The registry entry is
shared; the ``engines`` field records who runs it.

This module is a leaf — it must not import anything else from
``repro`` so both engines (and the CLI) can import it freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Finding",
    "RuleInfo",
    "register_rule",
    "rule_info",
    "all_rules",
    "explain",
]


@dataclass(frozen=True)
class Finding:
    """One static finding, formatted as ``path:line:col CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready record (``repro lint/analyze --format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True)
class RuleInfo:
    """Metadata for one ``REPROxxx`` code."""

    code: str
    name: str  # short kebab-case identifier (SARIF rule name)
    summary: str  # one line; SARIF shortDescription
    explanation: str  # multi-line prose; ``--explain CODE``
    engines: tuple[str, ...]  # which checkers implement it
    category: str  # "determinism" | "dma-safety" | "observability" | "spec"

    def explain_text(self) -> str:
        engines = " + ".join(self.engines)
        return (
            f"{self.code} [{self.name}] ({self.category}; checked by: "
            f"{engines})\n\n{self.summary}\n\n{self.explanation.strip()}\n"
        )


_REGISTRY: dict[str, RuleInfo] = {}


def register_rule(info: RuleInfo) -> RuleInfo:
    """Add ``info`` to the registry; re-registering a code is an error."""
    if info.code in _REGISTRY:
        raise ValueError(f"rule {info.code} registered twice")
    _REGISTRY[info.code] = info
    return info


def rule_info(code: str) -> Optional[RuleInfo]:
    _ensure_builtin_rules()
    return _REGISTRY.get(code)


def all_rules() -> list[RuleInfo]:
    """Every registered rule, sorted by code."""
    _ensure_builtin_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def explain(code: str) -> Optional[str]:
    """The ``--explain`` text for ``code``, or ``None`` if unknown."""
    info = rule_info(code)
    return info.explain_text() if info is not None else None


# ---------------------------------------------------------------------------
# Built-in rule catalogue
# ---------------------------------------------------------------------------
# Registered lazily on first lookup so importing this module stays free
# of side effects for callers that only want the Finding dataclass.
_BUILTIN_DONE = False


def _ensure_builtin_rules() -> None:
    global _BUILTIN_DONE
    if _BUILTIN_DONE:
        return
    _BUILTIN_DONE = True
    for info in _BUILTIN_RULES:
        register_rule(info)


_BUILTIN_RULES = [
    RuleInfo(
        code="REPRO000",
        name="syntax-error",
        summary="The file does not parse; nothing else can be checked.",
        explanation="""
A file that fails to parse is reported once with the parser's message
and skipped by every other rule.  Fix the syntax error and re-run.
""",
        engines=("lint", "analyze"),
        category="determinism",
    ),
    RuleInfo(
        code="REPRO001",
        name="wall-clock-or-global-rng",
        summary=(
            "Wall-clock reads or module-level RNG calls break simulation "
            "determinism."
        ),
        explanation="""
The simulator's clock is the event calendar; reading the host's clock
(time.time(), datetime.now(), ...) or drawing from the process-global
random module makes two runs of the same seed diverge.  Use the
simulated clock (sim.now) and repro.sim.SeededRng.  random.Random(seed)
is the sanctioned seam SeededRng wraps and is allowed.
""",
        engines=("lint",),
        category="determinism",
    ),
    RuleInfo(
        code="REPRO002",
        name="hash-ordered-iteration",
        summary=(
            "Iterating a bare set has PYTHONHASHSEED-dependent order."
        ),
        explanation="""
Iteration order over set/frozenset (and set expressions) depends on the
interpreter's hash seed; feeding it into event scheduling makes runs
irreproducible across processes.  Wrap the iterable in sorted() or
iterate a list with a deterministic order.
""",
        engines=("lint",),
        category="determinism",
    ),
    RuleInfo(
        code="REPRO003",
        name="timestamp-float-equality",
        summary=(
            "Float ==/!= on simulated timestamps is brittle; compare "
            "with a tolerance or integer ticks."
        ),
        explanation="""
Simulated times are floats (nanoseconds); two logically simultaneous
events can differ in the last ulp after arithmetic.  Equality tests on
identifiers that look like timestamps (time, deadline, clock, ...) are
flagged unless the other side is a literal constant.
""",
        engines=("lint",),
        category="determinism",
    ),
    RuleInfo(
        code="REPRO004",
        name="unmap-without-invalidate",
        summary=(
            "A protection driver unmaps an IOVA range on a path that "
            "never enqueues the matching IOTLB invalidation."
        ),
        explanation="""
The paper's safety property: no DMA may ever hit a stale translation.
After unmap_range()/unmap_page(), the IOTLB (and, when page-table pages
were reclaimed, the PTcaches) must be invalidated before the buffer can
be reused — otherwise the device keeps a live translation to a page the
kernel thinks is free.

Two implementations share this code:

* the lint's class-closure heuristic — the union of attribute calls
  across a Driver class must contain an invalidation whenever it
  contains an unmap (plus a per-while-loop re-arm check);
* the analyzer's path-sensitive CFG/dataflow rule — every unmap call
  site must be followed by an invalidation (direct, or via a method
  that transitively invalidates) on *all* control-flow paths before the
  function returns or remaps/reuses buffers.  This catches what the
  closure provably misses: unmap in one branch with the invalidation
  only in the other, and early returns that skip the invalidation.
""",
        engines=("lint", "analyze"),
        category="dma-safety",
    ),
    RuleInfo(
        code="REPRO101",
        name="use-after-unmap",
        summary=(
            "An IOVA is passed to a DMA/translate sink after the path "
            "already unmapped it (static twin of the runtime monitor)."
        ),
        explanation="""
IOVA-lifetime taint analysis: the first argument of an
unmap_range()/unmap_page() call becomes tainted; if the same expression
later reaches a DMA sink (translate, dma_read, dma_write) on some
control-flow path without being re-assigned or re-mapped, the code
statically contains a use-after-unmap — the exact class of bug the
runtime invariant monitor (repro verify) only catches on executed
paths.
""",
        engines=("analyze",),
        category="dma-safety",
    ),
    RuleInfo(
        code="REPRO102",
        name="sim-callback-race",
        summary=(
            "Two event callbacks assign the same resource attribute "
            "with no scheduling happens-before edge between them."
        ),
        explanation="""
The simulator fires same-timestamp events in scheduling (FIFO) order,
so two independently scheduled callbacks that both *assign* the same
self.<attr> are order-dependent: whichever was scheduled last wins.
The rule collects every method a class hands to
call_at/call_after/schedule_at/schedule_after, the attributes each
plainly assigns (augmented updates like ``+=`` commute and are
ignored), and the happens-before edges induced by one callback
(transitively) scheduling another.  A pair of callbacks with a shared
assigned attribute and no scheduling path between them in either
direction is flagged at the class definition.

Soundness trade-off: the rule cannot see dynamic guards that make the
writes mutually exclusive; accepted pairs belong in the committed
analyze baseline with a short justification.
""",
        engines=("analyze",),
        category="determinism",
    ),
    RuleInfo(
        code="REPRO103",
        name="unguarded-hook-work",
        summary=(
            "Metrics/monitor/fault-hook work performed outside the "
            "zero-cost ``if hooks:`` guard."
        ),
        explanation="""
The observability, verification and fault layers are zero-cost when
disabled *by contract*: objects read current_registry() /
current_monitor() / current_faults() / injector_for() once, keep the
result in an attribute (obs, monitor, faults), and guard every use
with ``if self.obs is not None:`` (or an early return).  A use that is
not dominated by such a guard either crashes un-instrumented runs
(AttributeError on None) or silently moves work onto the hot path.
The rule runs a forward must-analysis over the CFG: a hook variable is
"known non-None" only when every path into the use passed the guard.
""",
        engines=("analyze",),
        category="observability",
    ),
    RuleInfo(
        code="REPRO104",
        name="spec-phase-selector-unmatched",
        summary=(
            "An expectation spec's phase_contains selector matches no "
            "phase label the experiments can produce."
        ),
        explanation="""
Expectation specs select metric phases with substring selectors
(phase_contains=" fns "); phase labels are minted by the experiment
runners (PointSpec(label=f"{figure_id} {mode} ..."), begin_phase(...)).
The rule cross-checks every selector token against the live label
vocabulary: the constant fragments of every label template plus every
mode-name constant assigned to a ``name`` attribute.  A selector whose
token appears nowhere (a typo like " fnss ") would make the claim skip
forever — the spec silently stops checking anything.
""",
        engines=("analyze",),
        category="spec",
    ),
    RuleInfo(
        code="REPRO105",
        name="reset-without-rearm",
        summary=(
            "A driver reset/recovery method maps DMA buffers on a path "
            "that never re-armed the invalidation queue."
        ),
        explanation="""
The hard-fault recovery protocol (DESIGN.md §14): a wedged invalidation
queue has been dropping completion reports, so when a reset/recovery
method runs, pending unmaps may not have reached the IOTLB yet.
Re-arming the queue (rearm(), or a hardened retire/flush that ends in
flush_all()) is what restores the invalidation barrier; mapping fresh
DMA buffers before that point rebuilds rings while stale translations
may still be live in the IOTLB — exactly the window the paper's safety
property forbids.  The rule runs a forward must-analysis over each
reset*/recover* method of a Driver class: every map-family call
(map_page/map_range/map_huge/make_rx_descriptor/map_tx_page, or a
helper that transitively maps) must be preceded by a re-arm on *all*
control-flow paths.
""",
        engines=("analyze",),
        category="dma-safety",
    ),
    RuleInfo(
        code="REPRO106",
        name="per-item-pool-dispatch",
        summary=(
            "A loop submits one pool task per iterated item with no "
            "chunking; per-item dispatch loses to a serial sweep."
        ),
        explanation="""
The parallel-sweep regression recorded in BENCH_sim.json: submitting
every sweep point as its own executor future pays a round of payload
pickling and future bookkeeping per point, and on simulator-sized
points that overhead exceeds what the parallelism recovers — the
committed benchmark measured ``--jobs 2`` slower than the serial sweep.
The warm-pool dispatcher (repro.parallel.pool) fixes this by shipping
fixed-size chunks of consecutive points per worker task.  The rule
flags ``<pool>.submit(fn, <loop-var>, ...)`` inside a ``for`` loop
where the loop variable is passed directly as a task argument, unless
the enclosing function uses chunking vocabulary (any name, attribute or
call containing "chunk"), which marks the batched idiom.
""",
        engines=("analyze",),
        category="observability",
    ),
]

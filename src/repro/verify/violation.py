"""The structured safety-violation error raised by the monitor."""

from __future__ import annotations

from typing import List, Optional

from .events import Event

__all__ = ["InvariantViolation"]


class InvariantViolation(AssertionError):
    """A checked safety invariant was broken by a simulated event.

    Attributes
    ----------
    kind:
        Machine-readable invariant id: ``"use-after-unmap"``,
        ``"stale-ptcache"``, ``"iova-overlap"``, ``"iova-bad-free"`` or
        ``"dma-out-of-bounds"``.
    event:
        The event that triggered the violation.
    trace:
        The monitor's recent event history (oldest first), ending with
        the violating event.
    """

    def __init__(
        self,
        kind: str,
        message: str,
        event: Event,
        trace: List[Event],
    ) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.event = event
        self.trace = trace

    def events_touching(self, iova: Optional[int] = None) -> List[Event]:
        """Trace events that concern ``iova`` (default: the violating
        event's page), oldest first — the per-address causal history."""
        if iova is None:
            iova = getattr(self.event, "iova", None)
        if iova is None:
            return list(self.trace)
        return [event for event in self.trace if event.touches(iova)]

    def format_trace(self, iova: Optional[int] = None) -> str:
        """Human-readable rendering of the (filtered) event trace."""
        lines = [str(self)]
        for event in self.events_touching(iova):
            lines.append(f"  {event!r}")
        return "\n".join(lines)

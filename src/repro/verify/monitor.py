"""The runtime invariant checker.

:class:`InvariantMonitor` consumes the event stream emitted by the
instrumented simulator components (see :mod:`repro.verify.events`) and
checks, per event, the safety invariants the paper's argument rests on:

(a) **use-after-unmap** — no translation succeeds for an IOVA after the
    IOTLB invalidation for its unmap completed.  This is the strict
    safety property: once the unmap's invalidation is done, the device
    must fault on any access until the page is mapped again.

(b) **stale-ptcache** — a preserved PTcache entry is never consulted
    after the page-table page it caches was reclaimed.  F&S preserves
    PTcache entries across unmaps precisely because descriptor-sized
    unmaps never reclaim page-table pages; when one *is* reclaimed the
    driver must drop the covering entries (the correctness fallback) or
    a later walk would follow a dangling page pointer.

(c) **iova-overlap / iova-bad-free** — the IOVA allocator never hands
    out overlapping page ranges and never accepts a free for a range it
    did not allocate (double frees included; the Linux rcache silently
    swallows those, which is exactly why the monitor checks them).

(d) **dma-out-of-bounds** — every translated device access lands inside
    a buffer the protection driver currently has registered (an Rx
    descriptor's page slots or a live Tx socket-buffer page).

Violations raise :class:`~repro.verify.violation.InvariantViolation`
carrying the recent event trace; pass ``raise_on_violation=False`` to
collect violations instead (``monitor.violations``).

The monitor is attached either globally — construct instrumented
objects inside ``with monitored(InvariantMonitor()): ...`` — or after
the fact with :meth:`attach_iommu` / :meth:`attach_driver`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from .events import (
    BufferRegisteredEvent,
    BufferRetiredEvent,
    DmaFaultEvent,
    Event,
    FlushEvent,
    InvalidationEvent,
    IotlbEvictEvent,
    IovaAllocEvent,
    IovaFreeEvent,
    MapEvent,
    PtCacheHitEvent,
    PtCacheInvalidationEvent,
    PtPageReclaimedEvent,
    TranslateEvent,
    UnmapEvent,
)
from .violation import InvariantViolation

__all__ = ["InvariantMonitor"]

PAGE_SHIFT = 12


def _pages_of(iova: int, length: int) -> range:
    first = iova >> PAGE_SHIFT
    last = (iova + max(length, 1) - 1) >> PAGE_SHIFT
    return range(first, last + 1)


class _AllocatorBook:
    """Outstanding-range bookkeeping for one allocator layer."""

    __slots__ = ("ranges", "pages")

    def __init__(self) -> None:
        self.ranges: Dict[int, int] = {}  # base pfn -> pages
        self.pages: Set[int] = set()


class InvariantMonitor:
    """Checks DMA-safety invariants over the simulator's event stream."""

    def __init__(
        self,
        trace_limit: int = 512,
        raise_on_violation: bool = True,
        check_dma_bounds: bool = True,
    ) -> None:
        self.trace_limit = trace_limit
        self.raise_on_violation = raise_on_violation
        self.check_dma_bounds = check_dma_bounds
        self._trace: Deque[Event] = deque(maxlen=trace_limit)
        self._seq = 0
        # All mutable invariant state is scoped by the event's ``owner``
        # (the emitting IOMMU/allocator instance): experiments routinely
        # run several hosts — several independent IOVA spaces — against
        # one monitor, and the same IOVA value is unrelated across them.
        # Invariant (a): unmapped pages by invalidation progress.
        self._pending_invalidation: Dict[int, Set[int]] = {}
        self._dead_pages: Dict[int, Set[int]] = {}
        # Invariant (b): identity of reclaimed page-table pages.  Strong
        # references are kept deliberately so ``id()`` values are never
        # recycled; reclaims are rare (only >= 2 MB unmaps cause them).
        # Object identity is already globally unique — no owner scoping.
        self._reclaimed_ids: Set[int] = set()
        self._reclaimed_refs: List[Any] = []
        # Invariant (c): allocator books, one per (layer, instance).
        self._books: Dict[Tuple[str, int], _AllocatorBook] = {}
        # Invariant (d): pages of currently registered DMA buffers.
        self._live_pages: Dict[Tuple[int, str], Set[int]] = {}
        self._buffers_seen: Set[Tuple[int, str]] = set()
        # Outcomes.
        self.violations: List[InvariantViolation] = []
        self.events_recorded = 0
        self.translations_checked = 0
        self.stale_window_translations = 0
        self.faults_observed = 0
        self._handlers: Dict[type, Callable[[Any], None]] = {
            MapEvent: self._on_map,
            UnmapEvent: self._on_unmap,
            InvalidationEvent: self._on_invalidation,
            FlushEvent: self._on_flush,
            TranslateEvent: self._on_translate,
            DmaFaultEvent: self._on_fault,
            PtCacheHitEvent: self._on_ptcache_hit,
            PtPageReclaimedEvent: self._on_pt_reclaim,
            PtCacheInvalidationEvent: self._ignore,
            IotlbEvictEvent: self._ignore,
            IovaAllocEvent: self._on_iova_alloc,
            IovaFreeEvent: self._on_iova_free,
            BufferRegisteredEvent: self._on_buffer_registered,
            BufferRetiredEvent: self._on_buffer_retired,
        }

    # ------------------------------------------------------------------
    # Attachment helpers
    # ------------------------------------------------------------------
    def attach_iommu(self, iommu: Any) -> None:
        """Attach to an already-constructed :class:`~repro.iommu.Iommu`."""
        iommu.monitor = self
        iommu.page_table.monitor = self
        iommu.iotlb.monitor = self
        iommu.invalidation_queue.monitor = self
        for cache in iommu.ptcaches.levels:
            cache.monitor = self

    def attach_allocator(self, allocator: Any) -> None:
        """Attach to a caching or rbtree IOVA allocator instance."""
        allocator.monitor = self
        inner = getattr(allocator, "rbtree", None)
        if inner is not None:
            inner.monitor = self

    def attach_driver(self, driver: Any) -> None:
        """Attach to a protection driver plus everything beneath it."""
        driver.monitor = self
        iommu = getattr(driver, "iommu", None)
        if iommu is not None:
            self.attach_iommu(iommu)
        allocator = getattr(driver, "allocator", None)
        if allocator is not None:
            self.attach_allocator(allocator)

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def record(self, event: Event, owner: int = 0) -> None:
        """Stamp, trace, and check one event (the emitters' entry point).

        ``owner`` is the emitting instance's scope token (emitters pass
        an ``id()``); 0 means "unscoped", fine for single-instance use.
        """
        event.seq = self._seq
        event.owner = owner
        self._seq += 1
        self.events_recorded += 1
        self._trace.append(event)
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)

    def trace(self) -> List[Event]:
        """The retained event history, oldest first."""
        return list(self._trace)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        return (
            f"verify: {self.events_recorded} events, "
            f"{self.translations_checked} translations checked, "
            f"{self.faults_observed} faults blocked, "
            f"{len(self.violations)} violations"
        )

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------
    def _violate(self, kind: str, message: str, event: Event) -> None:
        violation = InvariantViolation(kind, message, event, self.trace())
        self.violations.append(violation)
        if self.raise_on_violation:
            raise violation

    @staticmethod
    def _ignore(event: Event) -> None:
        return None

    # ------------------------------------------------------------------
    # Invariant (a): use-after-unmap
    # ------------------------------------------------------------------
    def _pending(self, owner: int) -> Set[int]:
        return self._pending_invalidation.setdefault(owner, set())

    def _dead(self, owner: int) -> Set[int]:
        return self._dead_pages.setdefault(owner, set())

    def _on_map(self, event: MapEvent) -> None:
        pending = self._pending(event.owner)
        dead = self._dead(event.owner)
        for page in _pages_of(event.iova, event.length):
            pending.discard(page)
            dead.discard(page)

    def _on_unmap(self, event: UnmapEvent) -> None:
        self._pending(event.owner).update(
            _pages_of(event.iova, event.length)
        )

    def _on_invalidation(self, event: InvalidationEvent) -> None:
        pending = self._pending(event.owner)
        dead = self._dead(event.owner)
        for page in _pages_of(event.iova, event.length):
            if page in pending:
                pending.discard(page)
                dead.add(page)

    def _on_flush(self, event: FlushEvent) -> None:
        pending = self._pending(event.owner)
        self._dead(event.owner).update(pending)
        pending.clear()

    def _on_translate(self, event: TranslateEvent) -> None:
        self.translations_checked += 1
        page = event.iova >> PAGE_SHIFT
        if page in self._dead(event.owner):
            self._violate(
                "use-after-unmap",
                f"translation succeeded for iova {event.iova:#x} "
                f"({event.source}) after its unmap's IOTLB invalidation "
                "completed — the device can still reach a retired page",
                event,
            )
            return
        if page in self._pending(event.owner) or event.stale:
            # Unmapped but the invalidation has not completed yet: the
            # deferral window deferred mode *permits* (and the paper
            # rejects).  Counted, not a strict-property violation —
            # invariant (a) only bites once the invalidation completed.
            self.stale_window_translations += 1
        self._check_dma_bounds(event, page)

    def _on_fault(self, event: DmaFaultEvent) -> None:
        self.faults_observed += 1

    # ------------------------------------------------------------------
    # Invariant (b): stale PTcache consultation
    # ------------------------------------------------------------------
    def _on_pt_reclaim(self, event: PtPageReclaimedEvent) -> None:
        self._reclaimed_ids.add(id(event.page))
        self._reclaimed_refs.append(event.page)

    def _on_ptcache_hit(self, event: PtCacheHitEvent) -> None:
        if id(event.page) in self._reclaimed_ids:
            self._violate(
                "stale-ptcache",
                f"PTcache-L{event.level} hit for iova {event.iova:#x} "
                f"returned {event.page!r}, a page-table page that was "
                "reclaimed — the walk would follow a dangling pointer",
                event,
            )

    # ------------------------------------------------------------------
    # Invariant (c): allocator discipline
    # ------------------------------------------------------------------
    def _book(self, layer: str, owner: int) -> _AllocatorBook:
        key = (layer, owner)  # one book per allocator instance
        book = self._books.get(key)
        if book is None:
            book = self._books[key] = _AllocatorBook()
        return book

    def _on_iova_alloc(self, event: IovaAllocEvent) -> None:
        book = self._book(event.layer, event.owner)
        base = event.iova >> PAGE_SHIFT
        span = range(base, base + event.pages)
        overlap = [pfn for pfn in span if pfn in book.pages]
        if overlap:
            self._violate(
                "iova-overlap",
                f"allocator layer {event.layer!r} handed out "
                f"[{event.iova:#x}, {event.iova + event.length:#x}) which "
                f"overlaps {len(overlap)} already-outstanding page(s) "
                f"(first at pfn {overlap[0]:#x})",
                event,
            )
            return
        book.ranges[base] = event.pages
        book.pages.update(span)

    def _on_iova_free(self, event: IovaFreeEvent) -> None:
        book = self._book(event.layer, event.owner)
        base = event.iova >> PAGE_SHIFT
        allocated = book.ranges.get(base)
        if allocated is None:
            self._violate(
                "iova-bad-free",
                f"allocator layer {event.layer!r} was asked to free "
                f"iova {event.iova:#x} ({event.pages} pages) which is not "
                "an outstanding allocation (double free or stray free)",
                event,
            )
            return
        if allocated != event.pages:
            self._violate(
                "iova-bad-free",
                f"allocator layer {event.layer!r} free of iova "
                f"{event.iova:#x} used {event.pages} pages but the range "
                f"was allocated with {allocated}",
                event,
            )
            return
        del book.ranges[base]
        book.pages.difference_update(range(base, base + allocated))

    # ------------------------------------------------------------------
    # Invariant (d): DMA inside registered buffers
    # ------------------------------------------------------------------
    def _on_buffer_registered(self, event: BufferRegisteredEvent) -> None:
        key = (event.owner, event.kind)
        self._buffers_seen.add(key)
        live = self._live_pages.setdefault(key, set())
        live.update(iova >> PAGE_SHIFT for iova in event.iovas)

    def _on_buffer_retired(self, event: BufferRetiredEvent) -> None:
        live = self._live_pages.setdefault((event.owner, event.kind), set())
        live.difference_update(iova >> PAGE_SHIFT for iova in event.iovas)

    def _check_dma_bounds(self, event: TranslateEvent, page: int) -> None:
        if not self.check_dma_bounds:
            return
        kind = "rx" if event.source == "rx" else "tx"
        key = (event.owner, kind)
        if key not in self._buffers_seen:
            # No driver registered buffers of this kind: bare-IOMMU use
            # (unit tests, microbenchmarks) — nothing to bound against.
            return
        if page not in self._live_pages[key]:
            self._violate(
                "dma-out-of-bounds",
                f"device access at iova {event.iova:#x} ({event.source}) "
                f"translated successfully but is outside every registered "
                f"live {kind} buffer",
                event,
            )

"""AST walker and rule engine behind ``python -m repro lint``.

Rule metadata (summaries, ``--explain`` text) lives in the shared
registry (:mod:`repro.verify.registry`), which this engine shares with
the whole-program analyzer (:mod:`repro.verify.analyze`).  This module
implements the fast single-file passes: REPRO001-003 plus the
class-closure heuristic for REPRO004 (the analyzer carries the
path-sensitive upgrade of the same code).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..registry import Finding, explain
from ..sources import is_suppressed, iter_python_files, noqa_lines

__all__ = ["Finding", "lint_source", "lint_paths", "main"]

# ---------------------------------------------------------------------------
# REPRO001: wall-clock / module-level RNG calls
# ---------------------------------------------------------------------------
# ``module attr`` pairs that make a simulation irreproducible.  The
# class ``random.Random`` is deliberately absent: repro.sim.rng wraps it
# with a stable seed, which is the sanctioned way in.
_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}
_RANDOM_MODULE_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "seed",
    "getrandbits",
    "expovariate",
    "gauss",
    "normalvariate",
    "betavariate",
    "triangular",
    "vonmisesvariate",
}

# REPRO002: constructs whose iteration order is hash-seed dependent.
_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference"}
_ORDERING_SINKS = {"sorted"}

# REPRO003: identifier fragments that mark a simulated-clock value.
_TIMESTAMP_HINTS = ("time", "timestamp", "deadline", "now_ns", "clock")

# REPRO004: method names on either side of the unmap/invalidate pact.
_UNMAP_CALLS = {"unmap_range", "unmap_page"}
_INVALIDATE_CALLS = {
    "invalidate_range",
    "invalidate_ptcache_range",
    "flush_all",
    "flush",
    # Checked/robust interfaces (repro.faults hardening): these arm an
    # invalidation and confirm its completion.
    "submit_invalidation",
    "submit_flush",
    "_invalidate_robust",
}
_DRIVER_BASE_HINT = "Driver"


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chains as a string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []

    # -- helpers --------------------------------------------------------
    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, node.lineno, node.col_offset, code, message)
        )

    # -- REPRO001 -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) >= 2:
                mod, attr = parts[-2], parts[-1]
                if (mod, attr) in _WALLCLOCK_CALLS:
                    self._add(
                        node,
                        "REPRO001",
                        f"wall-clock call {dotted}() breaks determinism; "
                        "use simulated time",
                    )
                elif mod == "random" and attr in _RANDOM_MODULE_FUNCS:
                    self._add(
                        node,
                        "REPRO001",
                        f"module-level RNG {dotted}() breaks determinism; "
                        "use repro.sim.SeededRng",
                    )
        self.generic_visit(node)

    # -- REPRO002 -------------------------------------------------------
    def _is_unordered_iterable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
            ):
                return True
        return False

    def _check_iteration(self, iterable: ast.AST) -> None:
        # sorted(set(...)) pins the order, so only a *bare* unordered
        # iterable is a problem.
        if self._is_unordered_iterable(iterable):
            self._add(
                iterable,
                "REPRO002",
                "iteration over a set has PYTHONHASHSEED-dependent order; "
                "wrap in sorted() or iterate a list",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            self._check_iteration(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- REPRO003 -------------------------------------------------------
    def _looks_like_timestamp(self, node: ast.AST) -> bool:
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return False
        lowered = name.lower()
        return any(hint in lowered for hint in _TIMESTAMP_HINTS)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side, other in ((left, right), (right, left)):
                if self._looks_like_timestamp(side) and not isinstance(
                    other, (ast.Constant,)
                ):
                    self._add(
                        node,
                        "REPRO003",
                        "float equality on a simulated timestamp is "
                        "brittle; compare with a tolerance or use "
                        "integer ticks",
                    )
                    break
        self.generic_visit(node)

    # -- REPRO004 -------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        base_names = [
            name
            for base in node.bases
            if (name := _dotted(base)) is not None
        ]
        is_driver = any(
            base.split(".")[-1].endswith(_DRIVER_BASE_HINT)
            for base in base_names
        )
        if is_driver:
            # The union of calls across all methods is the transitive
            # closure over self-method calls within the class: if any
            # method reachable from an unmap site invalidates, the
            # invalidating call appears in this set.
            calls = {
                called.attr
                for called in ast.walk(node)
                if isinstance(called, ast.Attribute)
            }
            unmaps = calls & _UNMAP_CALLS
            if unmaps and not (calls & _INVALIDATE_CALLS):
                self._add(
                    node,
                    "REPRO004",
                    f"driver class {node.name} unmaps "
                    f"({', '.join(sorted(unmaps))}) but never enqueues "
                    "an IOTLB invalidation; stale translations survive",
                )
            self._check_retry_loops(node)
        self.generic_visit(node)

    @staticmethod
    def _invalidating_methods(node: ast.ClassDef) -> set[str]:
        """Class methods that (transitively) arm an invalidation.

        Fixpoint over self-method calls: a method invalidates if it
        calls a queue invalidation directly or calls a sibling method
        that does.
        """
        calls_by_method: dict[str, set[str]] = {}
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                calls_by_method[child.name] = {
                    called.attr
                    for called in ast.walk(child)
                    if isinstance(called, ast.Attribute)
                }
        invalidating: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, attrs in calls_by_method.items():
                if name in invalidating:
                    continue
                if attrs & _INVALIDATE_CALLS or attrs & invalidating:
                    invalidating.add(name)
                    changed = True
        return invalidating

    def _check_retry_loops(self, node: ast.ClassDef) -> None:
        """Flag ``while`` retry loops that unmap without re-arming.

        A retry loop that repeats an unmap but leaves the invalidation
        outside the loop re-arms the IOTLB invalidation only for the
        *last* attempt — every earlier attempt's stale entry survives.
        The loop body must invalidate, directly or via a class method
        that (transitively) does.
        """
        invalidating = self._invalidating_methods(node)
        safe_calls = _INVALIDATE_CALLS | invalidating
        for loop in ast.walk(node):
            if not isinstance(loop, ast.While):
                continue
            attrs = {
                called.attr
                for called in ast.walk(loop)
                if isinstance(called, ast.Attribute)
            }
            unmaps = attrs & _UNMAP_CALLS
            if unmaps and not (attrs & safe_calls):
                self._add(
                    loop,
                    "REPRO004",
                    f"driver class {node.name} retries an unmap "
                    f"({', '.join(sorted(unmaps))}) in a while loop "
                    "without re-arming the IOTLB invalidation; earlier "
                    "attempts leave stale translations live",
                )


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one module's source text; returns surviving findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                "REPRO000",
                f"syntax error: {exc.msg}",
            )
        ]
    visitor = _Visitor(path)
    visitor.visit(tree)
    # Token-based suppression: a "# noqa" inside a string literal is
    # not a comment and silences nothing.
    suppressions = noqa_lines(source)
    return [
        finding
        for finding in visitor.findings
        if not is_suppressed(suppressions, finding.line, finding.code)
    ]


# Shared with ``repro analyze``: prunes __pycache__, hidden dirs,
# build/dist output and virtualenvs (see repro.verify.sources).
_iter_python_files = iter_python_files


def lint_paths(paths: Sequence[str]) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for file in _iter_python_files(paths):
        findings.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file))
        )
    return findings


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Determinism/DMA-safety lint for repro source trees "
            "(REPRO001-004)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is one document on stdout)",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print what a REPROxxx code means and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(
        list(argv) if argv is not None else sys.argv[1:]
    )
    if args.explain is not None:
        text = explain(args.explain)
        if text is None:
            print(f"unknown rule code {args.explain!r}", file=sys.stderr)
            return 2
        print(text)
        return 0
    missing = [raw for raw in args.paths if not Path(raw).exists()]
    if missing:
        # A typo'd path must not pass vacuously (CI would go green
        # while linting nothing).
        for raw in missing:
            print(f"error: no such file or directory: {raw}",
                  file=sys.stderr)
        return 2
    findings = lint_paths(args.paths)
    if args.format == "json":
        document = {
            "tool": "repro-lint",
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        }
        print(json.dumps(document, indent=2))
        return 1 if findings else 0
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} lint finding(s)")
        return 1
    return 0

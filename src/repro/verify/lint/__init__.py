"""Simulation-determinism lint pass (``python -m repro lint``).

A small AST-based static checker that enforces the repo's determinism
and DMA-safety coding rules on ``src/repro/``:

* **REPRO001** — no wall-clock or module-level RNG inside the
  simulator: ``time.time()``, ``datetime.now()``, ``random.random()``
  and friends make runs irreproducible.  Use
  :class:`repro.sim.SeededRng` instead.
* **REPRO002** — no iteration over ``set``/``dict`` values where the
  order feeds event scheduling; set ordering depends on
  ``PYTHONHASHSEED``.
* **REPRO003** — no float ``==``/``!=`` comparisons on simulated
  timestamps; accumulate in integers or compare with a tolerance.
* **REPRO004** — every ``ProtectionDriver`` subclass that unmaps
  (calls ``unmap_range``/``unmap_page``) must also enqueue an IOTLB
  invalidation (``invalidate_range``/``flush_all``) somewhere in the
  class, or it silently leaves stale translations live.

Any line can opt out with ``# noqa: REPROxxx`` (or a bare ``# noqa``).
"""

from __future__ import annotations

from .engine import Finding, lint_paths, main

__all__ = ["Finding", "lint_paths", "main"]

"""Mechanical verification of the reproduction's safety claims.

Two halves:

* the **runtime invariant checker** (:class:`InvariantMonitor`) — hooks
  the IOMMU, its caches, the invalidation queue, the IOVA allocators
  and the protection drivers through a zero-cost-when-disabled event
  API and checks the paper's safety invariants per simulated event;
* the **static lint pass** (:mod:`repro.verify.lint`, exposed as
  ``python -m repro lint``) — AST rules that protect simulator
  determinism and driver safety discipline.

See ``README.md`` ("Verification") for the invariant catalogue.
"""

from .events import (
    BufferRegisteredEvent,
    BufferRetiredEvent,
    DmaFaultEvent,
    Event,
    FlushEvent,
    InvalidationEvent,
    IotlbEvictEvent,
    IovaAllocEvent,
    IovaFreeEvent,
    MapEvent,
    PtCacheHitEvent,
    PtCacheInvalidationEvent,
    PtPageReclaimedEvent,
    TranslateEvent,
    UnmapEvent,
)
from .hooks import current_monitor, monitored, set_monitor
from .monitor import InvariantMonitor
from .violation import InvariantViolation

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "current_monitor",
    "monitored",
    "set_monitor",
    "Event",
    "MapEvent",
    "UnmapEvent",
    "InvalidationEvent",
    "PtCacheInvalidationEvent",
    "FlushEvent",
    "TranslateEvent",
    "DmaFaultEvent",
    "PtCacheHitEvent",
    "PtPageReclaimedEvent",
    "IotlbEvictEvent",
    "IovaAllocEvent",
    "IovaFreeEvent",
    "BufferRegisteredEvent",
    "BufferRetiredEvent",
]

"""The analyzer's rule set, built on the project model + CFG/dataflow.

Seven rules ship with the analyzer:

* :class:`PathSensitiveUnmapRule` (REPRO004) — the CFG upgrade of the
  lint's class-closure heuristic: every unmap must be followed by an
  invalidation on *all* paths before return or buffer reuse, and a
  ``while`` retry loop must re-arm per iteration;
* :class:`UseAfterUnmapRule` (REPRO101) — IOVA-lifetime taint: an
  expression passed to ``unmap_*`` must not later reach a DMA sink;
* :class:`SimRaceRule` (REPRO102) — two scheduled callbacks assigning
  the same attribute with no happens-before edge;
* :class:`HookGuardRule` (REPRO103) — hook objects (obs/monitor/faults)
  used outside their ``is not None`` guard;
* :class:`SpecPhaseRule` (REPRO104) — ``phase_contains`` selectors in
  expectation specs cross-checked against the live phase-label
  vocabulary;
* :class:`ResetRearmRule` (REPRO105) — a driver reset/recovery method
  must re-arm the invalidation queue on every path before it resumes
  mapping DMA buffers;
* :class:`ChunkedDispatchRule` (REPRO106) — per-item ``pool.submit``
  in a loop over sweep points (the dispatch pattern that made
  ``--jobs 2`` slower than serial) without any chunking in the
  enclosing function.

Every rule reports plain :class:`~repro.verify.registry.Finding`
objects; ``# noqa`` filtering and baseline suppression happen in the
engine, not here.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..lint.engine import _INVALIDATE_CALLS, _UNMAP_CALLS
from ..registry import Finding
from .cfg import CFG, CFGEdge, CFGNode, build_cfg, relevant_exprs
from .dataflow import ForwardAnalysis, solve
from .project import ClassInfo, FunctionInfo, ProjectModel, dotted_name

__all__ = [
    "AnalyzerRule",
    "PathSensitiveUnmapRule",
    "UseAfterUnmapRule",
    "SimRaceRule",
    "HookGuardRule",
    "SpecPhaseRule",
    "ResetRearmRule",
    "ChunkedDispatchRule",
    "default_rules",
]

# Buffer-reuse sinks: remapping or handing out IOVA space while an
# unmap is still pending invalidation.
_REUSE_CALLS = {"map_page", "map_huge", "alloc_chunk", "alloc_page_with_chunk"}

# DMA sinks for the taint rule: translating or moving data through an
# IOVA is exactly what must never happen after its unmap.
_DMA_SINKS = {"translate", "dma_read", "dma_write"}

_SCHED_CALLS = {"call_at", "call_after", "schedule_at", "schedule_after"}

_HOOK_SOURCES = {
    "current_registry",
    "current_monitor",
    "current_faults",
    "injector_for",
}


class AnalyzerRule:
    """One whole-program rule; ``check`` sees the full project model."""

    code: str = ""

    def check(self, project: ProjectModel) -> list[Finding]:
        raise NotImplementedError


def default_rules() -> list[AnalyzerRule]:
    return [
        PathSensitiveUnmapRule(),
        UseAfterUnmapRule(),
        SimRaceRule(),
        HookGuardRule(),
        SpecPhaseRule(),
        ResetRearmRule(),
        ChunkedDispatchRule(),
    ]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------
def _calls_in(exprs: list[ast.AST]) -> list[ast.Call]:
    calls: list[ast.Call] = []
    for expr in exprs:
        for child in ast.walk(expr):
            if isinstance(child, ast.Call):
                calls.append(child)
    return calls


def _call_attr(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


# ---------------------------------------------------------------------------
# REPRO004: path-sensitive unmap-without-invalidate
# ---------------------------------------------------------------------------
# A pending-unmap fact: (line, col, called attr, looped-through-while).
_UnmapFact = tuple[int, int, str, bool]


class _PendingUnmapAnalysis(ForwardAnalysis):
    meet = "may"

    def __init__(
        self,
        cfg: CFG,
        invalidating: set[str],
        pending_helpers: set[str],
    ) -> None:
        self.cfg = cfg
        self.invalidating = invalidating
        self.pending_helpers = pending_helpers
        # While-loop anchors, for back-edge retagging.
        self._while_heads = {
            nid
            for nid, node in cfg.nodes.items()
            if node.kind == "loop" and isinstance(node.stmt, ast.While)
        }

    def gens_kills(self, node: CFGNode) -> tuple[list[_UnmapFact], bool]:
        gens: list[_UnmapFact] = []
        kill = False
        for call in _calls_in(relevant_exprs(node)):
            attr = _call_attr(call)
            name = _call_name(call)
            if attr in _UNMAP_CALLS:
                gens.append((call.lineno, call.col_offset, attr, False))
            elif attr is not None and attr in self.pending_helpers:
                # A self-helper summarized as leaking pending unmaps:
                # the obligation transfers to this call site.
                if (
                    isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == "self"
                ):
                    gens.append(
                        (call.lineno, call.col_offset, attr, False)
                    )
            if (attr is not None and attr in self.invalidating) or (
                name is not None and name in self.invalidating
            ):
                kill = True
        return gens, kill

    def transfer(self, node: CFGNode, state):
        gens, kill = self.gens_kills(node)
        if kill:
            return frozenset()
        if gens:
            return state | frozenset(gens)
        return state

    def edge(self, edge: CFGEdge, cond, state):
        if edge.exceptional and edge.dst == self.cfg.exit:
            # Facts escaping only through an uncaught raise are error
            # paths, not the return/reuse contract this rule states.
            return frozenset()
        if edge.dst in self._while_heads and edge.src > edge.dst:
            # while-loop back edge: an unmap fact that survives a full
            # iteration means the retry is not re-armed.
            return frozenset(
                (line, col, attr, True) for line, col, attr, _ in state
            )
        return state


class PathSensitiveUnmapRule(AnalyzerRule):
    """REPRO004 upgraded: all-paths unmap→invalidate before return/reuse."""

    code = "REPRO004"

    def check(self, project: ProjectModel) -> list[Finding]:
        invalidating = (
            set(_INVALIDATE_CALLS)
            | project.transitive_callers_of(set(_INVALIDATE_CALLS))
        )
        findings: list[Finding] = []
        for klass in project.classes:
            if not project.is_driver_class(klass):
                continue
            findings.extend(self._check_class(project, klass, invalidating))
        return findings

    # -- per-class summaries -------------------------------------------
    def _method_pending_at_exit(
        self,
        method: FunctionInfo,
        invalidating: set[str],
        pending_helpers: set[str],
    ) -> bool:
        cfg = build_cfg(method.node)
        analysis = _PendingUnmapAnalysis(cfg, invalidating, pending_helpers)
        states = solve(cfg, analysis)
        exit_state = states.get(cfg.exit)
        if exit_state is None:
            return False
        # The exit in-state is pre-transfer, which is what we want: no
        # statement executes at the exit node.
        return bool(exit_state)

    def _class_pending_helpers(
        self,
        project: ProjectModel,
        klass: ClassInfo,
        invalidating: set[str],
    ) -> set[str]:
        """Methods (incl. inherited) that leak pending unmaps to their
        caller on some path; fixpoint over helper-call chains."""
        methods: dict[str, FunctionInfo] = {}
        for ancestor in reversed(project.ancestors(klass)):
            methods.update(ancestor.methods)
        methods.update(klass.methods)
        pending: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, method in methods.items():
                if name in pending or name in invalidating:
                    continue
                if self._method_pending_at_exit(
                    method, invalidating, pending
                ):
                    pending.add(name)
                    changed = True
        return pending

    # -- reporting ------------------------------------------------------
    def _check_class(
        self,
        project: ProjectModel,
        klass: ClassInfo,
        invalidating: set[str],
    ) -> list[Finding]:
        pending_helpers = self._class_pending_helpers(
            project, klass, invalidating
        )
        findings: list[Finding] = []
        for method in klass.methods.values():
            findings.extend(
                self._check_method(
                    klass, method, invalidating, pending_helpers
                )
            )
        return findings

    def _check_method(
        self,
        klass: ClassInfo,
        method: FunctionInfo,
        invalidating: set[str],
        pending_helpers: set[str],
    ) -> list[Finding]:
        cfg = build_cfg(method.node)
        analysis = _PendingUnmapAnalysis(cfg, invalidating, pending_helpers)
        states = solve(cfg, analysis)
        path = klass.module.path
        where = f"{klass.name}.{method.name}"
        findings: list[Finding] = []
        reported: set[tuple] = set()

        def report(line: int, col: int, message: str, key: tuple) -> None:
            if key not in reported:
                reported.add(key)
                findings.append(Finding(path, line, col, self.code, message))

        # Stale paths reaching return: facts alive entering the exit.
        for line, col, attr, _looped in sorted(
            states.get(cfg.exit, frozenset())
        ):
            report(
                line,
                col,
                f"driver {where} unmaps ({attr}) but some path reaches "
                "return without an IOTLB invalidation; the stale "
                "translation survives the call",
                ("exit", line, col),
            )
        # Reuse while pending, and non-re-armed while retries.
        for node_id, state in states.items():
            if not state:
                continue
            node = cfg.nodes[node_id]
            for call in _calls_in(relevant_exprs(node)):
                attr = _call_attr(call)
                if attr in _REUSE_CALLS:
                    lines = sorted({fact[0] for fact in state})
                    report(
                        call.lineno,
                        call.col_offset,
                        f"driver {where} remaps/reuses IOVA space via "
                        f"{attr}() while unmap(s) at line "
                        f"{', '.join(map(str, lines))} are pending "
                        "invalidation",
                        ("reuse", call.lineno, call.col_offset),
                    )
                if attr in _UNMAP_CALLS:
                    looped = [
                        fact
                        for fact in state
                        if fact[3]
                        and fact[0] == call.lineno
                        and fact[1] == call.col_offset
                    ]
                    if looped:
                        report(
                            call.lineno,
                            call.col_offset,
                            f"driver {where} retries an unmap ({attr}) "
                            "in a while loop without re-arming the "
                            "IOTLB invalidation; earlier attempts leave "
                            "stale translations live",
                            ("retry", call.lineno, call.col_offset),
                        )
        return findings


# ---------------------------------------------------------------------------
# REPRO101: use-after-unmap taint
# ---------------------------------------------------------------------------
class _TaintAnalysis(ForwardAnalysis):
    meet = "may"

    def transfer(self, node: CFGNode, state):
        exprs = relevant_exprs(node)
        gens: set[str] = set()
        kills: set[str] = set()
        for call in _calls_in(exprs):
            attr = _call_attr(call)
            if attr in _UNMAP_CALLS and call.args:
                tainted = dotted_name(call.args[0])
                if tainted is not None:
                    gens.add(tainted)
            elif attr in {"map_page", "map_huge"} and call.args:
                remapped = dotted_name(call.args[0])
                if remapped is not None:
                    kills.add(remapped)
        # Assignments (including loop targets) kill taint on the
        # assigned name and everything reached through it.
        for target in _assigned_targets(node):
            kills.add(target)
        if not gens and not kills:
            return state
        kept = {
            fact
            for fact in state
            if not any(
                fact == dead or fact.startswith(dead + ".")
                for dead in kills
            )
        }
        return frozenset(kept | gens)


def _assigned_targets(node: CFGNode) -> list[str]:
    """Dotted names (re)bound at this node: assignments, loop targets,
    ``with ... as`` bindings, walrus targets."""
    stmt = node.stmt
    targets: list[ast.AST] = []
    if stmt is None:
        return []
    if node.kind == "loop" and isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets.append(stmt.target)
    elif isinstance(stmt, ast.Assign):
        targets.extend(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets.append(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets.extend(
            item.optional_vars
            for item in stmt.items
            if item.optional_vars is not None
        )
    for expr in relevant_exprs(node):
        for child in ast.walk(expr):
            if isinstance(child, ast.NamedExpr):
                targets.append(child.target)
    names: list[str] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                name = dotted_name(element)
                if name is not None:
                    names.append(name)
        else:
            name = dotted_name(target)
            if name is not None:
                names.append(name)
    return names


class UseAfterUnmapRule(AnalyzerRule):
    """REPRO101: an unmapped IOVA expression reaches a DMA sink."""

    code = "REPRO101"

    def check(self, project: ProjectModel) -> list[Finding]:
        findings: list[Finding] = []
        for function in project.functions:
            if "unmap" not in str(function.called_attrs):
                # Fast path: no unmap call anywhere in the body.
                if not (function.called_attrs & _UNMAP_CALLS):
                    continue
            cfg = build_cfg(function.node)
            states = solve(cfg, _TaintAnalysis())
            path = function.module.path
            for node_id, state in states.items():
                if not state:
                    continue
                node = cfg.nodes[node_id]
                for call in _calls_in(relevant_exprs(node)):
                    if _call_attr(call) not in _DMA_SINKS:
                        continue
                    for arg in call.args:
                        name = dotted_name(arg)
                        if name is not None and name in state:
                            findings.append(
                                Finding(
                                    path,
                                    call.lineno,
                                    call.col_offset,
                                    self.code,
                                    f"{function.name} passes {name} to "
                                    f"{_call_attr(call)}() after a path "
                                    "already unmapped it "
                                    "(use-after-unmap reachable "
                                    "statically)",
                                )
                            )
        return findings


# ---------------------------------------------------------------------------
# REPRO102: sim-race between scheduled callbacks
# ---------------------------------------------------------------------------
class SimRaceRule(AnalyzerRule):
    """REPRO102: unordered event callbacks assigning a shared attribute."""

    code = "REPRO102"

    def check(self, project: ProjectModel) -> list[Finding]:
        findings: list[Finding] = []
        for klass in project.classes:
            findings.extend(self._check_class(klass))
        return findings

    @staticmethod
    def _scheduled_callbacks(method: FunctionInfo) -> set[str]:
        """Methods of ``self`` this method hands to the simulator."""
        scheduled: set[str] = set()
        for call in ast.walk(method.node):
            if not isinstance(call, ast.Call):
                continue
            if _call_attr(call) not in _SCHED_CALLS:
                continue
            for arg in call.args:
                scheduled |= SimRaceRule._callback_targets(arg)
            for kw in call.keywords:
                if kw.arg == "callback":
                    scheduled |= SimRaceRule._callback_targets(kw.value)
        return scheduled

    @staticmethod
    def _callback_targets(arg: ast.AST) -> set[str]:
        # self._tick  |  lambda: self._tick(x)  |  partial(self._tick, x)
        name = dotted_name(arg)
        if name is not None and name.startswith("self."):
            parts = name.split(".")
            if len(parts) == 2:
                return {parts[1]}
        if isinstance(arg, ast.Lambda):
            out: set[str] = set()
            for call in ast.walk(arg.body):
                if isinstance(call, ast.Call):
                    inner = dotted_name(call.func)
                    if inner is not None and inner.startswith("self."):
                        parts = inner.split(".")
                        if len(parts) == 2:
                            out.add(parts[1])
            return out
        if isinstance(arg, ast.Call) and (
            _call_name(arg) == "partial" or _call_attr(arg) == "partial"
        ):
            if arg.args:
                return SimRaceRule._callback_targets(arg.args[0])
        return set()

    @staticmethod
    def _plain_self_writes(method: FunctionInfo) -> set[str]:
        """Attributes plainly assigned (``self.x = ...``); augmented
        updates commute across callback orderings and are ignored."""
        writes: set[str] = set()
        for stmt in ast.walk(method.node):
            targets: list[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                elements = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    if (
                        isinstance(element, ast.Attribute)
                        and isinstance(element.value, ast.Name)
                        and element.value.id == "self"
                    ):
                        writes.add(element.attr)
        return writes

    def _check_class(self, klass: ClassInfo) -> list[Finding]:
        methods = klass.methods
        if len(methods) < 2:
            return []
        # Which self-methods each method calls (for transitive edges).
        self_calls: dict[str, set[str]] = {}
        for name, method in methods.items():
            called: set[str] = set()
            for call in ast.walk(method.node):
                if isinstance(call, ast.Call):
                    dotted = dotted_name(call.func)
                    if dotted is not None and dotted.startswith("self."):
                        parts = dotted.split(".")
                        if len(parts) == 2 and parts[1] in methods:
                            called.add(parts[1])
            self_calls[name] = called
        direct_sched = {
            name: self._scheduled_callbacks(method)
            for name, method in methods.items()
        }
        # m schedules n if m, or anything m transitively calls, does.
        def closure_sched(name: str) -> set[str]:
            seen: set[str] = set()
            out: set[str] = set()
            stack = [name]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                out |= direct_sched.get(current, set())
                stack.extend(self_calls.get(current, set()))
            return out

        sched_edges = {name: closure_sched(name) for name in methods}
        scheduled = sorted(
            set().union(*direct_sched.values()) & set(methods)
        )
        if len(scheduled) < 2:
            return []

        def reaches(src: str, dst: str) -> bool:
            seen: set[str] = set()
            stack = [src]
            while stack:
                current = stack.pop()
                if current == dst:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(sched_edges.get(current, set()))
            return False

        writes = {name: self._plain_self_writes(methods[name])
                  for name in scheduled}
        findings: list[Finding] = []
        for i, first in enumerate(scheduled):
            for second in scheduled[i + 1:]:
                shared = sorted(writes[first] & writes[second])
                if not shared:
                    continue
                if reaches(first, second) or reaches(second, first):
                    continue
                findings.append(
                    Finding(
                        klass.module.path,
                        klass.node.lineno,
                        klass.node.col_offset,
                        self.code,
                        f"callbacks {klass.name}.{first} and "
                        f"{klass.name}.{second} both assign "
                        f"self.{', self.'.join(shared)} but neither "
                        "schedules the other; same-timestamp firing "
                        "order decides the final value",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# REPRO103: hook work outside the zero-cost guard
# ---------------------------------------------------------------------------
def _guard_atoms(
    expr: ast.AST,
    roots: set[str],
    when_true: bool,
    aliases: Optional[dict[str, set[str]]] = None,
) -> set[str]:
    """Roots proven non-None when ``expr`` evaluates to ``when_true``.

    ``aliases`` maps boolean locals back to the roots their truth
    implies (``collect = registry is not None`` makes ``collect`` an
    alias for the ``registry`` guard).
    """
    if isinstance(expr, ast.BoolOp):
        if isinstance(expr.op, ast.And) and when_true:
            out: set[str] = set()
            for value in expr.values:
                out |= _guard_atoms(value, roots, True, aliases)
            return out
        if isinstance(expr.op, ast.Or) and not when_true:
            out = set()
            for value in expr.values:
                out |= _guard_atoms(value, roots, False, aliases)
            return out
        return set()
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        return _guard_atoms(expr.operand, roots, not when_true, aliases)
    if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
        left = dotted_name(expr.left)
        right = expr.comparators[0]
        if (
            left in roots
            and isinstance(right, ast.Constant)
            and right.value is None
        ):
            if isinstance(expr.ops[0], ast.IsNot) and when_true:
                return {left}
            if isinstance(expr.ops[0], ast.Is) and not when_true:
                return {left}
        return set()
    name = dotted_name(expr)
    if name is not None and when_true:
        if name in roots:
            return {name}
        if aliases is not None and name in aliases:
            return set(aliases[name])
    return set()


def _guard_aliases(
    func: ast.AST, roots: set[str]
) -> dict[str, set[str]]:
    """Boolean locals whose truth implies a root guard, to fixpoint
    (so ``also = collect`` chains resolve too)."""
    aliases: dict[str, set[str]] = {}
    changed = True
    while changed:
        changed = False
        for stmt in ast.walk(func):
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                continue
            name = stmt.targets[0].id
            if name in roots:
                continue
            atoms = _guard_atoms(stmt.value, roots, True, aliases)
            if atoms and not atoms <= aliases.get(name, set()):
                aliases[name] = aliases.get(name, set()) | atoms
                changed = True
    return aliases


class _GuardAnalysis(ForwardAnalysis):
    meet = "must"

    def __init__(
        self, roots: set[str], aliases: dict[str, set[str]]
    ) -> None:
        self.roots = roots
        self.aliases = aliases

    def transfer(self, node: CFGNode, state):
        stmt = node.stmt
        if stmt is None:
            return state
        # Asserting a guard proves it for the fall-through path.
        if isinstance(stmt, ast.Assert):
            return state | _guard_atoms(
                stmt.test, self.roots, True, self.aliases
            )
        killed = {
            target
            for target in _assigned_targets(node)
            if target in self.roots
        }
        if killed:
            state = frozenset(f for f in state if f not in killed)
        return state

    def edge(self, edge: CFGEdge, cond, state):
        if cond is None or edge.branch is None or cond.stmt is None:
            return state
        return state | _guard_atoms(
            cond.stmt, self.roots, edge.branch, self.aliases
        )


class HookGuardRule(AnalyzerRule):
    """REPRO103: obs/monitor/faults used without their None-guard."""

    code = "REPRO103"

    def check(self, project: ProjectModel) -> list[Finding]:
        hook_attrs_by_class = {
            klass.qualname: self._hook_attrs(project, klass)
            for klass in project.classes
        }
        findings: list[Finding] = []
        for function in project.functions:
            roots: set[str] = set()
            if function.klass is not None:
                attrs = hook_attrs_by_class.get(
                    function.klass.qualname, set()
                )
                roots |= {f"self.{attr}" for attr in attrs}
            roots |= self._local_hook_vars(function.node)
            if not roots:
                continue
            findings.extend(self._check_function(function, roots))
        return findings

    @staticmethod
    def _hook_attrs(project: ProjectModel, klass: ClassInfo) -> set[str]:
        """Attribute names assigned from a hook getter in the class or
        any resolvable ancestor (``self.obs = current_registry()``)."""
        attrs: set[str] = set()
        for info in [klass] + project.ancestors(klass):
            for method in info.methods.values():
                for stmt in ast.walk(method.node):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    value = stmt.value
                    if not isinstance(value, ast.Call):
                        continue
                    callee = _call_name(value) or _call_attr(value)
                    if callee not in _HOOK_SOURCES:
                        continue
                    for target in stmt.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs.add(target.attr)
        return attrs

    @staticmethod
    def _local_hook_vars(func: ast.AST) -> set[str]:
        out: set[str] = set()
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            callee = _call_name(value) or _call_attr(value)
            if callee not in _HOOK_SOURCES:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        return out

    def _check_function(
        self, function: FunctionInfo, roots: set[str]
    ) -> list[Finding]:
        cfg = build_cfg(function.node)
        aliases = _guard_aliases(function.node, roots)
        states = solve(cfg, _GuardAnalysis(roots, aliases))
        path = function.module.path
        findings: list[Finding] = []
        reported: set[tuple[int, int]] = set()
        for node_id, state in states.items():
            node = cfg.nodes[node_id]
            for expr in relevant_exprs(node):
                # Skip the taught facts of this very node: assignments
                # to the root are kills, not uses.
                for use, root in _unguarded_uses(
                    expr, roots, set(state), aliases
                ):
                    key = (use.lineno, use.col_offset)
                    if key in reported:
                        continue
                    reported.add(key)
                    findings.append(
                        Finding(
                            path,
                            use.lineno,
                            use.col_offset,
                            self.code,
                            f"{function.name} does hook work through "
                            f"{root} outside its 'is not None' guard; "
                            "the zero-cost-when-off contract breaks "
                            "(and un-instrumented runs crash)",
                        )
                    )
        return findings


def _unguarded_uses(
    expr: ast.AST,
    roots: set[str],
    guarded: set[str],
    aliases: Optional[dict[str, set[str]]] = None,
) -> list[tuple[ast.Attribute, str]]:
    """Attribute uses *through* a hook root not covered by a guard.

    Walks with expression-level short-circuit awareness: inside
    ``a and b``, ``b`` sees the atoms ``a`` established; an ``IfExp``
    body sees its test's atoms.
    """
    out: list[tuple[ast.Attribute, str]] = []

    def visit(node: ast.AST, local: set[str]) -> None:
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            established = set(local)
            for value in node.values:
                visit(value, established)
                established |= _guard_atoms(value, roots, True, aliases)
            return
        if isinstance(node, ast.IfExp):
            visit(node.test, local)
            visit(
                node.body,
                local | _guard_atoms(node.test, roots, True, aliases),
            )
            visit(
                node.orelse,
                local | _guard_atoms(node.test, roots, False, aliases),
            )
            return
        if isinstance(node, ast.Attribute):
            inner = dotted_name(node.value)
            if inner is not None and inner in roots and inner not in local:
                out.append((node, inner))
                return  # deepest relevant use only
        for child in ast.iter_child_nodes(node):
            visit(child, local)

    visit(expr, guarded)
    return out


# ---------------------------------------------------------------------------
# REPRO105: device reset must re-arm the invalidation queue before mapping
# ---------------------------------------------------------------------------
# Name markers that make a driver method part of the reset protocol.
_RESET_MARKERS = ("reset", "recover")

# Calls that (re)introduce live translations: the "resume mapping" side.
_RESET_MAP_CALLS = {
    "map_page",
    "map_range",
    "map_huge",
    "make_rx_descriptor",
    "map_tx_page",
}

# Calls that re-arm the invalidation path after a wedge: an explicit
# queue re-arm, a global flush barrier, or the hardened retire helpers
# that end in one.
_REARM_CALLS = {
    "rearm",
    "flush_all",
    "submit_flush",
    "_invalidate_robust",
    "invalidate_range",
}


class _RearmAnalysis(ForwardAnalysis):
    meet = "must"

    def __init__(self, rearming: set[str]) -> None:
        self.rearming = rearming

    def transfer(self, node: CFGNode, state):
        for call in _calls_in(relevant_exprs(node)):
            callee = _call_attr(call) or _call_name(call)
            if callee is not None and callee in self.rearming:
                return state | {"rearmed"}
        return state


class ResetRearmRule(AnalyzerRule):
    """REPRO105: reset/recovery must re-arm the queue before mapping."""

    code = "REPRO105"

    def check(self, project: ProjectModel) -> list[Finding]:
        rearming = set(_REARM_CALLS) | project.transitive_callers_of(
            set(_REARM_CALLS)
        )
        mapping = (
            set(_RESET_MAP_CALLS)
            | project.transitive_callers_of(set(_RESET_MAP_CALLS))
        ) - rearming
        findings: list[Finding] = []
        for klass in project.classes:
            if not project.is_driver_class(klass):
                continue
            for method in klass.methods.values():
                name = method.name.lower()
                if not any(marker in name for marker in _RESET_MARKERS):
                    continue
                findings.extend(
                    self._check_method(klass, method, rearming, mapping)
                )
        return findings

    def _check_method(
        self,
        klass: ClassInfo,
        method: FunctionInfo,
        rearming: set[str],
        mapping: set[str],
    ) -> list[Finding]:
        cfg = build_cfg(method.node)
        states = solve(cfg, _RearmAnalysis(rearming))
        where = f"{klass.name}.{method.name}"
        findings: list[Finding] = []
        for node_id, state in states.items():
            node = cfg.nodes[node_id]
            calls = _calls_in(relevant_exprs(node))
            # Within one statement the in-state predates every call, so
            # order by position: a re-arm textually ahead of the map
            # call in the same node still satisfies the protocol.
            rearm_positions = [
                (call.lineno, call.col_offset)
                for call in calls
                if (_call_attr(call) or _call_name(call)) in rearming
            ]
            for call in calls:
                callee = _call_attr(call) or _call_name(call)
                if callee not in mapping:
                    continue
                if "rearmed" in state:
                    continue
                if any(
                    pos < (call.lineno, call.col_offset)
                    for pos in rearm_positions
                ):
                    continue
                findings.append(
                    Finding(
                        klass.module.path,
                        call.lineno,
                        call.col_offset,
                        self.code,
                        f"driver {where} maps DMA buffers via "
                        f"{callee}() on a path that never re-armed "
                        "the invalidation queue; after a wedge the "
                        "queue must be re-armed (rearm/flush_all or a "
                        "hardened retire) before mapping resumes",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# REPRO104: expectation-spec phase selectors vs live phase labels
# ---------------------------------------------------------------------------
class SpecPhaseRule(AnalyzerRule):
    """REPRO104: phase_contains selectors must match the live labels."""

    code = "REPRO104"

    def check(self, project: ProjectModel) -> list[Finding]:
        fragments, names = self._label_vocabulary(project)
        if not fragments and not names:
            # Analyzing a subtree with no experiment runners: nothing
            # to validate against, so stay silent rather than flag
            # every spec.
            return []
        tokens: set[str] = set(names)
        for fragment in fragments:
            tokens.update(fragment.split())
            for piece in fragment.replace("=", " ").split():
                tokens.add(piece)
        findings: list[Finding] = []
        for module in project.modules:
            for call in ast.walk(module.tree):
                if not isinstance(call, ast.Call):
                    continue
                for kw in call.keywords:
                    if kw.arg != "phase_contains":
                        continue
                    if not (
                        isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                    ):
                        continue
                    selector = kw.value.value
                    missing = [
                        token
                        for token in selector.split()
                        if token not in tokens
                        and not any(token in frag for frag in fragments)
                        and not any(token in name for name in names)
                    ]
                    if missing:
                        findings.append(
                            Finding(
                                module.path,
                                kw.value.lineno,
                                kw.value.col_offset,
                                self.code,
                                f"phase_contains={selector!r} matches no "
                                "phase label the runners produce "
                                f"(unknown token(s): "
                                f"{', '.join(missing)}); the claim "
                                "would skip forever",
                            )
                        )
        return findings

    @staticmethod
    def _label_vocabulary(
        project: ProjectModel,
    ) -> tuple[set[str], set[str]]:
        """(constant fragments of label templates, mode-name constants)."""
        fragments: set[str] = set()
        names: set[str] = set()

        def add_label_expr(expr: ast.AST) -> None:
            if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
                fragments.add(expr.value)
            elif isinstance(expr, ast.JoinedStr):
                for part in expr.values:
                    if isinstance(part, ast.Constant) and isinstance(
                        part.value, str
                    ):
                        fragments.add(part.value)

        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    callee = _call_attr(node) or _call_name(node)
                    if callee in {"begin_phase", "_obs_phase"} and node.args:
                        add_label_expr(node.args[0])
                    for kw in node.keywords:
                        if kw.arg == "label":
                            add_label_expr(kw.value)
                elif isinstance(node, ast.Assign):
                    if not (
                        isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)
                    ):
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "name"
                        ) or (
                            isinstance(target, ast.Name)
                            and target.id == "name"
                        ):
                            names.add(node.value.value)
        return fragments, names


# ---------------------------------------------------------------------------
# REPRO106: per-item pool dispatch in a sweep loop
# ---------------------------------------------------------------------------
class ChunkedDispatchRule(AnalyzerRule):
    """REPRO106: per-item ``pool.submit`` in a loop needs chunking.

    The committed-bench regression this repo fixed: submitting each
    sweep point as its own executor future pays a round of pickling and
    future bookkeeping per point, which on small points costs more than
    the parallelism recovers (``--jobs 2`` measured *slower* than
    serial).  The rule flags ``<pool>.submit(fn, <loop-var>, ...)``
    where the loop variable is passed through directly — one dispatch
    per iterated item — unless the enclosing function shows any
    chunking vocabulary (a name, attribute or call containing
    ``chunk``), which marks the batched idiom.
    """

    code = "REPRO106"

    def check(self, project: ProjectModel) -> list[Finding]:
        findings: list[Finding] = []
        for function in project.functions:
            findings.extend(self._check_function(function))
        return findings

    def _check_function(self, function: FunctionInfo) -> list[Finding]:
        if self._mentions_chunking(function.node):
            return []
        findings: list[Finding] = []
        for loop in ast.walk(function.node):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            loop_vars = {
                name.id
                for name in ast.walk(loop.target)
                if isinstance(name, ast.Name)
            }
            if not loop_vars:
                continue
            for call in _calls_in(list(loop.body)):
                if _call_attr(call) != "submit":
                    continue
                # args[0] is the callable; per-item dispatch passes the
                # loop variable itself as a payload argument.
                passed = [
                    arg.id
                    for arg in call.args[1:]
                    if isinstance(arg, ast.Name)
                ]
                if not any(name in loop_vars for name in passed):
                    continue
                findings.append(
                    Finding(
                        function.module.path,
                        call.lineno,
                        call.col_offset,
                        self.code,
                        f"{function.name}() submits one pool task per "
                        "iterated item; per-item dispatch pays "
                        "pickling and future bookkeeping per point "
                        "and measurably loses to a serial sweep — "
                        "dispatch fixed-size chunks of items instead",
                    )
                )
        return findings

    @staticmethod
    def _mentions_chunking(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and "chunk" in child.id.lower():
                return True
            if (
                isinstance(child, ast.Attribute)
                and "chunk" in child.attr.lower()
            ):
                return True
        return False

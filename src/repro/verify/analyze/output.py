"""Finding renderers shared by ``repro analyze``: text, JSON, SARIF.

The SARIF output targets SARIF 2.1.0 with exactly the subset CI code
scanners ingest: one run, one ``tool.driver`` with per-rule metadata
from the shared registry, and one result per finding with a physical
location.  JSON output mirrors ``repro lint --format json`` so both
commands can feed the same tooling.
"""

from __future__ import annotations

import json

from ..registry import Finding, all_rules, rule_info

__all__ = ["render_text", "render_json", "render_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: list[Finding]) -> str:
    return "\n".join(finding.format() for finding in findings)


def render_json(
    findings: list[Finding], tool: str = "repro-analyze"
) -> str:
    document = {
        "tool": tool,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(document, indent=2)


def render_sarif(findings: list[Finding]) -> str:
    used_codes = {finding.code for finding in findings}
    rules = []
    rule_index: dict[str, int] = {}
    for info in all_rules():
        # Describe every analyzer rule up front; rules belonging only
        # to other engines appear when they actually fired (e.g. a
        # REPRO000 parse error).
        if "analyze" not in info.engines and info.code not in used_codes:
            continue
        rule_index[info.code] = len(rules)
        rules.append(
            {
                "id": info.code,
                "name": info.name,
                "shortDescription": {"text": info.summary},
                "fullDescription": {"text": info.explanation},
            }
        )
    results = []
    for finding in findings:
        info = rule_info(finding.code)
        if finding.code not in rule_index:
            rule_index[finding.code] = len(rules)
            rules.append(
                {
                    "id": finding.code,
                    "name": info.name if info else finding.code,
                    "shortDescription": {
                        "text": info.summary if info else finding.message
                    },
                }
            )
        results.append(
            {
                "ruleId": finding.code,
                "ruleIndex": rule_index[finding.code],
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": (
                            "https://example.invalid/repro/analyze"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)

"""The ``repro analyze`` entry point: build the model, run the rules.

Pipeline: discover files → build the :class:`ProjectModel` once → run
every registered rule over it → drop ``# noqa``-suppressed findings →
partition against the checked-in baseline → render (text/json/sarif).

Exit codes match ``repro lint``: 0 clean (or fully baselined), 1 new
findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..registry import Finding, explain
from ..sources import is_suppressed, iter_python_files, noqa_lines
from . import baseline as baseline_mod
from .output import render_json, render_sarif, render_text
from .project import ProjectModel
from .rules import AnalyzerRule, default_rules

__all__ = ["analyze_paths", "analyze_project", "main"]


def analyze_project(
    project: ProjectModel, rules: Optional[Sequence[AnalyzerRule]] = None
) -> list[Finding]:
    """All findings (parse errors + rule findings), noqa-filtered and
    sorted by (path, line, col, code)."""
    findings: list[Finding] = list(project.parse_errors)
    for rule in rules if rules is not None else default_rules():
        findings.extend(rule.check(project))
    suppressions = {
        module.path: noqa_lines(module.source)
        for module in project.modules
    }
    findings = [
        finding
        for finding in findings
        if not is_suppressed(
            suppressions.get(finding.path, {}), finding.line, finding.code
        )
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def analyze_paths(
    paths: Sequence[str], rules: Optional[Sequence[AnalyzerRule]] = None
) -> list[Finding]:
    project = ProjectModel.build(iter_python_files(paths))
    return analyze_project(project, rules)


def _fingerprinted(
    project: ProjectModel, findings: list[Finding]
) -> list[tuple[Finding, str]]:
    lines_by_path = {module.path: module for module in project.modules}
    out: list[tuple[Finding, str]] = []
    for finding in findings:
        module = lines_by_path.get(finding.path)
        text = module.line_text(finding.line) if module is not None else ""
        out.append((finding, baseline_mod.fingerprint(finding, text)))
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Whole-program static analysis of the DMA protection "
            "protocol: CFG/dataflow rules over the full project model."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=baseline_mod.DEFAULT_BASELINE,
        help=(
            "baseline file of accepted findings "
            f"(default: {baseline_mod.DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print the rule explanation for CODE and exit",
    )
    args = parser.parse_args(argv)

    if args.explain:
        text = explain(args.explain)
        if text is None:
            print(f"unknown rule code: {args.explain}", file=sys.stderr)
            return 2
        print(text)
        return 0

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"repro analyze: no such path: {path}", file=sys.stderr)
        return 2

    project = ProjectModel.build(iter_python_files(args.paths))
    findings = analyze_project(project)
    fingerprinted = _fingerprinted(project, findings)

    if args.write_baseline:
        baseline_mod.write_baseline(args.baseline, fingerprinted)
        print(
            f"wrote {len(fingerprinted)} finding(s) to {args.baseline}",
        )
        return 0

    accepted: set[str] = set()
    if not args.no_baseline:
        accepted = baseline_mod.load_baseline(args.baseline)
    new, baselined = baseline_mod.split_by_baseline(fingerprinted, accepted)
    reported = [finding for finding, _ in new]

    if args.format == "json":
        print(render_json(reported))
    elif args.format == "sarif":
        print(render_sarif(reported))
    elif reported:
        print(render_text(reported))
    if args.format == "text" and baselined:
        print(
            f"({len(baselined)} baselined finding(s) suppressed)",
            file=sys.stderr,
        )
    return 1 if reported else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Whole-program static analysis of the DMA protection protocol.

``repro analyze`` builds a project-wide model (symbol table + call
graph), constructs per-function control-flow graphs, and runs a small
forward-dataflow framework to prove protocol properties the per-file
lint heuristics cannot: all-paths unmap→invalidate, statically
reachable use-after-unmap, sim-callback races, and zero-cost hook
guard violations.
"""

from .engine import analyze_paths, analyze_project, main
from .project import ProjectModel
from .rules import default_rules

__all__ = [
    "analyze_paths",
    "analyze_project",
    "main",
    "ProjectModel",
    "default_rules",
]

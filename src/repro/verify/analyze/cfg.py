"""Per-function control-flow graphs for the dataflow rules.

The CFG is statement-granular: one node per simple statement, one
*test* node per atomic branch condition, plus synthetic ``entry`` and
``exit`` nodes.  Branch conditions are decomposed through boolean
short-circuiting — ``if a and b:`` becomes two chained test nodes —
so edge labels always carry an *atomic* condition plus the branch
taken.  The guard rule (REPRO103) leans on that: the true edge of
``self.obs is not None`` is exactly where the non-None fact is born.

Covered control flow: ``if``/``elif``/``else``, ``while`` (with
``break``/``continue``), ``for`` (the loop header node binds the
target on every iteration), ``with``, ``try``/``except``/``else``/
``finally`` (every statement inside a ``try`` body gets an exceptional
edge to each handler), ``return``, ``raise``, ``assert``.  ``match``
arms are treated as parallel branches.  Nested function/class
definitions are opaque single statements (their bodies get their own
CFGs).

Exceptional edges are marked so rules can choose whether a fact that
escapes only via an exception path counts (the REPRO004 rule ignores
raise-to-exit paths but follows try-to-handler paths).
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

__all__ = ["CFG", "CFGNode", "CFGEdge", "build_cfg", "relevant_exprs"]


@dataclass
class CFGNode:
    """One CFG node: a statement, an atomic test, or entry/exit."""

    node_id: int
    kind: str  # "entry" | "exit" | "stmt" | "test" | "loop"
    stmt: Optional[ast.AST] = None  # statement or atomic test expression

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0) if self.stmt is not None else 0


@dataclass(frozen=True)
class CFGEdge:
    """A directed edge, optionally labelled with an atomic condition."""

    src: int
    dst: int
    cond_id: Optional[int] = None  # node_id of the test node, if any
    branch: Optional[bool] = None  # which way the test went
    exceptional: bool = False


@dataclass
class CFG:
    nodes: dict[int, CFGNode] = field(default_factory=dict)
    edges: list[CFGEdge] = field(default_factory=list)
    entry: int = 0
    exit: int = 1

    def successors(self, node_id: int) -> list[CFGEdge]:
        return [e for e in self.edges if e.src == node_id]

    def predecessors(self, node_id: int) -> list[CFGEdge]:
        return [e for e in self.edges if e.dst == node_id]

    def pred_map(self) -> dict[int, list[CFGEdge]]:
        preds: dict[int, list[CFGEdge]] = {nid: [] for nid in self.nodes}
        for edge in self.edges:
            preds[edge.dst].append(edge)
        return preds

    def succ_map(self) -> dict[int, list[CFGEdge]]:
        succs: dict[int, list[CFGEdge]] = {nid: [] for nid in self.nodes}
        for edge in self.edges:
            succs[edge.src].append(edge)
        return succs


# A dangling out-edge waiting for its destination: (src node id,
# cond node id, branch, exceptional).
_Pending = tuple[int, Optional[int], Optional[bool], bool]


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._ids = itertools.count()
        self.cfg.entry = self._new("entry").node_id
        self.cfg.exit = self._new("exit").node_id
        # Loop context stacks for break/continue.
        self._break_targets: list[list[_Pending]] = []
        self._continue_heads: list[int] = []
        # Innermost try's handler-entry node ids.
        self._handler_stack: list[list[int]] = []

    # ------------------------------------------------------------------
    def _new(self, kind: str, stmt: Optional[ast.AST] = None) -> CFGNode:
        node = CFGNode(node_id=next(self._ids), kind=kind, stmt=stmt)
        self.cfg.nodes[node.node_id] = node
        return node

    def _connect(self, frontier: Sequence[_Pending], dst: int) -> None:
        for src, cond_id, branch, exceptional in frontier:
            self.cfg.edges.append(
                CFGEdge(src, dst, cond_id, branch, exceptional)
            )

    def _exceptional_edges(self, node_id: int) -> None:
        """Inside a try body, any statement may raise into the handlers."""
        if self._handler_stack:
            for handler_id in self._handler_stack[-1]:
                self.cfg.edges.append(
                    CFGEdge(node_id, handler_id, exceptional=True)
                )

    # ------------------------------------------------------------------
    # Conditions (short-circuit decomposition)
    # ------------------------------------------------------------------
    def _condition(
        self, test: ast.expr, frontier: Sequence[_Pending]
    ) -> tuple[list[_Pending], list[_Pending]]:
        """Build test nodes for ``test``; returns (true, false) frontiers."""
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And):
                true_f: Sequence[_Pending] = frontier
                false_all: list[_Pending] = []
                for value in test.values:
                    true_f, false_f = self._condition(value, true_f)
                    false_all.extend(false_f)
                return list(true_f), false_all
            # Or: falls through on false, exits on first true.
            false_f = frontier
            true_all: list[_Pending] = []
            for value in test.values:
                true_f, false_f = self._condition(value, false_f)
                true_all.extend(true_f)
            return true_all, list(false_f)
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            true_f, false_f = self._condition(test.operand, frontier)
            return false_f, true_f
        node = self._new("test", test)
        self._connect(frontier, node.node_id)
        self._exceptional_edges(node.node_id)
        if isinstance(test, ast.Constant):
            # ``while True:`` and friends: only the decided branch
            # exists, so a constant loop never leaks a false exit.
            taken = bool(test.value)
            return (
                [(node.node_id, node.node_id, True, False)] if taken else [],
                [] if taken else [(node.node_id, node.node_id, False, False)],
            )
        return (
            [(node.node_id, node.node_id, True, False)],
            [(node.node_id, node.node_id, False, False)],
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def block(
        self, stmts: Sequence[ast.stmt], frontier: list[_Pending]
    ) -> list[_Pending]:
        for stmt in stmts:
            frontier = self.statement(stmt, frontier)
        return frontier

    def statement(
        self, stmt: ast.stmt, frontier: list[_Pending]
    ) -> list[_Pending]:
        if not frontier:
            return []  # unreachable code after return/raise/break
        if isinstance(stmt, ast.If):
            true_f, false_f = self._condition(stmt.test, frontier)
            after = self.block(stmt.body, list(true_f))
            if stmt.orelse:
                after += self.block(stmt.orelse, list(false_f))
            else:
                after += list(false_f)
            return after
        if isinstance(stmt, ast.While):
            head_anchor = self._new("loop", stmt)
            self._connect(frontier, head_anchor.node_id)
            head = [(head_anchor.node_id, None, None, False)]
            true_f, false_f = self._condition(stmt.test, head)
            self._break_targets.append([])
            self._continue_heads.append(head_anchor.node_id)
            body_out = self.block(stmt.body, list(true_f))
            self._connect(body_out, head_anchor.node_id)
            breaks = self._break_targets.pop()
            self._continue_heads.pop()
            after = list(false_f) + breaks
            if stmt.orelse:
                after = self.block(stmt.orelse, list(false_f)) + breaks
            return after
        if isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
            # The loop node both evaluates the iterable and (re)binds
            # the target on each iteration; edges: iterate vs exhaust.
            head = self._new("loop", stmt)
            self._connect(frontier, head.node_id)
            self._exceptional_edges(head.node_id)
            self._break_targets.append([])
            self._continue_heads.append(head.node_id)
            body_out = self.block(
                stmt.body, [(head.node_id, None, None, False)]
            )
            self._connect(body_out, head.node_id)
            breaks = self._break_targets.pop()
            self._continue_heads.pop()
            exhausted: list[_Pending] = [(head.node_id, None, None, False)]
            if stmt.orelse:
                exhausted = self.block(stmt.orelse, exhausted)
            return exhausted + breaks
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._new("stmt", stmt)
            self._connect(frontier, node.node_id)
            self._exceptional_edges(node.node_id)
            return self.block(stmt.body, [(node.node_id, None, None, False)])
        if isinstance(stmt, ast.Return):
            node = self._new("stmt", stmt)
            self._connect(frontier, node.node_id)
            self.cfg.edges.append(CFGEdge(node.node_id, self.cfg.exit))
            return []
        if isinstance(stmt, ast.Raise):
            node = self._new("stmt", stmt)
            self._connect(frontier, node.node_id)
            if self._handler_stack:
                self._exceptional_edges(node.node_id)
            else:
                self.cfg.edges.append(
                    CFGEdge(node.node_id, self.cfg.exit, exceptional=True)
                )
            return []
        if isinstance(stmt, ast.Break):
            node = self._new("stmt", stmt)
            self._connect(frontier, node.node_id)
            if self._break_targets:
                self._break_targets[-1].append(
                    (node.node_id, None, None, False)
                )
            return []
        if isinstance(stmt, ast.Continue):
            node = self._new("stmt", stmt)
            self._connect(frontier, node.node_id)
            if self._continue_heads:
                self.cfg.edges.append(
                    CFGEdge(node.node_id, self._continue_heads[-1])
                )
            return []
        if isinstance(stmt, ast.Match):
            subject = self._new("stmt", stmt)
            self._connect(frontier, subject.node_id)
            after: list[_Pending] = []
            arm_entry: list[_Pending] = [(subject.node_id, None, None, False)]
            for case in stmt.cases:
                after += self.block(case.body, list(arm_entry))
            # No arm may match.
            after += arm_entry
            return after
        # Simple statement (expressions, assignments, asserts, nested
        # defs, imports, pass, global, ...).
        node = self._new("stmt", stmt)
        self._connect(frontier, node.node_id)
        self._exceptional_edges(node.node_id)
        return [(node.node_id, None, None, False)]

    def _try(self, stmt: ast.Try, frontier: list[_Pending]) -> list[_Pending]:
        # Handler entry nodes first, so body statements can raise into
        # them while being built.
        handler_entries: list[int] = []
        for handler in stmt.handlers:
            entry = self._new("stmt", handler)
            handler_entries.append(entry.node_id)
        self._handler_stack.append(handler_entries)
        body_out = self.block(stmt.body, frontier)
        self._handler_stack.pop()
        if stmt.orelse:
            body_out = self.block(stmt.orelse, body_out)
        after: list[_Pending] = list(body_out)
        for handler, entry_id in zip(stmt.handlers, handler_entries):
            after += self.block(
                handler.body, [(entry_id, None, None, False)]
            )
        if stmt.finalbody:
            after = self.block(stmt.finalbody, after)
        return after


def relevant_exprs(node: CFGNode) -> list[ast.AST]:
    """The AST fragments a transfer function should inspect at ``node``.

    Statement nodes that *contain* nested statement lists (``with``,
    ``match``, nested ``def``/``class``) expose only the expressions
    evaluated at the node itself — never the nested body, which has its
    own CFG nodes (or, for nested definitions, its own CFG).
    """
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == "test":
        return [stmt]
    if node.kind == "loop":
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter, stmt.target]
        return []  # while-loop anchor; its test has its own nodes
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: list[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]


def build_cfg(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> CFG:
    """Build the CFG for one function definition."""
    builder = _Builder()
    frontier: list[_Pending] = [(builder.cfg.entry, None, None, False)]
    out = builder.block(func.body, frontier)
    builder._connect(out, builder.cfg.exit)
    return builder.cfg

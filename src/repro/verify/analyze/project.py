"""The whole-program project model: one parse, shared by every rule.

A :class:`ProjectModel` parses every file once and exposes what the
rules need to reason interprocedurally:

* a **symbol table** — every module, class and function, with classes
  resolvable across modules by name;
* an **interprocedural call graph** at attribute-name granularity —
  ``self.foo()`` and ``obj.foo()`` both resolve to every project
  function *named* ``foo``.  Python's dynamism makes precise receiver
  typing impossible without annotations; name-keyed resolution is the
  classic sound-for-our-purposes over-approximation (it may merge
  unrelated same-named methods, never miss a real callee);
* **transitive closures** over that graph — e.g. "every function that
  may arm an IOTLB invalidation", seeded with the queue primitives.

The model is deliberately cheap: building it for all of ``src/repro``
(~150 files) takes well under a second, so ``repro analyze`` always
re-parses rather than caching.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ..registry import Finding

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectModel",
    "dotted_name",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chains as a string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str  # "module:Class.method" or "module:function"
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    klass: Optional["ClassInfo"] = None
    #: attribute-call names in the body: ``self.foo()``/``x.foo()`` -> "foo"
    called_attrs: set[str] = field(default_factory=set)
    #: bare-name calls in the body: ``foo()`` -> "foo"
    called_names: set[str] = field(default_factory=set)

    @property
    def lineno(self) -> int:
        return self.node.lineno

    def all_calls(self) -> set[str]:
        return self.called_attrs | self.called_names


@dataclass
class ClassInfo:
    """One class definition with its direct methods and base names."""

    name: str
    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  # dotted base names
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str  # as given on the command line (findings use this)
    tree: ast.Module
    source: str

    def line_text(self, line: int) -> str:
        lines = self.source.splitlines()
        return lines[line - 1] if 1 <= line <= len(lines) else ""


class ProjectModel:
    """Symbol table + call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: list[ModuleInfo] = []
        self.parse_errors: list[Finding] = []
        self.classes: list[ClassInfo] = []
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.functions: list[FunctionInfo] = []
        self.functions_by_name: dict[str, list[FunctionInfo]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: Iterable[Path]) -> "ProjectModel":
        project = cls()
        for file in files:
            path = str(file)
            try:
                source = Path(file).read_text(encoding="utf-8")
            except OSError as exc:
                project.parse_errors.append(
                    Finding(path, 1, 0, "REPRO000", f"cannot read: {exc}")
                )
                continue
            project.add_source(source, path)
        return project

    def add_source(self, source: str, path: str) -> None:
        """Parse one module's text into the model (used by tests too)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_errors.append(
                Finding(
                    path,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    "REPRO000",
                    f"syntax error: {exc.msg}",
                )
            )
            return
        module = ModuleInfo(path=path, tree=tree, source=source)
        self.modules.append(module)
        self._index_module(module)

    def _index_module(self, module: ModuleInfo) -> None:
        # Walk every definition; nested classes/functions are indexed
        # too (their enclosing class is the innermost ClassDef).
        self._index_body(module, module.tree.body, klass=None, prefix="")

    def _index_body(
        self,
        module: ModuleInfo,
        body: Sequence[ast.stmt],
        klass: Optional[ClassInfo],
        prefix: str,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                info = ClassInfo(
                    name=stmt.name,
                    qualname=f"{module.path}:{prefix}{stmt.name}",
                    module=module,
                    node=stmt,
                    bases=[
                        name
                        for base in stmt.bases
                        if (name := dotted_name(base)) is not None
                    ],
                )
                self.classes.append(info)
                self.classes_by_name.setdefault(stmt.name, []).append(info)
                self._index_body(
                    module, stmt.body, klass=info, prefix=f"{prefix}{stmt.name}."
                )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    name=stmt.name,
                    qualname=f"{module.path}:{prefix}{stmt.name}",
                    module=module,
                    node=stmt,
                    klass=klass,
                )
                self._collect_calls(stmt, info)
                self.functions.append(info)
                self.functions_by_name.setdefault(stmt.name, []).append(info)
                if klass is not None and stmt.name not in klass.methods:
                    klass.methods[stmt.name] = info
                self._index_body(
                    module, stmt.body, klass=klass,
                    prefix=f"{prefix}{stmt.name}.<locals>.",
                )
            else:
                # Definitions nested under control flow (if/try/with/
                # for/while) still count; recurse into every statement
                # list the node carries.
                for attr in ("body", "orelse", "finalbody"):
                    nested = getattr(stmt, attr, None)
                    if nested:
                        self._index_body(module, nested, klass, prefix)
                for handler in getattr(stmt, "handlers", []) or []:
                    self._index_body(module, handler.body, klass, prefix)

    @staticmethod
    def _collect_calls(node: ast.AST, info: FunctionInfo) -> None:
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            if isinstance(func, ast.Attribute):
                info.called_attrs.add(func.attr)
            elif isinstance(func, ast.Name):
                info.called_names.add(func.id)

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------
    def ancestors(self, klass: ClassInfo) -> list[ClassInfo]:
        """Project-resolvable ancestor classes (by base name), in MRO-ish
        order; unresolvable bases (stdlib, ABC) are skipped."""
        seen: set[str] = {klass.qualname}
        order: list[ClassInfo] = []
        frontier = [klass]
        while frontier:
            current = frontier.pop(0)
            for base in current.bases:
                base_name = base.split(".")[-1]
                for candidate in self.classes_by_name.get(base_name, []):
                    if candidate.qualname not in seen:
                        seen.add(candidate.qualname)
                        order.append(candidate)
                        frontier.append(candidate)
        return order

    def is_driver_class(self, klass: ClassInfo) -> bool:
        """Protection-driver heuristic shared with the lint: the class
        (or any resolvable ancestor) declares a base whose name ends
        with ``Driver``."""
        chain = [klass] + self.ancestors(klass)
        for info in chain:
            if any(base.split(".")[-1].endswith("Driver")
                   for base in info.bases):
                return True
        return False

    def class_method(
        self, klass: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        """Resolve ``self.name`` against the class then its ancestors."""
        if name in klass.methods:
            return klass.methods[name]
        for ancestor in self.ancestors(klass):
            if name in ancestor.methods:
                return ancestor.methods[name]
        return None

    # ------------------------------------------------------------------
    # Transitive closures over the call graph
    # ------------------------------------------------------------------
    def transitive_callers_of(self, seeds: set[str]) -> set[str]:
        """Names of functions that (transitively) call any name in
        ``seeds`` — by attribute or bare-name call.

        The closure is name-keyed: if *any* function named ``f`` calls
        into the set, every call site of ``f`` is treated as reaching
        it.  Over-approximate, never unsound for may-analyses.
        """
        reaching: set[str] = set()
        changed = True
        while changed:
            changed = False
            for info in self.functions:
                if info.name in reaching:
                    continue
                calls = info.all_calls()
                if calls & seeds or calls & reaching:
                    reaching.add(info.name)
                    changed = True
        return reaching

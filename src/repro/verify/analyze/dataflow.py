"""A small forward-dataflow framework over the per-function CFGs.

Rules subclass :class:`ForwardAnalysis` and provide a transfer function
(gen/kill per node) plus, optionally, an *edge* transfer that refines
state along labelled branch edges — how the guard rule learns from the
true edge of ``if self.obs is not None:``.

Two meet operators cover every rule in the analyzer:

* ``may`` (union) — a fact holds if it holds on *some* path in
  (pending-unmap facts, taint facts);
* ``must`` (intersection) — a fact holds only if it holds on *every*
  path in (guardedness facts).

States are frozensets of hashable facts; the solver is a classic
worklist iteration to fixpoint.  CFGs are statement-granular and
functions are small, so convergence is fast (the lattice height is the
fact count; transfer functions are monotone by construction).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .cfg import CFG, CFGEdge, CFGNode

__all__ = ["ForwardAnalysis", "solve"]

State = frozenset

EMPTY: State = frozenset()


class ForwardAnalysis:
    """Base class: override ``transfer`` (and optionally ``edge``)."""

    #: "may" = union over predecessors, "must" = intersection.
    meet: str = "may"

    def initial(self) -> State:
        """State at function entry."""
        return EMPTY

    def transfer(self, node: CFGNode, state: State) -> State:
        """State after executing ``node`` with ``state`` on entry."""
        return state

    def edge(self, edge: CFGEdge, cond: Optional[CFGNode],
             state: State) -> State:
        """Refine ``state`` along ``edge`` (cond is the test node)."""
        return state


def solve(cfg: CFG, analysis: ForwardAnalysis) -> dict[int, State]:
    """Iterate to fixpoint; returns the state *entering* each node.

    Unreached nodes are absent from the result.  For must-analyses the
    meet over predecessors ignores not-yet-reached predecessors (their
    state is TOP).
    """
    succs = cfg.succ_map()
    in_states: dict[int, State] = {cfg.entry: analysis.initial()}
    worklist: deque[int] = deque([cfg.entry])
    must = analysis.meet == "must"
    while worklist:
        node_id = worklist.popleft()
        node = cfg.nodes[node_id]
        out = analysis.transfer(node, in_states[node_id])
        for edge in succs.get(node_id, []):
            cond = cfg.nodes[edge.cond_id] if edge.cond_id is not None else None
            pushed = analysis.edge(edge, cond, out)
            current = in_states.get(edge.dst)
            if current is None:
                merged = pushed
            elif must:
                merged = current & pushed
            else:
                merged = current | pushed
            if merged != current:
                in_states[edge.dst] = merged
                worklist.append(edge.dst)
    return in_states

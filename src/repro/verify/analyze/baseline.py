"""Checked-in baseline of accepted analyzer findings.

A baseline lets ``repro analyze`` run clean in CI while known,
reviewed findings stay on record.  Entries are keyed by a
*fingerprint* — a short hash of ``code | path | stripped source line
text`` — so pure line drift (code moving up or down a file) does not
invalidate the baseline, but touching the flagged line itself does.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..registry import Finding

__all__ = [
    "DEFAULT_BASELINE",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "split_by_baseline",
]

DEFAULT_BASELINE = "analyze-baseline.json"


def fingerprint(finding: Finding, line_text: str) -> str:
    payload = f"{finding.code}|{finding.path}|{line_text.strip()}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: str) -> set[str]:
    """Fingerprints accepted by the baseline file; missing file = none."""
    file = Path(path)
    if not file.exists():
        return set()
    document = json.loads(file.read_text(encoding="utf-8"))
    return {
        entry["fingerprint"]
        for entry in document.get("entries", [])
        if "fingerprint" in entry
    }


def write_baseline(
    path: str, findings: list[tuple[Finding, str]]
) -> None:
    """Regenerate the baseline from ``(finding, fingerprint)`` pairs."""
    entries = [
        {
            "fingerprint": print_,
            "code": finding.code,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for finding, print_ in findings
    ]
    document = {"version": 1, "tool": "repro-analyze", "entries": entries}
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def split_by_baseline(
    findings: list[tuple[Finding, str]], accepted: set[str]
) -> tuple[list[tuple[Finding, str]], list[tuple[Finding, str]]]:
    """(new, baselined) partition of fingerprinted findings."""
    new: list[tuple[Finding, str]] = []
    old: list[tuple[Finding, str]] = []
    for finding, print_ in findings:
        (old if print_ in accepted else new).append((finding, print_))
    return new, old

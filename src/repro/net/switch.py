"""The top-of-rack switch between the two servers.

One egress port per direction: a bounded FIFO with DCTCP ECN marking
above a threshold, drained at line rate, plus propagation delay.  The
paper's setup connects the hosts through a single switch so that all
bottlenecks are at the hosts; the switch here is accordingly simple but
real enough to carry the ECN control loop and to show that, when the
receiver's IOMMU is the bottleneck, queueing shifts to the *NIC* buffer
(where there is no ECN marking) and DCTCP must fall back to loss
recovery — the paper's drop-rate dynamics.
"""

from __future__ import annotations

from typing import Callable

from ..faults.hooks import injector_for
from ..obs.hooks import current_registry
from ..sim import FifoQueue, Simulator, TokenBucketPacer
from .packet import Packet

__all__ = ["SwitchPort"]


class SwitchPort:
    """One direction through the switch: queue -> serializer -> wire."""

    def __init__(
        self,
        sim: Simulator,
        rate_gbps: float = 100.0,
        buffer_bytes: int = 1_000_000,
        ecn_threshold_bytes: int = 200_000,
        propagation_ns: float = 2_000.0,
        deliver: Callable[[Packet], None] = lambda packet: None,
    ) -> None:
        self.sim = sim
        self.queue = FifoQueue(buffer_bytes, ecn_threshold_bytes)
        self.pacer = TokenBucketPacer(sim, rate_gbps)
        self.propagation_ns = propagation_ns
        self.deliver = deliver
        self._draining = False
        # Fault injector (repro.faults); None in normal runs.
        self.faults = injector_for("net")
        self.injected_losses = 0
        self.reordered_packets = 0
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope("switch.port")
            scope.counter("delivered_bytes", lambda: self.delivered_bytes)
            scope.counter("drops", lambda: self.drops)
            scope.counter("injected_losses", lambda: self.injected_losses)
            scope.counter(
                "reordered_packets", lambda: self.reordered_packets
            )
            scope.counter("marked", lambda: self.queue.marked_items)
            scope.gauge("queue_bytes", lambda: self.queue.occupancy_bytes)

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the port; marks/drops per queue state."""
        if self.faults is not None and self.faults.drop(packet):
            # Wire loss: the sender saw the packet leave, the receiver
            # never will — DCTCP's loss recovery has to notice.
            self.injected_losses += 1
            return True
        if not self.queue.try_enqueue(packet, packet.size_bytes):
            return False
        if self.queue.should_mark() and packet.is_data:
            packet.ecn_marked = True
        if not self._draining:
            self._drain_next()
        return True

    def _drain_next(self) -> None:
        entry = self.queue.dequeue()
        if entry is None:
            self._draining = False
            return
        self._draining = True
        packet, size = entry
        self.pacer.send(size, lambda p=packet: self._on_wire_done(p))

    def _on_wire_done(self, packet: Packet) -> None:
        # Serialization finished; deliver after propagation, then pull
        # the next queued packet.
        propagation = self.propagation_ns
        if self.faults is not None:
            extra = self.faults.reorder_delay(packet)
            if extra > 0.0:
                # Reorder: this packet takes a longer path and lands
                # after packets serialized behind it.
                self.reordered_packets += 1
                propagation += extra
        self.sim.schedule_after(
            propagation, lambda p=packet: self.deliver(p)
        )
        self._drain_next()

    @property
    def drops(self) -> int:
        return self.queue.dropped_items

    @property
    def delivered_bytes(self) -> int:
        return self.pacer.sent_bytes

"""Transport substrate: packets, DCTCP, and the switch."""

from .dctcp import DctcpParams, DctcpReceiver, DctcpSender
from .packet import ACK_SIZE_BYTES, Packet, PacketKind
from .switch import SwitchPort

__all__ = [
    "Packet",
    "PacketKind",
    "ACK_SIZE_BYTES",
    "DctcpSender",
    "DctcpReceiver",
    "DctcpParams",
    "SwitchPort",
]

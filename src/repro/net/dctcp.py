"""DCTCP sender and receiver state machines.

The paper's testbed transport is DCTCP [Alizadeh et al. 2010] with all
standard Linux offloads; its dynamics matter to the reproduction
because the flow-count → drop-rate → ACK-rate feedback loop is what
drives IOTLB/PTcache contention (paper §2.2, Fig 2).  We therefore
model:

* **ECN-based congestion avoidance** — the switch marks packets above a
  queue threshold, receivers echo marks, and the sender maintains the
  DCTCP fraction ``alpha``, multiplicatively decreasing ``cwnd`` by
  ``alpha/2`` once per window;

* **loss recovery** — three duplicate ACKs trigger a NewReno-style fast
  retransmit with window halving; a retransmission timeout collapses
  the window to one segment with exponential backoff (the paper's
  P99.9+ tail latencies are RTO-dominated);

* **delayed ACKs** — receivers ACK once per ``ack_every`` in-order
  segments (the GRO-coalescing the host model computes) but ACK
  *immediately* on out-of-order arrivals, which is why drops inflate
  the ACK rate.

Sequence numbers count MTU-sized segments.
"""

from __future__ import annotations

from typing import Optional

from ..obs.hooks import current_registry
from .packet import ACK_SIZE_BYTES, Packet, PacketKind

__all__ = ["DctcpSender", "DctcpReceiver", "DctcpParams"]


class DctcpParams:
    """Transport constants shared by all flows of an experiment."""

    __slots__ = (
        "mtu_bytes",
        "init_cwnd",
        "min_cwnd",
        "max_cwnd",
        "init_ssthresh",
        "dctcp_g",
        "rto_ns",
        "max_rto_ns",
        "dupack_threshold",
    )

    def __init__(
        self,
        mtu_bytes: int = 4096,
        init_cwnd: float = 10.0,
        min_cwnd: float = 1.0,
        max_cwnd: float = 512.0,
        init_ssthresh: float = 128.0,
        dctcp_g: float = 0.0625,
        rto_ns: float = 4_000_000.0,  # 4 ms, datacenter-tuned minimum
        max_rto_ns: float = 64_000_000.0,
        dupack_threshold: int = 3,
    ) -> None:
        self.mtu_bytes = mtu_bytes
        self.init_cwnd = init_cwnd
        self.min_cwnd = min_cwnd
        self.max_cwnd = max_cwnd
        # Cap the slow-start overshoot: real stacks exit slow start
        # early via HyStart; without it, many flows ramping to max_cwnd
        # simultaneously dump megabytes into the first RTT.
        self.init_ssthresh = init_ssthresh
        self.dctcp_g = dctcp_g
        self.rto_ns = rto_ns
        self.max_rto_ns = max_rto_ns
        self.dupack_threshold = dupack_threshold


class DctcpSender:
    """Sender-side DCTCP state for one flow.

    The owner drives it with three entry points: :meth:`take_packets`
    (pull sendable segments), :meth:`on_ack` (process a returning ACK)
    and :meth:`on_rto` (fire a retransmission timeout).  The owner is
    responsible for arming the RTO timer at ``rto_deadline_ns``.
    """

    def __init__(
        self,
        flow_id: int,
        params: DctcpParams,
        unlimited: bool = True,
        segment_bytes: Optional[int] = None,
    ) -> None:
        self.flow_id = flow_id
        self.params = params
        self.segment_bytes = segment_bytes or params.mtu_bytes
        self.unlimited = unlimited
        self.pending_segments = 0  # app backlog when not unlimited
        # Window state (segment units).
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = params.init_cwnd
        self.ssthresh = params.init_ssthresh
        self.in_slow_start = True
        # Fast recovery.
        self.dupacks = 0
        self.recovery_until: Optional[int] = None
        self._retransmit_queue: list[int] = []
        # DCTCP alpha machinery.  Linux initializes alpha to 1
        # (dctcp_alpha_on_init), so the first marked window halves.
        self.alpha = 1.0
        self.window_end = 0
        self.acked_in_window = 0
        self.marked_in_window = 0
        # RTO.
        self.rto_backoff = 1
        self.last_progress_ns = 0.0
        # Stats.
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope(f"dctcp.flow{self.flow_id}")
            scope.counter("segments_sent", lambda: self.segments_sent)
            scope.counter(
                "retransmissions", lambda: self.retransmissions
            )
            scope.counter("timeouts", lambda: self.timeouts)
            scope.counter(
                "fast_retransmits", lambda: self.fast_retransmits
            )
            scope.gauge("cwnd", lambda: self.cwnd)
            scope.gauge("inflight", lambda: self.inflight)

    # ------------------------------------------------------------------
    # App interface
    # ------------------------------------------------------------------
    def enqueue_segments(self, count: int) -> None:
        """Add app data (message-mode flows)."""
        if self.unlimited:
            return
        self.pending_segments += count

    @property
    def inflight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def has_unsent_data(self) -> bool:
        if self._retransmit_queue:
            return True
        if self.unlimited:
            return True
        return self.pending_segments > 0

    def can_send(self) -> int:
        """Number of segments the window allows right now."""
        budget = int(self.cwnd) - self.inflight
        if budget <= 0:
            return 1 if self._retransmit_queue else 0
        if not self.unlimited:
            budget = min(
                budget, self.pending_segments + len(self._retransmit_queue)
            )
        return max(budget, 0)

    def take_packets(self, now: float, max_count: Optional[int] = None) -> list[Packet]:
        """Pull up to ``max_count`` sendable segments (retx first)."""
        allowance = self.can_send()
        if max_count is not None:
            allowance = min(allowance, max_count)
        packets: list[Packet] = []
        while allowance > 0 and self._retransmit_queue:
            seq = self._retransmit_queue.pop(0)
            packet = Packet(
                self.flow_id, seq, self.segment_bytes, PacketKind.DATA, now
            )
            packet.retransmission = True
            packets.append(packet)
            self.retransmissions += 1
            self.segments_sent += 1
            allowance -= 1
        while allowance > 0:
            if not self.unlimited:
                if self.pending_segments <= 0:
                    break
                self.pending_segments -= 1
            packets.append(
                Packet(
                    self.flow_id,
                    self.snd_nxt,
                    self.segment_bytes,
                    PacketKind.DATA,
                    now,
                )
            )
            self.snd_nxt += 1
            self.segments_sent += 1
            allowance -= 1
        return packets

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, ack: Packet, now: float) -> None:
        """Process a (possibly duplicate) cumulative ACK."""
        ack_seq = ack.seq
        if ack_seq > self.snd_una:
            newly_acked = ack_seq - self.snd_una
            self.snd_una = ack_seq
            self.dupacks = 0
            self.last_progress_ns = now
            self.rto_backoff = 1
            self._account_ecn(newly_acked, ack.ecn_echo)
            if self.recovery_until is not None:
                if self.snd_una >= self.recovery_until:
                    self.recovery_until = None
                else:
                    # Partial ACK: the next hole was also lost.
                    self._queue_retransmit(self.snd_una)
            else:
                self._grow_cwnd(newly_acked)
            self._maybe_update_alpha()
        elif ack_seq == self.snd_una and self.inflight > 0:
            self.dupacks += 1
            if (
                self.dupacks >= self.params.dupack_threshold
                and self.recovery_until is None
            ):
                self._enter_fast_recovery()

    def _account_ecn(self, newly_acked: int, marked: bool) -> None:
        self.acked_in_window += newly_acked
        if marked:
            self.marked_in_window += newly_acked

    def _grow_cwnd(self, newly_acked: int) -> None:
        if self.in_slow_start:
            self.cwnd += newly_acked
            if self.cwnd >= self.ssthresh:
                self.cwnd = self.ssthresh
                self.in_slow_start = False
        else:
            self.cwnd += newly_acked / self.cwnd
        self.cwnd = min(self.cwnd, self.params.max_cwnd)

    def _maybe_update_alpha(self) -> None:
        """Once per window of data: fold the marked fraction into alpha
        and apply DCTCP's multiplicative decrease if marks were seen."""
        if self.snd_una < self.window_end:
            return
        if self.acked_in_window > 0:
            fraction = self.marked_in_window / self.acked_in_window
            g = self.params.dctcp_g
            self.alpha = (1 - g) * self.alpha + g * fraction
            if self.marked_in_window > 0:
                self.cwnd = max(
                    self.cwnd * (1 - self.alpha / 2), self.params.min_cwnd
                )
                self.in_slow_start = False
        self.acked_in_window = 0
        self.marked_in_window = 0
        self.window_end = self.snd_nxt

    def _enter_fast_recovery(self) -> None:
        self.recovery_until = self.snd_nxt
        self.ssthresh = max(self.cwnd / 2, self.params.min_cwnd)
        self.cwnd = max(self.ssthresh, self.params.min_cwnd)
        self.in_slow_start = False
        self._queue_retransmit(self.snd_una)
        self.fast_retransmits += 1

    def _queue_retransmit(self, seq: int) -> None:
        if seq not in self._retransmit_queue:
            self._retransmit_queue.append(seq)

    # ------------------------------------------------------------------
    # RTO
    # ------------------------------------------------------------------
    @property
    def rto_deadline_ns(self) -> float:
        """When the owner's RTO timer should fire if no progress."""
        return self.last_progress_ns + self.params.rto_ns * self.rto_backoff

    def on_rto(self, now: float) -> None:
        """Retransmission timeout: collapse window, go-back-N."""
        if self.inflight == 0 and not self._retransmit_queue:
            return
        self.ssthresh = max(self.cwnd / 2, self.params.min_cwnd)
        self.cwnd = self.params.min_cwnd
        self.in_slow_start = True
        self.recovery_until = None
        self.dupacks = 0
        self._retransmit_queue = [self.snd_una]
        # Go-back-N: everything past snd_una will be resent as the
        # window reopens.
        self.snd_nxt = self.snd_una + 1
        self.rto_backoff = min(self.rto_backoff * 2, 16)
        self.last_progress_ns = now
        self.timeouts += 1


class DctcpReceiver:
    """Receiver-side state for one flow: reassembly and ACK policy."""

    def __init__(self, flow_id: int, params: DctcpParams) -> None:
        self.flow_id = flow_id
        self.params = params
        self.rcv_nxt = 0
        self._out_of_order: set[int] = set()
        self._pending_ack_segments = 0
        self._pending_ecn_echo = False
        self.segments_received = 0
        self.duplicates_received = 0
        self.delivered_segments = 0

    def on_data(
        self, packet: Packet, now: float, ack_every: int = 2
    ) -> tuple[int, Optional[Packet]]:
        """Process an arriving data segment.

        Returns ``(delivered_segments, ack_or_none)``: how many segments
        became deliverable in order, and an ACK packet if the policy
        emits one now.  ``ack_every`` is the delayed-ACK/GRO coalescing
        factor supplied by the host (per-batch ACKing).
        """
        self.segments_received += 1
        if packet.ecn_marked:
            self._pending_ecn_echo = True
        seq = packet.seq
        if seq < self.rcv_nxt or seq in self._out_of_order:
            # Duplicate (spurious retransmission): ACK immediately.
            self.duplicates_received += 1
            return 0, self._make_ack(now, dup_for=seq)
        if seq == self.rcv_nxt:
            self.rcv_nxt += 1
            delivered = 1
            while self.rcv_nxt in self._out_of_order:
                self._out_of_order.remove(self.rcv_nxt)
                self.rcv_nxt += 1
                delivered += 1
            self.delivered_segments += delivered
            filled_gap = delivered > 1
            self._pending_ack_segments += delivered
            if filled_gap or self._pending_ack_segments >= ack_every:
                return delivered, self._make_ack(now)
            return delivered, None
        # Out of order: buffer and duplicate-ACK immediately.
        self._out_of_order.add(seq)
        return 0, self._make_ack(now, dup_for=seq)

    def flush_ack(self, now: float) -> Optional[Packet]:
        """Emit a pending delayed ACK (the host's delayed-ACK timer)."""
        if self._pending_ack_segments == 0:
            return None
        return self._make_ack(now)

    def _make_ack(self, now: float, dup_for: Optional[int] = None) -> Packet:
        ack = Packet(
            self.flow_id, self.rcv_nxt, ACK_SIZE_BYTES, PacketKind.ACK, now
        )
        ack.ecn_echo = self._pending_ecn_echo
        ack.sack_seq = dup_for
        self._pending_ecn_echo = False
        self._pending_ack_segments = 0
        return ack

    @property
    def out_of_order_segments(self) -> int:
        return len(self._out_of_order)

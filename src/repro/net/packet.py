"""Packet representation shared by the transport, switch, and NIC models.

Packets are segment-granular: one :class:`Packet` is one MTU-sized (or
smaller) wire unit.  ``seq`` numbers count segments, not bytes, which
keeps the DCTCP state machines simple without changing any behaviour
the experiments measure.
"""

from __future__ import annotations

import itertools
from typing import Optional

__all__ = ["Packet", "PacketKind", "ACK_SIZE_BYTES"]

ACK_SIZE_BYTES = 64

_packet_ids = itertools.count()


class PacketKind:
    """Enumeration of wire-unit kinds (plain strings for cheap checks)."""

    DATA = "data"
    ACK = "ack"
    RPC_REQ = "rpc_req"
    RPC_RESP = "rpc_resp"


class Packet:
    """One wire unit.

    Attributes
    ----------
    flow_id:
        Flow the packet belongs to.
    seq:
        Segment sequence number (data) or cumulative ack number (acks).
    size_bytes:
        Bytes on the wire.
    kind:
        One of :class:`PacketKind`.
    ecn_marked:
        Set by the switch when its queue exceeds the marking threshold;
        echoed by the receiver in ACKs (``ecn_echo``).
    retransmission:
        Whether this is a retransmitted segment.
    sent_ns / created_ns:
        Timestamps for latency accounting.
    rpc_id:
        Identifier linking RPC requests to responses.
    """

    __slots__ = (
        "packet_id",
        "flow_id",
        "seq",
        "size_bytes",
        "kind",
        "ecn_marked",
        "ecn_echo",
        "retransmission",
        "created_ns",
        "sent_ns",
        "rpc_id",
        "sack_seq",
    )

    def __init__(
        self,
        flow_id: int,
        seq: int,
        size_bytes: int,
        kind: str = PacketKind.DATA,
        created_ns: float = 0.0,
        rpc_id: Optional[int] = None,
    ) -> None:
        self.packet_id = next(_packet_ids)
        self.flow_id = flow_id
        self.seq = seq
        self.size_bytes = size_bytes
        self.kind = kind
        self.ecn_marked = False
        self.ecn_echo = False
        self.retransmission = False
        self.created_ns = created_ns
        self.sent_ns = created_ns
        self.rpc_id = rpc_id
        # For ACK packets: the sequence of the segment that triggered
        # this (dup) ack, letting the sender do SACK-like recovery.
        self.sack_seq: Optional[int] = None

    @property
    def is_data(self) -> bool:
        return self.kind in (PacketKind.DATA, PacketKind.RPC_REQ, PacketKind.RPC_RESP)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Packet {self.kind} flow={self.flow_id} seq={self.seq} "
            f"{self.size_bytes}B>"
        )

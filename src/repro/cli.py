"""Command-line interface: reproduce any figure without writing code.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro fig2                 # run Fig 2 at the quick scale
    python -m repro fig9 --full          # full-length run
    python -m repro fig12 --out out.txt  # also write the table to a file
    python -m repro all                  # every figure, quick scale
    python -m repro run fig7 --verify    # run with the invariant monitor
    python -m repro fig2 --trace t.json  # also export a Perfetto trace
    python -m repro lint src/            # determinism/safety lint pass
    python -m repro analyze src/repro    # whole-program CFG/dataflow analysis
    python -m repro faults --seed 2      # fault sweep (safety under faults)
    python -m repro chaos --seeds 50     # random schedules + shrinking
    python -m repro run fig7 --faults plan.json --verify
    python -m repro report fig2          # metrics JSON + summary table
    python -m repro bench                # wall-clock speed -> BENCH_sim.json
    python -m repro bench --check BENCH_sim.json
    python -m repro publish out/         # publication figures + index.html
    python -m repro publish out/ --figures fig2,fig9 --format svg
    python -m repro reproduce            # claims gate -> REPORT.md + report.json
    python -m repro reproduce --figures fig2,fig7 --jobs 4
    python -m repro diff old.json new.json   # regression gate (report or bench)
    python -m repro profile fig2         # cProfile hotspots for one figure
    python -m repro serve --port 8080    # long-running reproduce daemon
    python -m repro cache stats          # result-cache operability
    python -m repro cache gc --max-bytes 268435456

Each command prints the reproduced table (the same rows the paper's
figure plots) and exits 0.  ``--jobs N`` fans a figure's independent
sweep points across a process pool (:mod:`repro.parallel`); results
are byte-identical to a serial run.  Under ``--verify`` every simulated event is
additionally checked against the DMA-safety invariants
(:mod:`repro.verify`); a violation aborts the run with a full event
trace and exit code 1.  ``report`` runs a figure with the observability
layer (:mod:`repro.obs`) installed and writes a metrics time-series
document plus (optionally) a Chrome-trace file loadable in Perfetto.
``reproduce`` runs figures against their paper-claims expectation specs
(:mod:`repro.obs.expect`) and regenerates ``REPORT.md``/``report.json``,
exiting nonzero on any violated claim; ``diff`` compares two generated
``report.json``/``BENCH_sim.json`` documents and fails on regressions.
``reproduce`` consults the content-addressed result cache
(:mod:`repro.cache`; default ``.repro-cache/``, see ``--cache-dir`` /
``--no-cache``), so unchanged cells are served from the store; ``serve``
runs the long-lived reproduce daemon (:mod:`repro.serve`) and ``cache``
exposes store operability (``stats``/``gc``/``clear``).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Callable, Optional

from .experiments import (
    DEFAULT_MTTR_BOUND_NS,
    FULL,
    QUICK,
    fault_sweep,
    fig2_flows,
    fig3_ring,
    fig7_fns_flows,
    fig8_fns_ring,
    fig9_rpc_latency,
    fig10_rxtx,
    fig11_nginx,
    fig11_redis,
    fig11_spdk,
    fig12_ablation,
    model_fit,
)
from .cache.hooks import result_cached
from .faults import FaultPlan, faulted
from .obs import MetricsRegistry, SpanTracer, observed
from .parallel import RemotePointError
from .verify import InvariantMonitor, InvariantViolation, monitored
from .verify.lint import main as lint_main
from .verify.analyze import main as analyze_main

__all__ = ["main", "FIGURES"]

FIGURES: dict[str, tuple[Callable, str]] = {
    "fig2": (fig2_flows, "Linux strict vs IOMMU off, varying flows"),
    "fig3": (fig3_ring, "Linux strict vs IOMMU off, varying ring size"),
    "model": (model_fit, "Section 2.2 analytic throughput model"),
    "fig7": (fig7_fns_flows, "F&S vs strict vs off, varying flows"),
    "fig8": (fig8_fns_ring, "F&S under increasing ring sizes"),
    "fig9": (fig9_rpc_latency, "RPC tail latency under colocation"),
    "fig10": (fig10_rxtx, "Concurrent Rx/Tx interference (Ice Lake)"),
    "fig11a": (fig11_redis, "Redis SET throughput"),
    "fig11b": (fig11_nginx, "Nginx throughput"),
    "fig11c": (fig11_spdk, "SPDK remote read throughput"),
    "fig12": (fig12_ablation, "Ablation: each F&S idea is necessary"),
    "faults": (fault_sweep, "Fault sweep: throughput degrades, safety holds"),
}

DEFAULT_SAMPLE_INTERVAL_NS = 100_000.0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce figures from 'Fast & Safe IO Memory Protection' "
            "(SOSP 2024) in simulation."
        ),
    )
    parser.add_argument(
        "figure",
        help="figure id (see 'list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-length runs (benchmark scale) instead of quick",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also append the reproduced table(s) to this file",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "attach the DMA-safety invariant monitor to the run; "
            "violations abort with a full event trace"
        ),
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        default=None,
        help=(
            "JSON fault-plan file (repro.faults.FaultPlan) to inject "
            "during the run; combine with --verify to check safety"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        metavar="N",
        help="fault-plan seed for the built-in 'faults' sweep",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "export a Chrome-trace (Perfetto-loadable) JSON of DMA, "
            "walk and invalidation spans to PATH"
        ),
    )
    _add_jobs_argument(parser)
    _add_cache_arguments(parser, default_on=False)
    return parser


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan independent sweep points across N worker processes; "
            "results are byte-identical to a serial run (runs serially "
            "under --verify/--faults/--trace, which need one process)"
        ),
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        metavar="K",
        help=(
            "points per worker task under --jobs (default: auto, "
            "points / (4 * workers)); results are identical for every "
            "chunk size"
        ),
    )


def _build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description=(
            "Run a figure with the observability layer installed and "
            "emit a metrics JSON document plus a per-phase summary."
        ),
    )
    parser.add_argument("figure", help="figure id (see 'repro list')")
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-length runs instead of quick",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="metrics JSON path (default: <figure>_metrics.json)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="Chrome-trace JSON path (default: <figure>_trace.json)",
    )
    parser.add_argument(
        "--interval-ns",
        type=float,
        default=DEFAULT_SAMPLE_INTERVAL_NS,
        metavar="NS",
        help="metrics sampling interval in simulated ns",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        metavar="N",
        help="fault-plan seed (only used by the 'faults' figure)",
    )
    _add_jobs_argument(parser)
    _add_cache_arguments(parser, default_on=False)
    return parser


def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Measure simulator wall-clock speed and write BENCH_sim.json"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_sim.json",
        help="output path (default: BENCH_sim.json)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="longer benchmark runs",
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="validate an existing BENCH_sim.json instead of running",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "additionally time the sweep suite serially and through an "
            "N-worker pool, recording the multi-job speed-up"
        ),
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        metavar="K",
        help="points per worker task for the sweep_jobsN row "
        "(default: auto)",
    )
    parser.add_argument(
        "--history",
        metavar="PATH",
        default="bench_history.jsonl",
        help=(
            "append a provenance-stamped trend row (git sha, UTC time, "
            "events/wall-s per benchmark) to this JSONL file "
            "(default: bench_history.jsonl)"
        ),
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append to the bench history file",
    )
    return parser


def _build_reproduce_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro reproduce",
        description=(
            "Run figures against their paper-claims expectation specs "
            "and generate REPORT.md + report.json; exits 1 when any "
            "claim is violated."
        ),
    )
    parser.add_argument(
        "--figures",
        metavar="LIST",
        default=None,
        help=(
            "comma-separated figure keys (e.g. fig2,fig7); default: "
            "every figure with an expectation spec"
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-length runs instead of quick",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="REPORT.md",
        help="generated markdown report path (default: REPORT.md)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="report.json",
        help="machine-readable report path (default: report.json)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        metavar="N",
        help="run seed recorded in the provenance manifest",
    )
    _add_jobs_argument(parser)
    _add_cache_arguments(parser, default_on=True)
    return parser


def _add_cache_arguments(
    parser: argparse.ArgumentParser, default_on: bool
) -> None:
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "content-addressed result cache directory (default: "
            "$REPRO_CACHE_DIR or .repro-cache)"
        ),
    )
    if default_on:
        parser.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the result cache for this run",
        )
    else:
        parser.add_argument(
            "--cache",
            action="store_true",
            help=(
                "serve unchanged sweep cells from the content-addressed "
                "result cache (repro.cache) and store computed ones"
            ),
        )


def _cache_from_args(args: argparse.Namespace, default_on: bool):
    """The ResultCache an invocation asked for, or ``None``."""
    from .cache.store import ResultCache

    if default_on:
        if getattr(args, "no_cache", False):
            return None
    elif not getattr(args, "cache", False):
        return None
    return ResultCache(args.cache_dir)


def _build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description=(
            "Run one figure under cProfile and print the hottest "
            "functions by cumulative time.  Always runs serially: a "
            "process pool would move the interesting work out of the "
            "profiled process."
        ),
    )
    parser.add_argument("figure", help="figure id (see 'repro list')")
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-length runs instead of quick",
    )
    parser.add_argument(
        "--lines",
        type=int,
        default=25,
        metavar="N",
        help="number of stats rows to print (default: 25)",
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        metavar="KEY",
        help="pstats sort key (default: cumulative; e.g. tottime)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also dump raw pstats data to PATH (for snakeviz etc.)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        metavar="N",
        help="sweep seed (matches 'repro <figure> --seed')",
    )
    return parser


def _build_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro diff",
        description=(
            "Compare two report.json or BENCH_sim.json documents and "
            "exit 1 on regressions (newly failing claims, or wall-clock "
            "slowdowns beyond the threshold)."
        ),
    )
    parser.add_argument("old", help="baseline document")
    parser.add_argument("new", help="candidate document")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="relative wall-clock regression threshold (default: 0.25)",
    )
    return parser


def _build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Sample N random fault schedules (transient + hard faults) "
            "and run each under the invariant monitor with device "
            "recovery enabled.  A schedule fails on any safety "
            "violation, an unrecovered wedge, or an MTTR above the "
            "bound; the first failing schedule is delta-debugged to a "
            "minimal repro plan and written as JSON."
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=25,
        metavar="N",
        help="number of random schedules to sample (default: 25)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        metavar="N",
        help="root seed for schedule sampling (default: 1)",
    )
    parser.add_argument(
        "--mode",
        default="fns",
        help="protection mode to stress (default: fns)",
    )
    parser.add_argument(
        "--flows",
        type=int,
        default=5,
        metavar="N",
        help="iperf flows per schedule (default: 5)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-length runs instead of quick",
    )
    parser.add_argument(
        "--mttr-bound-ns",
        type=float,
        default=DEFAULT_MTTR_BOUND_NS,
        metavar="NS",
        help=(
            "liveness bar: worst allowed detect->resume recovery time "
            f"(default: {DEFAULT_MTTR_BOUND_NS:.0f})"
        ),
    )
    parser.add_argument(
        "--no-recovery",
        action="store_true",
        help=(
            "run without the reset protocol (hard faults then go "
            "unrecovered; demonstrates shrinking)"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="chaos_failure.json",
        help=(
            "where to write the shrunken failing plan "
            "(default: chaos_failure.json)"
        ),
    )
    _add_jobs_argument(parser)
    return parser


def _run_chaos(raw: list[str]) -> int:
    from .experiments.chaos import replay_fails, run_chaos, shrink_plan

    args = _build_chaos_parser().parse_args(raw)
    scale = FULL if args.full else QUICK
    result, failures = run_chaos(
        seeds=args.seeds,
        root_seed=args.seed,
        mode=args.mode,
        flows=args.flows,
        scale=scale,
        jobs=args.jobs,
        mttr_bound_ns=args.mttr_bound_ns,
        recovery=not args.no_recovery,
        chunk=args.chunk,
    )
    print(result.format())
    if not failures:
        print(
            f"chaos: {args.seeds} schedules passed "
            "(zero violations, all hard faults recovered in bound)"
        )
        return 0
    first = failures[0]
    print(
        f"chaos: {len(failures)}/{args.seeds} schedules failed; "
        f"shrinking plan {first.index} "
        f"({len(first.plan.specs)} specs; {', '.join(first.reasons)})",
        file=sys.stderr,
    )
    fails = replay_fails(
        args.mode,
        args.flows,
        not args.no_recovery,
        scale,
        args.mttr_bound_ns,
    )
    minimal, evaluations = shrink_plan(first.plan, fails)
    with open(args.out, "w") as handle:
        handle.write(minimal.to_json() + "\n")
    print(
        f"chaos: minimal repro has {len(minimal.specs)} spec(s) "
        f"after {evaluations} reruns -> {args.out}",
        file=sys.stderr,
    )
    for spec in minimal.specs:
        print(
            f"  {spec.component}/{spec.kind} "
            f"[{spec.start_ns:.0f}, {spec.end_ns:.0f})ns "
            f"p={spec.probability:g} mag={spec.magnitude:g}",
            file=sys.stderr,
        )
    return 1


def _run_reproduce(raw: list[str]) -> int:
    from .obs.expect.reproduce import run_reproduce

    args = _build_reproduce_parser().parse_args(raw)
    figures = None
    if args.figures is not None:
        figures = [f.strip() for f in args.figures.split(",") if f.strip()]
    scale = FULL if args.full else QUICK
    try:
        return run_reproduce(
            figures,
            scale=scale,
            seed=args.seed,
            jobs=args.jobs,
            chunk=args.chunk,
            report_path=args.out,
            json_path=args.json,
            cache=_cache_from_args(args, default_on=True),
        )
    except RemotePointError as error:
        print(f"{error.label}: WORKER FAILURE", file=sys.stderr)
        print(error.format_trace(), file=sys.stderr)
        return 1


def _run_diff(raw: list[str]) -> int:
    from .obs.expect.diffing import diff_documents

    args = _build_diff_parser().parse_args(raw)
    docs = []
    for path in (args.old, args.new):
        try:
            with open(path) as handle:
                docs.append(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"cannot read {path!r}: {exc}", file=sys.stderr)
            return 2
    try:
        result = diff_documents(docs[0], docs[1], threshold=args.threshold)
    except ValueError as exc:
        print(f"cannot diff: {exc}", file=sys.stderr)
        return 2
    print(result.format())
    return 0 if result.ok else 1


def _emit(text: str, out_path: Optional[str]) -> None:
    print(text)
    if out_path:
        with open(out_path, "a") as handle:
            handle.write(text + "\n")


def _list_figures() -> str:
    lines = ["available figures:"]
    for name, (_fn, description) in FIGURES.items():
        lines.append(f"  {name:8s} {description}")
    lines.append("  all      run every figure")
    return "\n".join(lines)


def _run_figure(
    name: str,
    scale,
    verify: bool,
    out_path: Optional[str],
    seed: int = 1,
    plan: Optional[FaultPlan] = None,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
) -> int:
    runner, _description = FIGURES[name]
    if name == "faults":
        # The sweep runs every row under its own monitor (safety is
        # the experiment); --verify only changes the summary line.
        try:
            result = runner(
                scale=scale, seed=seed, plan=plan, jobs=jobs, chunk=chunk
            )
        except (InvariantViolation, RemotePointError) as violation:
            print(f"{name}: INVARIANT VIOLATION", file=sys.stderr)
            print(violation.format_trace(), file=sys.stderr)
            return 1
        _emit(result.format(), out_path)
        if verify:
            total = sum(row[-1] for row in result.rows)
            print(
                f"[verify] faults: {total} violations across "
                f"{len(result.rows)} rows"
            )
        return 0
    inject = faulted(plan) if plan is not None else contextlib.nullcontext()
    if not verify:
        # run_points falls back to serial by itself when a fault plan
        # or tracer is installed; jobs only fans out the clean path.
        with inject:
            result = runner(scale=scale, seed=seed, jobs=jobs, chunk=chunk)
        _emit(result.format(), out_path)
        return 0
    monitor = InvariantMonitor()
    try:
        with monitored(monitor), inject:
            result = runner(scale=scale, seed=seed, jobs=jobs, chunk=chunk)
    except InvariantViolation as violation:
        print(f"{name}: INVARIANT VIOLATION", file=sys.stderr)
        print(violation.format_trace(), file=sys.stderr)
        return 1
    _emit(result.format(), out_path)
    print(f"[verify] {name}: {monitor.summary()}")
    return 0


def _run_report(raw: list[str]) -> int:
    from .analysis.report import format_table

    args = _build_report_parser().parse_args(raw)
    if args.figure not in FIGURES:
        print(f"unknown figure {args.figure!r}\n\n{_list_figures()}",
              file=sys.stderr)
        return 2
    scale = FULL if args.full else QUICK
    metrics_path = args.out or f"{args.figure}_metrics.json"
    trace_path = args.trace or f"{args.figure}_trace.json"
    # Spans cannot merge across processes, so a multi-job report keeps
    # the metrics registry (phases are adopted from workers) but skips
    # the tracer; a tracer would force run_points serial anyway.
    # A cached report keeps the metrics registry too (phases are
    # adopted from the store like worker payloads), but has no spans
    # to serve, so --cache implies the no-tracer path as --jobs does.
    cache = _cache_from_args(args, default_on=False)
    parallel = args.jobs is not None and args.jobs > 1
    registry = MetricsRegistry(
        tracer=None if parallel or cache is not None else SpanTracer(),
        sample_interval_ns=args.interval_ns,
    )
    runner, _description = FIGURES[args.figure]
    try:
        with result_cached(cache), observed(registry):
            result = runner(
                scale=scale, seed=args.seed, jobs=args.jobs,
                chunk=args.chunk,
            )
    except RemotePointError as error:
        print(f"{error.label}: WORKER FAILURE", file=sys.stderr)
        print(error.format_trace(), file=sys.stderr)
        return 1
    print(result.format())
    headers, rows = registry.summary_rows()
    print()
    print(format_table(headers, rows))
    if cache is not None:
        print(f"\ncache:   {cache.stats.summary()} ({cache.directory})")
    with open(metrics_path, "w") as handle:
        json.dump(registry.report(), handle, indent=2)
        handle.write("\n")
    print(f"\nmetrics: {metrics_path}")
    if registry.tracer is not None:
        registry.tracer.write(trace_path)
        print(
            f"trace:   {trace_path} "
            f"({len(registry.tracer.events)} events; "
            "load at ui.perfetto.dev)"
        )
    else:
        print("trace:   skipped (--jobs > 1; spans are per-process)")
    return 0


def _run_bench(raw: list[str]) -> int:
    from .obs import bench

    args = _build_bench_parser().parse_args(raw)
    if args.check is not None:
        try:
            with open(args.check) as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.check!r}: {exc}", file=sys.stderr)
            return 2
        problems = bench.check_schema(doc)
        if problems:
            for problem in problems:
                print(f"schema problem: {problem}", file=sys.stderr)
            return 1
        print(f"{args.check}: schema OK "
              f"({len(doc['benchmarks'])} benchmarks)")
        return 0
    history = None if args.no_history else args.history
    doc = bench.write_bench(
        args.out, full=args.full, jobs=args.jobs, chunk=args.chunk,
        history_path=None,
    )
    for point in doc["benchmarks"]:
        print(
            f"{point['name']:14s} {point['wall_s']:7.2f}s wall  "
            f"{point['events']:>8d} events  "
            f"{point['sim_ns_per_wall_s'] / 1e6:8.1f} sim-ms/s"
        )
    print(f"total: {doc['total_wall_s']:.2f}s wall -> {args.out}")
    provenance = doc.get("provenance", {})
    print(
        f"stamp: sha {provenance.get('git_sha', 'unknown')[:12]} "
        f"at {provenance.get('utc', '?')} "
        f"({provenance.get('scale', '?')} scale)"
    )
    if history is not None:
        row = bench.append_history(doc, history)
        if row is None:
            print(f"history: unchanged ({history} already ends with "
                  "this sha + numbers)")
        else:
            print(f"history: appended to {history}")
    return 0


def _run_profile(raw: list[str]) -> int:
    import cProfile
    import io
    import pstats

    args = _build_profile_parser().parse_args(raw)
    if args.figure not in FIGURES:
        print(f"unknown figure {args.figure!r}\n\n{_list_figures()}",
              file=sys.stderr)
        return 2
    scale = FULL if args.full else QUICK
    runner, _description = FIGURES[args.figure]
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = runner(scale=scale, seed=args.seed)
    finally:
        profiler.disable()
    print(result.format())
    print()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    try:
        stats.sort_stats(args.sort)
    except KeyError:
        print(f"unknown sort key {args.sort!r}", file=sys.stderr)
        return 2
    stats.print_stats(args.lines)
    print(stream.getvalue().rstrip())
    if args.out:
        stats.dump_stats(args.out)
        print(f"\nraw stats: {args.out}")
    return 0


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the long-lived reproduce daemon: POST /api/reproduce "
            "enqueues a run, identical in-flight configs are deduplicated "
            "(a second request attaches to the first), and the shared "
            "content-addressed result cache serves repeated configs from "
            "the store."
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8321,
        metavar="N",
        help="listen port; 0 picks a free one (default: 8321)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "result cache directory shared by all jobs (default: "
            "$REPRO_CACHE_DIR or .repro-cache)"
        ),
    )
    parser.add_argument(
        "--workdir",
        metavar="DIR",
        default=None,
        help=(
            "where job outputs (REPORT.md/report.json/log.txt) land "
            "(default: a temporary directory removed on exit)"
        ),
    )
    _add_jobs_argument(parser)
    return parser


def _run_serve(raw: list[str]) -> int:
    from .serve.server import ReproServer

    args = _build_serve_parser().parse_args(raw)
    server = ReproServer(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workdir=args.workdir,
        jobs=args.jobs,
    )
    host, port = server.address
    print(f"repro serve: listening on http://{host}:{port}")
    print(f"cache: {server.cache.directory}")
    print(f"workdir: {server.queue.workdir}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
    return 0


def _build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description=(
            "Operate on the content-addressed result cache: stats "
            "(entries/bytes), gc (evict by age, then LRU down to a byte "
            "budget), clear (drop everything)."
        ),
    )
    parser.add_argument(
        "action",
        choices=("stats", "gc", "clear"),
        help="what to do with the store",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "cache directory (default: $REPRO_CACHE_DIR or .repro-cache)"
        ),
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="gc: evict least-recently-used entries beyond N bytes "
             "(default: 1 GiB)",
    )
    parser.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="D",
        help="gc: additionally evict entries older than D days",
    )
    return parser


def _run_cache(raw: list[str]) -> int:
    from .cache.store import DEFAULT_GC_MAX_BYTES, ResultCache

    args = _build_cache_parser().parse_args(raw)
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        disk = cache.disk_stats()
        print(f"cache:   {cache.directory}")
        print(f"entries: {disk['entries']}")
        print(f"bytes:   {disk['bytes']}")
        return 0
    if args.action == "clear":
        result = cache.clear()
        print(
            f"cleared {result['evicted']} entries "
            f"({result['freed_bytes']} bytes) from {cache.directory}"
        )
        return 0
    budget = (
        args.max_bytes if args.max_bytes is not None else DEFAULT_GC_MAX_BYTES
    )
    result = cache.gc(max_bytes=budget, max_age_days=args.max_age_days)
    print(
        f"gc: evicted {result['evicted']} entries "
        f"({result['freed_bytes']} bytes freed, "
        f"{result['remaining_bytes']} bytes remain) in {cache.directory}"
    )
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    if raw and raw[0] == "lint":
        return lint_main(raw[1:])
    if raw and raw[0] == "analyze":
        return analyze_main(raw[1:])
    if raw and raw[0] == "report":
        return _run_report(raw[1:])
    if raw and raw[0] == "bench":
        return _run_bench(raw[1:])
    if raw and raw[0] == "reproduce":
        return _run_reproduce(raw[1:])
    if raw and raw[0] == "chaos":
        return _run_chaos(raw[1:])
    if raw and raw[0] == "diff":
        return _run_diff(raw[1:])
    if raw and raw[0] == "profile":
        return _run_profile(raw[1:])
    if raw and raw[0] == "serve":
        return _run_serve(raw[1:])
    if raw and raw[0] == "cache":
        return _run_cache(raw[1:])
    if raw and raw[0] == "publish":
        from .obs.publish.cli import main as publish_main

        return publish_main(raw[1:])
    if raw and raw[0] == "run":
        # ``repro run fig7 --verify`` is an alias for ``repro fig7``.
        raw = raw[1:]
    args = _build_parser().parse_args(raw)
    if args.figure == "list":
        print(_list_figures())
        return 0
    scale = FULL if args.full else QUICK
    plan: Optional[FaultPlan] = None
    if args.faults is not None:
        try:
            plan = FaultPlan.from_file(args.faults)
        except (OSError, ValueError, KeyError) as exc:
            print(f"bad fault plan {args.faults!r}: {exc}", file=sys.stderr)
            return 2
    if args.figure == "all":
        names = list(FIGURES)
    elif args.figure in FIGURES:
        names = [args.figure]
    else:
        print(f"unknown figure {args.figure!r}\n\n{_list_figures()}",
              file=sys.stderr)
        return 2
    # A global --trace wraps the whole run in a tracer-only registry
    # (spans without periodic metric sampling).
    trace_ctx: contextlib.AbstractContextManager
    registry: Optional[MetricsRegistry] = None
    if args.trace is not None:
        registry = MetricsRegistry(tracer=SpanTracer())
        trace_ctx = observed(registry)
    else:
        trace_ctx = contextlib.nullcontext()
    # --cache serves unchanged sweep cells from the store.  run_points
    # bypasses it by itself under a tracer/monitor/fault plan, so the
    # combination with --trace or --verify degrades to a plain run.
    cache = _cache_from_args(args, default_on=False)
    with result_cached(cache), trace_ctx:
        for name in names:
            status = _run_figure(
                name, scale, args.verify, args.out, seed=args.seed,
                plan=plan, jobs=args.jobs, chunk=args.chunk,
            )
            if status:
                return status
    if cache is not None:
        print(f"cache: {cache.stats.summary()} ({cache.directory})")
    if registry is not None:
        registry.tracer.write(args.trace)
        print(
            f"trace: {args.trace} ({len(registry.tracer.events)} events; "
            "load at ui.perfetto.dev)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: reproduce any figure without writing code.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro fig2                 # run Fig 2 at the quick scale
    python -m repro fig9 --full          # full-length run
    python -m repro fig12 --out out.txt  # also write the table to a file
    python -m repro all                  # every figure, quick scale

Each command prints the reproduced table (the same rows the paper's
figure plots) and exits 0.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from .experiments import (
    FULL,
    QUICK,
    fig2_flows,
    fig3_ring,
    fig7_fns_flows,
    fig8_fns_ring,
    fig9_rpc_latency,
    fig10_rxtx,
    fig11_nginx,
    fig11_redis,
    fig11_spdk,
    fig12_ablation,
    model_fit,
)

__all__ = ["main", "FIGURES"]

FIGURES: dict[str, tuple[Callable, str]] = {
    "fig2": (fig2_flows, "Linux strict vs IOMMU off, varying flows"),
    "fig3": (fig3_ring, "Linux strict vs IOMMU off, varying ring size"),
    "model": (model_fit, "Section 2.2 analytic throughput model"),
    "fig7": (fig7_fns_flows, "F&S vs strict vs off, varying flows"),
    "fig8": (fig8_fns_ring, "F&S under increasing ring sizes"),
    "fig9": (fig9_rpc_latency, "RPC tail latency under colocation"),
    "fig10": (fig10_rxtx, "Concurrent Rx/Tx interference (Ice Lake)"),
    "fig11a": (fig11_redis, "Redis SET throughput"),
    "fig11b": (fig11_nginx, "Nginx throughput"),
    "fig11c": (fig11_spdk, "SPDK remote read throughput"),
    "fig12": (fig12_ablation, "Ablation: each F&S idea is necessary"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce figures from 'Fast & Safe IO Memory Protection' "
            "(SOSP 2024) in simulation."
        ),
    )
    parser.add_argument(
        "figure",
        help="figure id (see 'list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-length runs (benchmark scale) instead of quick",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also append the reproduced table(s) to this file",
    )
    return parser


def _emit(text: str, out_path: Optional[str]) -> None:
    print(text)
    if out_path:
        with open(out_path, "a") as handle:
            handle.write(text + "\n")


def _list_figures() -> str:
    lines = ["available figures:"]
    for name, (_fn, description) in FIGURES.items():
        lines.append(f"  {name:8s} {description}")
    lines.append("  all      run every figure")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.figure == "list":
        print(_list_figures())
        return 0
    scale = FULL if args.full else QUICK
    if args.figure == "all":
        names = list(FIGURES)
    elif args.figure in FIGURES:
        names = [args.figure]
    else:
        print(f"unknown figure {args.figure!r}\n\n{_list_figures()}",
              file=sys.stderr)
        return 2
    for name in names:
        runner, _description = FIGURES[name]
        result = runner(scale=scale)
        _emit(result.format(), args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: reproduce any figure without writing code.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro fig2                 # run Fig 2 at the quick scale
    python -m repro fig9 --full          # full-length run
    python -m repro fig12 --out out.txt  # also write the table to a file
    python -m repro all                  # every figure, quick scale
    python -m repro run fig7 --verify    # run with the invariant monitor
    python -m repro lint src/            # determinism/safety lint pass
    python -m repro faults --seed 2      # fault sweep (safety under faults)
    python -m repro run fig7 --faults plan.json --verify

Each command prints the reproduced table (the same rows the paper's
figure plots) and exits 0.  Under ``--verify`` every simulated event is
additionally checked against the DMA-safety invariants
(:mod:`repro.verify`); a violation aborts the run with a full event
trace and exit code 1.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Callable, Optional

from .experiments import (
    FULL,
    QUICK,
    fault_sweep,
    fig2_flows,
    fig3_ring,
    fig7_fns_flows,
    fig8_fns_ring,
    fig9_rpc_latency,
    fig10_rxtx,
    fig11_nginx,
    fig11_redis,
    fig11_spdk,
    fig12_ablation,
    model_fit,
)
from .faults import FaultPlan, faulted
from .verify import InvariantMonitor, InvariantViolation, monitored
from .verify.lint import main as lint_main

__all__ = ["main", "FIGURES"]

FIGURES: dict[str, tuple[Callable, str]] = {
    "fig2": (fig2_flows, "Linux strict vs IOMMU off, varying flows"),
    "fig3": (fig3_ring, "Linux strict vs IOMMU off, varying ring size"),
    "model": (model_fit, "Section 2.2 analytic throughput model"),
    "fig7": (fig7_fns_flows, "F&S vs strict vs off, varying flows"),
    "fig8": (fig8_fns_ring, "F&S under increasing ring sizes"),
    "fig9": (fig9_rpc_latency, "RPC tail latency under colocation"),
    "fig10": (fig10_rxtx, "Concurrent Rx/Tx interference (Ice Lake)"),
    "fig11a": (fig11_redis, "Redis SET throughput"),
    "fig11b": (fig11_nginx, "Nginx throughput"),
    "fig11c": (fig11_spdk, "SPDK remote read throughput"),
    "fig12": (fig12_ablation, "Ablation: each F&S idea is necessary"),
    "faults": (fault_sweep, "Fault sweep: throughput degrades, safety holds"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce figures from 'Fast & Safe IO Memory Protection' "
            "(SOSP 2024) in simulation."
        ),
    )
    parser.add_argument(
        "figure",
        help="figure id (see 'list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-length runs (benchmark scale) instead of quick",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also append the reproduced table(s) to this file",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "attach the DMA-safety invariant monitor to the run; "
            "violations abort with a full event trace"
        ),
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        default=None,
        help=(
            "JSON fault-plan file (repro.faults.FaultPlan) to inject "
            "during the run; combine with --verify to check safety"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        metavar="N",
        help="fault-plan seed for the built-in 'faults' sweep",
    )
    return parser


def _emit(text: str, out_path: Optional[str]) -> None:
    print(text)
    if out_path:
        with open(out_path, "a") as handle:
            handle.write(text + "\n")


def _list_figures() -> str:
    lines = ["available figures:"]
    for name, (_fn, description) in FIGURES.items():
        lines.append(f"  {name:8s} {description}")
    lines.append("  all      run every figure")
    return "\n".join(lines)


def _run_figure(
    name: str,
    scale,
    verify: bool,
    out_path: Optional[str],
    seed: int = 1,
    plan: Optional[FaultPlan] = None,
) -> int:
    runner, _description = FIGURES[name]
    if name == "faults":
        # The sweep runs every row under its own monitor (safety is
        # the experiment); --verify only changes the summary line.
        try:
            result = runner(scale=scale, seed=seed, plan=plan)
        except InvariantViolation as violation:
            print(f"{name}: INVARIANT VIOLATION", file=sys.stderr)
            print(violation.format_trace(), file=sys.stderr)
            return 1
        _emit(result.format(), out_path)
        if verify:
            total = sum(row[-1] for row in result.rows)
            print(
                f"[verify] faults: {total} violations across "
                f"{len(result.rows)} rows"
            )
        return 0
    inject = faulted(plan) if plan is not None else contextlib.nullcontext()
    if not verify:
        with inject:
            result = runner(scale=scale)
        _emit(result.format(), out_path)
        return 0
    monitor = InvariantMonitor()
    try:
        with monitored(monitor), inject:
            result = runner(scale=scale)
    except InvariantViolation as violation:
        print(f"{name}: INVARIANT VIOLATION", file=sys.stderr)
        print(violation.format_trace(), file=sys.stderr)
        return 1
    _emit(result.format(), out_path)
    print(f"[verify] {name}: {monitor.summary()}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    if raw and raw[0] == "lint":
        return lint_main(raw[1:])
    if raw and raw[0] == "run":
        # ``repro run fig7 --verify`` is an alias for ``repro fig7``.
        raw = raw[1:]
    args = _build_parser().parse_args(raw)
    if args.figure == "list":
        print(_list_figures())
        return 0
    scale = FULL if args.full else QUICK
    plan: Optional[FaultPlan] = None
    if args.faults is not None:
        try:
            plan = FaultPlan.from_file(args.faults)
        except (OSError, ValueError, KeyError) as exc:
            print(f"bad fault plan {args.faults!r}: {exc}", file=sys.stderr)
            return 2
    if args.figure == "all":
        names = list(FIGURES)
    elif args.figure in FIGURES:
        names = [args.figure]
    else:
        print(f"unknown figure {args.figure!r}\n\n{_list_figures()}",
              file=sys.stderr)
        return 2
    for name in names:
        status = _run_figure(
            name, scale, args.verify, args.out, seed=args.seed, plan=plan
        )
        if status:
            return status
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The periodic metrics sampler, driven by the simulated clock.

Every ``interval_ns`` the sampler reads all of a phase's registered
metrics and appends one time-series point.  Its ticks are scheduled as
*housekeeping* events (:class:`repro.sim.Event`), so they are invisible
to :attr:`Simulator.alive_events`: a drained workload still triggers
early-quiescence detection, the watchdog still disarms when only
observers remain, and the sampler itself stops when the workload is
gone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Simulator
    from .registry import Phase

__all__ = ["MetricsSampler"]


class MetricsSampler:
    """Samples one phase's metrics on one simulator's clock."""

    def __init__(
        self,
        sim: "Simulator",
        phase: "Phase",
        interval_ns: float,
        max_samples: int = 4096,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(
                f"sampler interval must be positive, got {interval_ns}"
            )
        self.sim = sim
        self.phase = phase
        self.interval_ns = interval_ns
        self.max_samples = max_samples
        self.ticks = 0
        self.stopped = False

    def start(self) -> None:
        """Schedule the first tick one interval from now."""
        self.sim.call_after(self.interval_ns, self._tick, housekeeping=True)

    def _tick(self) -> None:
        self.phase.record_sample(self.sim.now)
        self.ticks += 1
        if self.ticks >= self.max_samples or self.sim.alive_events == 0:
            # Workload drained (or the series is full): stop observing
            # so the calendar can empty.  A full series with workload
            # still alive is a *truncated* time series — flag it on the
            # phase (no-silent-caps rule) so reports can surface it.
            if self.sim.alive_events > 0:
                self.phase.truncated = True
            self.stopped = True
            return
        self.sim.call_after(self.interval_ns, self._tick, housekeeping=True)

"""The central metrics registry: named counters/gauges for every subsystem.

Instrumented classes register their metrics once, at construction time,
through a :class:`MetricsScope` — each metric is a *name* plus a
zero-argument ``read`` callable closing over the instance's existing
counter attribute.  Registration is the only work instrumentation adds:
the hot paths keep bumping the plain integer attributes they always
bumped, and the registry reads them on demand (at sampler ticks and at
phase end).  With no registry installed (:mod:`repro.obs.hooks`), not
even registration happens.

A *phase* is one experiment point (one testbed / one simulated clock):
``begin_phase`` closes the previous phase by capturing every metric's
final value and opens a fresh namespace, so multi-point figure sweeps
produce one labelled column group per point instead of a name collision.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Simulator
    from .tracer import SpanTracer

__all__ = [
    "Metric",
    "MetricsScope",
    "Phase",
    "RecordedPhase",
    "MetricsRegistry",
]


class Metric:
    """One named metric: a kind tag plus a read-current-value callable."""

    __slots__ = ("name", "kind", "read")

    def __init__(
        self, name: str, kind: str, read: Callable[[], float]
    ) -> None:
        self.name = name
        self.kind = kind  # "counter" (monotonic) or "gauge" (level)
        self.read = read

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Metric {self.name} ({self.kind})>"


class Phase:
    """One experiment point: a metric namespace plus its time series."""

    def __init__(self, index: int, label: str) -> None:
        self.index = index
        self.label = label
        self.metrics: dict[str, Metric] = {}
        self.sample_times: list[float] = []
        self.series: dict[str, list[float]] = {}
        self.final: Optional[dict[str, float]] = None
        self.sim_attached = False
        # Set by the sampler when the time series hit max_samples while
        # the workload was still running (no-silent-caps rule): the
        # series is a truncated prefix, though finals stay complete.
        self.truncated = False
        self._scope_counts: dict[str, int] = {}

    def read_all(self) -> dict[str, float]:
        """Current value of every registered metric."""
        return {name: m.read() for name, m in self.metrics.items()}

    def record_sample(self, t_ns: float) -> None:
        """Append one time-series point for every registered metric."""
        self.sample_times.append(t_ns)
        for name, metric in self.metrics.items():
            self.series.setdefault(name, []).append(metric.read())

    def finalize(self) -> None:
        """Capture final values (idempotent; later reads are frozen)."""
        if self.final is None:
            self.final = self.read_all()

    def to_dict(self) -> dict:
        self.finalize()
        ticks = len(self.sample_times)
        series = {
            # A metric registered after sampling started has a shorter
            # series; pad the front so columns align with sample_times.
            name: [None] * (ticks - len(values)) + values
            for name, values in self.series.items()
        }
        return {
            "index": self.index,
            "label": self.label,
            "final": self.final,
            "kinds": {n: m.kind for n, m in self.metrics.items()},
            "truncated": self.truncated,
            "samples": {"t_ns": self.sample_times, "series": series},
        }


class RecordedPhase(Phase):
    """A phase reconstructed from another registry's ``to_dict()`` payload.

    The parallel executor runs each sweep point in a worker process
    under a fresh single-phase registry, ships the phase's ``to_dict()``
    payload back, and adopts it here with the index reassigned to the
    parent registry's slot — so ``report()`` and ``summary_rows()`` are
    identical to what a serial run of the same points produces.

    A recorded phase is frozen data: it has no live metrics to read, so
    ``finalize`` and ``read_all`` serve the captured finals.
    """

    def __init__(self, index: int, payload: dict) -> None:
        super().__init__(index, payload["label"])
        self.final = payload.get("final")
        self._kinds: dict[str, str] = dict(payload.get("kinds") or {})
        self.truncated = bool(payload.get("truncated", False))
        samples = payload.get("samples") or {}
        self.sample_times = list(samples.get("t_ns") or [])
        self.series = {
            name: list(values)
            for name, values in (samples.get("series") or {}).items()
        }
        # Frozen: a stray attach_simulator must open a new phase, never
        # re-enter this one.
        self.sim_attached = True

    def read_all(self) -> dict[str, float]:
        return dict(self.final or {})

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "final": self.final,
            "kinds": dict(self._kinds),
            "truncated": self.truncated,
            "samples": {
                "t_ns": list(self.sample_times),
                # Worker payloads arrive already front-padded by the
                # originating Phase.to_dict(); emit them as stored.
                "series": {
                    name: list(values)
                    for name, values in self.series.items()
                },
            },
        }


class MetricsScope:
    """A per-instance namespace within one phase (e.g. ``pcie.rx``)."""

    __slots__ = ("_phase", "prefix")

    def __init__(self, phase: Phase, prefix: str) -> None:
        self._phase = phase
        self.prefix = prefix

    def counter(self, name: str, read: Callable[[], float]) -> None:
        """Register a monotonically increasing count."""
        self._add(name, "counter", read)

    def gauge(self, name: str, read: Callable[[], float]) -> None:
        """Register an instantaneous level (occupancy, utilization)."""
        self._add(name, "gauge", read)

    def _add(self, name: str, kind: str, read: Callable[[], float]) -> None:
        full = f"{self.prefix}.{name}"
        self._phase.metrics[full] = Metric(full, kind, read)


class MetricsRegistry:
    """Owns phases, scopes, the sampler hookup and the optional tracer."""

    def __init__(
        self,
        tracer: Optional["SpanTracer"] = None,
        sample_interval_ns: Optional[float] = None,
        max_samples_per_phase: int = 4096,
    ) -> None:
        self.tracer = tracer
        self.sample_interval_ns = sample_interval_ns
        self.max_samples_per_phase = max_samples_per_phase
        self.phases: list[Phase] = []

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def begin_phase(self, label: Optional[str] = None) -> Phase:
        """Close the current phase (freezing finals) and open a new one."""
        if self.phases:
            self.phases[-1].finalize()
        index = len(self.phases)
        phase = Phase(index, label or f"phase{index}")
        self.phases.append(phase)
        if self.tracer is not None:
            self.tracer.set_process(index, phase.label)
        return phase

    def current_phase(self) -> Phase:
        if not self.phases:
            return self.begin_phase()
        return self.phases[-1]

    def adopt_phase(self, payload: dict) -> Phase:
        """Append a phase recorded in another process.

        ``payload`` is a ``Phase.to_dict()`` document from a worker's
        registry; its index is reassigned to this registry's next slot.
        Adopting in sweep order therefore reproduces the exact phase
        list a serial run would have built.
        """
        if self.phases:
            self.phases[-1].finalize()
        phase = RecordedPhase(len(self.phases), payload)
        self.phases.append(phase)
        if self.tracer is not None:
            self.tracer.set_process(phase.index, phase.label)
        return phase

    # ------------------------------------------------------------------
    # Registration (called by instrumented constructors)
    # ------------------------------------------------------------------
    def scope(self, prefix: str) -> MetricsScope:
        """A unique metric namespace; repeats get ``#2``, ``#3``, ...."""
        phase = self.current_phase()
        count = phase._scope_counts.get(prefix, 0) + 1
        phase._scope_counts[prefix] = count
        full = prefix if count == 1 else f"{prefix}#{count}"
        return MetricsScope(phase, full)

    # ------------------------------------------------------------------
    # Simulator hookup (called by the testbed)
    # ------------------------------------------------------------------
    def attach_simulator(self, sim: "Simulator") -> Phase:
        """Bind the tracer clock and start this phase's periodic sampler.

        Each phase belongs to exactly one simulator; attaching a second
        simulator auto-opens a new phase, so sweeps that forget to call
        :meth:`begin_phase` per point still get separated series.
        """
        from .sampler import MetricsSampler

        phase = self.current_phase()
        if phase.sim_attached:
            phase = self.begin_phase()
        phase.sim_attached = True
        if self.tracer is not None:
            self.tracer.bind_clock(lambda: sim.now)
        if self.sample_interval_ns is not None:
            MetricsSampler(
                sim,
                phase,
                self.sample_interval_ns,
                max_samples=self.max_samples_per_phase,
            ).start()
        return phase

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """The full metrics document (finalizes the current phase)."""
        if self.phases:
            self.phases[-1].finalize()
        return {
            "schema": "repro.obs/1",
            "phases": [phase.to_dict() for phase in self.phases],
        }

    def summary_rows(self) -> tuple[list[str], list[list]]:
        """A per-phase summary table over the headline counters."""
        headers = [
            "phase",
            "samples",
            "translations",
            "iotlb_miss",
            "mem_reads",
            "invalidations",
            "dma_bytes",
            "drops",
        ]
        rows = []
        for phase in self.phases:
            phase.finalize()
            final = phase.final or {}
            samples = len(phase.sample_times)
            rows.append(
                [
                    phase.label,
                    f"{samples} (truncated)" if phase.truncated else samples,
                    _sum_metric(final, "iommu.translations"),
                    _sum_metric(final, "iommu.iotlb_misses"),
                    _sum_metric(final, "iommu.memory_reads"),
                    _sum_metric(final, "iommu.invalidation_requests"),
                    _sum_metric(final, "pcie.rx.bytes", "pcie.tx.bytes"),
                    _sum_metric(final, "nic.buffer_drops", "nic.ring_drops"),
                ]
            )
        return headers, rows


def _normalize(name: str) -> str:
    """Strip the ``#N`` instance-dedup suffixes from a metric name."""
    return ".".join(part.split("#", 1)[0] for part in name.split("."))


def _sum_metric(final: dict[str, float], *targets: str) -> float:
    """Sum all instances of the targeted metrics (0 when absent)."""
    wanted = set(targets)
    total = 0.0
    for name, value in final.items():
        if _normalize(name) in wanted and isinstance(value, (int, float)):
            total += value
    return int(total) if float(total).is_integer() else total

"""Global metrics-registry registration: how instrumented modules find it.

Same pattern as :mod:`repro.verify.hooks` and :mod:`repro.faults.hooks`:
instrumented classes (the IOTLB, PTcaches, allocators, queues, NIC,
PCIe pipelines, drivers) read :func:`current_registry` once at
construction time and keep the result in an ``obs`` attribute.  Every
per-event emission site is guarded by ``if self.obs is not None``, so
with no registry installed the observability layer costs one attribute
load and a pointer comparison — no metric objects, samples or trace
events exist, keeping benchmark numbers unaffected.

This module is a leaf: it must not import anything from ``repro`` so
that every instrumented module can import it without cycles.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .registry import MetricsRegistry

__all__ = ["current_registry", "set_registry", "observed"]

_REGISTRY: Optional["MetricsRegistry"] = None


def current_registry() -> Optional["MetricsRegistry"]:
    """The globally installed registry, or ``None`` (the fast default)."""
    return _REGISTRY


def set_registry(registry: Optional["MetricsRegistry"]) -> None:
    """Install ``registry`` globally; new instrumented objects attach."""
    global _REGISTRY
    _REGISTRY = registry


@contextlib.contextmanager
def observed(registry: "MetricsRegistry") -> Iterator["MetricsRegistry"]:
    """Install ``registry`` for the duration of a ``with`` block.

    Objects constructed inside the block (testbeds, hosts, IOMMUs)
    register their metrics; objects constructed outside are untouched.
    """
    previous = current_registry()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)

"""Fig 3 claims: Linux strict vs IOMMU off, varying Rx ring size."""

from ..expect import FigureSpec, equal, within_band, wins

SPEC = FigureSpec(
    figure="fig3",
    title="Linux strict vs IOMMU off, varying ring size",
    expectations=(
        wins(
            "off",
            "strict",
            "gbps",
            at=(256, 2048),
            claim="strict degrades vs off at every ring size",
            paper="degradation grows with ring size (up to +15%)",
        ),
        equal(
            "iotlb/pg",
            mode="strict",
            between=(256, 2048),
            tol_abs=0.5,
            claim="IOTLB misses roughly constant with ring size",
            paper="compulsory-dominated, ~constant",
        ),
        within_band(
            "m3/pg",
            "strict",
            lo=0.1,
            at=(256, 2048),
            claim="PTcache-L3 misses substantial at every ring size",
            paper="grows with ring size (we: substantial, flat)",
        ),
        within_band(
            "loc_p95",
            "strict",
            lo=10,
            at=(256, 2048),
            claim="strict allocation locality poor at all ring sizes",
            paper="degrades with ring size (we: poor throughout)",
        ),
    ),
)


# Paper reference curves for the publication overlay (``repro publish``).
# Approximate digitizations of the paper's plotted series (the claim-level
# paper-vs-ours context lives in EXPERIMENTS.md); they are drawn as dashed
# context lines in the generated figures and are never gated on.
PAPER_CURVES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "gbps": {
        "off": [(256, 99.0), (512, 99.0), (1024, 99.0), (2048, 98.0)],
        "strict": [(256, 80.0), (512, 78.0), (1024, 73.0), (2048, 68.0)],
    },
    "iotlb/pg": {
        "strict": [(256, 1.40), (512, 1.40), (1024, 1.40), (2048, 1.45)],
    },
}

"""Fig 3 claims: Linux strict vs IOMMU off, varying Rx ring size."""

from ..expect import FigureSpec, equal, within_band, wins

SPEC = FigureSpec(
    figure="fig3",
    title="Linux strict vs IOMMU off, varying ring size",
    expectations=(
        wins(
            "off",
            "strict",
            "gbps",
            at=(256, 2048),
            claim="strict degrades vs off at every ring size",
            paper="degradation grows with ring size (up to +15%)",
        ),
        equal(
            "iotlb/pg",
            mode="strict",
            between=(256, 2048),
            tol_abs=0.5,
            claim="IOTLB misses roughly constant with ring size",
            paper="compulsory-dominated, ~constant",
        ),
        within_band(
            "m3/pg",
            "strict",
            lo=0.1,
            at=(256, 2048),
            claim="PTcache-L3 misses substantial at every ring size",
            paper="grows with ring size (we: substantial, flat)",
        ),
        within_band(
            "loc_p95",
            "strict",
            lo=10,
            at=(256, 2048),
            claim="strict allocation locality poor at all ring sizes",
            paper="degrades with ring size (we: poor throughout)",
        ),
    ),
)

"""Fig 10 claims: concurrent Rx/Tx interference (Ice Lake)."""

from ..expect import FigureSpec, within_band, wins

SPEC = FigureSpec(
    figure="fig10",
    title="Concurrent Rx/Tx interference (Ice Lake)",
    expectations=(
        within_band(
            "rx_gbps",
            "strict",
            of="off",
            hi=0.62,
            at=(2, 4),
            claim="strict Rx collapses under Rx/Tx interference",
            paper="up to ~80% Rx degradation",
        ),
        wins(
            "fns",
            "strict",
            "rx_gbps",
            by=1.3,
            at=(2, 4),
            claim="F&S recovers a large part of the Rx loss",
            paper="= off except a small gap at <4 cores",
        ),
        wins(
            "fns",
            "strict",
            "tx_gbps",
            at=(2, 4),
            claim="F&S Tx throughput above strict's",
            paper="strict Tx degrades too (less than Rx)",
        ),
        wins(
            "off",
            "strict",
            "rx_gbps",
            at=(1,),
            claim="interference visible even at one core per direction",
            paper="present at all core counts",
        ),
    ),
)

"""Fig 10 claims: concurrent Rx/Tx interference (Ice Lake)."""

from ..expect import FigureSpec, within_band, wins

SPEC = FigureSpec(
    figure="fig10",
    title="Concurrent Rx/Tx interference (Ice Lake)",
    expectations=(
        within_band(
            "rx_gbps",
            "strict",
            of="off",
            hi=0.62,
            at=(2, 4),
            claim="strict Rx collapses under Rx/Tx interference",
            paper="up to ~80% Rx degradation",
        ),
        wins(
            "fns",
            "strict",
            "rx_gbps",
            by=1.3,
            at=(2, 4),
            claim="F&S recovers a large part of the Rx loss",
            paper="= off except a small gap at <4 cores",
        ),
        wins(
            "fns",
            "strict",
            "tx_gbps",
            at=(2, 4),
            claim="F&S Tx throughput above strict's",
            paper="strict Tx degrades too (less than Rx)",
        ),
        wins(
            "off",
            "strict",
            "rx_gbps",
            at=(1,),
            claim="interference visible even at one core per direction",
            paper="present at all core counts",
        ),
    ),
)


# Paper reference curves for the publication overlay (``repro publish``).
# Approximate digitizations of the paper's plotted series (the claim-level
# paper-vs-ours context lives in EXPERIMENTS.md); they are drawn as dashed
# context lines in the generated figures and are never gated on.
PAPER_CURVES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "rx_gbps": {
        "off": [(1, 97.0), (2, 98.0), (4, 99.0)],
        "strict": [(1, 55.0), (2, 30.0), (4, 20.0)],
        "fns": [(1, 85.0), (2, 95.0), (4, 98.0)],
    },
    "tx_gbps": {
        "off": [(1, 93.0), (2, 95.0), (4, 96.0)],
        "strict": [(1, 70.0), (2, 60.0), (4, 55.0)],
        "fns": [(1, 88.0), (2, 94.0), (4, 95.0)],
    },
}

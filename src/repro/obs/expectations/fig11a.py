"""Fig 11a claims: Redis 100% SET throughput by value size."""

from ..expect import (
    FigureSpec,
    crossover_at,
    declines_with,
    grows_with,
    within_band,
    wins,
)

SPEC = FigureSpec(
    figure="fig11a",
    title="Redis SET throughput",
    expectations=(
        within_band(
            "gbps",
            "strict",
            of="off",
            hi=0.75,
            at=(4096, 8192),
            claim="strict loses >25% at small values",
            paper="38-70% degradation, worst at small values",
        ),
        wins(
            "fns",
            "strict",
            "gbps",
            by=1.15,
            at=(4096, 8192),
            claim="F&S clearly above strict at small values",
            paper="recovers to near off",
        ),
        within_band(
            "gbps",
            "strict",
            of="off",
            hi=1.02,
            at=(32768, 131072),
            claim="no strict-over-off inversion at large values",
            paper="strict below off throughout",
        ),
        wins(
            "fns",
            "strict",
            "gbps",
            by=0.98,
            at=(32768, 131072),
            claim="F&S at least matches strict at large values",
            paper="F&S above strict throughout",
        ),
        grows_with(
            "gbps",
            "strict",
            of="off",
            slack=0.05,
            claim="strict degradation worsens at smaller values",
            paper="worst at small values",
        ),
        within_band(
            "gbps",
            "fns",
            of="off",
            lo=0.9,
            at=(131072,),
            claim="F&S = off at large values",
            paper="equal except small 4 KB gap",
        ),
        crossover_at(
            "gbps",
            "strict",
            of="off",
            threshold=0.75,
            after=8192,
            claim="strict degradation fades only beyond 8 KB values",
            paper="38-70% band at small values, fading larger",
        ),
        declines_with(
            "iotlb/pg",
            "fns",
            factor=1.2,
            claim="F&S IOTLB misses higher at small values (reply load)",
            paper="4 KB gap from per-request reply IOTLB contention",
        ),
    ),
)


# Paper reference curves for the publication overlay (``repro publish``).
# Approximate digitizations of the paper's plotted series (the claim-level
# paper-vs-ours context lives in EXPERIMENTS.md); they are drawn as dashed
# context lines in the generated figures and are never gated on.
PAPER_CURVES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "gbps": {
        "off": [(4096, 99.0), (8192, 99.0), (32768, 99.0), (131072, 99.0)],
        "strict": [(4096, 30.0), (8192, 55.0), (32768, 60.0), (131072, 61.0)],
        "fns": [(4096, 90.0), (8192, 97.0), (32768, 99.0), (131072, 99.0)],
    },
}
